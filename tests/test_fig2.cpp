// Experiment E2: an executable transcription of the paper's Figure 2 - the
// set of BG graphs obtained from the Figure 1g configuration by replacing
// each red edge with every legal green edge.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace {

using arvy::graph::DisjointSets;
using arvy::graph::NodeId;
using arvy::verify::Configuration;
using arvy::verify::RedEdge;

constexpr NodeId a = 0, b = 1, c = 2, d = 3, e = 4;

// The Figure 1g configuration, built directly (test_fig1 also reaches it by
// replay): a holds the token; b, d, e have outstanding requests; find by d
// is in transit c -> a having visited {d, c}; find by b is in transit
// b -> a; n(d) = e.
Configuration fig1g() {
  Configuration cfg;
  cfg.parent = {a, b, e, e, e};  // p(a)=a, p(b)=b, p(c)=e, p(d)=e, p(e)=e
  cfg.next.assign(5, std::nullopt);
  cfg.next[d] = e;
  cfg.token_at = a;
  RedEdge find_by_d;
  find_by_d.tail = c;
  find_by_d.head = a;
  find_by_d.producer = d;
  find_by_d.visited = {d, c};
  RedEdge find_by_b;
  find_by_b.tail = b;
  find_by_b.head = a;
  find_by_b.producer = b;
  find_by_b.visited = {b};
  cfg.red_edges = {find_by_d, find_by_b};
  return cfg;
}

TEST(Fig2, WaitingAndVisitedSetsMatchThePaper) {
  const Configuration cfg = fig1g();
  // waiting(d) = {e} via n(d) = e; waiting(b) is empty.
  EXPECT_EQ(cfg.waiting_set(d), (std::vector<NodeId>{e}));
  EXPECT_TRUE(cfg.waiting_set(b).empty());
  // G_6(r2) for r2 = (c, a): green endpoints visited {d, c} plus waiting {e}.
  // G_6(r1) for r1 = (b, a): only the producer b itself.
}

TEST(Fig2, EnumeratesExactlyThreeBgGraphsAllTrees) {
  const Configuration cfg = fig1g();
  // Black edges minus self-loops: c->e, d->e. Red (b, a) admits one green
  // edge (a, b); red (c, a) admits three: (a, d), (a, c), (a, e). So
  // |BG_6| = 3, exactly the combinations Figure 2 draws.
  const std::vector<NodeId> candidates_r2{d, c, e};
  for (NodeId x : candidates_r2) {
    DisjointSets dsu(5);
    EXPECT_TRUE(dsu.unite(c, e));
    EXPECT_TRUE(dsu.unite(d, e));
    EXPECT_TRUE(dsu.unite(a, b));  // green for r1
    EXPECT_TRUE(dsu.unite(a, x)) << "green (a," << x << ") closed a cycle";
    EXPECT_EQ(dsu.set_count(), 1u) << "BG graph with (a," << x
                                   << ") is disconnected";
  }
}

TEST(Fig2, CheckerAcceptsTheConfiguration) {
  const Configuration cfg = fig1g();
  const auto result = arvy::verify::check_all(cfg);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Fig2, CheckerRejectsAnIllegalGreenCandidate) {
  // If the "find by d" message had (wrongly) recorded node b as visited, the
  // BG graph replacing (c, a) by (a, b) and (b, a) by (a, b)... would double
  // the a-b connection and disconnect {c,d,e} side - Lemma 2.2 must fail.
  Configuration cfg = fig1g();
  cfg.red_edges[0].visited = {d, c, b};  // b never received this find
  const auto result = arvy::verify::check_bg_trees(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("BG"), std::string::npos);
}

TEST(Fig2, SourceComponentsHoldForBothRedEdges) {
  const auto result = arvy::verify::check_source_components(fig1g());
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Fig2, DotRenderingMentionsEveryElement) {
  const std::string dot = fig1g().to_dot();
  EXPECT_NE(dot.find("find by 3"), std::string::npos);  // find by d
  EXPECT_NE(dot.find("find by 1"), std::string::npos);  // find by b
  EXPECT_NE(dot.find("fillcolor=gray"), std::string::npos);  // token at a
  EXPECT_NE(dot.find("n2 -> n4"), std::string::npos);  // black edge c -> e
}

}  // namespace
