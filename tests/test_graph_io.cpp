// Tests for graph serialization (edge list + DOT export).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::graph;

TEST(EdgeList, RoundTripsUnitRing) {
  const Graph g = make_ring(6);
  const Graph back = from_edge_list_string(to_edge_list_string(g));
  EXPECT_EQ(back.node_count(), 6u);
  EXPECT_EQ(back.edge_count(), 6u);
  for (const EdgeRef& e : g.edges()) {
    EXPECT_TRUE(back.has_edge(e.a, e.b));
    EXPECT_DOUBLE_EQ(back.edge_weight(e.a, e.b), e.weight);
  }
}

TEST(EdgeList, RoundTripsWeightedGraph) {
  arvy::support::Rng rng(3);
  const Graph g = make_random_geometric(20, 0.35, rng);
  const Graph back = from_edge_list_string(to_edge_list_string(g));
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  for (const EdgeRef& e : g.edges()) {
    EXPECT_NEAR(back.edge_weight(e.a, e.b), e.weight, 1e-9);
  }
}

TEST(EdgeList, ParsesHandWrittenInputWithComments) {
  const std::string text =
      "# a triangle\n"
      "nodes 3\n"
      "edge 0 1 1.5\n"
      "# middle comment\n"
      "edge 1 2 2.5\n"
      "edge 2 0 3.5\n";
  const Graph g = from_edge_list_string(text);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 7.5);
}

TEST(EdgeList, OutputIsDeterministic) {
  const Graph g = make_grid(3, 3);
  EXPECT_EQ(to_edge_list_string(g), to_edge_list_string(g));
}

TEST(EdgeListDeath, MissingNodesDirectiveAborts) {
  EXPECT_DEATH((void)from_edge_list_string("edge 0 1 1\n"), "nodes");
}

TEST(EdgeListDeath, UnknownDirectiveAborts) {
  EXPECT_DEATH((void)from_edge_list_string("nodes 2\nvertex 0 1\n"),
               "unknown directive");
}

TEST(EdgeListDeath, MalformedEdgeAborts) {
  EXPECT_DEATH((void)from_edge_list_string("nodes 2\nedge 0\n"), "malformed");
}

TEST(Dot, ContainsAllNodesAndEdges) {
  const Graph g = make_path(4);
  const std::string dot = to_dot(g);
  for (const char* needle : {"n0", "n1", "n2", "n3", "n0 -- n1", "n2 -- n3"}) {
    EXPECT_NE(dot.find(needle), std::string::npos) << needle;
  }
}

TEST(Dot, HighlightsTreeEdgesAndRoot) {
  const Graph g = make_ring(6);
  const RootedTree tree = ring_path_tree(g, 3);
  const std::string dot = to_dot(g, &tree);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the root
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);    // tree edges
  EXPECT_NE(dot.find("color=gray"), std::string::npos);    // non-tree edge
}

}  // namespace
