// Unit tests for Dijkstra, BFS, APSP, and the lazy distance oracle.
#include <gtest/gtest.h>

#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::graph;

TEST(Dijkstra, PathGraphDistances) {
  const Graph g = make_path(5);
  const auto sp = dijkstra(g, 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(sp.distance[v], static_cast<double>(v));
  }
}

TEST(Dijkstra, PrefersLighterDetour) {
  // 0-1 weight 10; 0-2 weight 1; 2-1 weight 1 -> dist(0,1) = 2 via 2.
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[1], 2.0);
  EXPECT_EQ(sp.parent[1], 2u);
}

TEST(Dijkstra, PathReconstruction) {
  const Graph g = make_path(6);
  const auto sp = dijkstra(g, 1);
  const auto path = sp.path_to(4);
  const std::vector<NodeId> expected{1, 2, 3, 4};
  EXPECT_EQ(path, expected);
}

TEST(Dijkstra, RingUsesShorterArc) {
  const Graph g = make_ring(10);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 3.0);
  EXPECT_DOUBLE_EQ(sp.distance[7], 3.0);  // around the other side
  EXPECT_DOUBLE_EQ(sp.distance[5], 5.0);  // antipode
}

TEST(BfsHops, IgnoresWeights) {
  Graph g(3);
  g.add_edge(0, 1, 100.0);
  g.add_edge(1, 2, 100.0);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[2], 2u);
}

TEST(DistanceMatrix, SymmetricAndZeroDiagonal) {
  arvy::support::Rng rng(3);
  const Graph g = make_connected_gnp(12, 0.3, rng);
  const DistanceMatrix dm(g);
  for (NodeId a = 0; a < 12; ++a) {
    EXPECT_DOUBLE_EQ(dm.at(a, a), 0.0);
    for (NodeId b = 0; b < 12; ++b) {
      EXPECT_DOUBLE_EQ(dm.at(a, b), dm.at(b, a));
    }
  }
}

TEST(DistanceMatrix, DiameterOfRing) {
  const Graph g = make_ring(12);
  const DistanceMatrix dm(g);
  EXPECT_DOUBLE_EQ(dm.diameter(), 6.0);
}

TEST(DistanceMatrix, TriangleInequality) {
  arvy::support::Rng rng(5);
  const Graph g = make_random_geometric(15, 0.4, rng);
  const DistanceMatrix dm(g);
  for (NodeId a = 0; a < 15; ++a) {
    for (NodeId b = 0; b < 15; ++b) {
      for (NodeId c = 0; c < 15; ++c) {
        EXPECT_LE(dm.at(a, c), dm.at(a, b) + dm.at(b, c) + 1e-9);
      }
    }
  }
}

TEST(DistanceOracle, MatchesMatrix) {
  arvy::support::Rng rng(7);
  const Graph g = make_connected_gnp(10, 0.4, rng);
  const DistanceMatrix dm(g);
  const DistanceOracle oracle(g);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      EXPECT_DOUBLE_EQ(oracle.distance(a, b), dm.at(a, b));
    }
  }
}

TEST(DistanceOracle, LazyCachingOnlyTouchedRows) {
  const Graph g = make_ring(64);
  const DistanceOracle oracle(g);
  EXPECT_EQ(oracle.cached_rows(), 0u);
  (void)oracle.distance(3, 40);
  EXPECT_EQ(oracle.cached_rows(), 1u);
  (void)oracle.distance(17, 3);  // reuses the cached row for node 3
  EXPECT_EQ(oracle.cached_rows(), 1u);
  oracle.prewarm_all();
  EXPECT_EQ(oracle.cached_rows(), 64u);
}

TEST(DistanceOracle, ShortestPathEndpoints) {
  const Graph g = make_grid(3, 3);
  const DistanceOracle oracle(g);
  const auto path = oracle.shortest_path(0, 8);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 8u);
  EXPECT_EQ(path.size(), 5u);  // 4 hops on a 3x3 grid corner to corner
}

}  // namespace
