// Experiment E7: property-based verification of Lemma 2 / Lemma 3 /
// Theorems 4-5.
//
// Randomized concurrent executions over a grid of topologies x policies x
// delivery disciplines x seeds; after *every* protocol event the full
// invariant bundle (BR tree, all BG trees, source components, token
// uniqueness, next-chain acyclicity, Lemma 3 states) is checked, and at
// quiescence the liveness audit confirms every request was satisfied
// exactly once. A single surviving violation of any lemma would fail here.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/tree_metrics.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"
#include "verify/liveness.hpp"
#include "verify/state_machine.hpp"

namespace {

using namespace arvy::proto;
using arvy::graph::Graph;
using arvy::graph::NodeId;
using arvy::sim::Discipline;

enum class Topology { kRing, kPath, kComplete, kGrid, kStar, kRandomTree };

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kRing:
      return "ring";
    case Topology::kPath:
      return "path";
    case Topology::kComplete:
      return "complete";
    case Topology::kGrid:
      return "grid";
    case Topology::kStar:
      return "star";
    case Topology::kRandomTree:
      return "rtree";
  }
  return "?";
}

Graph build(Topology t, std::uint64_t seed) {
  arvy::support::Rng rng(seed);
  switch (t) {
    case Topology::kRing:
      return arvy::graph::make_ring(8);
    case Topology::kPath:
      return arvy::graph::make_path(7);
    case Topology::kComplete:
      return arvy::graph::make_complete(6);
    case Topology::kGrid:
      return arvy::graph::make_grid(3, 3);
    case Topology::kStar:
      return arvy::graph::make_star(7);
    case Topology::kRandomTree:
      return arvy::graph::make_random_tree(9, rng);
  }
  ARVY_UNREACHABLE("bad topology");
}

struct Params {
  Topology topology;
  PolicyKind policy;
  Discipline discipline;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  std::string name = topology_name(p.topology);
  name += '_';
  name += policy_kind_name(p.policy);
  name += '_';
  name += arvy::sim::discipline_name(p.discipline);
  name += "_s";
  name += std::to_string(p.seed);
  return name;
}

class InvariantFuzz : public ::testing::TestWithParam<Params> {};

TEST_P(InvariantFuzz, EveryEventPreservesLemma2AndLiveness) {
  const Params& p = GetParam();
  const Graph g = build(p.topology, p.seed);
  const auto init =
      from_tree(shortest_path_tree(g, arvy::graph::metric_summary(g).center));
  auto policy = make_policy(p.policy, /*k=*/2);
  SimEngine::Options options;
  options.discipline = p.discipline;
  options.seed = p.seed;
  if (p.discipline == Discipline::kTimed) {
    options.delay = arvy::sim::make_uniform_delay(0.1, 5.0);
  }
  SimEngine engine(g, init, *policy, std::move(options));

  arvy::verify::StateMachineAudit audit(arvy::verify::capture(engine));
  std::size_t events = 0;
  engine.set_post_event_hook([&](const SimEngine& eng) {
    ++events;
    const auto cfg = arvy::verify::capture(eng);
    const auto all = arvy::verify::check_all(cfg);
    ASSERT_TRUE(all.ok) << "after event " << events << ": " << all.detail;
    const auto transition = audit.observe(cfg);
    ASSERT_TRUE(transition.ok) << "after event " << events << ": "
                               << transition.detail;
  });

  // Interleave request submissions with message deliveries under the
  // adversarial scheduler's control. Nodes re-request only after their
  // previous request was satisfied (the model's rule).
  arvy::support::Rng driver(p.seed ^ 0xabcdef12345ULL);
  const std::size_t n = g.node_count();
  constexpr std::size_t kRequests = 24;
  std::size_t submitted = 0;
  std::vector<RequestId> last_request(n, 0);
  while (submitted < kRequests || !engine.bus().idle()) {
    const bool can_submit = submitted < kRequests;
    const bool do_submit =
        can_submit && (engine.bus().idle() || driver.next_bool(0.4));
    if (do_submit) {
      // Pick a node with no outstanding request and no token.
      for (int attempts = 0; attempts < 64; ++attempts) {
        const auto v = static_cast<NodeId>(driver.next_below(n));
        const ArvyCore& core = engine.node(v);
        if (!core.outstanding().has_value()) {
          last_request[v] = engine.submit(v);
          ++submitted;
          break;
        }
      }
    } else {
      engine.step();
    }
  }

  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  const auto liveness = arvy::verify::audit_liveness(engine);
  EXPECT_TRUE(liveness.ok) << liveness.detail;
  EXPECT_GT(audit.transitions_seen(), 0u);
}

std::vector<Params> make_grid_params() {
  std::vector<Params> out;
  const Topology topologies[] = {Topology::kRing,     Topology::kPath,
                                 Topology::kComplete, Topology::kGrid,
                                 Topology::kStar,     Topology::kRandomTree};
  const PolicyKind policies[] = {PolicyKind::kArrow,    PolicyKind::kIvy,
                                 PolicyKind::kRandom,   PolicyKind::kMidpoint,
                                 PolicyKind::kClosest,  PolicyKind::kKBack,
                                 PolicyKind::kSpectrum};
  const Discipline disciplines[] = {Discipline::kRandom, Discipline::kLifo,
                                    Discipline::kTimed};
  std::uint64_t seed = 1;
  for (Topology t : topologies) {
    for (PolicyKind pk : policies) {
      for (Discipline d : disciplines) {
        out.push_back({t, pk, d, seed});
        seed += 7;
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, InvariantFuzz,
                         ::testing::ValuesIn(make_grid_params()), param_name);

// The bridge policy with its Algorithm 2 initialization, fuzzed separately
// because it requires the canonical ring setup.
class BridgeInvariantFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BridgeInvariantFuzz, ConcurrentBridgeExecutionsStayCorrect) {
  const std::uint64_t seed = GetParam();
  const Graph g = arvy::graph::make_ring(10);
  const auto init = ring_bridge_config(10);
  auto policy = make_policy(PolicyKind::kBridge);
  SimEngine::Options options;
  options.discipline = Discipline::kRandom;
  options.seed = seed;
  SimEngine engine(g, init, *policy, std::move(options));

  std::size_t events = 0;
  engine.set_post_event_hook([&](const SimEngine& eng) {
    ++events;
    const auto cfg = arvy::verify::capture(eng);
    const auto all = arvy::verify::check_all(cfg);
    ASSERT_TRUE(all.ok) << "after event " << events << ": " << all.detail;
  });

  arvy::support::Rng driver(seed * 31 + 1);
  std::size_t submitted = 0;
  while (submitted < 30 || !engine.bus().idle()) {
    if (submitted < 30 && (engine.bus().idle() || driver.next_bool(0.5))) {
      const auto v = static_cast<NodeId>(driver.next_below(10));
      if (!engine.node(v).outstanding().has_value()) {
        engine.submit(v);
        ++submitted;
      }
    } else {
      engine.step();
    }
  }
  const auto liveness = arvy::verify::audit_liveness(engine);
  EXPECT_TRUE(liveness.ok) << liveness.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgeInvariantFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
