// Experiment E12 at test scale: space accounting per policy - the paper's
// "constant space per node" claim for the bridge policy vs the O(log n) of
// hierarchical schemes (covered in test_hier).
#include <gtest/gtest.h>

#include "analysis/space.hpp"
#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

analysis::SpaceReport run_and_measure(proto::PolicyKind kind, std::size_t n) {
  const auto g = graph::make_ring(n);
  const auto init = kind == proto::PolicyKind::kBridge
                        ? proto::ring_bridge_config(n)
                        : proto::from_tree(graph::bfs_tree(g, 0));
  auto policy = proto::make_policy(kind, 2);
  proto::SimEngine engine(g, init, *policy, {});
  support::Rng rng(5);
  const auto seq = workload::uniform_sequence(n, 30, rng);
  engine.run_sequential(seq);
  return analysis::measure_space(engine);
}

TEST(Space, ArrowAndIvyNeedOnlyBaseWords) {
  for (auto kind : {proto::PolicyKind::kArrow, proto::PolicyKind::kIvy}) {
    const auto report = run_and_measure(kind, 16);
    EXPECT_EQ(report.policy_node_words, 0u);
    EXPECT_EQ(report.total_node_words(), 4u);
    EXPECT_FALSE(report.needs_full_path);
    EXPECT_EQ(report.message_words_peak, report.message_words_constant);
  }
}

TEST(Space, BridgeAddsOneFlagWordAndConstantMessages) {
  const auto report = run_and_measure(proto::PolicyKind::kBridge, 16);
  EXPECT_EQ(report.policy_node_words, 1u);
  EXPECT_EQ(report.total_node_words(), 5u);
  EXPECT_FALSE(report.needs_full_path);
}

TEST(Space, BridgeNodeSpaceIsConstantInN) {
  // The headline claim: per-node words do not grow with the ring size.
  const auto small = run_and_measure(proto::PolicyKind::kBridge, 8);
  const auto large = run_and_measure(proto::PolicyKind::kBridge, 128);
  EXPECT_EQ(small.total_node_words(), large.total_node_words());
}

TEST(Space, FullPathPoliciesReportPeakMessageSize) {
  const auto report = run_and_measure(proto::PolicyKind::kMidpoint, 16);
  EXPECT_TRUE(report.needs_full_path);
  EXPECT_GT(report.message_words_peak, report.message_words_constant);
}

TEST(Space, PeakMessageSizeTracksLongestFind) {
  const auto g = graph::make_complete(10);
  auto policy = proto::make_policy(proto::PolicyKind::kRandom);
  proto::SimEngine engine(g, proto::chain_config(10), *policy, {});
  engine.run_sequential(std::vector<NodeId>{0});  // visits the whole chain
  const auto report = analysis::measure_space(engine);
  EXPECT_EQ(report.message_words_peak, report.message_words_constant + 9);
}

}  // namespace
