// Experiment E1: an executable transcription of the paper's Figure 1.
//
// Five nodes a..e (ids 0..4), token initially at a, initial parents
// b->a, c->a, d->c, e->c. The schedule below reproduces sub-figures (b)
// through (l) exactly, including the concurrent overtakings: e's find
// overtakes d's stuck find, b's request reaches a first, and the token is
// only released at the end ("the token could have been sent around
// earlier"). A scripted NewParent policy supplies the figure's choices; the
// invariant checker validates every intermediate configuration.
#include <gtest/gtest.h>

#include <deque>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace arvy::proto;
using arvy::graph::NodeId;
using arvy::verify::capture;
using arvy::verify::check_all;
using arvy::verify::Configuration;

constexpr NodeId a = 0, b = 1, c = 2, d = 3, e = 4;

// Replays a fixed list of NewParent choices; each must be legal (a member of
// the visited set), which the engine asserts.
class ScriptedPolicy final : public NewParentPolicy {
 public:
  explicit ScriptedPolicy(std::deque<NodeId> choices)
      : choices_(std::move(choices)) {}
  PolicyDecision choose(const PolicyContext&) override {
    EXPECT_FALSE(choices_.empty()) << "script exhausted";
    const NodeId next = choices_.front();
    choices_.pop_front();
    return {next, false};
  }
  std::string_view name() const noexcept override { return "scripted"; }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<ScriptedPolicy>(*this);
  }

 private:
  std::deque<NodeId> choices_;
};

InitialConfig fig1_initial() {
  InitialConfig cfg;
  cfg.root = a;
  cfg.parent = {a, a, a, c, c};  // p(a)=a, p(b)=a, p(c)=a, p(d)=c, p(e)=c
  cfg.parent_edge_is_bridge.assign(5, false);
  return cfg;
}

struct Fig1Test : ::testing::Test {
  // Choices in find-delivery order:
  //   (c) c handles "find by d":  new parent d   (the figure keeps d)
  //   (e) c handles "find by e":  new parent e
  //   (f) d handles "find by e":  new parent e   ("new parent of d is e")
  //   (h) a handles "find by b":  new parent b
  //   (i) a handles "find by d":  new parent d   ("new parent of a is d")
  //   (j) b handles "find by d":  new parent d
  ScriptedPolicy policy{std::deque<NodeId>{d, e, e, b, d, d}};
  arvy::graph::Graph g = arvy::graph::make_complete(5);
  SimEngine engine{g, fig1_initial(), policy, [] {
                     SimEngine::Options o;
                     o.discipline = arvy::sim::Discipline::kFifo;
                     o.auto_send_token = false;
                     return o;
                   }()};

  void expect_invariants(const char* stage) {
    const Configuration cfg = capture(engine);
    const auto result = check_all(cfg);
    EXPECT_TRUE(result.ok) << "at " << stage << ": " << result.detail;
  }
};

TEST_F(Fig1Test, ReplaysTheFullFigure) {
  auto parent = [&](NodeId v) { return engine.node(v).parent(); };
  auto next_of = [&](NodeId v) { return engine.node(v).next(); };

  // (a) initial configuration.
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{a});
  expect_invariants("fig1a");

  // (b) d requests the token: red edge (d, c), p(d) = d.
  engine.submit(d);
  EXPECT_EQ(parent(d), d);
  {
    const Configuration cfg = capture(engine);
    ASSERT_EQ(cfg.red_edges.size(), 1u);
    EXPECT_EQ(cfg.red_edges[0].tail, d);
    EXPECT_EQ(cfg.red_edges[0].head, c);
    EXPECT_EQ(cfg.red_edges[0].producer, d);
  }
  expect_invariants("fig1b");

  // (c) c receives "find by d" and forwards it to a; c's new parent is d.
  const auto find_by_d_1 = engine.bus().pending()[0]->id;
  engine.bus().deliver(find_by_d_1);
  EXPECT_EQ(parent(c), d);
  {
    const Configuration cfg = capture(engine);
    ASSERT_EQ(cfg.red_edges.size(), 1u);
    EXPECT_EQ(cfg.red_edges[0].tail, c);
    EXPECT_EQ(cfg.red_edges[0].head, a);
    EXPECT_EQ(cfg.red_edges[0].visited, (std::vector<NodeId>{d, c}));
  }
  expect_invariants("fig1c");

  // (d) e requests the token before "find by d" reaches a.
  engine.submit(e);
  EXPECT_EQ(parent(e), e);
  EXPECT_EQ(engine.bus().in_flight_count(), 2u);
  expect_invariants("fig1d");

  // (e) c receives "find by e" and forwards it to its parent d; c re-points
  // at e.
  const auto find_by_e_1 = engine.bus().pending()[1]->id;
  engine.bus().deliver(find_by_e_1);
  EXPECT_EQ(parent(c), e);
  expect_invariants("fig1e");

  // (f) d receives "find by e": d has a self-loop, so n(d) = e; d's new
  // parent is e. The "find by d" is still stuck on the way to a.
  const auto find_by_e_2 = engine.bus().pending()[1]->id;
  engine.bus().deliver(find_by_e_2);
  EXPECT_EQ(parent(d), e);
  EXPECT_EQ(next_of(d), std::optional<NodeId>{e});
  EXPECT_EQ(engine.bus().in_flight_count(), 1u);  // only "find by d" remains
  expect_invariants("fig1f");

  // (g) b requests the token. This is the Figure 2 configuration.
  engine.submit(b);
  EXPECT_EQ(parent(b), b);
  {
    const Configuration cfg = capture(engine);
    ASSERT_EQ(cfg.red_edges.size(), 2u);
    // Red edges (c, a) for "find by d" and (b, a) for "find by b".
    EXPECT_EQ(cfg.red_edges[0].producer, d);
    EXPECT_EQ(cfg.red_edges[1].producer, b);
  }
  expect_invariants("fig1g");

  // (h) a receives "find by b": a keeps the token (deferred SendToken) and
  // sets n(a) = b; a's new parent is b.
  const auto find_by_b = engine.bus().pending()[1]->id;
  engine.bus().deliver(find_by_b);
  EXPECT_EQ(parent(a), b);
  EXPECT_EQ(next_of(a), std::optional<NodeId>{b});
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{a});
  expect_invariants("fig1h");

  // (i) a finally receives "find by d" and forwards it to b; a's new parent
  // becomes d ("the structure has changed again").
  const auto find_by_d_2 = engine.bus().pending()[0]->id;
  engine.bus().deliver(find_by_d_2);
  EXPECT_EQ(parent(a), d);
  {
    const Configuration cfg = capture(engine);
    ASSERT_EQ(cfg.red_edges.size(), 1u);
    EXPECT_EQ(cfg.red_edges[0].tail, a);
    EXPECT_EQ(cfg.red_edges[0].head, b);
    EXPECT_EQ(cfg.red_edges[0].visited, (std::vector<NodeId>{d, c, a}));
  }
  expect_invariants("fig1i");

  // (j) b receives "find by d": self-loop, so n(b) = d; b re-points at d.
  const auto find_by_d_3 = engine.bus().pending()[0]->id;
  engine.bus().deliver(find_by_d_3);
  EXPECT_EQ(parent(b), d);
  EXPECT_EQ(next_of(b), std::optional<NodeId>{d});
  EXPECT_TRUE(engine.bus().idle());
  expect_invariants("fig1j");

  // (k, l) the token is finally sent around the next pointers:
  // a -> b -> d -> e.
  engine.flush_token(a);
  engine.run_until_idle();
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{e});
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  // Satisfaction order is b, d, e (requests were d, e, b -> indices 3, 1, 2
  // in submission order).
  const auto& requests = engine.requests();
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].node, d);
  EXPECT_EQ(requests[0].satisfaction_index, 2u);
  EXPECT_EQ(requests[1].node, e);
  EXPECT_EQ(requests[1].satisfaction_index, 3u);
  EXPECT_EQ(requests[2].node, b);
  EXPECT_EQ(requests[2].satisfaction_index, 1u);
  // Final parents: a->d, b->d, c->e, d->e, e->e (a directionless tree).
  EXPECT_EQ(parent(a), d);
  EXPECT_EQ(parent(b), d);
  EXPECT_EQ(parent(c), e);
  EXPECT_EQ(parent(d), e);
  EXPECT_EQ(parent(e), e);
  expect_invariants("fig1l");
}

TEST_F(Fig1Test, CostAccountingMatchesHandCount) {
  // On K5 every hop costs 1. Finds: d->c, c->a (find by d), e->c, c->d
  // (find by e), b->a (find by b), a->b (find by d forwarded) = 6 hops.
  // Token: a->b, b->d, d->e = 3 hops.
  engine.submit(d);
  engine.bus().deliver(engine.bus().pending()[0]->id);
  engine.submit(e);
  engine.bus().deliver(engine.bus().pending()[1]->id);
  engine.bus().deliver(engine.bus().pending()[1]->id);
  engine.submit(b);
  engine.bus().deliver(engine.bus().pending()[1]->id);
  engine.bus().deliver(engine.bus().pending()[0]->id);
  engine.bus().deliver(engine.bus().pending()[0]->id);
  engine.flush_token(a);
  engine.run_until_idle();
  EXPECT_DOUBLE_EQ(engine.costs().find_distance, 6.0);
  EXPECT_DOUBLE_EQ(engine.costs().token_distance, 3.0);
  EXPECT_EQ(engine.costs().find_messages, 6u);
  EXPECT_EQ(engine.costs().token_messages, 3u);
}

}  // namespace
