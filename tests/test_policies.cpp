// Unit tests for the NewParent policies (Algorithm 1 line 18's degree of
// freedom) on synthetic contexts.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::proto;

PolicyContext context(std::vector<NodeId>& visited, NodeId receiver = 9,
                      bool bridge_flag = false) {
  PolicyContext ctx;
  ctx.receiver = receiver;
  ctx.producer = visited.front();
  ctx.sender = visited.back();
  ctx.visited = visited;
  ctx.sender_edge_was_bridge = bridge_flag;
  return ctx;
}

TEST(ArrowPolicy, ReturnsSender) {
  auto policy = make_policy(PolicyKind::kArrow);
  std::vector<NodeId> visited{1, 4, 7};
  const auto decision = policy->choose(context(visited));
  EXPECT_EQ(decision.new_parent, 7u);
  EXPECT_FALSE(decision.new_edge_is_bridge);
  EXPECT_EQ(policy->name(), "arrow");
  EXPECT_EQ(policy->node_state_words(), 0u);
  EXPECT_EQ(policy->message_needs(), NewParentPolicy::MessageNeeds::kConstant);
}

TEST(IvyPolicy, ReturnsProducer) {
  auto policy = make_policy(PolicyKind::kIvy);
  std::vector<NodeId> visited{1, 4, 7};
  EXPECT_EQ(policy->choose(context(visited)).new_parent, 1u);
  EXPECT_EQ(policy->name(), "ivy");
}

TEST(BridgePolicy, ActsLikeArrowOffTheBridge) {
  auto policy = make_policy(PolicyKind::kBridge);
  std::vector<NodeId> visited{1, 4, 7};
  const auto decision = policy->choose(context(visited, 9, false));
  EXPECT_EQ(decision.new_parent, 7u);
  EXPECT_FALSE(decision.new_edge_is_bridge);
}

TEST(BridgePolicy, ShortcutsAndMovesBridgeOnCrossing) {
  auto policy = make_policy(PolicyKind::kBridge);
  std::vector<NodeId> visited{1, 4, 7};
  const auto decision = policy->choose(context(visited, 9, true));
  EXPECT_EQ(decision.new_parent, 1u);  // the producer
  EXPECT_TRUE(decision.new_edge_is_bridge);
  EXPECT_EQ(policy->node_state_words(), 1u);  // the per-node bridge flag
}

TEST(RandomPolicy, AlwaysPicksFromVisited) {
  auto policy = make_policy(PolicyKind::kRandom);
  arvy::support::Rng rng(5);
  std::vector<NodeId> visited{3, 8, 2, 11};
  bool saw_non_endpoint = false;
  for (int i = 0; i < 200; ++i) {
    PolicyContext ctx = context(visited);
    ctx.rng = &rng;
    const NodeId pick = policy->choose(ctx).new_parent;
    EXPECT_NE(std::find(visited.begin(), visited.end(), pick), visited.end());
    if (pick == 8u || pick == 2u) saw_non_endpoint = true;
  }
  EXPECT_TRUE(saw_non_endpoint);
  EXPECT_EQ(policy->message_needs(), NewParentPolicy::MessageNeeds::kFullPath);
}

TEST(MidpointPolicy, PicksMiddleOfPath) {
  auto policy = make_policy(PolicyKind::kMidpoint);
  std::vector<NodeId> odd{1, 2, 3, 4, 5};
  EXPECT_EQ(policy->choose(context(odd)).new_parent, 3u);
  std::vector<NodeId> even{1, 2, 3, 4};
  EXPECT_EQ(policy->choose(context(even)).new_parent, 3u);
  std::vector<NodeId> single{6};
  EXPECT_EQ(policy->choose(context(single)).new_parent, 6u);
}

TEST(ClosestPolicy, PicksMetricallyNearestVisited) {
  const auto g = arvy::graph::make_path(10);
  const arvy::graph::DistanceOracle oracle(g);
  auto policy = make_policy(PolicyKind::kClosest);
  std::vector<NodeId> visited{0, 3, 6};
  PolicyContext ctx = context(visited, /*receiver=*/7);
  ctx.distances = &oracle;
  EXPECT_EQ(policy->choose(ctx).new_parent, 6u);
  ctx.receiver = 1;
  EXPECT_EQ(policy->choose(ctx).new_parent, 0u);
}

TEST(KBackPolicy, WalksBackAlongPathAndClamps) {
  std::vector<NodeId> visited{1, 2, 3, 4, 5};
  auto k1 = make_policy(PolicyKind::kKBack, 1);
  EXPECT_EQ(k1->choose(context(visited)).new_parent, 5u);  // k=1 is Arrow
  auto k3 = make_policy(PolicyKind::kKBack, 3);
  EXPECT_EQ(k3->choose(context(visited)).new_parent, 3u);
  auto k99 = make_policy(PolicyKind::kKBack, 99);
  EXPECT_EQ(k99->choose(context(visited)).new_parent, 1u);  // clamps to producer
}

TEST(PolicyFactory, NamesRoundTrip) {
  for (PolicyKind kind : all_policy_kinds()) {
    auto policy = make_policy(kind);
    EXPECT_EQ(policy->name(), policy_kind_name(kind));
  }
}

TEST(PolicyFactory, CloneIsIndependentAndSameKind) {
  auto policy = make_policy(PolicyKind::kMidpoint);
  auto copy = policy->clone();
  EXPECT_EQ(copy->name(), policy->name());
  std::vector<NodeId> visited{4, 5, 6};
  EXPECT_EQ(copy->choose(context(visited)).new_parent,
            policy->choose(context(visited)).new_parent);
}

TEST(PolicyFactory, AllKindsListedOnce) {
  const auto kinds = all_policy_kinds();
  EXPECT_EQ(kinds.size(), 8u);
}

TEST(SpectrumPolicy, EndpointsAreIvyAndArrow) {
  std::vector<NodeId> visited{1, 2, 3, 4, 5};
  EXPECT_EQ(make_spectrum_policy(0.0)->choose(context(visited)).new_parent,
            1u);  // lambda=0: the producer (Ivy)
  EXPECT_EQ(make_spectrum_policy(1.0)->choose(context(visited)).new_parent,
            5u);  // lambda=1: the sender (Arrow)
}

TEST(SpectrumPolicy, MidDialRoundsToNearestPathPosition) {
  std::vector<NodeId> visited{1, 2, 3, 4, 5};
  EXPECT_EQ(make_spectrum_policy(0.5)->choose(context(visited)).new_parent,
            3u);
  EXPECT_EQ(make_spectrum_policy(0.25)->choose(context(visited)).new_parent,
            2u);
  std::vector<NodeId> single{9};
  EXPECT_EQ(make_spectrum_policy(0.7)->choose(context(single)).new_parent,
            9u);
}

TEST(SpectrumPolicy, DefaultFactoryDialIsMidpoint) {
  auto policy = make_policy(PolicyKind::kSpectrum);
  std::vector<NodeId> visited{1, 2, 3};
  EXPECT_EQ(policy->choose(context(visited)).new_parent, 2u);
  EXPECT_EQ(policy->name(), "spectrum");
}

TEST(SpectrumPolicyDeath, RejectsDialOutsideUnitInterval) {
  EXPECT_DEATH((void)make_spectrum_policy(1.5), "lambda");
}

TEST(PolicyDeath, ClosestWithoutOracleAborts) {
  auto policy = make_policy(PolicyKind::kClosest);
  std::vector<NodeId> visited{1, 2};
  EXPECT_DEATH((void)policy->choose(context(visited)), "oracle");
}

TEST(PolicyDeath, RandomWithoutRngAborts) {
  auto policy = make_policy(PolicyKind::kRandom);
  std::vector<NodeId> visited{1, 2};
  EXPECT_DEATH((void)policy->choose(context(visited)), "rng");
}

}  // namespace
