// Tests for the structured event trace recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"

namespace {

using namespace arvy::proto;
using arvy::graph::NodeId;

SimEngine traced_engine(const arvy::graph::Graph& g,
                        const InitialConfig& init) {
  auto policy = make_policy(PolicyKind::kArrow);
  SimEngine::Options options;
  options.record_trace = true;
  return SimEngine(g, init, *policy, std::move(options));
}

TEST(Trace, DisabledByDefault) {
  const auto g = arvy::graph::make_path(4);
  auto policy = make_policy(PolicyKind::kArrow);
  SimEngine engine(g, chain_config(4), *policy, {});
  engine.run_sequential(std::vector<NodeId>{0});
  EXPECT_EQ(engine.trace().size(), 0u);
}

TEST(Trace, RecordsEveryEventKindOfASimpleRun) {
  const auto g = arvy::graph::make_path(4);
  SimEngine engine = traced_engine(g, chain_config(4));
  engine.run_sequential(std::vector<NodeId>{0});
  // request, 3 find-sent, 3 find-recv, token-sent, token-recv = 9 events.
  const auto& events = engine.trace().events();
  ASSERT_EQ(events.size(), 9u);
  EXPECT_EQ(events.front().kind, TraceEventKind::kRequest);
  EXPECT_EQ(events.front().node, 0u);
  EXPECT_EQ(events.back().kind, TraceEventKind::kTokenReceived);
  EXPECT_EQ(events.back().node, 0u);
  EXPECT_EQ(events.back().request, 1u);
}

TEST(Trace, DistanceTotalsMatchCostAccountant) {
  const auto g = arvy::graph::make_ring(8);
  SimEngine engine = traced_engine(g, ring_bridge_config(8));
  engine.run_sequential(std::vector<NodeId>{0, 6, 2});
  EXPECT_DOUBLE_EQ(engine.trace().total_distance(TraceEventKind::kFindSent),
                   engine.costs().find_distance);
  EXPECT_DOUBLE_EQ(engine.trace().total_distance(TraceEventKind::kTokenSent),
                   engine.costs().token_distance);
}

TEST(Trace, ForRequestFollowsOneFindChain) {
  const auto g = arvy::graph::make_path(5);
  SimEngine engine = traced_engine(g, chain_config(5));
  engine.run_sequential(std::vector<NodeId>{0, 2});
  const auto chain = engine.trace().for_request(1);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.front().kind, TraceEventKind::kRequest);
  for (const auto& event : chain) {
    EXPECT_EQ(event.request, 1u);
  }
  // The find by node 0 walks 0->1->2->3->4: 4 sent hops.
  std::size_t sent = 0;
  for (const auto& event : chain) {
    if (event.kind == TraceEventKind::kFindSent) ++sent;
  }
  EXPECT_EQ(sent, 4u);
}

TEST(Trace, FindReceiveRecordsNewParent) {
  const auto g = arvy::graph::make_path(4);
  SimEngine engine = traced_engine(g, chain_config(4));
  engine.run_sequential(std::vector<NodeId>{0});
  bool saw_receive = false;
  for (const auto& event : engine.trace().events()) {
    if (event.kind == TraceEventKind::kFindReceived) {
      saw_receive = true;
      // Arrow: the receiver re-points at the hop's sender.
      EXPECT_EQ(event.new_parent, event.from);
    }
  }
  EXPECT_TRUE(saw_receive);
}

TEST(Trace, PrintProducesOneLinePerEvent) {
  const auto g = arvy::graph::make_path(3);
  SimEngine engine = traced_engine(g, chain_config(3));
  engine.run_sequential(std::vector<NodeId>{0});
  std::ostringstream os;
  engine.trace().print(os);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, engine.trace().size());
  EXPECT_NE(text.find("request"), std::string::npos);
  EXPECT_NE(text.find("token-recv"), std::string::npos);
  EXPECT_NE(text.find("find-sent"), std::string::npos);
}

TEST(Trace, EventKindNamesAreDistinct) {
  EXPECT_STRNE(trace_event_kind_name(TraceEventKind::kRequest),
               trace_event_kind_name(TraceEventKind::kFindSent));
  EXPECT_STRNE(trace_event_kind_name(TraceEventKind::kTokenSent),
               trace_event_kind_name(TraceEventKind::kTokenReceived));
}

TEST(Trace, ClearEmptiesTheLog) {
  const auto g = arvy::graph::make_path(3);
  SimEngine engine = traced_engine(g, chain_config(3));
  engine.run_sequential(std::vector<NodeId>{0});
  EXPECT_GT(engine.trace().size(), 0u);
  // clear() is on the recorder; engines expose it read-only, so exercise a
  // standalone recorder here.
  TraceRecorder recorder;
  recorder.record({});
  EXPECT_EQ(recorder.size(), 1u);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

}  // namespace
