// Tests for submit_queued: §3's "one fell swoop" remark - further requests
// from a node with an outstanding request wait locally and are satisfied
// together when the token arrives.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/liveness.hpp"

namespace {

using namespace arvy::proto;
using arvy::graph::NodeId;

SimEngine make_engine(const arvy::graph::Graph& g, const InitialConfig& init,
                      arvy::sim::Discipline d = arvy::sim::Discipline::kTimed) {
  auto policy = make_policy(PolicyKind::kArrow);
  SimEngine::Options options;
  options.discipline = d;
  return SimEngine(g, init, *policy, std::move(options));
}

TEST(Queueing, FallsBackToSubmitWhenIdle) {
  const auto g = arvy::graph::make_path(4);
  SimEngine engine = make_engine(g, chain_config(4));
  const RequestId id = engine.submit_queued(0);
  EXPECT_EQ(id, 1u);
  engine.run_until_idle();
  EXPECT_TRUE(engine.requests()[0].satisfied_at.has_value());
}

TEST(Queueing, SecondRequestWaitsAndBothSatisfiedTogether) {
  const auto g = arvy::graph::make_path(5);
  SimEngine engine = make_engine(g, chain_config(5));
  const RequestId first = engine.submit_queued(0);
  const RequestId second = engine.submit_queued(0);  // queued locally
  EXPECT_EQ(second, first + 1);
  // Queueing sends no extra traffic.
  EXPECT_EQ(engine.costs().find_messages, 1u);
  engine.run_until_idle();
  const auto& records = engine.requests();
  ASSERT_EQ(records.size(), 2u);
  ASSERT_TRUE(records[0].satisfied_at.has_value());
  ASSERT_TRUE(records[1].satisfied_at.has_value());
  // One fell swoop: the same token visit satisfies both, at the same time,
  // in submission order.
  EXPECT_DOUBLE_EQ(*records[0].satisfied_at, *records[1].satisfied_at);
  EXPECT_EQ(records[0].satisfaction_index + 1, records[1].satisfaction_index);
  const auto audit = arvy::verify::audit_liveness(engine);
  EXPECT_TRUE(audit.ok) << audit.detail;
}

TEST(Queueing, DeepQueueDrainsInOneVisit) {
  const auto g = arvy::graph::make_path(6);
  SimEngine engine = make_engine(g, chain_config(6));
  engine.submit_queued(2);
  for (int i = 0; i < 4; ++i) engine.submit_queued(2);
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  EXPECT_EQ(engine.requests().size(), 5u);
  // The token travelled to node 2 exactly once.
  EXPECT_EQ(engine.costs().token_messages, 1u);
}

TEST(Queueing, QueuedAtHolderSatisfiedImmediately) {
  const auto g = arvy::graph::make_path(4);
  SimEngine engine = make_engine(g, chain_config(4));
  const RequestId id = engine.submit_queued(3);  // node 3 holds the token
  EXPECT_TRUE(engine.requests()[id - 1].satisfied_at.has_value());
  EXPECT_DOUBLE_EQ(engine.costs().total_distance(), 0.0);
}

TEST(Queueing, MixedTrafficStaysLive) {
  const auto g = arvy::graph::make_ring(8);
  auto policy = make_policy(PolicyKind::kIvy);
  SimEngine::Options options;
  options.discipline = arvy::sim::Discipline::kRandom;
  options.seed = 9;
  SimEngine engine(g, ring_bridge_config(8), *policy, std::move(options));
  arvy::support::Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    engine.submit_queued(static_cast<NodeId>(rng.next_below(8)));
    if (rng.next_bool(0.6)) engine.step();
  }
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  const auto audit = arvy::verify::audit_liveness(engine);
  // Queued duplicates make per-node requests *overlap* by design; the audit
  // checks overlap only via satisfied ordering, which queueing preserves
  // (everything satisfied at the same token visit).
  EXPECT_TRUE(audit.ok) << audit.detail;
}

}  // namespace
