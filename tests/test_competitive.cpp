// Experiment E3/E4 at test scale: Theorem 6/7's constant competitive ratio
// of Arvy + bridge on rings, measured against the offline optimum.
#include <gtest/gtest.h>

#include "analysis/competitive.hpp"
#include "analysis/opt.hpp"
#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

// Theorem 6's bound is ARVY <= 5 * OPT + c with a small additive constant
// (the initial bridge's coins); on finite sequences we allow that slack.
bool within_theorem_bound(double cost, double opt) {
  return cost <= 5.0 * opt + 2.0 + 1e-9;
}

TEST(RatioReport, FieldsAreConsistent) {
  const auto g = graph::make_ring(8);
  auto policy = proto::make_policy(proto::PolicyKind::kBridge);
  const std::vector<NodeId> seq{0, 4, 1, 6};
  const auto report = analysis::measure_sequential(
      g, proto::ring_bridge_config(8), *policy, seq);
  EXPECT_EQ(report.policy, "bridge");
  EXPECT_EQ(report.node_count, 8u);
  EXPECT_EQ(report.request_count, 4u);
  EXPECT_GT(report.opt, 0.0);
  EXPECT_NEAR(report.ratio_find_only, report.find_cost / report.opt, 1e-12);
  EXPECT_NEAR(report.ratio_total,
              (report.find_cost + report.token_cost) / report.opt, 1e-12);
}

TEST(Theorem6, BridgeWithinBoundOnRandomSequences) {
  support::Rng rng(17);
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const auto g = graph::make_ring(n);
    for (int trial = 0; trial < 5; ++trial) {
      const auto seq = workload::uniform_sequence(n, 40, rng);
      auto policy = proto::make_policy(proto::PolicyKind::kBridge);
      const auto report = analysis::measure_sequential(
          g, proto::ring_bridge_config(n), *policy, seq);
      EXPECT_TRUE(within_theorem_bound(report.find_cost, report.opt))
          << "n=" << n << " trial=" << trial
          << " ratio=" << report.ratio_find_only;
    }
  }
}

TEST(Theorem6, BridgeWithinBoundOnAdversarialAlternation) {
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const auto g = graph::make_ring(n);
    const auto seq =
        workload::alternating_sequence(0, static_cast<NodeId>(n - 1), 30);
    auto policy = proto::make_policy(proto::PolicyKind::kBridge);
    const auto report = analysis::measure_sequential(
        g, proto::ring_bridge_config(n), *policy, seq);
    EXPECT_TRUE(within_theorem_bound(report.find_cost, report.opt))
        << "n=" << n << " ratio=" << report.ratio_find_only;
  }
}

TEST(Theorem6, BridgeRatioStaysFlatAsNGrows) {
  // The measured ratio must not trend upward with n (constant
  // competitiveness), in contrast to Arrow/Ivy's linear growth.
  support::Rng rng(23);
  std::vector<double> ratios;
  for (std::size_t n : {16u, 64u, 256u}) {
    const auto g = graph::make_ring(n);
    const auto seq = workload::uniform_sequence(n, 60, rng);
    auto policy = proto::make_policy(proto::PolicyKind::kBridge);
    const auto report = analysis::measure_sequential(
        g, proto::ring_bridge_config(n), *policy, seq);
    ratios.push_back(report.ratio_find_only);
  }
  EXPECT_LT(ratios.back(), 6.0);
  EXPECT_LT(ratios.back(), ratios.front() * 3.0);
}

TEST(Theorem7, BridgeWithinBoundOnWeightedRings) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    support::Rng rng(seed);
    const std::size_t n = 17;  // odd on purpose: Theorem 7 has no parity need
    const auto g = graph::make_weighted_ring(n, rng, 0.3, 4.0);
    const auto init = proto::weighted_ring_bridge_config(g);
    const auto seq = workload::uniform_sequence(n, 50, rng);
    auto policy = proto::make_policy(proto::PolicyKind::kBridge);
    const auto report = analysis::measure_sequential(g, init, *policy, seq);
    // Weighted slack constant: 2 coins per unit of initial bridge length.
    EXPECT_LE(report.find_cost, 5.0 * report.opt + 2.0 * g.total_weight())
        << "seed=" << seed << " ratio=" << report.ratio_find_only;
  }
}

TEST(Opt, SequentialOptSumsConsecutiveDistances) {
  const auto g = graph::make_ring(10);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> seq{3, 8, 8, 1};
  // 0->3: 3, 3->8: 5, 8->8: 0, 8->1: 3.
  EXPECT_DOUBLE_EQ(analysis::opt_sequential(oracle, 0, seq), 11.0);
}

TEST(Opt, EmptySequenceIsFree) {
  const auto g = graph::make_path(4);
  const graph::DistanceOracle oracle(g);
  EXPECT_DOUBLE_EQ(analysis::opt_sequential(oracle, 2, {}), 0.0);
}

TEST(Opt, BurstLowerBoundIsMetricMst) {
  const auto g = graph::make_path(10);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> requesters{0, 9, 5};
  // Terminals {2, 0, 9, 5}: path metric MST = 2 + 3 + 4 = 9.
  EXPECT_DOUBLE_EQ(analysis::opt_burst_lower_bound(oracle, 2, requesters),
                   9.0);
}

TEST(Opt, BurstLowerBoundDedupsTerminals) {
  const auto g = graph::make_path(6);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> requesters{3, 3, 3};
  EXPECT_DOUBLE_EQ(analysis::opt_burst_lower_bound(oracle, 0, requesters),
                   3.0);
}

TEST(OptIsALowerBoundForEveryPolicy, OnSmallInstances) {
  // No protocol can beat opt_sequential: spot-check every bundled policy on
  // a few random workloads (find + token >= ... actually even find-only
  // cannot beat OPT since the find must reach the token's location region;
  // we assert the weaker, certainly-sound bound on total cost).
  support::Rng rng(31);
  const auto g = graph::make_ring(12);
  for (proto::PolicyKind kind : proto::all_policy_kinds()) {
    const auto seq = workload::uniform_sequence(12, 20, rng);
    const auto init = kind == proto::PolicyKind::kBridge
                          ? proto::ring_bridge_config(12)
                          : proto::from_tree(graph::bfs_tree(g, 0));
    auto policy = proto::make_policy(kind, 2);
    const auto report = analysis::measure_sequential(g, init, *policy, seq, 7);
    EXPECT_GE(report.find_cost + report.token_cost, report.opt)
        << policy_kind_name(kind);
  }
}

}  // namespace
