// Unit tests for rooted spanning trees, stretch, MST, and metric summaries.
#include <gtest/gtest.h>

#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/tree_metrics.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::graph;

TEST(RootedTree, BfsTreeOnGridIsValid) {
  const Graph g = make_grid(4, 4);
  const RootedTree t = bfs_tree(g, 5);
  EXPECT_TRUE(t.is_valid());
  EXPECT_EQ(t.root, 5u);
  EXPECT_EQ(t.parent[5], 5u);
}

TEST(RootedTree, DepthsMatchBfsHops) {
  const Graph g = make_grid(3, 5);
  const RootedTree t = bfs_tree(g, 0);
  const auto depth = t.depths();
  const auto hops = bfs_hops(g, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(depth[v], hops[v]);
  }
}

TEST(RootedTree, TreeDistanceOnPath) {
  const Graph g = make_path(7);
  const RootedTree t = bfs_tree(g, 3);
  EXPECT_DOUBLE_EQ(t.tree_distance(0, 6), 6.0);
  EXPECT_DOUBLE_EQ(t.tree_distance(2, 4), 2.0);
  EXPECT_DOUBLE_EQ(t.tree_distance(5, 5), 0.0);
}

TEST(RootedTree, WeightedDepthSumsEdgeWeights) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const RootedTree t = shortest_path_tree(g, 0);
  EXPECT_DOUBLE_EQ(t.weighted_depth(2), 5.0);
}

TEST(RootedTree, AsGraphRoundTrip) {
  const Graph g = make_ring(8);
  const RootedTree t = bfs_tree(g, 0);
  const Graph tg = t.as_graph();
  EXPECT_EQ(tg.edge_count(), 7u);
  EXPECT_TRUE(tg.is_connected());
}

TEST(ShortestPathTree, DistancesMatchDijkstra) {
  arvy::support::Rng rng(3);
  const Graph g = make_connected_gnp(15, 0.3, rng);
  const RootedTree t = shortest_path_tree(g, 2);
  const auto sp = dijkstra(g, 2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(t.weighted_depth(v), sp.distance[v]);
  }
}

TEST(Mst, WeightOfKnownGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 0, 4.0);
  g.add_edge(0, 2, 5.0);
  const RootedTree t = minimum_spanning_tree(g, 0);
  EXPECT_TRUE(t.is_valid());
  double total = 0.0;
  for (NodeId v = 0; v < 4; ++v) total += t.parent_edge_weight[v];
  EXPECT_DOUBLE_EQ(total, 6.0);  // edges 1 + 2 + 3
}

TEST(MetricMst, WeightOverTerminals) {
  const Graph g = make_path(10);
  const DistanceOracle oracle(g);
  // Terminals 0, 5, 9 on a path: MST = 5 + 4.
  const double w = metric_mst_weight({0, 5, 9}, oracle);
  EXPECT_DOUBLE_EQ(w, 9.0);
}

TEST(MetricMst, SingleTerminalIsFree) {
  const Graph g = make_path(4);
  const DistanceOracle oracle(g);
  EXPECT_DOUBLE_EQ(metric_mst_weight({2}, oracle), 0.0);
}

TEST(RingPathTree, DropsWrapEdgeAndOrients) {
  const Graph g = make_ring(8);
  const RootedTree t = ring_path_tree(g, 3);
  EXPECT_TRUE(t.is_valid());
  EXPECT_EQ(t.parent[2], 3u);
  EXPECT_EQ(t.parent[4], 3u);
  EXPECT_EQ(t.parent[0], 1u);
  EXPECT_EQ(t.parent[7], 6u);
  // Tree distance between the path ends is n-1, graph distance is 1.
  EXPECT_DOUBLE_EQ(t.tree_distance(0, 7), 7.0);
}

TEST(Stretch, RingPathTreeHasStretchNMinusOne) {
  const Graph g = make_ring(10);
  const RootedTree t = ring_path_tree(g, 5);
  const StretchReport report = max_stretch_pair(g, t);
  EXPECT_DOUBLE_EQ(report.max_stretch, 9.0);
  // The attaining pair is the two path ends.
  EXPECT_EQ(std::min(report.a, report.b), 0u);
  EXPECT_EQ(std::max(report.a, report.b), 9u);
}

TEST(Stretch, TreeOnItselfHasStretchOne) {
  arvy::support::Rng rng(5);
  const Graph g = make_random_tree(12, rng);
  const RootedTree t = bfs_tree(g, 0);
  const StretchReport report = max_stretch_pair(g, t);
  EXPECT_DOUBLE_EQ(report.max_stretch, 1.0);
}

TEST(Metrics, RingSummary) {
  const Graph g = make_ring(12);
  const MetricSummary s = metric_summary(g);
  EXPECT_DOUBLE_EQ(s.diameter, 6.0);
  EXPECT_DOUBLE_EQ(s.radius, 6.0);  // vertex-transitive
}

TEST(Metrics, PathCenterIsMiddle) {
  const Graph g = make_path(9);
  const MetricSummary s = metric_summary(g);
  EXPECT_DOUBLE_EQ(s.diameter, 8.0);
  EXPECT_DOUBLE_EQ(s.radius, 4.0);
  EXPECT_EQ(s.center, 4u);
}

TEST(Metrics, EccentricitiesOfStar) {
  const Graph g = make_star(6);
  const auto ecc = eccentricities(g);
  EXPECT_DOUBLE_EQ(ecc[0], 1.0);
  for (NodeId v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(ecc[v], 2.0);
}

}  // namespace
