// Integration tests for SimEngine: cost accounting, sequential and
// concurrent drivers, token tracking.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"

namespace {

using namespace arvy::proto;
using arvy::graph::make_path;
using arvy::graph::make_ring;

SimEngine make_engine(const arvy::graph::Graph& g, const InitialConfig& init,
                      PolicyKind kind, std::uint64_t seed = 1) {
  auto policy = make_policy(kind);
  SimEngine::Options options;
  options.seed = seed;
  return SimEngine(g, init, *policy, std::move(options));
}

TEST(Engine, SingleRequestOnPathCostsPathLength) {
  // Path 0-1-2-3-4, token at 4, request at 0: find travels 4 unit hops,
  // token returns over distance 4.
  const auto g = make_path(5);
  SimEngine engine = make_engine(g, chain_config(5), PolicyKind::kArrow);
  engine.submit(0);
  engine.run_until_idle();
  EXPECT_DOUBLE_EQ(engine.costs().find_distance, 4.0);
  EXPECT_DOUBLE_EQ(engine.costs().token_distance, 4.0);
  EXPECT_EQ(engine.costs().find_messages, 4u);
  EXPECT_EQ(engine.costs().token_messages, 1u);
  EXPECT_EQ(engine.token_holder(), std::optional<arvy::graph::NodeId>{0});
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
}

TEST(Engine, RequestAtHolderIsFreeAndImmediate) {
  const auto g = make_path(3);
  SimEngine engine = make_engine(g, chain_config(3), PolicyKind::kArrow);
  engine.submit(2);  // node 2 is the initial holder
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  EXPECT_DOUBLE_EQ(engine.costs().total_distance(), 0.0);
  EXPECT_TRUE(engine.bus().idle());
}

TEST(Engine, SequentialRunSatisfiesEveryRequestInOrder) {
  const auto g = make_ring(8);
  SimEngine engine = make_engine(g, ring_bridge_config(8), PolicyKind::kBridge);
  const std::vector<arvy::graph::NodeId> sequence{0, 6, 2, 7, 3};
  engine.run_sequential(sequence);
  ASSERT_EQ(engine.requests().size(), sequence.size());
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const RequestRecord& r = engine.requests()[i];
    EXPECT_TRUE(r.satisfied_at.has_value());
    EXPECT_EQ(r.satisfaction_index, i + 1);  // sequential order preserved
    EXPECT_EQ(r.node, sequence[i]);
  }
  EXPECT_EQ(engine.token_holder(), std::optional<arvy::graph::NodeId>{3});
}

TEST(Engine, ArrowOnPathKeepsCostSymmetric) {
  // Alternating requests across a 4-path under Arrow cost 3 (find) each.
  const auto g = make_path(4);
  SimEngine engine = make_engine(g, path_config(4, 3), PolicyKind::kArrow);
  const std::vector<arvy::graph::NodeId> sequence{0, 3, 0, 3};
  engine.run_sequential(sequence);
  EXPECT_DOUBLE_EQ(engine.costs().find_distance, 4 * 3.0);
  EXPECT_DOUBLE_EQ(engine.costs().token_distance, 4 * 3.0);
}

TEST(Engine, MaxVisitedLengthTracksLongestFindPath) {
  const auto g = make_path(6);
  SimEngine engine = make_engine(g, chain_config(6), PolicyKind::kArrow);
  engine.run_sequential(std::vector<arvy::graph::NodeId>{0});
  // The find visits 0,1,2,3,4 before reaching the root 5.
  EXPECT_EQ(engine.costs().max_visited_length, 5u);
}

TEST(Engine, ConcurrentTimedRequestsAllSatisfied) {
  const auto g = make_ring(10);
  SimEngine engine = make_engine(g, ring_bridge_config(10), PolicyKind::kIvy);
  std::vector<SimEngine::TimedRequest> requests{
      {1, 0.0}, {7, 0.5}, {3, 0.7}, {9, 2.0}};
  engine.run_concurrent(requests);
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  EXPECT_EQ(engine.requests().size(), 4u);
}

TEST(Engine, PostEventHookFiresPerEvent) {
  const auto g = make_path(4);
  SimEngine engine = make_engine(g, chain_config(4), PolicyKind::kArrow);
  std::size_t events = 0;
  engine.set_post_event_hook([&](const SimEngine&) { ++events; });
  engine.submit(0);
  engine.run_until_idle();
  // 1 submit + 3 find deliveries + 1 token delivery.
  EXPECT_EQ(events, 5u);
}

TEST(Engine, TokenHolderIsEmptyWhileInFlight) {
  const auto g = make_path(3);
  SimEngine engine = make_engine(g, chain_config(3), PolicyKind::kArrow);
  engine.submit(0);
  // Deliver the two find hops but not the token.
  engine.step();
  engine.step();
  EXPECT_FALSE(engine.token_holder().has_value());
  EXPECT_EQ(engine.bus().in_flight_count(), 1u);
  engine.run_until_idle();
  EXPECT_EQ(engine.token_holder(), std::optional<arvy::graph::NodeId>{0});
}

TEST(Engine, SeedChangesRandomDisciplineInterleaving) {
  const auto g = make_ring(8);
  auto run = [&](std::uint64_t seed) {
    auto policy = make_policy(PolicyKind::kIvy);
    SimEngine::Options options;
    options.discipline = arvy::sim::Discipline::kRandom;
    options.seed = seed;
    SimEngine engine(g, ring_bridge_config(8), *policy, std::move(options));
    for (arvy::graph::NodeId v : {0u, 5u, 2u, 7u}) engine.submit(v);
    engine.run_until_idle();
    EXPECT_EQ(engine.unsatisfied_count(), 0u);
    return engine.costs().total_distance();
  };
  // All seeds satisfy everything; interleavings (and thus costs) may differ.
  const double a = run(1);
  const double b = run(2);
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
}

TEST(Engine, UnsatisfiedCountReflectsInFlightRequests) {
  const auto g = make_path(4);
  SimEngine engine = make_engine(g, chain_config(4), PolicyKind::kArrow);
  engine.submit(0);
  EXPECT_EQ(engine.unsatisfied_count(), 1u);
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
}

TEST(EngineDeath, MismatchedInitSizeAborts) {
  const auto g = make_path(4);
  auto policy = make_policy(PolicyKind::kArrow);
  EXPECT_DEATH(SimEngine(g, chain_config(5), *policy, {}), "node_count");
}

TEST(EngineDeath, InvalidInitialTreeAborts) {
  const auto g = make_path(3);
  InitialConfig bad;
  bad.root = 0;
  bad.parent = {0, 2, 1};
  bad.parent_edge_is_bridge = {false, false, false};
  auto policy = make_policy(PolicyKind::kArrow);
  EXPECT_DEATH(SimEngine(g, bad, *policy, {}), "rooted tree");
}

}  // namespace
