// Tests for Raymond's tree-based mutual exclusion (the §2 predecessor
// baseline): correctness under sequential and concurrent load, hop-by-hop
// token movement, queue batching, and bounded per-node state.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "raymond/raymond.hpp"
#include "support/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

raymond::RaymondEngine make_engine(const graph::Graph& g, NodeId root,
                                   sim::Discipline d = sim::Discipline::kTimed,
                                   std::uint64_t seed = 1) {
  raymond::RaymondEngine::Options options;
  options.discipline = d;
  options.seed = seed;
  return raymond::RaymondEngine(g, bfs_tree(g, root), std::move(options));
}

TEST(Raymond, InitialHolderIsTheRoot) {
  const auto g = graph::make_path(5);
  auto engine = make_engine(g, 2);
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{2});
}

TEST(Raymond, SingleRequestWalksTheTreePath) {
  // Path 0-1-2-3-4, root 4. A request at 0: REQUEST travels 4 hops up, the
  // token travels 4 hops down - 8 total distance, 4 messages each way.
  const auto g = graph::make_path(5);
  auto engine = make_engine(g, 4);
  engine.submit(0);
  engine.run_until_idle();
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{0});
  EXPECT_DOUBLE_EQ(engine.costs().request_distance, 4.0);
  EXPECT_DOUBLE_EQ(engine.costs().token_distance, 4.0);
  EXPECT_EQ(engine.costs().request_messages, 4u);
  EXPECT_EQ(engine.costs().token_messages, 4u);
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
}

TEST(Raymond, HolderPointersReRootToTheNewHolder) {
  const auto g = graph::make_path(4);
  auto engine = make_engine(g, 3);
  engine.submit(0);
  engine.run_until_idle();
  // Every node's holder chain must now lead to node 0.
  for (NodeId v = 0; v < 4; ++v) {
    NodeId u = v;
    int hops = 0;
    while (engine.node(u).holder != u) {
      u = engine.node(u).holder;
      ASSERT_LT(++hops, 5);
    }
    EXPECT_EQ(u, 0u);
  }
}

TEST(Raymond, RequestAtHolderIsImmediate) {
  const auto g = graph::make_path(3);
  auto engine = make_engine(g, 1);
  engine.submit(1);
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  EXPECT_DOUBLE_EQ(engine.costs().total_distance(), 0.0);
  EXPECT_TRUE(engine.bus().idle());
}

TEST(Raymond, SequentialSequenceAllSatisfiedInOrder) {
  const auto g = graph::make_grid(3, 3);
  auto engine = make_engine(g, 4);
  const std::vector<NodeId> sequence{0, 8, 2, 6, 4};
  engine.run_sequential(sequence);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_TRUE(engine.requests()[i].satisfied_at.has_value());
    EXPECT_EQ(engine.requests()[i].satisfaction_index, i + 1);
  }
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{4});
}

TEST(Raymond, ConcurrentBurstAllSatisfiedUnderAdversary) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = graph::make_ring(8);
    auto engine = make_engine(g, 0, sim::Discipline::kRandom, seed);
    for (NodeId v : {1u, 3u, 4u, 6u, 7u}) engine.submit(v);
    engine.run_until_idle();
    EXPECT_EQ(engine.unsatisfied_count(), 0u) << "seed " << seed;
    // Exactly one holder afterwards; nobody left asking.
    ASSERT_TRUE(engine.token_holder().has_value());
    for (NodeId v = 0; v < 8; ++v) {
      EXPECT_FALSE(engine.node(v).outstanding.has_value());
      EXPECT_TRUE(engine.node(v).request_queue.empty());
    }
  }
}

TEST(Raymond, QueueBatchingBoundsQueueDepth) {
  // All leaves of a star request at once: the hub's queue holds each
  // neighbour at most once - depth <= degree + 1.
  const auto g = graph::make_star(9);
  auto engine = make_engine(g, 0, sim::Discipline::kRandom, 3);
  for (NodeId v = 1; v < 9; ++v) engine.submit(v);
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  EXPECT_LE(engine.max_queue_depth(), 9u);
}

TEST(Raymond, SubtreeBatchingSavesRequestTraffic) {
  // Two deep requests in the same subtree: the second is absorbed by the
  // first's pending upstream REQUEST, so total request messages are fewer
  // than two full path lengths.
  const auto g = graph::make_path(7);
  auto engine = make_engine(g, 6, sim::Discipline::kLifo);
  engine.submit(0);
  engine.submit(1);
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  // Independent requests would need 6 + 5 = 11 REQUEST hops; batching must
  // beat that.
  EXPECT_LT(engine.costs().request_messages, 11u);
}

TEST(Raymond, SequentialCostMatchesArrowTreePath) {
  // Sequentially, both Raymond and Arrow walk the tree path; Raymond's
  // token retraces the path hop-by-hop, so request+token = 2 * tree dist.
  const auto g = graph::make_ring(10);
  const auto tree = bfs_tree(g, 0);
  raymond::RaymondEngine engine(g, tree, {});
  support::Rng rng(5);
  NodeId holder = 0;
  double expected = 0.0;
  const auto seq = workload::uniform_sequence(10, 15, rng);
  for (NodeId v : seq) {
    expected += 2.0 * tree.tree_distance(holder, v);
    holder = v;
  }
  engine.run_sequential(seq);
  EXPECT_DOUBLE_EQ(engine.costs().total_distance(), expected);
}

TEST(RaymondDeath, DuplicateOutstandingRequestAborts) {
  const auto g = graph::make_path(4);
  auto engine = make_engine(g, 3);
  engine.submit(0);
  EXPECT_DEATH(engine.submit(0), "duplicate");
}

}  // namespace
