// Deliberate `atomic` violations, one per failure mode the rule promises
// to catch. Linter input only - never compiled.
#include <atomic>
#include <cstdint>

namespace alpha {

// 1. No role annotation at all.
std::atomic<std::uint64_t> naked{0};

// 2. Role the [atomic] config never declared.
std::atomic<int> mystery{0};  // ARVY-ATOMIC(quantum)

// 3. Annotated counter misused: acquire load and implicit-seq_cst RMW are
// both outside the role's relaxed-only contract.
std::atomic<std::uint64_t> events{0};  // ARVY-ATOMIC(counter)

// 4. A fence order the config's fence list does not bless.
std::uint64_t drain() {
  std::atomic_thread_fence(std::memory_order_acquire);
  events.fetch_add(1);
  return events.load(std::memory_order_acquire);
}

}  // namespace alpha
