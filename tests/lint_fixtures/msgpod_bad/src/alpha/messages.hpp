// BAD: a message struct in a [msgpod] header with no POD static_assert
// and no ALLOW.
#pragma once
#include <string>

namespace fixture::alpha {

struct LooseMsg {
  std::string label;  // silently non-trivial, and nobody asserted anything
};

}  // namespace fixture::alpha
