// Audit fixture, passing side: the hot function is allocation-free, and its
// only escape hatch is a cold-annotated slow path. [[gnu::cold]] lands the
// helper in .text.unlikely.*, which the audit deliberately does not descend
// into - a declared escape hatch is the contract, not a finding. This pins
// that skip: remove the cold attribute and the fixture fails.
#include <cstdlib>

#define FIXTURE_HOT [[gnu::hot]]
#define FIXTURE_COLD [[gnu::cold]] [[gnu::noinline]]

void* sink;

FIXTURE_COLD void overflow(std::size_t n) { sink = std::malloc(n); }

FIXTURE_HOT std::size_t hot_sum(const std::size_t* v, std::size_t n) {
  std::size_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  if (acc == 0xdeadbeef) overflow(n);  // declared slow path
  return acc;
}
