// BAD: alpha is the bottom layer yet reaches up into beta.
#include "beta/api.hpp"

namespace fixture::alpha {
int base() { return fixture::beta::answer(); }
}  // namespace fixture::alpha
