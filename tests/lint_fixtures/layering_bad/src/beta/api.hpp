#pragma once

namespace fixture::beta {
inline int answer() { return 42; }
}  // namespace fixture::beta
