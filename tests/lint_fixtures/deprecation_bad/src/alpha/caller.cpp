// BAD: reaches for the deprecated engine() escape hatch without an ALLOW.
namespace fixture::alpha {

struct Directory {
  int engine_state = 0;
  // ARVY-LINT-ALLOW(deprecation): definition site
  int engine() const { return engine_state; }
};

int peek(const Directory& d) {
  return d.engine();  // un-ALLOWed call site: must trip the linter
}

}  // namespace fixture::alpha
