// BAD: reaches for the removed engine() escape hatch. The rule is
// unsuppressable, so this corpus pins three findings: the ALLOW comment
// below (stale grant), the definition, and the un-ALLOWed call site.
namespace fixture::alpha {

struct Directory {
  int engine_state = 0;
  // ARVY-LINT-ALLOW(deprecation): stale grant - must itself be flagged
  int engine() const { return engine_state; }
};

int peek(const Directory& d) {
  return d.engine();  // call site: must trip the linter
}

}  // namespace fixture::alpha
