// BAD: raw std synchronisation primitives outside the lock_rank layer.
#include <condition_variable>
#include <mutex>

namespace fixture::alpha {
struct Worker {
  std::mutex mutex;                // should be RankedMutex
  std::condition_variable ready;   // should go through lock_rank
};
}  // namespace fixture::alpha
