// Clean instance of rule `atomic`: every std::atomic carries an
// ARVY-ATOMIC(role) and every operation spells an order the role's
// contract (this fixture's layers.toml [atomic] section) declares.
#pragma once

#include <atomic>
#include <cstdint>

namespace beta {

class Stats {
 public:
  void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

  void publish() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    ready_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool ready() const {
    return ready_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> hits_{0};  // ARVY-ATOMIC(counter)
  // Annotation on the line above the declaration also binds:
  // ARVY-ATOMIC(flag)
  std::atomic<bool> ready_{false};
};

}  // namespace beta
