// Passing msgpod case: the message struct carries its POD static_assert,
// and the rich exception idiom is exercised through an ALLOW.
#pragma once
#include <type_traits>
#include <vector>

#include "alpha/ranked_lock.hpp"

namespace fixture::beta {

struct WireMsg {
  int payload = 0;
};
static_assert(std::is_trivially_copyable_v<WireMsg>);

// ARVY-LINT-ALLOW(msgpod): rich sim-side type; WireMsg is its POD face
struct RichMsg {
  std::vector<int> history;
};

}  // namespace fixture::beta
