// Passing hotpath + deprecation + layering cases: a clean ARVY_HOT body
// (banned-construct names in comments and strings must NOT fire - "new",
// "throw", std::mutex), a downward include, and an ALLOWed engine() call.
#include "alpha/ranked_lock.hpp"
#include "beta/messages.hpp"

#define ARVY_HOT [[gnu::hot]]

namespace fixture::beta {

struct Engine {
  int engine_state = 0;
  // ARVY-LINT-ALLOW(deprecation): fixture's sanctioned escape-hatch use
  int engine() const { return engine_state; }
};

// A hot accumulator: indexing and arithmetic only. The string below spells
// banned construct names; the stripper must keep them from firing.
ARVY_HOT int sum(const int* values, int count) {
  const char* misleading = "new throw push_back std::mutex";
  int total = misleading[0] == 'n' ? 0 : 1;
  for (int i = 0; i < count; ++i) total += values[i];
  return total;
}

int drive(const Engine& e) {
  // ARVY-LINT-ALLOW(deprecation): fixture's sanctioned escape-hatch use
  return e.engine();
}

}  // namespace fixture::beta
