// Passing hotpath + deprecation + layering cases: a clean ARVY_HOT body
// (banned-construct names in comments and strings must NOT fire - "new",
// "throw", std::mutex), a downward include, and an engine-free accessor
// (the deprecation rule allows no grants, so clean code simply has none).
#include "alpha/ranked_lock.hpp"
#include "beta/messages.hpp"

#define ARVY_HOT [[gnu::hot]]

namespace fixture::beta {

struct Engine {
  int engine_state = 0;
  // Named state(), not engine(): the removed escape hatch's spelling is an
  // unsuppressable error even for unrelated types.
  int state() const { return engine_state; }
};

// A hot accumulator: indexing and arithmetic only. The string below spells
// banned construct names; the stripper must keep them from firing.
ARVY_HOT int sum(const int* values, int count) {
  const char* misleading = "new throw push_back std::mutex";
  int total = misleading[0] == 'n' ? 0 : 1;
  for (int i = 0; i < count; ++i) total += values[i];
  return total;
}

int drive(const Engine& e) { return e.state(); }

}  // namespace fixture::beta
