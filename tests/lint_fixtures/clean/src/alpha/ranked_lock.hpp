// Allowlisted in [lock]: the one place raw std types may be named - the
// fixture analogue of src/support/lock_rank.hpp.
#pragma once
#include <mutex>

namespace fixture::alpha {
class RankedMutex {
 public:
  void lock() { mutex_.lock(); }
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;  // raw, but this file is allowlisted
};
}  // namespace fixture::alpha
