// Audit fixture: a hot function whose allocation hides one call level down.
// The lexical hotpath rule cannot see helper()'s malloc from hot_entry's
// body; the binary audit walks the relocation graph from the .text.hot.*
// root and must reject both paths below.
//
// Compiled at test time (g++/clang++ -O2 -ffunction-sections -c); the
// attributes are spelled directly so the fixture stands alone.
#include <cstdlib>

#define FIXTURE_HOT [[gnu::hot]]

namespace {

// noinline keeps the call edge in the object code; without it -O2 would
// fold the allocation straight into the callers.
[[gnu::noinline]] void* helper(std::size_t n) { return std::malloc(n); }

}  // namespace

void* sink;

// Path 1: hot -> helper -> malloc (one hop, exercises the BFS).
FIXTURE_HOT void* hot_indirect(std::size_t n) { return helper(n); }

// Path 2: hot -> operator new (direct relocation from the hot section).
FIXTURE_HOT void* hot_direct(std::size_t n) {
  sink = ::operator new(n);
  return sink;
}
