// BAD: a ring-mailbox enqueue that boxes every message on the heap. The
// real RingMailbox::try_push writes the wire frame into a preallocated
// slab; this fixture pins that the hotpath rule rejects the allocating
// version (new + vector growth) if anyone "simplifies" it back.
#include <cstddef>
#include <cstdint>
#include <vector>

#define ARVY_HOT [[gnu::hot]]

namespace fixture::alpha {

struct Frame {
  std::uint64_t dedup;
  std::vector<std::uint32_t> visited;
};

struct BoxedRing {
  std::vector<Frame*> slots;
  std::size_t tail = 0;
};

ARVY_HOT bool try_push(BoxedRing& ring, std::uint64_t dedup) {
  Frame* boxed = new Frame{dedup, {}};
  ring.slots.push_back(boxed);
  ++ring.tail;
  return true;
}

}  // namespace fixture::alpha
