// BAD: this ARVY_HOT body allocates, locks, throws, and logs.
#include <mutex>
#include <stdexcept>
#include <vector>

#define ARVY_HOT [[gnu::hot]]

namespace fixture::alpha {

std::mutex gate;

ARVY_HOT int process(std::vector<int>& values, int next) {
  std::lock_guard<std::mutex> hold(gate);
  values.push_back(next);
  if (next < 0) throw std::runtime_error("negative");
  printf("processed %d\n", next);
  return next;
}

}  // namespace fixture::alpha
