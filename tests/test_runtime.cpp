// Experiment E13 at test scale: the threaded actor runtime - the same
// protocol core under real OS-scheduler asynchrony.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "runtime/actor_system.hpp"
#include "runtime/live_directory.hpp"
#include "runtime/mailbox.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

// Timed waits so a liveness regression fails the test instead of hanging
// ctest; the ceiling is generous because sanitizer builds run slowly.
constexpr std::chrono::milliseconds kWait{120000};

TEST(Mailbox, PushPopFifoSingleThread) {
  runtime::Mailbox<int> box;
  box.push(1);
  box.push(2);
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.pop(), std::optional<int>{1});
  EXPECT_EQ(box.pop(), std::optional<int>{2});
}

TEST(Mailbox, CloseDrainsThenSignalsEnd) {
  runtime::Mailbox<int> box;
  box.push(7);
  box.close();
  EXPECT_EQ(box.pop(), std::optional<int>{7});
  EXPECT_EQ(box.pop(), std::nullopt);
}

TEST(Mailbox, CrossThreadHandoff) {
  runtime::Mailbox<int> box;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) box.push(i);
    box.close();
  });
  int count = 0;
  while (box.pop().has_value()) ++count;
  producer.join();
  EXPECT_EQ(count, 100);
}

TEST(ActorSystem, SingleRequestMovesToken) {
  const auto g = graph::make_ring(6);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  runtime::ActorSystem system(g, proto::from_tree(graph::bfs_tree(g, 0)),
                              *policy);
  system.request(3);
  ASSERT_TRUE(system.wait_for_satisfied_for(1, kWait));
  system.shutdown();
  EXPECT_TRUE(system.node(3).holds_token());
  EXPECT_GT(system.total_cost(), 0.0);
}

TEST(ActorSystem, SequentialRoundsAllSatisfied) {
  const auto g = graph::make_grid(3, 3);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  runtime::ActorOptions options;
  options.seed = 3;
  runtime::ActorSystem system(g, proto::from_tree(graph::bfs_tree(g, 4)),
                              *policy, options);
  std::uint64_t satisfied_target = 0;
  support::Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    const auto v = static_cast<NodeId>(rng.next_below(9));
    system.request(v);
    ASSERT_TRUE(system.wait_for_satisfied_for(++satisfied_target, kWait));
  }
  system.shutdown();
  EXPECT_EQ(system.satisfied_count(), 10u);
  EXPECT_EQ(system.submitted_count(), 10u);
}

TEST(ActorSystem, ConcurrentBurstWithJitterStaysCorrect) {
  // Distinct nodes fire concurrently; sender-side jitter roughens the
  // interleaving. Every request must be satisfied and afterwards the parent
  // pointers must form a valid rooted tree with exactly one token.
  const auto g = graph::make_ring(8);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  runtime::ActorOptions options;
  options.seed = 11;
  options.max_jitter = std::chrono::microseconds(150);
  runtime::ActorSystem system(g, proto::ring_bridge_config(8), *policy,
                              options);
  for (NodeId v : {0u, 1u, 2u, 5u, 6u, 7u}) system.request(v);
  ASSERT_TRUE(system.wait_for_satisfied_for(6, kWait));
  system.shutdown();

  std::size_t holders = 0;
  for (NodeId v = 0; v < 8; ++v) {
    if (system.node(v).holds_token()) ++holders;
    EXPECT_FALSE(system.node(v).outstanding().has_value());
  }
  EXPECT_EQ(holders, 1u);
  // Parent pointers form a tree rooted at the holder.
  for (NodeId v = 0; v < 8; ++v) {
    NodeId u = v;
    int hops = 0;
    while (system.node(u).parent() != u) {
      u = system.node(u).parent();
      ASSERT_LT(++hops, 9) << "parent cycle";
    }
    EXPECT_TRUE(system.node(u).holds_token());
  }
}

TEST(ActorSystem, BridgePolicyStressRounds) {
  const auto g = graph::make_ring(10);
  auto policy = proto::make_policy(proto::PolicyKind::kBridge);
  runtime::ActorOptions options;
  options.seed = 17;
  options.max_jitter = std::chrono::microseconds(50);
  runtime::ActorSystem system(g, proto::ring_bridge_config(10), *policy,
                              options);
  std::uint64_t expected = 0;
  support::Rng rng(23);
  for (int round = 0; round < 6; ++round) {
    std::set<NodeId> requesters;
    while (requesters.size() < 4) {
      requesters.insert(static_cast<NodeId>(rng.next_below(10)));
    }
    for (NodeId v : requesters) system.request(v);
    expected += requesters.size();
    ASSERT_TRUE(system.wait_for_satisfied_for(expected, kWait));
  }
  system.shutdown();
  EXPECT_EQ(system.satisfied_count(), expected);
  // At most one bridge flag survives.
  std::size_t bridges = 0;
  for (NodeId v = 0; v < 10; ++v) {
    bridges += system.node(v).parent_edge_is_bridge() ? 1u : 0u;
  }
  EXPECT_LE(bridges, 1u);
}

TEST(ActorSystem, FindCostIsDistanceWeighted) {
  // Chain of 5, request from the far end: find traffic costs exactly 4
  // regardless of thread scheduling (the path is deterministic).
  const auto g = graph::make_path(5);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  runtime::ActorSystem system(g, proto::chain_config(5), *policy);
  system.request(0);
  ASSERT_TRUE(system.wait_for_satisfied_for(1, kWait));
  system.shutdown();
  EXPECT_DOUBLE_EQ(system.find_cost(), 4.0);
  EXPECT_DOUBLE_EQ(system.total_cost(), 8.0);  // + token distance 4
}

TEST(ActorSystem, ReorderedMailboxesStayCorrect) {
  // Random mailbox consumption order = full asynchrony: no channel FIFO at
  // all. Everything must still be satisfied (Theorem 5's only assumption is
  // eventual delivery).
  const auto g = graph::make_ring(8);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  runtime::ActorOptions options;
  options.seed = 23;
  options.reorder_mailboxes = true;
  runtime::ActorSystem system(g, proto::ring_bridge_config(8), *policy,
                              options);
  std::uint64_t expected = 0;
  support::Rng rng(29);
  for (int round = 0; round < 5; ++round) {
    std::set<NodeId> requesters;
    while (requesters.size() < 3) {
      requesters.insert(static_cast<NodeId>(rng.next_below(8)));
    }
    for (NodeId v : requesters) system.request(v);
    expected += requesters.size();
    ASSERT_TRUE(system.wait_for_satisfied_for(expected, kWait));
  }
  system.shutdown();
  EXPECT_EQ(system.satisfied_count(), expected);
  std::size_t holders = 0;
  for (NodeId v = 0; v < 8; ++v) {
    holders += system.node(v).holds_token() ? 1u : 0u;
  }
  EXPECT_EQ(holders, 1u);
}

TEST(ActorSystem, WorkerPoolConfigsStayCorrect) {
  // The ring runtime's knobs must not change outcomes, only schedules:
  // sweep worker-pool sizes against batch sizes, including batch 1 (no
  // amortization) and a deliberately tiny ring that forces the overflow
  // valve open under the storm.
  const auto g = graph::make_ring(10);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  support::Rng rng(17);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
      runtime::ActorOptions options;
      options.seed = 41 + workers;
      options.workers = workers;
      options.batch_size = batch;
      options.ring_capacity = 4;  // tiny on purpose: exercise kFull spills
      runtime::ActorSystem system(g, proto::ring_bridge_config(10), *policy,
                                  options);
      EXPECT_EQ(system.worker_count(), workers);
      std::uint64_t expected = 0;
      for (int round = 0; round < 4; ++round) {
        std::set<NodeId> requesters;
        while (requesters.size() < 4) {
          requesters.insert(static_cast<NodeId>(rng.next_below(10)));
        }
        for (NodeId v : requesters) system.request(v);
        expected += requesters.size();
        ASSERT_TRUE(system.wait_for_satisfied_for(expected, kWait))
            << "workers=" << workers << " batch=" << batch;
      }
      system.shutdown();
      EXPECT_EQ(system.satisfied_count(), expected);
      std::size_t holders = 0;
      for (NodeId v = 0; v < 10; ++v) {
        holders += system.node(v).holds_token() ? 1u : 0u;
      }
      EXPECT_EQ(holders, 1u) << "workers=" << workers << " batch=" << batch;
    }
  }
}

TEST(LiveDirectory, SingleWorkerModeIsDeterministic) {
  // Reorder-semantics guard: with one worker, no jitter and a sequential
  // submission pattern, the threaded runtime has exactly one schedule. Two
  // identical runs must agree on every observable - final tree, costs,
  // message counts - so an accidental change to drain order or batch
  // semantics shows up as a diff here, not as a flaky stress test.
  const auto run_once = [] {
    const auto g = graph::make_ring(12);
    DirectoryOptions options;
    options.policy = proto::PolicyKind::kIvy;
    options.seed = 7;
    LiveOptions live;
    live.workers = 1;
    LiveDirectory dir(g, options, live);
    support::Rng rng(13);
    for (int i = 0; i < 30; ++i) {
      dir.acquire_and_wait(static_cast<NodeId>(rng.next_below(12)));
    }
    dir.shutdown();
    std::vector<NodeId> parents;
    for (NodeId v = 0; v < 12; ++v) parents.push_back(dir.node(v).parent());
    return std::make_tuple(parents, dir.cost_snapshot(),
                           dir.satisfied_count());
  };
  const auto [parents_a, costs_a, satisfied_a] = run_once();
  const auto [parents_b, costs_b, satisfied_b] = run_once();
  EXPECT_EQ(parents_a, parents_b);
  EXPECT_EQ(satisfied_a, satisfied_b);
  EXPECT_DOUBLE_EQ(costs_a.find_distance, costs_b.find_distance);
  EXPECT_DOUBLE_EQ(costs_a.token_distance, costs_b.token_distance);
  EXPECT_EQ(costs_a.find_messages, costs_b.find_messages);
  EXPECT_EQ(costs_a.token_messages, costs_b.token_messages);
}

TEST(ActorSystemDeath, InspectingLiveCoresAborts) {
  const auto g = graph::make_path(3);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  runtime::ActorSystem system(g, proto::chain_config(3), *policy);
  EXPECT_DEATH((void)system.node(0), "shutdown");
  system.shutdown();
}

}  // namespace
