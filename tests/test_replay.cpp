// Deterministic schedule record/replay: any adversarial execution can be
// captured as a delivery schedule and replayed bit-for-bit - the foundation
// for debugging concurrency findings (shrink a failing schedule, rerun it
// under a debugger, attach the invariant checker retroactively).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

struct RunResult {
  verify::Configuration final_config;
  double find_cost;
  double token_cost;
  std::vector<std::uint64_t> satisfaction_order;
  sim::Schedule schedule;
};

// Drives a fixed submission program under the given bus options.
RunResult run_program(proto::SimEngine::Options options) {
  const auto g = graph::make_ring(10);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine engine(g, proto::ring_bridge_config(10), *policy,
                          std::move(options));
  // Deterministic submission program with concurrency: three waves.
  engine.submit(0);
  engine.submit(5);
  engine.step();
  engine.submit(8);
  engine.step();
  engine.step();
  engine.submit(2);
  engine.run_until_idle();

  RunResult result{verify::capture(engine), engine.costs().find_distance,
                   engine.costs().token_distance, {},
                   engine.bus().schedule()};
  for (const auto& r : engine.requests()) {
    result.satisfaction_order.push_back(r.satisfaction_index);
  }
  return result;
}

TEST(Replay, ScriptedRunReproducesARecordedRandomRun) {
  proto::SimEngine::Options record;
  record.discipline = sim::Discipline::kRandom;
  record.seed = 42;
  record.record_schedule = true;
  const RunResult original = run_program(std::move(record));
  ASSERT_FALSE(original.schedule.empty());

  proto::SimEngine::Options replay;
  replay.discipline = sim::Discipline::kScripted;
  replay.script = original.schedule;
  const RunResult replayed = run_program(std::move(replay));

  EXPECT_EQ(replayed.final_config, original.final_config);
  EXPECT_DOUBLE_EQ(replayed.find_cost, original.find_cost);
  EXPECT_DOUBLE_EQ(replayed.token_cost, original.token_cost);
  EXPECT_EQ(replayed.satisfaction_order, original.satisfaction_order);
}

TEST(Replay, DifferentSeedsGiveDifferentSchedulesSameLiveness) {
  proto::SimEngine::Options a;
  a.discipline = sim::Discipline::kRandom;
  a.seed = 1;
  a.record_schedule = true;
  proto::SimEngine::Options b;
  b.discipline = sim::Discipline::kRandom;
  b.seed = 2;
  b.record_schedule = true;
  const RunResult ra = run_program(std::move(a));
  const RunResult rb = run_program(std::move(b));
  // Different interleavings may generate different traffic; both must drain
  // and keep the invariants regardless.
  EXPECT_FALSE(ra.schedule.empty());
  EXPECT_FALSE(rb.schedule.empty());
  EXPECT_TRUE(verify::check_all(ra.final_config).ok);
  EXPECT_TRUE(verify::check_all(rb.final_config).ok);
}

TEST(Replay, RecordingUnderEveryDisciplineRoundTrips) {
  for (sim::Discipline d : {sim::Discipline::kFifo, sim::Discipline::kLifo,
                            sim::Discipline::kTimed}) {
    proto::SimEngine::Options record;
    record.discipline = d;
    record.seed = 7;
    record.record_schedule = true;
    const RunResult original = run_program(std::move(record));

    proto::SimEngine::Options replay;
    replay.discipline = sim::Discipline::kScripted;
    replay.script = original.schedule;
    const RunResult replayed = run_program(std::move(replay));
    EXPECT_EQ(replayed.final_config, original.final_config)
        << sim::discipline_name(d);
  }
}

TEST(ReplayDeath, ScriptedWithoutScriptAborts) {
  const auto g = graph::make_path(4);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  proto::SimEngine::Options options;
  options.discipline = sim::Discipline::kScripted;
  EXPECT_DEATH(proto::SimEngine(g, proto::chain_config(4), *policy,
                                std::move(options)),
               "kScripted");
}

TEST(ReplayDeath, MismatchedScheduleAborts) {
  proto::SimEngine::Options record;
  record.discipline = sim::Discipline::kRandom;
  record.seed = 3;
  record.record_schedule = true;
  const RunResult original = run_program(std::move(record));

  // Corrupt the schedule: swap in an id that will not be pending.
  sim::Schedule bad = original.schedule;
  bad[0] = 9999;
  proto::SimEngine::Options replay;
  replay.discipline = sim::Discipline::kScripted;
  replay.script = bad;
  EXPECT_DEATH((void)run_program(std::move(replay)), "does not match");
}

}  // namespace
