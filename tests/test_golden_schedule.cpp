// Golden delivery schedules captured from the pre-arena MessageBus (the
// std::map-based pending set). The arena rewrite must be bit-identical for
// every discipline and seed: kRandom draws the same rng stream and picks the
// same index-in-send-order, so any divergence here is a semantic regression,
// not a tuning difference. If these ever need to change, that is a breaking
// change to replay compatibility and must be called out loudly.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "proto/directory.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "sim/bus.hpp"

namespace {

using namespace arvy;

struct Toy {
  int tag = 0;
};

std::vector<int> bus_random_order(std::uint64_t seed, int count) {
  sim::MessageBus<Toy>::Options o;
  o.discipline = sim::Discipline::kRandom;
  o.seed = seed;
  sim::MessageBus<Toy> bus(std::move(o));
  std::vector<int> seen;
  bus.set_handler([&](const sim::MessageBus<Toy>::InFlight& m) {
    seen.push_back(m.payload.tag);
  });
  for (int i = 0; i < count; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  return seen;
}

// Interleaves sends and deliveries so the pending set grows and shrinks:
// exercises index-in-send-order picks on a sparse arena window.
std::vector<int> bus_random_mixed(std::uint64_t seed) {
  sim::MessageBus<Toy>::Options o;
  o.discipline = sim::Discipline::kRandom;
  o.seed = seed;
  sim::MessageBus<Toy> bus(std::move(o));
  std::vector<int> seen;
  bus.set_handler([&](const sim::MessageBus<Toy>::InFlight& m) {
    seen.push_back(m.payload.tag);
  });
  int tag = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 4; ++i) bus.send(0, 1, {tag++});
    bus.step();
    bus.step();
  }
  bus.run_until_idle();
  return seen;
}

sim::Schedule engine_schedule(sim::Discipline d, std::uint64_t seed,
                              faults::FaultPlan faults = {},
                              faults::RetryPolicy retry = {}) {
  const auto g = graph::make_ring(10);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine::Options options;
  options.discipline = d;
  options.seed = seed;
  options.record_schedule = true;
  options.faults = std::move(faults);
  options.retry = retry;
  proto::SimEngine engine(g, proto::ring_bridge_config(10), *policy,
                          std::move(options));
  engine.submit(0);
  engine.submit(5);
  engine.step();
  engine.submit(8);
  engine.step();
  engine.step();
  engine.submit(2);
  engine.run_until_idle();
  return engine.bus().schedule();
}

TEST(GoldenSchedule, RandomDrainSeed99) {
  const std::vector<int> golden = {11, 18, 12, 27, 25, 5,  8,  1,  28, 19, 23,
                                   4,  3,  6,  15, 17, 9,  30, 7,  24, 16, 13,
                                   29, 21, 22, 0,  10, 14, 26, 2,  20, 31};
  EXPECT_EQ(bus_random_order(99, 32), golden);
}

TEST(GoldenSchedule, RandomDrainSeed5) {
  const std::vector<int> golden = {4, 10, 11, 13, 7, 12, 6, 14,
                                   2, 3,  15, 1,  5, 9,  8, 0};
  EXPECT_EQ(bus_random_order(5, 16), golden);
}

TEST(GoldenSchedule, RandomMixedTrafficSeed7) {
  const std::vector<int> golden = {2,  0,  7,  6,  11, 10, 1,  3,  12, 5, 17,
                                   20, 27, 25, 19, 22, 14, 18, 9,  8,  15, 28,
                                   26, 16, 29, 4,  13, 24, 21, 30, 23, 31};
  EXPECT_EQ(bus_random_mixed(7), golden);
}

TEST(GoldenSchedule, EngineRandomSeed42) {
  const sim::Schedule golden = {1, 3, 5, 7, 6, 8, 9, 4, 10, 11, 2, 12, 13, 14, 15};
  EXPECT_EQ(engine_schedule(sim::Discipline::kRandom, 42), golden);
}

TEST(GoldenSchedule, EngineFifoSeed7) {
  const sim::Schedule golden = {1, 2,  3,  4,  5,  6,  7, 8,
                                9, 10, 11, 12, 13, 14, 15};
  EXPECT_EQ(engine_schedule(sim::Discipline::kFifo, 7), golden);
}

TEST(GoldenSchedule, EngineLifoSeed7) {
  const sim::Schedule golden = {2, 4,  5,  7,  8, 9,  6, 10,
                                3, 11, 12, 1,  13, 14, 15};
  EXPECT_EQ(engine_schedule(sim::Discipline::kLifo, 7), golden);
}

TEST(GoldenSchedule, EngineTimedSeed7) {
  const sim::Schedule golden = {1, 2,  3,  4,  5,  6,  8, 7,
                                9, 10, 11, 12, 13, 14, 15};
  EXPECT_EQ(engine_schedule(sim::Discipline::kTimed, 7), golden);
}

TEST(GoldenSchedule, ZeroFaultPlanIsAStrictNoOp) {
  // The fault seam's no-op contract: passing an explicitly-constructed empty
  // FaultPlan (plus a retry policy, which is inert without a plan) must not
  // install a send filter, must not consume a single extra rng draw, and
  // must reproduce every golden schedule bit for bit. A "no faults" run that
  // differs from the pre-fault-subsystem run would invalidate every recorded
  // schedule and replay in the repo.
  const faults::FaultPlan no_faults;
  ASSERT_TRUE(no_faults.empty());
  const faults::RetryPolicy retry = {.rto = 2.0, .backoff = 3.0};
  EXPECT_EQ(engine_schedule(sim::Discipline::kRandom, 42, no_faults, retry),
            (sim::Schedule{1, 3, 5, 7, 6, 8, 9, 4, 10, 11, 2, 12, 13, 14, 15}));
  EXPECT_EQ(engine_schedule(sim::Discipline::kLifo, 7, no_faults, retry),
            (sim::Schedule{2, 4, 5, 7, 8, 9, 6, 10, 3, 11, 12, 1, 13, 14, 15}));
  EXPECT_EQ(engine_schedule(sim::Discipline::kTimed, 7, no_faults, retry),
            (sim::Schedule{1, 2, 3, 4, 5, 6, 8, 7, 9, 10, 11, 12, 13, 14, 15}));

  // And the engine really did not build an injector: zero fault bookkeeping.
  const auto g = graph::make_ring(10);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine::Options options;
  options.seed = 42;
  options.faults = no_faults;
  options.retry = retry;
  proto::SimEngine engine(g, proto::ring_bridge_config(10), *policy,
                          std::move(options));
  EXPECT_EQ(engine.injector(), nullptr);
  engine.submit(0);
  engine.submit(5);
  engine.run_until_idle();
  EXPECT_EQ(engine.bus().lost(), 0u);
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
}

// A facade-level run: schedule recorded through DirectoryOptions, plus the
// satisfaction order, so the golden pins the whole observable outcome.
struct FacadeRun {
  sim::Schedule schedule;
  std::vector<graph::NodeId> satisfied;  // nodes in satisfaction order

  friend bool operator==(const FacadeRun&, const FacadeRun&) = default;
};

FacadeRun facade_concurrent_run(sim::Discipline d, std::uint64_t seed,
                                faults::FaultPlan faults = {}) {
  const auto g = graph::make_ring(10);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy,
                    .discipline = d,
                    .seed = seed,
                    .faults = std::move(faults),
                    .record_schedule = true});
  FacadeRun run;
  dir.on_satisfied([&run](const proto::RequestRecord& r) {
    run.satisfied.push_back(r.node);
  });
  const std::vector<proto::TimedRequest> requests = {
      {.node = 0, .at = 0.0},
      {.node = 5, .at = 0.5},
      {.node = 8, .at = 1.0},
      {.node = 2, .at = 1.5},
  };
  dir.run_concurrent(requests);
  EXPECT_EQ(dir.unsatisfied_count(), 0u);
  run.schedule = dir.inspect().bus().schedule();
  return run;
}

TEST(GoldenSchedule, FacadeConcurrentRunWithInertFaultPlanMatchesFaultFree) {
  // A NON-empty fault plan whose windows can never fire (a pause far past
  // the run's horizon) installs the injector yet must not change one bit of
  // the observable run: same delivery schedule, same satisfaction order, on
  // a timed and a randomized discipline. This pins the stronger contract:
  // not just "empty plan == no-op" (above) but "installed-but-idle injector
  // == no-op" through the public facade, run_concurrent included.
  faults::FaultPlan inert;
  inert.pauses.push_back({.node = 3, .at = 1.0e9, .duration = 5.0});
  ASSERT_FALSE(inert.empty());
  for (sim::Discipline d : {sim::Discipline::kTimed, sim::Discipline::kRandom}) {
    EXPECT_EQ(facade_concurrent_run(d, 42, inert), facade_concurrent_run(d, 42))
        << "discipline " << static_cast<int>(d);
  }
}

TEST(GoldenSchedule, FacadeConcurrentRunTimedSeed42) {
  // Golden literal for the facade run itself, so drift is caught even if
  // both sides of the comparison above drift together.
  const FacadeRun run = facade_concurrent_run(sim::Discipline::kTimed, 42);
  EXPECT_EQ(run.satisfied, (std::vector<graph::NodeId>{0, 8, 2, 5}));
  EXPECT_EQ(run.schedule,
            (sim::Schedule{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}));
}

TEST(GoldenSchedule, GoldenScheduleReplays) {
  // The recorded kRandom schedule, replayed through kScripted, must walk the
  // same configurations: replay compatibility is what the goldens protect.
  const sim::Schedule recorded = engine_schedule(sim::Discipline::kRandom, 42);
  const auto g = graph::make_ring(10);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine::Options options;
  options.discipline = sim::Discipline::kScripted;
  options.script = recorded;
  options.record_schedule = true;
  proto::SimEngine engine(g, proto::ring_bridge_config(10), *policy,
                          std::move(options));
  engine.submit(0);
  engine.submit(5);
  engine.step();
  engine.submit(8);
  engine.step();
  engine.step();
  engine.submit(2);
  engine.run_until_idle();
  EXPECT_EQ(engine.bus().schedule(), recorded);
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
}

}  // namespace
