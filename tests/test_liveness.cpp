// Tests for the Theorem 5 liveness audit.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/liveness.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

proto::SimEngine make_engine(const graph::Graph& g, proto::PolicyKind kind,
                             sim::Discipline discipline, std::uint64_t seed) {
  auto policy = proto::make_policy(kind);
  proto::SimEngine::Options options;
  options.discipline = discipline;
  options.seed = seed;
  return proto::SimEngine(g, proto::from_tree(graph::bfs_tree(g, 0)), *policy,
                          std::move(options));
}

TEST(Liveness, PassesOnCompletedSequentialRun) {
  const auto g = graph::make_ring(8);
  auto engine = make_engine(g, proto::PolicyKind::kIvy,
                            sim::Discipline::kTimed, 1);
  support::Rng rng(1);
  engine.run_sequential(workload::uniform_sequence(8, 25, rng));
  const auto result = verify::audit_liveness(engine);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Liveness, PassesOnConcurrentBurst) {
  const auto g = graph::make_grid(3, 3);
  auto engine = make_engine(g, proto::PolicyKind::kArrow,
                            sim::Discipline::kRandom, 5);
  for (NodeId v : {1u, 3u, 5u, 7u, 8u}) engine.submit(v);
  engine.run_until_idle();
  const auto result = verify::audit_liveness(engine);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Liveness, RejectsBusyNetwork) {
  const auto g = graph::make_path(5);
  auto engine = make_engine(g, proto::PolicyKind::kArrow,
                            sim::Discipline::kFifo, 1);
  engine.submit(2);  // find still in flight (node 0 holds the token)
  const auto result = verify::audit_liveness(engine);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("quiescent"), std::string::npos);
}

TEST(Liveness, DetectsUnsatisfiedRequestAtQuiescence) {
  // Deferred-token mode parks the request at the holder's next pointer: the
  // network quiesces with an unsatisfied request, exactly what the audit
  // must flag (the paper's separate send-token event will eventually fire;
  // the audit is a quiescence check).
  const auto g = graph::make_path(4);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  proto::SimEngine::Options options;
  options.auto_send_token = false;
  proto::SimEngine engine(g, proto::chain_config(4), *policy,
                          std::move(options));
  engine.submit(0);
  engine.run_until_idle();
  const auto parked = verify::audit_liveness(engine);
  EXPECT_FALSE(parked.ok);
  EXPECT_NE(parked.detail.find("never satisfied"), std::string::npos);
  // Firing the deferred SendToken completes the handover and the audit
  // passes.
  engine.flush_token(3);
  engine.run_until_idle();
  const auto done = verify::audit_liveness(engine);
  EXPECT_TRUE(done.ok) << done.detail;
}

TEST(Liveness, SatisfactionIndicesFormAPermutation) {
  const auto g = graph::make_complete(6);
  auto engine = make_engine(g, proto::PolicyKind::kIvy,
                            sim::Discipline::kLifo, 9);
  for (NodeId v : {1u, 2u, 3u, 4u, 5u}) engine.submit(v);
  engine.run_until_idle();
  ASSERT_TRUE(verify::audit_liveness(engine).ok);
  std::vector<std::uint64_t> indices;
  for (const auto& r : engine.requests()) {
    indices.push_back(r.satisfaction_index);
  }
  std::sort(indices.begin(), indices.end());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i + 1);
  }
}

}  // namespace
