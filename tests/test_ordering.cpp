// Tests for the batch offline optimum (Held-Karp + greedy).
#include <gtest/gtest.h>

#include "analysis/opt.hpp"
#include "analysis/ordering.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

TEST(ExactBatchOpt, EmptyBurstIsFree) {
  const auto g = graph::make_path(4);
  const graph::DistanceOracle oracle(g);
  const auto result = analysis::exact_batch_opt(oracle, 1, {});
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
  EXPECT_TRUE(result.order.empty());
}

TEST(ExactBatchOpt, SingleTerminalIsItsDistance) {
  const auto g = graph::make_path(6);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> terminals{5};
  const auto result = analysis::exact_batch_opt(oracle, 1, terminals);
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
  EXPECT_EQ(result.order, terminals);
}

TEST(ExactBatchOpt, PathGraphVisitsNearSideFirst) {
  // Start at 5 on a 11-path; terminals 3 and 9. Optimal: 5->3->9 = 2 + 6,
  // not 5->9->3 = 4 + 6.
  const auto g = graph::make_path(11);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> terminals{9, 3};
  const auto result = analysis::exact_batch_opt(oracle, 5, terminals);
  EXPECT_DOUBLE_EQ(result.cost, 8.0);
  EXPECT_EQ(result.order, (std::vector<NodeId>{3, 9}));
}

TEST(ExactBatchOpt, DedupsTerminalsAndIgnoresStart) {
  const auto g = graph::make_path(5);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> terminals{2, 2, 0, 0};
  const auto result = analysis::exact_batch_opt(oracle, 0, terminals);
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
  EXPECT_EQ(result.order, (std::vector<NodeId>{2}));
}

TEST(ExactBatchOpt, BeatsOrMatchesGreedyAlways) {
  support::Rng rng(5);
  const auto g = graph::make_connected_gnp(14, 0.25, rng);
  const graph::DistanceOracle oracle(g);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<NodeId> terminals;
    const std::size_t count = 2 + rng.next_below(8);
    for (std::size_t i = 0; i < count; ++i) {
      terminals.push_back(static_cast<NodeId>(rng.next_below(14)));
    }
    const auto start = static_cast<NodeId>(rng.next_below(14));
    const auto exact = analysis::exact_batch_opt(oracle, start, terminals);
    const auto greedy = analysis::greedy_batch_cost(oracle, start, terminals);
    EXPECT_LE(exact.cost, greedy.cost + 1e-9) << "trial " << trial;
    // And dominates the MST lower bound.
    EXPECT_GE(exact.cost + 1e-9,
              analysis::opt_burst_lower_bound(oracle, start, terminals));
  }
}

TEST(ExactBatchOpt, OrderCostIsConsistent) {
  // Recomputing the cost along the returned order reproduces result.cost.
  support::Rng rng(9);
  const auto g = graph::make_grid(4, 4);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> terminals{0, 15, 12, 3, 10};
  const auto result = analysis::exact_batch_opt(oracle, 5, terminals);
  double replay = 0.0;
  NodeId current = 5;
  for (NodeId v : result.order) {
    replay += oracle.distance(current, v);
    current = v;
  }
  EXPECT_DOUBLE_EQ(replay, result.cost);
  EXPECT_EQ(result.order.size(), 5u);
}

TEST(ExactBatchOpt, RingBurstHasKnownOptimum) {
  // Ring of 12, start 0, terminals {1, 2, 11}: best is 11 -> 1 -> 2 (or the
  // mirror) = 1 + 2 + 1 = 4.
  const auto g = graph::make_ring(12);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> terminals{1, 2, 11};
  const auto result = analysis::exact_batch_opt(oracle, 0, terminals);
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
}

TEST(GreedyBatch, FollowsNearestNeighbour) {
  const auto g = graph::make_path(10);
  const graph::DistanceOracle oracle(g);
  const std::vector<NodeId> terminals{9, 4, 6};
  const auto result = analysis::greedy_batch_cost(oracle, 5, terminals);
  EXPECT_EQ(result.order, (std::vector<NodeId>{4, 6, 9}));
  EXPECT_DOUBLE_EQ(result.cost, 1.0 + 2.0 + 3.0);
}

TEST(ExactBatchOptDeath, TooManyTerminalsRejected) {
  const auto g = graph::make_complete(25);
  const graph::DistanceOracle oracle(g);
  std::vector<NodeId> terminals;
  for (NodeId v = 1; v < 23; ++v) terminals.push_back(v);
  EXPECT_DEATH((void)analysis::exact_batch_opt(oracle, 0, terminals),
               "exponential");
}

}  // namespace
