// The fault matrix: every delivery discipline crossed with every fault
// scenario, on BOTH transports, through the same AnyDirectory facade.
//
// Acceptance criteria exercised here:
//  - seeded drop/dup/pause/storm plans terminate with every request
//    satisfied via retransmission, and the relaxed (fault-modulo) Lemma 2 /
//    Theorem 5 checks stay green - with zero permanent losses they are the
//    STRICT checks, so "relaxed" buys nothing on a healthy run;
//  - the 64-node ring with 10% find+token drop re-drives every request;
//  - the threaded LiveDirectory survives the same scenario list (and, under
//    ThreadSanitizer, deferred retries racing shutdown).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "proto/directory.hpp"
#include "runtime/live_directory.hpp"
#include "verify/configuration.hpp"
#include "verify/fault_tolerant.hpp"
#include "verify/invariants.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

struct Scenario {
  std::string name;
  faults::FaultPlan faults;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"drop10", {.drop_find = 0.1, .drop_token = 0.1, .seed = 5}});
  out.push_back({"dup5", {.duplicate = 0.05, .seed = 6}});
  out.push_back(
      {"pause_holder",
       {.pauses = {{.node = 0, .at = 2.0, .duration = 30.0}}, .seed = 7}});
  out.push_back(
      {"latency_storm",
       {.storms = {{.at = 0.0, .duration = 50.0, .factor = 6.0}}, .seed = 8}});
  return out;
}

struct MatrixParam {
  sim::Discipline discipline;
  Scenario scenario;
};

std::string param_name(const testing::TestParamInfo<MatrixParam>& info) {
  return std::string(sim::discipline_name(info.param.discipline)) + "_" +
         info.param.scenario.name;
}

class FaultMatrix : public testing::TestWithParam<MatrixParam> {};

TEST_P(FaultMatrix, SimDirectoryDrainsSatisfiedAndVerified) {
  const auto& param = GetParam();
  const auto g = graph::make_ring(16);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy,
                    .discipline = param.discipline,
                    .seed = 21,
                    .faults = param.scenario.faults});
  // Per-event relaxed invariant checking: with retries on and no permanent
  // losses this is exactly the strict Lemma 2 check.
  std::size_t events = 0;
  dir.on_event([&](const Directory& d) {
    ++events;
    const auto check = verify::check_all_relaxed(d);
    ASSERT_TRUE(check.ok) << check.detail;
  });
  support::Rng rng(31);
  const auto sequence = workload::uniform_sequence(g.node_count(), 40, rng);
  dir.run_sequential(sequence);
  EXPECT_TRUE(dir.drain());
  EXPECT_EQ(dir.unsatisfied_count(), 0u);
  EXPECT_GT(events, 0u);
  const auto stats = dir.fault_stats();
  EXPECT_EQ(stats.permanent_losses, 0u) << "retries were exhausted";
  EXPECT_EQ(stats.drops, stats.retries);
  const auto liveness = verify::audit_liveness_relaxed(dir);
  EXPECT_TRUE(liveness.ok) << liveness.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Disciplines, FaultMatrix,
    testing::ValuesIn([] {
      std::vector<MatrixParam> params;
      for (sim::Discipline d :
           {sim::Discipline::kTimed, sim::Discipline::kFifo,
            sim::Discipline::kLifo, sim::Discipline::kRandom}) {
        for (const Scenario& s : scenarios()) params.push_back({d, s});
      }
      return params;
    }()),
    param_name);

TEST(FaultMatrixAcceptance, Ring64TenPercentDropAllSatisfiedViaRetry) {
  // The PR's headline criterion: 64-node ring, 10% of find AND token
  // transmissions dropped, every request eventually satisfied because the
  // retry layer re-drives them; relaxed Lemma 2 checks green throughout.
  const auto g = graph::make_ring(64);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy,
                    .seed = 97,
                    .faults = {.drop_find = 0.1, .drop_token = 0.1, .seed = 13},
                    .retry = {.rto = 4.0, .backoff = 2.0}});
  dir.on_event([&](const Directory& d) {
    const auto check = verify::check_all_relaxed(d);
    ASSERT_TRUE(check.ok) << check.detail;
  });
  support::Rng rng(41);
  const auto sequence = workload::uniform_sequence(g.node_count(), 120, rng);
  dir.run_sequential(sequence);
  EXPECT_TRUE(dir.drain());
  EXPECT_EQ(dir.satisfied_count(), dir.submitted_count());
  const auto stats = dir.fault_stats();
  EXPECT_GT(stats.drops, 0u) << "the plan never fired - test is vacuous";
  EXPECT_EQ(stats.drops, stats.retries);
  EXPECT_EQ(stats.permanent_losses, 0u);
  const auto liveness = verify::audit_liveness_relaxed(dir);
  EXPECT_TRUE(liveness.ok) << liveness.detail;
}

TEST(FaultMatrixAcceptance, ConcurrentTimedWorkloadSurvivesDrops) {
  const auto g = graph::make_grid(5, 5);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy,
                    .seed = 11,
                    .faults = {.drop_find = 0.1, .seed = 17}});
  support::Rng rng(23);
  const auto arrivals = workload::poisson_arrivals(g.node_count(), 20, 1.5, rng);
  dir.run_concurrent(arrivals);
  EXPECT_TRUE(dir.drain());
  EXPECT_EQ(dir.unsatisfied_count(), 0u);
  const auto liveness = verify::audit_liveness_relaxed(dir);
  EXPECT_TRUE(liveness.ok) << liveness.detail;
}

TEST(FaultMatrixAcceptance, PermanentLossesAreExcusedNotIgnored) {
  // With retries off, drops become permanent losses: the strict audit must
  // fail, the relaxed audit must excuse exactly this situation, and the
  // relaxed invariants must still hold on the surviving structure.
  const auto g = graph::make_ring(16);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy,
                    .seed = 3,
                    .faults = {.drop_find = 0.4, .seed = 29},
                    .retry = {.enabled = false}});
  support::Rng rng(7);
  const auto sequence = workload::uniform_sequence(g.node_count(), 30, rng);
  dir.run_sequential(sequence);
  const auto stats = dir.fault_stats();
  ASSERT_GT(stats.permanent_losses, 0u) << "no loss fired - raise drop rate";
  EXPECT_GT(dir.unsatisfied_count(), 0u);
  EXPECT_FALSE(verify::audit_liveness(dir).ok);
  const auto relaxed = verify::audit_liveness_relaxed(dir);
  EXPECT_TRUE(relaxed.ok) << relaxed.detail;
  const auto invariants = verify::check_all_relaxed(dir);
  EXPECT_TRUE(invariants.ok) << invariants.detail;
}

// --- The same scenarios on the threaded transport ---------------------------

class LiveFaultMatrix : public testing::TestWithParam<Scenario> {};

TEST_P(LiveFaultMatrix, LiveDirectoryDrainsAllSatisfied) {
  const Scenario& scenario = GetParam();
  const auto g = graph::make_ring(8);
  // Compress wall time: one sim-time unit = 50us, so pause/storm windows
  // and retransmission backoffs finish in milliseconds.
  LiveDirectory dir(g,
                    {.policy = proto::PolicyKind::kIvy,
                     .seed = 19,
                     .faults = scenario.faults},
                    {.fault_time_unit = std::chrono::microseconds(50)});
  for (int round = 0; round < 5; ++round) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      dir.acquire_and_wait(v);
    }
  }
  EXPECT_TRUE(dir.drain(std::chrono::milliseconds(10'000)));
  EXPECT_EQ(dir.satisfied_count(), dir.submitted_count());
  const auto stats = dir.fault_stats();
  EXPECT_EQ(stats.permanent_losses, 0u);
  EXPECT_EQ(stats.drops, stats.retries);
  dir.shutdown();
  // Post-shutdown: exactly one node holds the token.
  std::size_t holders = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dir.node(v).holds_token()) ++holders;
  }
  EXPECT_EQ(holders, 1u);
}

std::string scenario_name(const testing::TestParamInfo<Scenario>& param_info) {
  return param_info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, LiveFaultMatrix,
                         testing::ValuesIn(scenarios()), scenario_name);

TEST(LiveFaultStress, RetriesRacingShutdown) {
  // Deferred retransmissions still sitting in the delayed queue while
  // shutdown tears the system down: the nurse must be joined before any
  // mailbox closes and pending deferrals must be discarded, not delivered
  // into closed mailboxes. Run under TSan this doubles as a race check on
  // the whole injector/delayed-queue/mailbox seam.
  const auto g = graph::make_ring(8);
  for (int round = 0; round < 10; ++round) {
    LiveDirectory dir(g,
                      {.policy = proto::PolicyKind::kIvy,
                       .seed = 100 + static_cast<std::uint64_t>(round),
                       .faults = {.drop_find = 0.3,
                                  .drop_token = 0.3,
                                  .duplicate = 0.2,
                                  .seed = 55},
                       // Long backoffs guarantee retries are still pending
                       // at shutdown time.
                       .retry = {.rto = 2000.0, .backoff = 2.0}},
                      {.fault_time_unit = std::chrono::microseconds(200)});
    for (NodeId v = 0; v < g.node_count(); ++v) dir.acquire(v);
    // Shut down immediately: in-flight deferrals race the teardown.
    dir.shutdown();
    EXPECT_TRUE(dir.is_shut_down());
  }
}

TEST(LiveFaultStress, DuplicatedTokensNeverForkTheTokenLive) {
  const auto g = graph::make_complete(6);
  LiveDirectory dir(g,
                    {.policy = proto::PolicyKind::kIvy,
                     .seed = 77,
                     .faults = {.duplicate = 0.5, .seed = 88}},
                    {.fault_time_unit = std::chrono::microseconds(50)});
  for (int round = 0; round < 10; ++round) {
    for (NodeId v = 0; v < g.node_count(); ++v) dir.acquire_and_wait(v);
  }
  dir.shutdown();
  std::size_t holders = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dir.node(v).holds_token()) ++holders;
  }
  // Receiver-side dedup: at-least-once wire, exactly-once core, one token.
  EXPECT_EQ(holders, 1u);
}

// --- Transport-agnostic facade ----------------------------------------------

TEST(AnyDirectory, SameCodeDrivesBothTransports) {
  const auto g = graph::make_ring(8);
  const DirectoryOptions options = {.policy = proto::PolicyKind::kIvy,
                                    .seed = 5,
                                    .faults = {.drop_find = 0.05, .seed = 2}};
  auto drive = [&](AnyDirectory& dir) {
    for (NodeId v = 0; v < g.node_count(); ++v) dir.acquire_and_wait(v);
    EXPECT_TRUE(dir.drain());
    EXPECT_EQ(dir.satisfied_count(), dir.submitted_count());
    EXPECT_EQ(dir.node_count(), g.node_count());
    EXPECT_GT(dir.cost_snapshot().total_distance(), 0.0);
    EXPECT_EQ(dir.fault_stats().permanent_losses, 0u);
  };
  Directory sim_dir(g, options);
  drive(sim_dir);
  LiveDirectory live_dir(g, options,
                         {.fault_time_unit = std::chrono::microseconds(50)});
  drive(live_dir);
  live_dir.shutdown();
}

}  // namespace
