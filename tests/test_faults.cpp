// Unit tests for the fault layer: plan parsing, the strict-no-op contract,
// injector verdicts and their accounting, and the bus-level send filter
// (drop chains become delays, duplicates become dedup groups, permanent
// losses vanish without consuming message ids).
#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "sim/bus.hpp"

namespace {

using namespace arvy;
using faults::FaultPlan;
using faults::MessageKind;
using faults::RetryPolicy;

TEST(FaultPlan, DefaultIsEmpty) {
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_TRUE(faults::parse_fault_plan("").empty());
  EXPECT_TRUE(faults::parse_fault_plan("none").empty());
}

TEST(FaultPlan, SeedAloneKeepsThePlanEmpty) {
  // A seed without any declared fault must not activate the injector.
  EXPECT_TRUE(faults::parse_fault_plan("seed=9").empty());
}

TEST(FaultPlan, ParsesTheWorkedExample) {
  const FaultPlan plan = faults::parse_fault_plan("drop=0.1,dup=0.05");
  EXPECT_DOUBLE_EQ(plan.drop_find, 0.1);
  EXPECT_DOUBLE_EQ(plan.drop_token, 0.1);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.05);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ParsesEveryKey) {
  const FaultPlan plan = faults::parse_fault_plan(
      "dropfind=0.2,droptoken=0.1,dup=0.05,reorder=0.3:16,"
      "storm=10:5:8,pause=3:20:4,stall=30:2,seed=7");
  EXPECT_DOUBLE_EQ(plan.drop_find, 0.2);
  EXPECT_DOUBLE_EQ(plan.drop_token, 0.1);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.3);
  EXPECT_DOUBLE_EQ(plan.reorder_spike, 16.0);
  ASSERT_EQ(plan.storms.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.storms[0].at, 10.0);
  EXPECT_DOUBLE_EQ(plan.storms[0].duration, 5.0);
  EXPECT_DOUBLE_EQ(plan.storms[0].factor, 8.0);
  ASSERT_EQ(plan.pauses.size(), 1u);
  EXPECT_EQ(plan.pauses[0].node, 3u);
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.stalls[0].at, 30.0);
  EXPECT_EQ(plan.seed, 7u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)faults::parse_fault_plan("drop"), std::invalid_argument);
  EXPECT_THROW((void)faults::parse_fault_plan("drop=2"), std::invalid_argument);
  EXPECT_THROW((void)faults::parse_fault_plan("drop=x"), std::invalid_argument);
  EXPECT_THROW((void)faults::parse_fault_plan("bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)faults::parse_fault_plan("storm=5"),
               std::invalid_argument);
  EXPECT_THROW((void)faults::parse_fault_plan("pause=1:2"),
               std::invalid_argument);
}

TEST(RetryPolicyParse, WorkedExampleAndOff) {
  const RetryPolicy retry = faults::parse_retry_policy("backoff=2x");
  EXPECT_TRUE(retry.enabled);
  EXPECT_DOUBLE_EQ(retry.backoff, 2.0);
  const RetryPolicy off = faults::parse_retry_policy("off");
  EXPECT_FALSE(off.enabled);
  const RetryPolicy full =
      faults::parse_retry_policy("backoff=3x,rto=2,cap=32,attempts=5");
  EXPECT_DOUBLE_EQ(full.backoff, 3.0);
  EXPECT_DOUBLE_EQ(full.rto, 2.0);
  EXPECT_DOUBLE_EQ(full.max_backoff, 32.0);
  EXPECT_EQ(full.max_attempts, 5u);
}

TEST(RetryPolicyParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)faults::parse_retry_policy("backoff=0.5x"),
               std::invalid_argument);
  EXPECT_THROW((void)faults::parse_retry_policy("attempts=0"),
               std::invalid_argument);
  EXPECT_THROW((void)faults::parse_retry_policy("nope=1"),
               std::invalid_argument);
}

TEST(FaultInjector, DeterministicAcrossRuns) {
  FaultPlan plan;
  plan.drop_find = 0.3;
  plan.duplicate = 0.2;
  plan.seed = 11;
  faults::FaultInjector a(plan), b(plan);
  for (int i = 0; i < 200; ++i) {
    const auto va = a.on_send(MessageKind::kFind, 0, 1, i * 1.0, 1.0, 1);
    const auto vb = b.on_send(MessageKind::kFind, 0, 1, i * 1.0, 1.0, 1);
    EXPECT_EQ(va.lost, vb.lost);
    EXPECT_DOUBLE_EQ(va.extra_delay, vb.extra_delay);
    EXPECT_EQ(va.duplicates, vb.duplicates);
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_EQ(a.stats().duplicates, b.stats().duplicates);
}

TEST(FaultInjector, DropChainAccountingBalances) {
  FaultPlan plan;
  plan.drop_find = 0.5;
  plan.seed = 3;
  faults::FaultInjector injector(plan, {.rto = 4.0, .backoff = 2.0});
  for (int i = 0; i < 500; ++i) {
    (void)injector.on_send(MessageKind::kFind, 0, 1, 0.0, 1.0, 1);
  }
  const auto& stats = injector.stats();
  EXPECT_GT(stats.drops, 0u);
  // Every drop was either re-driven or declared permanently lost.
  EXPECT_EQ(stats.drops, stats.retries + stats.permanent_losses);
  EXPECT_EQ(stats.permanent_losses, stats.lost_finds + stats.lost_tokens);
}

TEST(FaultInjector, RetryOffMakesEveryDropPermanent) {
  FaultPlan plan;
  plan.drop_token = 1.0;  // certain drop
  faults::FaultInjector injector(plan, {.enabled = false});
  const auto verdict = injector.on_send(MessageKind::kToken, 0, 1, 0.0, 1.0);
  EXPECT_TRUE(verdict.lost);
  EXPECT_EQ(injector.stats().permanent_losses, 1u);
  EXPECT_EQ(injector.stats().lost_tokens, 1u);
  EXPECT_EQ(injector.stats().retries, 0u);
}

TEST(FaultInjector, BackoffIsCappedExponential) {
  FaultPlan plan;
  plan.drop_find = 1.0;  // every transmission dropped: exhaust the chain
  faults::FaultInjector injector(
      plan, {.rto = 1.0, .backoff = 2.0, .max_backoff = 4.0,
             .max_attempts = 6});
  const auto verdict = injector.on_send(MessageKind::kFind, 0, 1, 0.0, 1.0, 1);
  // 5 retries accumulate 1 + 2 + 4 + 4 + 4 before the 6th attempt gives up.
  EXPECT_TRUE(verdict.lost);
  EXPECT_EQ(injector.stats().retries, 5u);
  EXPECT_EQ(injector.stats().permanent_losses, 1u);
}

TEST(FaultInjector, DropProbabilityZeroMeansNoDrops) {
  FaultPlan plan;
  plan.duplicate = 1.0;  // active plan, but no drops configured
  faults::FaultInjector injector(plan);
  const auto verdict = injector.on_send(MessageKind::kFind, 0, 1, 0.0, 2.0, 1);
  EXPECT_FALSE(verdict.lost);
  EXPECT_EQ(verdict.duplicates, 1u);
  EXPECT_DOUBLE_EQ(injector.stats().overhead_distance, 2.0);
}

TEST(FaultInjector, StormStretchesDelivery) {
  FaultPlan plan;
  plan.storms.push_back({.at = 10.0, .duration = 5.0, .factor = 4.0});
  faults::FaultInjector injector(plan);
  const auto in_storm =
      injector.on_send(MessageKind::kFind, 0, 1, 12.0, 2.0, 1);
  EXPECT_DOUBLE_EQ(in_storm.extra_delay, 3.0 * 2.0);  // (factor-1)*distance
  const auto outside =
      injector.on_send(MessageKind::kFind, 0, 1, 20.0, 2.0, 1);
  EXPECT_DOUBLE_EQ(outside.extra_delay, 0.0);
  EXPECT_EQ(injector.stats().delays, 1u);
}

TEST(FaultInjector, PauseDefersIngressUntilWindowEnd) {
  FaultPlan plan;
  plan.pauses.push_back({.node = 1, .at = 10.0, .duration = 6.0});
  faults::FaultInjector injector(plan);
  const auto to_paused = injector.on_send(MessageKind::kFind, 0, 1, 12.0, 1.0, 1);
  EXPECT_DOUBLE_EQ(to_paused.extra_delay, 4.0);  // until t=16
  const auto to_other = injector.on_send(MessageKind::kFind, 0, 2, 12.0, 1.0, 1);
  EXPECT_DOUBLE_EQ(to_other.extra_delay, 0.0);
}

TEST(FaultInjector, StallAffectsTokensOnly) {
  FaultPlan plan;
  plan.stalls.push_back({.at = 5.0, .duration = 10.0});
  faults::FaultInjector injector(plan);
  const auto token = injector.on_send(MessageKind::kToken, 0, 1, 7.0, 1.0);
  EXPECT_DOUBLE_EQ(token.extra_delay, 8.0);  // until t=15
  const auto find = injector.on_send(MessageKind::kFind, 0, 1, 7.0, 1.0, 1);
  EXPECT_DOUBLE_EQ(find.extra_delay, 0.0);
}

// --- The bus-level send filter seam ----------------------------------------

struct Toy {
  int tag = 0;
};

using ToyBus = sim::MessageBus<Toy>;

TEST(BusSendFilter, LostSendsVanishWithoutConsumingIds) {
  ToyBus bus({});
  int delivered = 0;
  bus.set_handler([&](const ToyBus::InFlight&) { ++delivered; });
  bool lose_next = true;
  bus.set_send_filter([&](sim::NodeId, sim::NodeId, const Toy&, sim::Time,
                          double) {
    sim::SendVerdict verdict;
    verdict.lost = lose_next;
    lose_next = false;
    return verdict;
  });
  EXPECT_EQ(bus.send(0, 1, {1}), 0u);  // lost: id 0, nothing enqueued
  const auto id = bus.send(0, 1, {2});
  EXPECT_EQ(id, 1u);  // ids stay dense: the lost send consumed none
  bus.run_until_idle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bus.lost(), 1u);
}

TEST(BusSendFilter, DuplicatesDeliverHandlerExactlyOnce) {
  ToyBus bus({});
  int handled = 0;
  bus.set_handler([&](const ToyBus::InFlight& m) {
    ++handled;
    EXPECT_EQ(m.payload.tag, 7);
  });
  bus.set_send_filter(
      [](sim::NodeId, sim::NodeId, const Toy&, sim::Time, double) {
        sim::SendVerdict verdict;
        verdict.duplicates = 2;  // three copies on the wire
        return verdict;
      });
  bus.send(0, 1, {7});
  EXPECT_EQ(bus.in_flight_count(), 3u);
  bus.run_until_idle();
  EXPECT_EQ(handled, 1);  // at-least-once wire, exactly-once handler
  EXPECT_EQ(bus.suppressed(), 2u);
}

TEST(BusSendFilter, ExtraDelayDefersTimedDelivery) {
  ToyBus::Options options;
  options.discipline = sim::Discipline::kTimed;
  ToyBus bus(std::move(options));
  std::vector<int> order;
  bus.set_handler(
      [&](const ToyBus::InFlight& m) { order.push_back(m.payload.tag); });
  bus.set_send_filter(
      [](sim::NodeId, sim::NodeId, const Toy& payload, sim::Time, double) {
        sim::SendVerdict verdict;
        if (payload.tag == 1) verdict.extra_delay = 100.0;
        return verdict;
      });
  bus.send(0, 1, {1}, 1.0);  // delayed far past the second send
  bus.send(0, 1, {2}, 1.0);
  bus.run_until_idle();
  const std::vector<int> expected = {2, 1};
  EXPECT_EQ(order, expected);
}

TEST(BusSendFilter, NoFilterMeansNoBookkeeping) {
  ToyBus bus({});
  bus.set_handler([](const ToyBus::InFlight&) {});
  bus.send(0, 1, {1});
  bus.run_until_idle();
  EXPECT_EQ(bus.lost(), 0u);
  EXPECT_EQ(bus.suppressed(), 0u);
}

}  // namespace
