// Tests for the FRT random tree embedding (E9 substrate).
#include <gtest/gtest.h>

#include "graph/frt.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::graph;
using arvy::support::Rng;

TEST(Frt, ProducesValidTree) {
  Rng rng(1);
  const Graph g = make_ring(16);
  const FrtResult result = sample_frt_tree(g, rng);
  EXPECT_TRUE(result.tree.is_valid());
  EXPECT_GE(result.beta, 1.0);
  EXPECT_LT(result.beta, 2.0);
  EXPECT_GE(result.levels, 2u);
}

TEST(Frt, SingleNodeGraph) {
  Graph g(1);
  Rng rng(2);
  const FrtResult result = sample_frt_tree(g, rng);
  EXPECT_TRUE(result.tree.is_valid());
  EXPECT_EQ(result.tree.root, 0u);
}

TEST(Frt, DeterministicPerSeed) {
  const Graph g = make_grid(4, 4);
  Rng a(7);
  Rng b(7);
  const FrtResult ra = sample_frt_tree(g, a);
  const FrtResult rb = sample_frt_tree(g, b);
  EXPECT_EQ(ra.tree.parent, rb.tree.parent);
  EXPECT_EQ(ra.tree.parent_edge_weight, rb.tree.parent_edge_weight);
}

TEST(Frt, TreeDistancesDominateGraphDistancesUpToFactorTwo) {
  // The uncollapsed HST dominates the metric exactly; collapsing internal
  // clusters onto representative leaves contracts some edges, which can
  // shrink a pair's distance by at most a factor of two (two nodes that
  // first separate at level i are within 2 * beta * 2^i of each other and
  // their collapsed path retains an edge of weight beta * 2^i).
  Rng rng(11);
  const Graph g = make_ring(12);
  const FrtResult result = sample_frt_tree(g, rng);
  const DistanceMatrix dm(g);
  for (NodeId a = 0; a < 12; ++a) {
    for (NodeId b = a + 1; b < 12; ++b) {
      EXPECT_GE(2.0 * result.tree.tree_distance(a, b) + 1e-9, dm.at(a, b))
          << "pair " << a << "," << b;
    }
  }
}

TEST(Frt, ExpectedStretchIsLogarithmic) {
  // Average (over pairs and over 10 sampled trees) stretch on a 32-ring
  // should be far below the worst single-tree stretch of ~n and in the
  // ballpark of c * log n. We use a generous bound to keep the test stable.
  const Graph g = make_ring(32);
  Rng rng(13);
  double total = 0.0;
  constexpr int kTrees = 10;
  for (int i = 0; i < kTrees; ++i) {
    const FrtResult result = sample_frt_tree(g, rng);
    total += average_stretch(g, result.tree);
  }
  const double mean_stretch = total / kTrees;
  EXPECT_GE(mean_stretch, 1.0);
  EXPECT_LT(mean_stretch, 40.0);  // c log n with modest c; n would be 32+
}

TEST(Frt, WorksOnWeightedGraphs) {
  Rng rng(17);
  const Graph g = make_random_geometric(20, 0.35, rng);
  const FrtResult result = sample_frt_tree(g, rng);
  EXPECT_TRUE(result.tree.is_valid());
}

}  // namespace
