// Tests for initial configurations (rooted trees, Algorithm 2's ring split).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/init.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::proto;

TEST(InitFromTree, BfsTreeRoundTrip) {
  const auto g = arvy::graph::make_grid(3, 3);
  const auto tree = arvy::graph::bfs_tree(g, 4);
  const InitialConfig cfg = from_tree(tree);
  EXPECT_TRUE(cfg.is_valid_tree());
  EXPECT_EQ(cfg.root, 4u);
  EXPECT_EQ(cfg.parent[4], 4u);
  for (bool b : cfg.parent_edge_is_bridge) EXPECT_FALSE(b);
}

TEST(RingBridge, MatchesAlgorithmTwoLayout) {
  // n = 8, 0-based: root v_{n/2} = node 3, bridge child node 4.
  const InitialConfig cfg = ring_bridge_config(8);
  EXPECT_TRUE(cfg.is_valid_tree());
  EXPECT_EQ(cfg.root, 3u);
  // First semicircle points clockwise towards the root.
  EXPECT_EQ(cfg.parent[0], 1u);
  EXPECT_EQ(cfg.parent[1], 2u);
  EXPECT_EQ(cfg.parent[2], 3u);
  // Second semicircle points counterclockwise towards the root.
  EXPECT_EQ(cfg.parent[4], 3u);
  EXPECT_EQ(cfg.parent[5], 4u);
  EXPECT_EQ(cfg.parent[6], 5u);
  EXPECT_EQ(cfg.parent[7], 6u);
  // The bridge is the edge (v_{n/2+1}, v_{n/2}) = (4, 3).
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(cfg.parent_edge_is_bridge[v], v == 4u) << "node " << v;
  }
}

TEST(RingBridge, BridgeEndsSplitRingInHalves) {
  const InitialConfig cfg = ring_bridge_config(12);
  // Set A = {v_1..v_{n/2}} = nodes 0..5, set B = nodes 6..11. The bridge
  // child (node 6) is in B and its parent (the root, node 5) is in A.
  EXPECT_EQ(cfg.root, 5u);
  EXPECT_TRUE(cfg.parent_edge_is_bridge[6]);
  EXPECT_EQ(cfg.parent[6], 5u);
}

TEST(RingBridgeDeath, OddOrTinyRingRejected) {
  EXPECT_DEATH((void)ring_bridge_config(7), "even");
  EXPECT_DEATH((void)ring_bridge_config(2), "even");
}

TEST(WeightedRingBridge, SidesBelowHalfTotalWeight) {
  arvy::support::Rng rng(5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    arvy::support::Rng local(seed + 1);
    const auto ring = arvy::graph::make_weighted_ring(9, local, 0.2, 5.0);
    const InitialConfig cfg = weighted_ring_bridge_config(ring);
    EXPECT_TRUE(cfg.is_valid_tree());
    // Find the bridge child; sum tree-edge weights on each side of it.
    NodeId bridge_child = arvy::graph::kInvalidNode;
    for (NodeId v = 0; v < 9; ++v) {
      if (cfg.parent_edge_is_bridge[v]) {
        EXPECT_EQ(bridge_child, arvy::graph::kInvalidNode);
        bridge_child = v;
      }
    }
    ASSERT_NE(bridge_child, arvy::graph::kInvalidNode);
    EXPECT_EQ(cfg.root, bridge_child - 1);
    double left = 0.0;
    double right = 0.0;
    for (NodeId v = 0; v + 1 < 9; ++v) {
      const double w = ring.edge_weight(v, v + 1);
      if (v + 1 <= cfg.root) {
        left += w;
      } else if (v >= bridge_child) {
        right += w;
      }
    }
    EXPECT_LT(left, ring.total_weight() / 2.0);
    EXPECT_LT(right, ring.total_weight() / 2.0);
  }
}

TEST(ChainConfig, PointsTowardsLastNode) {
  const InitialConfig cfg = chain_config(5);
  EXPECT_TRUE(cfg.is_valid_tree());
  EXPECT_EQ(cfg.root, 4u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(cfg.parent[v], v + 1);
}

TEST(PathConfig, OrientsTowardsArbitraryRoot) {
  const InitialConfig cfg = path_config(6, 2);
  EXPECT_TRUE(cfg.is_valid_tree());
  EXPECT_EQ(cfg.parent[0], 1u);
  EXPECT_EQ(cfg.parent[1], 2u);
  EXPECT_EQ(cfg.parent[3], 2u);
  EXPECT_EQ(cfg.parent[5], 4u);
}

TEST(Validity, DetectsCycle) {
  InitialConfig cfg;
  cfg.root = 0;
  cfg.parent = {0, 2, 1};  // 1 <-> 2 cycle
  cfg.parent_edge_is_bridge = {false, false, false};
  EXPECT_FALSE(cfg.is_valid_tree());
}

TEST(Validity, DetectsSecondSelfLoop) {
  InitialConfig cfg;
  cfg.root = 0;
  cfg.parent = {0, 1, 0};  // node 1 is a second root
  cfg.parent_edge_is_bridge = {false, false, false};
  EXPECT_FALSE(cfg.is_valid_tree());
}

}  // namespace
