// Pins the flat POD wire encoding (proto/wire.hpp): decode(encode(m))
// reconstructs m exactly for both Message alternatives, the header layout
// stays dense and trivially copyable, and frames concatenate the way the
// future ring-buffer transport will lay them out.
#include <gtest/gtest.h>

#include <cstddef>
#include <algorithm>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "proto/wire.hpp"

namespace arvy::proto {
namespace {

using wire::WireHeader;

// The whole point of the encoding: the prefix must stay memcpy-able POD
// with a pinned size, or every transport assumption downstream breaks.
static_assert(std::is_trivially_copyable_v<WireHeader>);
static_assert(std::is_trivially_default_constructible_v<WireHeader> ||
                  std::is_default_constructible_v<WireHeader>);
static_assert(sizeof(WireHeader) == 32);

FindMessage sample_find() {
  FindMessage find;
  find.producer = 7;
  find.sender = 3;
  find.visited = {7, 12, 5, 3};
  find.sender_edge_was_bridge = true;
  find.request = 0xfeed'f00d'dead'beefULL;
  return find;
}

void expect_find_eq(const FindMessage& got, const FindMessage& want) {
  EXPECT_EQ(got.producer, want.producer);
  EXPECT_EQ(got.sender, want.sender);
  EXPECT_EQ(got.visited, want.visited);
  EXPECT_EQ(got.sender_edge_was_bridge, want.sender_edge_was_bridge);
  EXPECT_EQ(got.request, want.request);
}

TEST(Wire, FindRoundTripsWithHistoryAndBridgeFlag) {
  const Message original = sample_find();
  std::vector<std::byte> frame;
  wire::encode(original, frame);
  ASSERT_EQ(frame.size(), wire::encoded_size(original));

  const Message decoded = wire::decode(frame);
  ASSERT_TRUE(is_find(decoded));
  expect_find_eq(std::get<FindMessage>(decoded),
                 std::get<FindMessage>(original));
}

TEST(Wire, FindWithEmptyHistoryIsHeaderOnly) {
  FindMessage find;
  find.producer = 1;
  find.sender = 1;
  find.request = 42;
  const Message original = find;

  std::vector<std::byte> frame;
  wire::encode(original, frame);
  EXPECT_EQ(frame.size(), sizeof(WireHeader));

  const Message decoded = wire::decode(frame);
  ASSERT_TRUE(is_find(decoded));
  expect_find_eq(std::get<FindMessage>(decoded), find);
  EXPECT_FALSE(std::get<FindMessage>(decoded).sender_edge_was_bridge);
}

TEST(Wire, TokenRoundTrips) {
  const Message original = TokenMessage{987654321};
  std::vector<std::byte> frame;
  wire::encode(original, frame);
  EXPECT_EQ(frame.size(), sizeof(WireHeader));
  EXPECT_EQ(frame.size(), wire::encoded_size(original));

  const Message decoded = wire::decode(frame);
  ASSERT_TRUE(is_token(decoded));
  EXPECT_EQ(std::get<TokenMessage>(decoded).serial, 987654321u);
}

TEST(Wire, EncodeAppendsSoFramesConcatenate) {
  // Transports will pack frames back to back in one buffer; encode() must
  // append, and each frame must decode independently via encoded_size.
  const Message first = sample_find();
  const Message second = TokenMessage{5};
  std::vector<std::byte> buffer;
  wire::encode(first, buffer);
  const std::size_t split = buffer.size();
  wire::encode(second, buffer);
  ASSERT_EQ(buffer.size(),
            wire::encoded_size(first) + wire::encoded_size(second));

  const std::span<const std::byte> all(buffer);
  const Message a = wire::decode(all.first(split));
  const Message b = wire::decode(all.subspan(split));
  ASSERT_TRUE(is_find(a));
  ASSERT_TRUE(is_token(b));
  expect_find_eq(std::get<FindMessage>(a), std::get<FindMessage>(first));
  EXPECT_EQ(std::get<TokenMessage>(b).serial, 5u);
}

TEST(Wire, LongHistorySurvives) {
  // One entry per node on a big graph - the realistic worst case the
  // 16-bit count field must dwarf.
  FindMessage find;
  find.producer = 0;
  find.visited.resize(4096);
  std::iota(find.visited.begin(), find.visited.end(), NodeId{0});
  find.sender = find.visited.back();
  find.request = 1;
  const Message original = find;

  std::vector<std::byte> frame;
  wire::encode(original, frame);
  EXPECT_EQ(frame.size(), sizeof(WireHeader) + 4096 * sizeof(NodeId));

  const Message decoded = wire::decode(frame);
  ASSERT_TRUE(is_find(decoded));
  expect_find_eq(std::get<FindMessage>(decoded), find);
}

// --- ring envelopes ---------------------------------------------------------

static_assert(std::is_trivially_copyable_v<wire::EnvelopeHeader>);
static_assert(sizeof(wire::EnvelopeHeader) == 40);
static_assert(std::is_trivially_copyable_v<wire::EnvelopeView>);

TEST(WireEnvelope, FindRoundTripsThroughASlot) {
  const FindMessage find = sample_find();
  const Message original = find;
  // An aligned "ring slot" sized exactly by envelope_bytes, as the runtime
  // sizes its slabs.
  alignas(8) std::byte slot[wire::envelope_bytes(8)] = {};
  const std::size_t written =
      wire::encode_envelope(original, /*dedup=*/0x1234, slot);
  EXPECT_EQ(written, wire::envelope_bytes(find.visited.size()));

  const wire::EnvelopeView view = wire::decode_envelope(slot);
  EXPECT_EQ(view.kind, wire::Kind::kFind);
  EXPECT_EQ(view.dedup, 0x1234u);
  EXPECT_EQ(view.producer, find.producer);
  EXPECT_EQ(view.sender, find.sender);
  EXPECT_EQ(view.request, find.request);
  EXPECT_TRUE(view.sender_edge_was_bridge);
  ASSERT_EQ(view.visited.size(), find.visited.size());
  // The view aliases the slot: same values, zero copies.
  EXPECT_TRUE(std::equal(view.visited.begin(), view.visited.end(),
                         find.visited.begin()));
}

TEST(WireEnvelope, TokenRoundTripsThroughASlot) {
  const Message original = TokenMessage{77};
  alignas(8) std::byte slot[wire::envelope_bytes(0)] = {};
  EXPECT_EQ(wire::encode_envelope(original, /*dedup=*/0, slot),
            sizeof(wire::EnvelopeHeader));
  const wire::EnvelopeView view = wire::decode_envelope(slot);
  EXPECT_EQ(view.kind, wire::Kind::kToken);
  EXPECT_EQ(view.dedup, 0u);
  EXPECT_EQ(view.token_serial, 77u);
  EXPECT_TRUE(view.visited.empty());
}

TEST(WireEnvelope, RequestKindCarriesOnlyTheId) {
  alignas(8) std::byte slot[wire::envelope_bytes(0)] = {};
  EXPECT_EQ(wire::encode_request_envelope(0xabcdef01u, slot),
            sizeof(wire::EnvelopeHeader));
  const wire::EnvelopeView view = wire::decode_envelope(slot);
  EXPECT_EQ(view.kind, wire::Kind::kRequest);
  EXPECT_EQ(view.request, 0xabcdef01u);
  EXPECT_EQ(view.dedup, 0u);
  EXPECT_TRUE(view.visited.empty());
}

TEST(WireEnvelope, SlotBudgetMatchesTheBoxedEncoding) {
  // The two encodings must agree on the frame layout: the envelope is the
  // boxed wire frame plus the 8-byte dedup word, nothing else.
  const Message m = sample_find();
  EXPECT_EQ(wire::envelope_bytes(sample_find().visited.size()),
            wire::encoded_size(m) + sizeof(std::uint64_t));
}

}  // namespace
}  // namespace arvy::proto
