// Sequential-execution semantics of the three named protocols: Arrow keeps
// the tree's edge set fixed, Ivy stars the visited path onto the requester,
// and the bridge policy maintains Algorithm 2's two-semicircles structure.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::proto;
using arvy::graph::NodeId;

std::set<std::pair<NodeId, NodeId>> undirected_black_edges(
    const SimEngine& engine) {
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < engine.node_count(); ++v) {
    const NodeId p = engine.node(v).parent();
    if (p != v) edges.insert({std::min(v, p), std::max(v, p)});
  }
  return edges;
}

TEST(ArrowSemantics, EdgeSetNeverChanges) {
  // Arrow only reverses pointers along the request path; as an undirected
  // edge set the tree is invariant under any sequential workload.
  const auto g = arvy::graph::make_grid(3, 4);
  const auto tree = arvy::graph::bfs_tree(g, 0);
  auto policy = make_policy(PolicyKind::kArrow);
  SimEngine engine(g, from_tree(tree), *policy, {});
  const auto initial_edges = undirected_black_edges(engine);

  arvy::support::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(g.node_count()));
    engine.submit(v);
    engine.run_until_idle();
    EXPECT_EQ(undirected_black_edges(engine), initial_edges)
        << "after request " << i;
  }
}

TEST(ArrowSemantics, TokenEndsAtRequesterAndTreeRootsThere) {
  const auto g = arvy::graph::make_path(6);
  auto policy = make_policy(PolicyKind::kArrow);
  SimEngine engine(g, chain_config(6), *policy, {});
  engine.run_sequential(std::vector<NodeId>{2});
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{2});
  // Every node's parent chain now leads to 2.
  for (NodeId v = 0; v < 6; ++v) {
    NodeId u = v;
    for (int hops = 0; hops < 8 && engine.node(u).parent() != u; ++hops) {
      u = engine.node(u).parent();
    }
    EXPECT_EQ(u, 2u);
  }
}

TEST(IvySemantics, VisitedPathStarsOntoRequester) {
  // Chain 0->1->...->5(root). A request by 0 must leave every forwarding
  // node (and the old root) pointing directly at 0.
  const auto g = arvy::graph::make_complete(6);  // Ivy's native topology
  auto policy = make_policy(PolicyKind::kIvy);
  SimEngine engine(g, chain_config(6), *policy, {});
  engine.run_sequential(std::vector<NodeId>{0});
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(engine.node(v).parent(), 0u) << "node " << v;
  }
  EXPECT_EQ(engine.node(0).parent(), 0u);
}

TEST(IvySemantics, RepeatedRequestsKeepShallowTrees) {
  const auto g = arvy::graph::make_complete(8);
  auto policy = make_policy(PolicyKind::kIvy);
  SimEngine engine(g, chain_config(8), *policy, {});
  arvy::support::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(8));
    engine.submit(v);
    engine.run_until_idle();
  }
  // After an Ivy request the requester is the root; depth of any node is
  // bounded by the longest chain that survived, far below n for random
  // workloads. Weak but meaningful shape check: root exists and the
  // structure is a valid tree (checked via parent-walk termination).
  const auto holder = engine.token_holder();
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(engine.node(*holder).parent(), *holder);
  for (NodeId v = 0; v < 8; ++v) {
    NodeId u = v;
    int hops = 0;
    while (engine.node(u).parent() != u) {
      u = engine.node(u).parent();
      ASSERT_LT(++hops, 9);
    }
    EXPECT_EQ(u, *holder);
  }
}

struct BridgeStructure {
  std::size_t ring_edges = 0;
  std::size_t bridges = 0;
  NodeId bridge_child = arvy::graph::kInvalidNode;
};

BridgeStructure bridge_structure(const SimEngine& engine, std::size_t n) {
  BridgeStructure s;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = engine.node(v).parent();
    if (p == v) continue;
    const bool ring_edge =
        (p == (v + 1) % n) || (v == (p + 1) % n);
    if (engine.node(v).parent_edge_is_bridge()) {
      ++s.bridges;
      s.bridge_child = v;
    } else if (ring_edge) {
      ++s.ring_edges;
    }
  }
  return s;
}

TEST(BridgeSemantics, MaintainsSemicirclesPlusOneBridge) {
  // After every sequential request, the black edges are ring edges except
  // for (at most) one bridge pointer, and there is never more than one
  // bridge flag set (§6: "out of the two ends of the bridge, one end is
  // always in set A and the other is always in set B").
  constexpr std::size_t n = 12;
  const auto g = arvy::graph::make_ring(n);
  auto policy = make_policy(PolicyKind::kBridge);
  SimEngine engine(g, ring_bridge_config(n), *policy, {});
  arvy::support::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (engine.node(v).holds_token()) continue;
    engine.submit(v);
    engine.run_until_idle();
    const BridgeStructure s = bridge_structure(engine, n);
    EXPECT_LE(s.bridges, 1u) << "after request " << i;
    // n nodes: 1 self-loop (holder or last requester), so n-1 black edges;
    // all but the bridge must coincide with ring edges.
    EXPECT_EQ(s.ring_edges + s.bridges, n - 1) << "after request " << i;
  }
}

TEST(BridgeSemantics, SequentialRequestOnSameSideStaysLocal) {
  // Token at root 3 (n=8); a request at node 1 (same semicircle) must not
  // touch the bridge: cost = find 2 + token 2.
  const auto g = arvy::graph::make_ring(8);
  auto policy = make_policy(PolicyKind::kBridge);
  SimEngine engine(g, ring_bridge_config(8), *policy, {});
  engine.run_sequential(std::vector<NodeId>{1});
  EXPECT_DOUBLE_EQ(engine.costs().find_distance, 2.0);
  EXPECT_DOUBLE_EQ(engine.costs().token_distance, 2.0);
  // The bridge is still (4, 3).
  EXPECT_TRUE(engine.node(4).parent_edge_is_bridge());
}

TEST(BridgeSemantics, CrossSideRequestMovesBridgeToRequester) {
  // Request at node 6 (other semicircle, n=8): the find walks 6->5->4,
  // crosses the bridge (4, 3), and at 3 the crossing shortcuts to the
  // producer: new bridge (3, 6).
  const auto g = arvy::graph::make_ring(8);
  auto policy = make_policy(PolicyKind::kBridge);
  SimEngine engine(g, ring_bridge_config(8), *policy, {});
  engine.run_sequential(std::vector<NodeId>{6});
  EXPECT_EQ(engine.node(3).parent(), 6u);
  EXPECT_TRUE(engine.node(3).parent_edge_is_bridge());
  // Exactly one bridge flag in the system.
  std::size_t bridges = 0;
  for (NodeId v = 0; v < 8; ++v) {
    if (engine.node(v).parent_edge_is_bridge()) ++bridges;
  }
  EXPECT_EQ(bridges, 1u);
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{6});
}

TEST(MidpointSemantics, HalvesLongChains) {
  // A request from the end of a long chain under the midpoint policy makes
  // the repeat cost drop sharply (each pass halves the path).
  const auto g = arvy::graph::make_complete(16);
  auto policy = make_policy(PolicyKind::kMidpoint);
  SimEngine engine(g, chain_config(16), *policy, {});
  engine.run_sequential(std::vector<NodeId>{0});
  const double first = engine.costs().find_distance;
  engine.run_sequential(std::vector<NodeId>{1});
  engine.run_sequential(std::vector<NodeId>{0});
  const double third = engine.costs().find_distance - first -
                       0.0;  // cumulative; just require it grew modestly
  EXPECT_LT(third, 2.0 * first);
}

}  // namespace
