// Lemma 1: concurrent events at different nodes commute - applying them in
// either order yields the same configuration. We exercise the concrete event
// pairs from the lemma's proof on real cores and compare full node states.
#include <gtest/gtest.h>

#include "proto/core.hpp"
#include "proto/policies.hpp"

namespace {

using namespace arvy::proto;

struct NodeSnapshot {
  NodeId parent;
  std::optional<NodeId> next;
  bool token;
  bool bridge;
  std::optional<RequestId> outstanding;

  friend bool operator==(const NodeSnapshot&, const NodeSnapshot&) = default;
};

NodeSnapshot snap(const ArvyCore& core) {
  return {core.parent(), core.next(), core.holds_token(),
          core.parent_edge_is_bridge(), core.outstanding()};
}

FindMessage find_by(NodeId producer, std::vector<NodeId> visited,
                    RequestId request = 1) {
  FindMessage m;
  m.producer = producer;
  m.visited = std::move(visited);
  m.sender = m.visited.back();
  m.request = request;
  return m;
}

// Builds the pair of cores fresh for each ordering.
struct TwoNodes {
  std::unique_ptr<NewParentPolicy> policy = make_policy(PolicyKind::kArrow);
  ArvyCore u{2, policy.get(), nullptr, nullptr};
  ArvyCore v{5, policy.get(), nullptr, nullptr};
};

TEST(Lemma1, RequestAndRequestCommute) {
  auto run = [](bool u_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);
    nodes.v.initialize(8, false, false);
    Effects eu, ev;
    if (u_first) {
      eu = nodes.u.request_token(1);
      ev = nodes.v.request_token(2);
    } else {
      ev = nodes.v.request_token(2);
      eu = nodes.u.request_token(1);
    }
    EXPECT_EQ(eu.sends.size(), 1u);
    EXPECT_EQ(ev.sends.size(), 1u);
    return std::pair{snap(nodes.u), snap(nodes.v)};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Lemma1, ReceiveFindAndRequestCommute) {
  auto run = [](bool find_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);   // will receive a find
    nodes.v.initialize(2, false, false);   // will request (parent is u)
    const FindMessage incoming = find_by(9, {9, 3}, 4);
    Effects eu, ev;
    if (find_first) {
      eu = nodes.u.on_find(incoming);
      ev = nodes.v.request_token(5);
    } else {
      ev = nodes.v.request_token(5);
      eu = nodes.u.on_find(incoming);
    }
    EXPECT_EQ(eu.sends.size(), 1u);  // forwarded to old parent 7
    return std::pair{snap(nodes.u), snap(nodes.v)};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Lemma1, ReceiveTokenAndReceiveFindCommute) {
  auto run = [](bool token_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);
    nodes.v.initialize(2, false, false);
    (void)nodes.u.request_token(1);  // u awaits the token
    const FindMessage incoming = find_by(9, {9, 3}, 4);
    Effects eu, ev;
    if (token_first) {
      eu = nodes.u.on_token(TokenMessage{6});
      ev = nodes.v.on_find(incoming);
    } else {
      ev = nodes.v.on_find(incoming);
      eu = nodes.u.on_token(TokenMessage{6});
    }
    EXPECT_EQ(eu.satisfied, std::optional<RequestId>{1});
    return std::pair{snap(nodes.u), snap(nodes.v)};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Lemma1, EffectsAreAlsoOrderIndependent) {
  // Beyond final states, the emitted messages themselves must match.
  auto run = [](bool u_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);
    nodes.v.initialize(8, false, false);
    Effects eu, ev;
    if (u_first) {
      eu = nodes.u.request_token(1);
      ev = nodes.v.request_token(2);
    } else {
      ev = nodes.v.request_token(2);
      eu = nodes.u.request_token(1);
    }
    const auto& fu = std::get<FindMessage>(eu.sends[0].payload);
    const auto& fv = std::get<FindMessage>(ev.sends[0].payload);
    return std::tuple{eu.sends[0].to, fu.producer, fu.visited,
                      ev.sends[0].to, fv.producer, fv.visited};
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
