// Lemma 1: concurrent events at different nodes commute - applying them in
// either order yields the same configuration. We exercise the concrete event
// pairs from the lemma's proof on real cores and compare full node states.
//
// The second half derives its test pairs from explore::independent() - the
// SAME predicate the arvy_explore DPOR reduction prunes with - and validates
// them on full engines: every pair the predicate calls independent must
// commute (equal configurations either way, neither order disabling the
// other), and the predicate must be symmetric. One shared predicate,
// exercised from both sides: the model checker trusts it to prune, this
// suite proves the commutation facts it encodes.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "explore/explorer.hpp"
#include "explore/independence.hpp"
#include "proto/core.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"

namespace {

using namespace arvy::proto;

struct NodeSnapshot {
  NodeId parent;
  std::optional<NodeId> next;
  bool token;
  bool bridge;
  std::optional<RequestId> outstanding;

  friend bool operator==(const NodeSnapshot&, const NodeSnapshot&) = default;
};

NodeSnapshot snap(const ArvyCore& core) {
  return {core.parent(), core.next(), core.holds_token(),
          core.parent_edge_is_bridge(), core.outstanding()};
}

FindMessage find_by(NodeId producer, std::vector<NodeId> visited,
                    RequestId request = 1) {
  FindMessage m;
  m.producer = producer;
  m.visited = std::move(visited);
  m.sender = m.visited.back();
  m.request = request;
  return m;
}

// Builds the pair of cores fresh for each ordering.
struct TwoNodes {
  std::unique_ptr<NewParentPolicy> policy = make_policy(PolicyKind::kArrow);
  ArvyCore u{2, policy.get(), nullptr, nullptr};
  ArvyCore v{5, policy.get(), nullptr, nullptr};
};

TEST(Lemma1, RequestAndRequestCommute) {
  auto run = [](bool u_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);
    nodes.v.initialize(8, false, false);
    Effects eu, ev;
    if (u_first) {
      eu = nodes.u.request_token(1);
      ev = nodes.v.request_token(2);
    } else {
      ev = nodes.v.request_token(2);
      eu = nodes.u.request_token(1);
    }
    EXPECT_EQ(eu.sends.size(), 1u);
    EXPECT_EQ(ev.sends.size(), 1u);
    return std::pair{snap(nodes.u), snap(nodes.v)};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Lemma1, ReceiveFindAndRequestCommute) {
  auto run = [](bool find_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);   // will receive a find
    nodes.v.initialize(2, false, false);   // will request (parent is u)
    const FindMessage incoming = find_by(9, {9, 3}, 4);
    Effects eu, ev;
    if (find_first) {
      eu = nodes.u.on_find(incoming);
      ev = nodes.v.request_token(5);
    } else {
      ev = nodes.v.request_token(5);
      eu = nodes.u.on_find(incoming);
    }
    EXPECT_EQ(eu.sends.size(), 1u);  // forwarded to old parent 7
    return std::pair{snap(nodes.u), snap(nodes.v)};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Lemma1, ReceiveTokenAndReceiveFindCommute) {
  auto run = [](bool token_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);
    nodes.v.initialize(2, false, false);
    (void)nodes.u.request_token(1);  // u awaits the token
    const FindMessage incoming = find_by(9, {9, 3}, 4);
    Effects eu, ev;
    if (token_first) {
      eu = nodes.u.on_token(TokenMessage{6});
      ev = nodes.v.on_find(incoming);
    } else {
      ev = nodes.v.on_find(incoming);
      eu = nodes.u.on_token(TokenMessage{6});
    }
    EXPECT_EQ(eu.satisfied, std::optional<RequestId>{1});
    return std::pair{snap(nodes.u), snap(nodes.v)};
  };
  EXPECT_EQ(run(true), run(false));
}

// --- The shared independence predicate, validated on full engines ----------

namespace shared_predicate {

using arvy::explore::Action;
using arvy::explore::ActionDesc;
using arvy::explore::ActionKind;
using arvy::explore::Scenario;
using arvy::explore::Trace;

std::unique_ptr<SimEngine> build(const Scenario& s, const Trace& prefix) {
  const auto policy = make_policy(s.policy, 2);
  auto engine = std::make_unique<SimEngine>(s.graph, s.init, *policy);
  for (const arvy::graph::NodeId v : s.requests) engine->submit(v);
  for (const Action& a : prefix) {
    EXPECT_TRUE(arvy::explore::apply_action(*engine, a));
  }
  return engine;
}

arvy::verify::Configuration snapshot(const SimEngine& engine) {
  arvy::verify::Configuration cfg = arvy::verify::capture(engine);
  cfg.canonicalize();
  return cfg;
}

// Walks every reachable action prefix (depth-bounded, deduplicated on the
// reached configuration) and hands each state's enabled-action set to the
// visitor. drops_allowed adds drop choice points like the explorer's
// fault-budget mode.
template <typename Visitor>
void for_each_state(const Scenario& s, std::uint32_t drops_allowed,
                    Visitor&& visit) {
  std::unordered_set<arvy::verify::Configuration,
                     arvy::verify::ConfigurationHash>
      seen;
  const std::size_t max_depth = 10;
  auto dfs = [&](auto&& self, const Trace& prefix,
                 std::uint32_t drops_left) -> void {
    const auto engine = build(s, prefix);
    if (!seen.insert(snapshot(*engine)).second) return;
    const std::vector<ActionDesc> enabled =
        arvy::explore::enabled_actions(*engine, drops_left);
    visit(s, prefix, enabled, drops_left);
    if (prefix.size() >= max_depth) return;
    for (const ActionDesc& a : enabled) {
      Trace next = prefix;
      next.push_back(a.action);
      self(self,
           next, a.action.kind == ActionKind::kDrop ? drops_left - 1
                                                    : drops_left);
    }
  };
  dfs(dfs, {}, drops_allowed);
}

TEST(SharedPredicate, IsSymmetric) {
  const Scenario s =
      arvy::explore::make_scenario("path4", PolicyKind::kArrow, {0, 3});
  for_each_state(s, 1,
                 [](const Scenario&, const Trace&,
                    const std::vector<ActionDesc>& enabled, std::uint32_t) {
                   for (const ActionDesc& a : enabled) {
                     for (const ActionDesc& b : enabled) {
                       EXPECT_EQ(arvy::explore::independent(a, b),
                                 arvy::explore::independent(b, a));
                     }
                   }
                 });
}

// Every pair the predicate calls independent, at every reachable state of
// the scenario, commutes on the real engine: same configuration either way,
// and neither order disables the other action. This is exactly the promise
// the DPOR sleep sets cash in when they prune.
void expect_independent_pairs_commute(const Scenario& s,
                                      std::uint32_t drops_allowed,
                                      std::size_t& pairs_checked) {
  for_each_state(
      s, drops_allowed,
      [&pairs_checked](const Scenario& scenario, const Trace& prefix,
                       const std::vector<ActionDesc>& enabled,
                       std::uint32_t) {
        for (std::size_t i = 0; i < enabled.size(); ++i) {
          for (std::size_t j = i + 1; j < enabled.size(); ++j) {
            const ActionDesc& a = enabled[i];
            const ActionDesc& b = enabled[j];
            if (!arvy::explore::independent(a, b)) continue;
            ++pairs_checked;
            const auto ab = build(scenario, prefix);
            ASSERT_TRUE(arvy::explore::apply_action(*ab, a.action));
            ASSERT_TRUE(arvy::explore::apply_action(*ab, b.action))
                << "a disabled b despite independence";
            const auto ba = build(scenario, prefix);
            ASSERT_TRUE(arvy::explore::apply_action(*ba, b.action));
            ASSERT_TRUE(arvy::explore::apply_action(*ba, a.action))
                << "b disabled a despite independence";
            EXPECT_EQ(snapshot(*ab), snapshot(*ba))
                << "independent pair does not commute after prefix of "
                << prefix.size() << " actions";
          }
        }
      });
}

TEST(SharedPredicate, IndependentPairsCommuteOnRealEngines) {
  std::size_t pairs = 0;
  expect_independent_pairs_commute(
      arvy::explore::make_scenario("path4", PolicyKind::kArrow, {0, 3}), 0,
      pairs);
  expect_independent_pairs_commute(
      arvy::explore::make_scenario("ring6", PolicyKind::kIvy), 0, pairs);
  EXPECT_GT(pairs, 0u) << "the sweep found no independent pairs to check";
}

TEST(SharedPredicate, IndependentPairsCommuteUnderFaultChoicePoints) {
  std::size_t pairs = 0;
  expect_independent_pairs_commute(
      arvy::explore::make_scenario("path4", PolicyKind::kArrow, {0, 3}), 1,
      pairs);
  EXPECT_GT(pairs, 0u);
}

// The dependence side: the predicate is not vacuously conservative. Two
// deliveries bound for the same node genuinely race - somewhere in the
// state space, swapping them changes the configuration - so DPOR must keep
// exploring both orders.
TEST(SharedPredicate, SomeDependentPairTrulyDoesNotCommute) {
  const Scenario s =
      arvy::explore::make_scenario("path4", PolicyKind::kArrow, {0, 3});
  bool witness = false;
  for_each_state(
      s, 0,
      [&witness](const Scenario& scenario, const Trace& prefix,
                 const std::vector<ActionDesc>& enabled, std::uint32_t) {
        if (witness) return;
        for (std::size_t i = 0; i < enabled.size() && !witness; ++i) {
          for (std::size_t j = i + 1; j < enabled.size() && !witness; ++j) {
            const ActionDesc& a = enabled[i];
            const ActionDesc& b = enabled[j];
            if (arvy::explore::independent(a, b)) continue;
            if (a.action.kind != ActionKind::kDeliver ||
                b.action.kind != ActionKind::kDeliver) {
              continue;
            }
            const auto ab = build(scenario, prefix);
            if (!arvy::explore::apply_action(*ab, a.action)) continue;
            if (!arvy::explore::apply_action(*ab, b.action)) continue;
            const auto ba = build(scenario, prefix);
            if (!arvy::explore::apply_action(*ba, b.action)) continue;
            if (!arvy::explore::apply_action(*ba, a.action)) continue;
            if (snapshot(*ab) != snapshot(*ba)) witness = true;
          }
        }
      });
  EXPECT_TRUE(witness)
      << "no dependent delivery pair changed the outcome when swapped";
}

}  // namespace shared_predicate

TEST(Lemma1, EffectsAreAlsoOrderIndependent) {
  // Beyond final states, the emitted messages themselves must match.
  auto run = [](bool u_first) {
    TwoNodes nodes;
    nodes.u.initialize(7, false, false);
    nodes.v.initialize(8, false, false);
    Effects eu, ev;
    if (u_first) {
      eu = nodes.u.request_token(1);
      ev = nodes.v.request_token(2);
    } else {
      ev = nodes.v.request_token(2);
      eu = nodes.u.request_token(1);
    }
    const auto& fu = std::get<FindMessage>(eu.sends[0].payload);
    const auto& fv = std::get<FindMessage>(ev.sends[0].payload);
    return std::tuple{eu.sends[0].to, fu.producer, fu.visited,
                      ev.sends[0].to, fv.producer, fv.visited};
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
