// §7's generalization: "in the original Arrow or Ivy protocols, the parent
// pointers ... must coincide with an edge of the original network. The Arvy
// generalization gets rid of this assumption."
//
// These tests run the protocol with initial trees whose pointers are NOT
// network edges (FRT embeddings of a ring, random trees over a grid) and
// verify full correctness: Lemma 2 after every event, liveness, and cost
// accounting by shortest-path distance for the long-range pointers.
#include <gtest/gtest.h>

#include "graph/frt.hpp"
#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"
#include "verify/liveness.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

// A spanning tree of the ring metric whose edges mostly aren't ring edges.
proto::InitialConfig nonlocal_tree_config(const graph::Graph& g,
                                          std::uint64_t seed) {
  support::Rng rng(seed);
  const auto frt = graph::sample_frt_tree(g, rng);
  return proto::from_tree(frt.tree);
}

TEST(NonlocalPointers, FrtTreesContainNonEdges) {
  const auto g = graph::make_ring(16);
  const auto init = nonlocal_tree_config(g, 3);
  std::size_t non_edges = 0;
  for (NodeId v = 0; v < 16; ++v) {
    if (init.parent[v] != v && !g.has_edge(v, init.parent[v])) ++non_edges;
  }
  // The embedding's long-range cluster pointers guarantee some non-edges;
  // otherwise this test wouldn't exercise the generalization at all.
  EXPECT_GT(non_edges, 0u);
}

TEST(NonlocalPointers, SequentialRunsStayCorrectAndCostByDistance) {
  const auto g = graph::make_ring(16);
  const auto init = nonlocal_tree_config(g, 5);
  for (auto kind : {proto::PolicyKind::kArrow, proto::PolicyKind::kIvy,
                    proto::PolicyKind::kMidpoint}) {
    auto policy = proto::make_policy(kind);
    proto::SimEngine engine(g, init, *policy, {});
    support::Rng rng(7);
    const auto seq = workload::uniform_sequence(16, 30, rng);
    engine.run_sequential(seq);
    EXPECT_EQ(engine.unsatisfied_count(), 0u)
        << proto::policy_kind_name(kind);
    const auto audit = verify::audit_liveness(engine);
    EXPECT_TRUE(audit.ok) << audit.detail;
  }
}

TEST(NonlocalPointers, InvariantsHoldUnderConcurrencyOnNonEdgeTrees) {
  const auto g = graph::make_grid(3, 4);
  support::Rng tree_rng(11);
  // A uniformly random labelled tree over the grid's nodes - most of its
  // edges are not grid edges.
  const auto random_tree = graph::make_random_tree(12, tree_rng);
  const auto init = proto::from_tree(bfs_tree(random_tree, 0));
  std::size_t non_edges = 0;
  for (NodeId v = 0; v < 12; ++v) {
    if (init.parent[v] != v && !g.has_edge(v, init.parent[v])) ++non_edges;
  }
  ASSERT_GT(non_edges, 0u);

  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine::Options options;
  options.discipline = sim::Discipline::kRandom;
  options.seed = 13;
  proto::SimEngine engine(g, init, *policy, std::move(options));
  engine.set_post_event_hook([&](const proto::SimEngine& eng) {
    const auto check = verify::check_all(verify::capture(eng));
    ASSERT_TRUE(check.ok) << check.detail;
  });
  support::Rng driver(17);
  std::size_t submitted = 0;
  while (submitted < 20 || !engine.bus().idle()) {
    if (submitted < 20 && (engine.bus().idle() || driver.next_bool(0.5))) {
      const auto v = static_cast<NodeId>(driver.next_below(12));
      if (!engine.node(v).outstanding().has_value()) {
        engine.submit(v);
        ++submitted;
      }
    } else {
      engine.step();
    }
  }
  EXPECT_TRUE(verify::audit_liveness(engine).ok);
}

TEST(NonlocalPointers, CostChargesShortestPathForLongPointers) {
  // A 2-node pointer hop across the ring costs the ring distance, not 1.
  const auto g = graph::make_ring(8);
  proto::InitialConfig init;
  init.root = 4;
  init.parent = {4, 0, 1, 2, 4, 4, 5, 6};  // p(0) = 4: an antipodal pointer
  init.parent_edge_is_bridge.assign(8, false);
  ASSERT_TRUE(init.is_valid_tree());
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  proto::SimEngine engine(g, init, *policy, {});
  engine.submit(0);
  engine.run_until_idle();
  // Find hop 0 -> 4 is charged the shortest ring distance 4; the token
  // returns over the same metric distance.
  EXPECT_DOUBLE_EQ(engine.costs().find_distance, 4.0);
  EXPECT_DOUBLE_EQ(engine.costs().token_distance, 4.0);
}

}  // namespace
