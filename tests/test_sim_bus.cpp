// Tests for the generic message bus: disciplines, exactly-once delivery,
// manual stepping. Uses a toy payload to prove the substrate is
// protocol-agnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/bus.hpp"

namespace {

using arvy::sim::Discipline;
using arvy::sim::MessageBus;

struct ToyMsg {
  int tag = 0;
};

using Bus = MessageBus<ToyMsg>;

Bus::Options options(Discipline d, std::uint64_t seed = 1) {
  Bus::Options o;
  o.discipline = d;
  o.seed = seed;
  return o;
}

TEST(Bus, FifoDeliversInSendOrder) {
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 5; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bus, LifoDeliversNewestFirst) {
  Bus bus(options(Discipline::kLifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 4; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Bus, RandomDeliversEveryMessageExactlyOnce) {
  Bus bus(options(Discipline::kRandom, 99));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 32; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  ASSERT_EQ(seen.size(), 32u);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(Bus, RandomOrderDependsOnSeed) {
  auto run = [](std::uint64_t seed) {
    Bus bus(options(Discipline::kRandom, seed));
    std::vector<int> seen;
    bus.set_handler(
        [&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
    for (int i = 0; i < 16; ++i) bus.send(0, 1, {i});
    bus.run_until_idle();
    return seen;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Bus, TimedOrdersByDistanceDelay) {
  // Default delay model is distance-proportional: the short message
  // overtakes the long one even though it was sent second.
  Bus bus(options(Discipline::kTimed));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  bus.send(0, 1, {0}, /*distance=*/10.0);
  bus.send(0, 2, {1}, /*distance=*/1.0);
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(bus.now(), 10.0);
}

TEST(Bus, TimedTieBreaksBySendOrder) {
  Bus bus(options(Discipline::kTimed));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  bus.send(0, 1, {7}, 3.0);
  bus.send(0, 2, {8}, 3.0);
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{7, 8}));
}

TEST(Bus, HandlerMaySendMoreMessages) {
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) {
    seen.push_back(m.payload.tag);
    if (m.payload.tag < 3) bus.send(m.to, m.from, {m.payload.tag + 1});
  });
  bus.send(0, 1, {0});
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(bus.idle());
}

TEST(Bus, ManualDeliverySelectsSpecificMessage) {
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  const auto a = bus.send(0, 1, {10});
  const auto b = bus.send(0, 1, {20});
  bus.deliver(b);
  EXPECT_EQ(seen, (std::vector<int>{20}));
  EXPECT_EQ(bus.in_flight_count(), 1u);
  bus.deliver(a);
  EXPECT_EQ(seen, (std::vector<int>{20, 10}));
  EXPECT_TRUE(bus.idle());
}

TEST(Bus, PendingSnapshotListsInFlight) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  bus.send(2, 3, {1});
  bus.send(4, 5, {2});
  const auto pending = bus.pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0]->from, 2u);
  EXPECT_EQ(pending[1]->to, 5u);
}

TEST(Bus, AdvanceTimeMovesClockForward) {
  Bus bus(options(Discipline::kTimed));
  bus.set_handler([](const Bus::InFlight&) {});
  bus.advance_time(12.5);
  EXPECT_DOUBLE_EQ(bus.now(), 12.5);
}

TEST(Bus, StepReturnsFalseWhenIdle) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  EXPECT_FALSE(bus.step());
  EXPECT_EQ(bus.deliveries(), 0u);
}

TEST(Bus, CountsDeliveries) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  bus.send(0, 1, {1});
  bus.send(0, 1, {2});
  bus.run_until_idle();
  EXPECT_EQ(bus.deliveries(), 2u);
}

TEST(BusDeath, DeliveringUnknownIdAborts) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  EXPECT_DEATH(bus.deliver(123), "unknown");
}

TEST(Bus, DropThenStepReusesSlots) {
  // A dropped message's arena slot goes back on the free list; the next
  // send must reuse it without disturbing the remaining pending messages.
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  const auto a = bus.send(0, 1, {1});
  bus.send(0, 1, {2});
  const auto c = bus.send(0, 1, {3});
  bus.drop(a);
  bus.drop(c);
  EXPECT_EQ(bus.dropped(), 2u);
  EXPECT_EQ(bus.in_flight_count(), 1u);
  bus.send(0, 1, {4});
  bus.send(0, 1, {5});
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{2, 4, 5}));
  EXPECT_TRUE(bus.idle());
}

TEST(Bus, DropChurnKeepsSendOrderUnderFifo) {
  // Heavy drop/send churn walks the send-order window far past its initial
  // capacity and across prefix trims; FIFO picks must stay oldest-live.
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  std::vector<arvy::sim::MessageId> ids;
  for (int i = 0; i < 512; ++i) ids.push_back(bus.send(0, 1, {i}));
  for (int i = 0; i < 512; i += 2) {
    bus.drop(ids[static_cast<std::size_t>(i)]);  // drop every even tag
  }
  bus.run_until_idle();
  ASSERT_EQ(seen.size(), 256u);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], 2 * i + 1);
  }
}

TEST(Bus, DrainToIdleThenRefillStartsCleanWindow) {
  // Draining to idle resets the send-order window; traffic after the reset
  // must behave exactly like a fresh bus under every pick discipline.
  for (Discipline d :
       {Discipline::kFifo, Discipline::kLifo, Discipline::kRandom}) {
    Bus bus(options(d, 9));
    std::vector<int> seen;
    bus.set_handler(
        [&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 50; ++i) bus.send(0, 1, {i});
      bus.run_until_idle();
      ASSERT_TRUE(bus.idle());
    }
    ASSERT_EQ(seen.size(), 150u);
    std::sort(seen.begin(), seen.end());
    for (int i = 0; i < 150; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(i)], i / 3);
    }
  }
}

TEST(Bus, PeekExposesEarliestPendingWithoutDelivering) {
  Bus bus(options(Discipline::kTimed));
  bus.set_handler([](const Bus::InFlight&) {});
  EXPECT_EQ(bus.peek(), nullptr);
  bus.send(0, 1, {0}, /*distance=*/10.0);
  bus.send(0, 2, {1}, /*distance=*/1.0);
  const auto* head = bus.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->payload.tag, 1);  // shortest delay delivers first
  EXPECT_EQ(bus.in_flight_count(), 2u);  // peek did not deliver
}

TEST(Bus, NextDeliverAtTracksHeadAndInfinityWhenIdle) {
  Bus bus(options(Discipline::kTimed));
  bus.set_handler([](const Bus::InFlight&) {});
  EXPECT_TRUE(std::isinf(bus.next_deliver_at()));
  bus.send(0, 1, {0}, /*distance=*/4.0);
  bus.send(0, 2, {1}, /*distance=*/2.0);
  EXPECT_DOUBLE_EQ(bus.next_deliver_at(), 2.0);
  bus.step();
  EXPECT_DOUBLE_EQ(bus.next_deliver_at(), 4.0);
  bus.step();
  EXPECT_TRUE(std::isinf(bus.next_deliver_at()));
}

TEST(Bus, NextDeliverAtSkipsDroppedMessagesUnderTimed) {
  // The timed heap is popped lazily: dropping the head must not leave a
  // stale next_deliver_at behind.
  Bus bus(options(Discipline::kTimed));
  bus.set_handler([](const Bus::InFlight&) {});
  const auto fast = bus.send(0, 1, {0}, /*distance=*/1.0);
  bus.send(0, 2, {1}, /*distance=*/5.0);
  bus.drop(fast);
  EXPECT_DOUBLE_EQ(bus.next_deliver_at(), 5.0);
  const auto* head = bus.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->payload.tag, 1);
}

TEST(Bus, RandomSeedStabilityRegression) {
  // Frozen prefix of the kRandom pick sequence (seed 99, 32 sends): the
  // discipline draws rng.next_below(live_count) and picks that index in
  // send order. Any change to the rng consumption or the index mapping
  // breaks recorded schedules, so this must never drift.
  Bus bus(options(Discipline::kRandom, 99));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 32; ++i) bus.send(0, 1, {i});
  for (int i = 0; i < 6; ++i) bus.step();
  EXPECT_EQ(seen, (std::vector<int>{11, 18, 12, 27, 25, 5}));
}

// --- Enumeration-seam contract (bus.hpp: peek / next_deliver_at /
// deliverable_ids). arvy_explore trusts these to read the live set without
// perturbing any discipline's schedule; this block pins that contract.

TEST(Bus, TimedCollidingTimestampsDeliverInSendOrder) {
  // Equal deliver_at values are routine (unit-distance edges under the
  // default delay model). The timed heap orders ties by ascending id, and
  // ids are assigned in send order, so collisions drain oldest-send first.
  Bus bus(options(Discipline::kTimed));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 6; ++i) bus.send(0, 1, {i}, /*distance=*/2.0);
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(bus.now(), 2.0);
}

TEST(Bus, TimedPeekTracksCollidingHeadThroughDrops) {
  // Three sends, two colliding at t=2: dropping the current head must move
  // peek() to the next send at the SAME timestamp, not jump to t=5.
  Bus bus(options(Discipline::kTimed));
  bus.set_handler([](const Bus::InFlight&) {});
  const auto a = bus.send(0, 1, {0}, /*distance=*/2.0);
  bus.send(0, 2, {1}, /*distance=*/2.0);
  bus.send(0, 3, {2}, /*distance=*/5.0);
  const auto* head = bus.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->payload.tag, 0);
  bus.drop(a);
  head = bus.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->payload.tag, 1);
  EXPECT_DOUBLE_EQ(bus.next_deliver_at(), 2.0);
}

TEST(Bus, PeekPredictsNextDeliveryUnderTimedAndFifo) {
  // Under kTimed and kFifo the peeked message is exactly what the next
  // step() delivers - including across timestamp collisions (distances
  // repeat, so several sends share each deliver_at).
  for (Discipline d : {Discipline::kTimed, Discipline::kFifo}) {
    Bus bus(options(d));
    std::vector<int> seen;
    bus.set_handler(
        [&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
    for (int i = 0; i < 9; ++i) {
      bus.send(0, 1, {i}, /*distance=*/static_cast<double>(i % 3 + 1));
    }
    while (!bus.idle()) {
      const auto* head = bus.peek();
      ASSERT_NE(head, nullptr);
      const int predicted = head->payload.tag;
      const double at = bus.next_deliver_at();
      EXPECT_DOUBLE_EQ(at, head->deliver_at);
      ASSERT_TRUE(bus.step());
      EXPECT_EQ(seen.back(), predicted);
    }
  }
}

TEST(Bus, LifoAndRandomPeekReportsOldestLiveNotThePick) {
  // Under kLifo/kRandom peek() still answers "earliest pending delivery"
  // (the oldest live message), which the discipline's pick may ignore.
  for (Discipline d : {Discipline::kLifo, Discipline::kRandom}) {
    Bus bus(options(d, 7));
    std::vector<int> seen;
    bus.set_handler(
        [&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
    for (int i = 0; i < 4; ++i) bus.send(0, 1, {i});
    const auto* head = bus.peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->payload.tag, 0);
    ASSERT_TRUE(bus.step());
    if (d == Discipline::kLifo) {
      EXPECT_EQ(seen.back(), 3);  // newest delivered...
      head = bus.peek();
      ASSERT_NE(head, nullptr);
      EXPECT_EQ(head->payload.tag, 0);  // ...oldest still reported
    }
  }
}

TEST(Bus, DeliverableIdsListLiveMessagesInSendOrder) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  const auto a = bus.send(0, 1, {0});
  const auto b = bus.send(0, 2, {1});
  const auto c = bus.send(0, 3, {2});
  EXPECT_EQ(bus.deliverable_ids(),
            (std::vector<arvy::sim::MessageId>{a, b, c}));
  bus.drop(b);
  EXPECT_EQ(bus.deliverable_ids(), (std::vector<arvy::sim::MessageId>{a, c}));
  bus.deliver(a);
  EXPECT_EQ(bus.deliverable_ids(), (std::vector<arvy::sim::MessageId>{c}));
  bus.deliver(c);
  EXPECT_TRUE(bus.deliverable_ids().empty());
}

TEST(Bus, EnumeratingDeliverablesDoesNotPerturbSchedules) {
  // deliverable_ids() is const and peek()/next_deliver_at() draw no
  // randomness: a bus probed before every step must produce the identical
  // delivery schedule as an unprobed twin, under every discipline.
  for (Discipline d : {Discipline::kTimed, Discipline::kFifo,
                       Discipline::kLifo, Discipline::kRandom}) {
    auto run = [d](bool probe) {
      Bus bus(options(d, 42));
      std::vector<int> seen;
      bus.set_handler(
          [&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
      for (int i = 0; i < 12; ++i) {
        bus.send(0, 1, {i}, /*distance=*/static_cast<double>(i % 3 + 1));
      }
      while (!bus.idle()) {
        if (probe) {
          (void)bus.deliverable_ids();
          (void)bus.peek();
          (void)bus.next_deliver_at();
        }
        bus.step();
      }
      return seen;
    };
    EXPECT_EQ(run(true), run(false)) << "discipline " << static_cast<int>(d);
  }
}

TEST(Bus, UniformDelayModelBoundsLatency) {
  Bus::Options o;
  o.discipline = Discipline::kTimed;
  o.seed = 3;
  o.delay = arvy::sim::make_uniform_delay(1.0, 2.0);
  Bus bus(std::move(o));
  std::vector<double> at;
  bus.set_handler([&](const Bus::InFlight& m) { at.push_back(m.deliver_at); });
  for (int i = 0; i < 20; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  for (double t : at) {
    EXPECT_GE(t, 1.0);
    EXPECT_LT(t, 2.0);
  }
}

}  // namespace
