// Tests for the generic message bus: disciplines, exactly-once delivery,
// manual stepping. Uses a toy payload to prove the substrate is
// protocol-agnostic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/bus.hpp"

namespace {

using arvy::sim::Discipline;
using arvy::sim::MessageBus;

struct ToyMsg {
  int tag = 0;
};

using Bus = MessageBus<ToyMsg>;

Bus::Options options(Discipline d, std::uint64_t seed = 1) {
  Bus::Options o;
  o.discipline = d;
  o.seed = seed;
  return o;
}

TEST(Bus, FifoDeliversInSendOrder) {
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 5; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bus, LifoDeliversNewestFirst) {
  Bus bus(options(Discipline::kLifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 4; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Bus, RandomDeliversEveryMessageExactlyOnce) {
  Bus bus(options(Discipline::kRandom, 99));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  for (int i = 0; i < 32; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  ASSERT_EQ(seen.size(), 32u);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(Bus, RandomOrderDependsOnSeed) {
  auto run = [](std::uint64_t seed) {
    Bus bus(options(Discipline::kRandom, seed));
    std::vector<int> seen;
    bus.set_handler(
        [&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
    for (int i = 0; i < 16; ++i) bus.send(0, 1, {i});
    bus.run_until_idle();
    return seen;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Bus, TimedOrdersByDistanceDelay) {
  // Default delay model is distance-proportional: the short message
  // overtakes the long one even though it was sent second.
  Bus bus(options(Discipline::kTimed));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  bus.send(0, 1, {0}, /*distance=*/10.0);
  bus.send(0, 2, {1}, /*distance=*/1.0);
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(bus.now(), 10.0);
}

TEST(Bus, TimedTieBreaksBySendOrder) {
  Bus bus(options(Discipline::kTimed));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  bus.send(0, 1, {7}, 3.0);
  bus.send(0, 2, {8}, 3.0);
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{7, 8}));
}

TEST(Bus, HandlerMaySendMoreMessages) {
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) {
    seen.push_back(m.payload.tag);
    if (m.payload.tag < 3) bus.send(m.to, m.from, {m.payload.tag + 1});
  });
  bus.send(0, 1, {0});
  bus.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(bus.idle());
}

TEST(Bus, ManualDeliverySelectsSpecificMessage) {
  Bus bus(options(Discipline::kFifo));
  std::vector<int> seen;
  bus.set_handler([&](const Bus::InFlight& m) { seen.push_back(m.payload.tag); });
  const auto a = bus.send(0, 1, {10});
  const auto b = bus.send(0, 1, {20});
  bus.deliver(b);
  EXPECT_EQ(seen, (std::vector<int>{20}));
  EXPECT_EQ(bus.in_flight_count(), 1u);
  bus.deliver(a);
  EXPECT_EQ(seen, (std::vector<int>{20, 10}));
  EXPECT_TRUE(bus.idle());
}

TEST(Bus, PendingSnapshotListsInFlight) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  bus.send(2, 3, {1});
  bus.send(4, 5, {2});
  const auto pending = bus.pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0]->from, 2u);
  EXPECT_EQ(pending[1]->to, 5u);
}

TEST(Bus, AdvanceTimeMovesClockForward) {
  Bus bus(options(Discipline::kTimed));
  bus.set_handler([](const Bus::InFlight&) {});
  bus.advance_time(12.5);
  EXPECT_DOUBLE_EQ(bus.now(), 12.5);
}

TEST(Bus, StepReturnsFalseWhenIdle) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  EXPECT_FALSE(bus.step());
  EXPECT_EQ(bus.deliveries(), 0u);
}

TEST(Bus, CountsDeliveries) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  bus.send(0, 1, {1});
  bus.send(0, 1, {2});
  bus.run_until_idle();
  EXPECT_EQ(bus.deliveries(), 2u);
}

TEST(BusDeath, DeliveringUnknownIdAborts) {
  Bus bus(options(Discipline::kFifo));
  bus.set_handler([](const Bus::InFlight&) {});
  EXPECT_DEATH(bus.deliver(123), "unknown");
}

TEST(Bus, UniformDelayModelBoundsLatency) {
  Bus::Options o;
  o.discipline = Discipline::kTimed;
  o.seed = 3;
  o.delay = arvy::sim::make_uniform_delay(1.0, 2.0);
  Bus bus(std::move(o));
  std::vector<double> at;
  bus.set_handler([&](const Bus::InFlight& m) { at.push_back(m.deliver_at); });
  for (int i = 0; i < 20; ++i) bus.send(0, 1, {i});
  bus.run_until_idle();
  for (double t : at) {
    EXPECT_GE(t, 1.0);
    EXPECT_LT(t, 2.0);
  }
}

}  // namespace
