// Tests for the public facade: Directory, plus the single-object corners of
// the sharded DirectoryService that replaced MultiDirectory (the service's
// own suite is tests/test_directory_service.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <type_traits>
#include <vector>

#include "graph/generators.hpp"
#include "proto/directory.hpp"
#include "service/directory_service.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

TEST(Directory, QuickstartFlow) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kBridge});
  EXPECT_TRUE(dir.holder().has_value());
  dir.acquire_and_wait(3);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{3});
  dir.acquire_and_wait(6);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{6});
  EXPECT_GT(dir.costs().total_distance(), 0.0);
  EXPECT_EQ(dir.requests().size(), 2u);
}

TEST(Directory, AsynchronousAcquireCompletesOnRun) {
  const auto g = graph::make_grid(3, 3);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  const auto id = dir.acquire(8);
  EXPECT_GT(id, 0u);
  dir.run();
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{8});
}

TEST(Directory, DefaultInitUsesAlgorithmTwoOnUnitRings) {
  const auto g = graph::make_ring(8);
  const auto init = default_initial_config(g, proto::PolicyKind::kBridge);
  EXPECT_EQ(init.root, 3u);  // Algorithm 2's v_{n/2}
  EXPECT_TRUE(init.parent_edge_is_bridge[4]);
}

TEST(Directory, DefaultInitUsesWeightedSplitOnWeightedRings) {
  support::Rng rng(3);
  const auto g = graph::make_weighted_ring(9, rng, 0.5, 3.0);
  const auto init = default_initial_config(g, proto::PolicyKind::kBridge);
  EXPECT_TRUE(init.is_valid_tree());
  std::size_t bridges = 0;
  for (bool b : init.parent_edge_is_bridge) bridges += b ? 1 : 0;
  EXPECT_EQ(bridges, 1u);
}

TEST(Directory, DefaultInitCentersNonBridgePolicies) {
  const auto g = graph::make_path(9);
  const auto init = default_initial_config(g, proto::PolicyKind::kArrow);
  EXPECT_EQ(init.root, 4u);  // path's metric center
  for (bool b : init.parent_edge_is_bridge) EXPECT_FALSE(b);
}

TEST(Directory, CustomInitialConfigIsHonored) {
  const auto g = graph::make_path(5);
  DirectoryOptions options;
  options.policy = proto::PolicyKind::kArrow;
  options.initial = proto::chain_config(5);
  Directory dir(g, options);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{4});
}

TEST(DirectoryService_, ObjectsAreIndependent) {
  const auto g = graph::make_ring(6);
  DirectoryService service(g, /*object_count=*/3, /*shard_count=*/2,
                           {.policy = proto::PolicyKind::kIvy});
  EXPECT_EQ(service.object_count(), 3u);
  service.acquire_and_wait(0, 2);
  service.acquire_and_wait(1, 4);
  EXPECT_EQ(service.holder(0), std::optional<NodeId>{2});
  EXPECT_EQ(service.holder(1), std::optional<NodeId>{4});
  // Object 2 was never touched; its holder is its canonical root, unaffected
  // by the other objects' traffic, and it was never materialized.
  EXPECT_TRUE(service.holder(2).has_value());
  EXPECT_LE(service.resident_objects(), 2u);
}

TEST(DirectoryService_, RootsAreSpreadAcrossNodes) {
  const auto g = graph::make_ring(8);
  DirectoryService service(g, /*object_count=*/8, /*shard_count=*/2,
                           {.policy = proto::PolicyKind::kArrow});
  std::set<NodeId> roots;
  for (std::size_t i = 0; i < 8; ++i) {
    roots.insert(*service.holder(i));
  }
  EXPECT_GT(roots.size(), 1u);
}

TEST(DirectoryService_, TotalCostsAggregateAcrossShards) {
  const auto g = graph::make_ring(6);
  DirectoryService service(g, /*object_count=*/2, /*shard_count=*/2,
                           {.policy = proto::PolicyKind::kIvy});
  service.acquire_and_wait(0, 3);
  service.acquire_and_wait(1, 5);
  const auto total = service.cost_snapshot();
  EXPECT_GT(total.total_distance(), 0.0);
  EXPECT_GT(total.find_messages + total.token_messages, 0u);
  EXPECT_EQ(service.satisfied_count(), 2u);
}

TEST(AnyDirectoryFacade, DirectoryWorksThroughTheBaseInterface) {
  const auto g = graph::make_ring(8);
  std::unique_ptr<AnyDirectory> dir =
      std::make_unique<Directory>(g, DirectoryOptions{});
  EXPECT_EQ(dir->node_count(), 8u);
  const auto id = dir->acquire(3);
  EXPECT_GT(id, 0u);
  EXPECT_TRUE(dir->drain());
  dir->acquire_and_wait(6);
  EXPECT_EQ(dir->submitted_count(), 2u);
  EXPECT_EQ(dir->satisfied_count(), 2u);
  EXPECT_GT(dir->cost_snapshot().total_distance(), 0.0);
  // No faults declared: the stats stay identically zero.
  const auto stats = dir->fault_stats();
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.permanent_losses, 0u);
}

TEST(DirectoryObservers, MessageHookSeesEveryDelivery) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  std::size_t finds = 0;
  std::size_t tokens = 0;
  dir.on_message([&](const MessageEvent& event) {
    ASSERT_LT(event.from, 8u);
    ASSERT_LT(event.to, 8u);
    ASSERT_GT(event.distance, 0.0);
    if (event.is_find) {
      ASSERT_GT(event.request, 0u);
      ++finds;
    } else {
      ASSERT_EQ(event.request, 0u);
      ++tokens;
    }
  });
  dir.acquire_and_wait(4);
  // Observed counts match the charged cost account exactly.
  EXPECT_EQ(finds, dir.costs().find_messages);
  EXPECT_EQ(tokens, dir.costs().token_messages);
  EXPECT_GT(finds + tokens, 0u);
}

TEST(DirectoryObservers, SatisfiedHookFiresOncePerRequestInOrder) {
  const auto g = graph::make_grid(3, 3);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  std::vector<proto::RequestId> satisfied;
  dir.on_satisfied([&](const proto::RequestRecord& record) {
    EXPECT_TRUE(record.satisfied_at.has_value());
    satisfied.push_back(record.id);
  });
  dir.run_sequential(std::vector<NodeId>{1, 5, 7, 2});
  EXPECT_EQ(satisfied, (std::vector<proto::RequestId>{1, 2, 3, 4}));
}

TEST(DirectoryObservers, EventHookSeesAConsistentDirectoryAfterEveryEvent) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  std::size_t events = 0;
  dir.on_event([&](const Directory& d) {
    ++events;
    // The hook receives the facade itself, const: observers can capture and
    // verify but never mutate mid-run.
    EXPECT_LE(d.satisfied_count(), d.submitted_count());
  });
  dir.acquire_and_wait(5);
  EXPECT_GT(events, 0u);
}

TEST(DirectoryOptions_, DesignatedInitCoversTheWholeSurface) {
  const auto g = graph::make_ring(8);
  // The Quickstart's "with faults and retries" form, verbatim shape.
  Directory dir(g, {
                       .policy = proto::PolicyKind::kIvy,
                       .discipline = sim::Discipline::kTimed,
                       .seed = 7,
                       .delay = sim::make_uniform_delay(1.0, 3.0),
                       .faults = {.drop_find = 0.1, .drop_token = 0.1},
                       .retry = {.rto = 4.0, .backoff = 2.0},
                   });
  dir.run_sequential(std::vector<NodeId>{3, 6, 1});
  EXPECT_TRUE(dir.drain());
  EXPECT_EQ(dir.satisfied_count(), 3u);
}

TEST(DirectoryInspect, InspectIsReadOnlyAndMatchesTheFacade) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  dir.acquire_and_wait(2);
  const proto::SimEngine& engine = dir.inspect();
  EXPECT_EQ(engine.requests().size(), dir.requests().size());
  EXPECT_EQ(engine.token_holder(), dir.holder());
  static_assert(
      std::is_const_v<std::remove_reference_t<decltype(dir.inspect())>>,
      "inspect() must hand out a const engine");
}

TEST(DirectoryService_, ParallelAcquiresDrain) {
  const auto g = graph::make_grid(3, 3);
  DirectoryService service(g, /*object_count=*/3, /*shard_count=*/3,
                           {.policy = proto::PolicyKind::kIvy});
  service.acquire(0, 1);
  service.acquire(1, 5);
  service.acquire(2, 7);
  EXPECT_TRUE(service.drain());
  EXPECT_EQ(service.holder(0), std::optional<NodeId>{1});
  EXPECT_EQ(service.holder(1), std::optional<NodeId>{5});
  EXPECT_EQ(service.holder(2), std::optional<NodeId>{7});
}

}  // namespace
