// Tests for the public facade: Directory and MultiDirectory.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <type_traits>
#include <vector>

#include "graph/generators.hpp"
#include "proto/directory.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

TEST(Directory, QuickstartFlow) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kBridge});
  EXPECT_TRUE(dir.holder().has_value());
  dir.acquire_and_wait(3);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{3});
  dir.acquire_and_wait(6);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{6});
  EXPECT_GT(dir.costs().total_distance(), 0.0);
  EXPECT_EQ(dir.requests().size(), 2u);
}

TEST(Directory, AsynchronousAcquireCompletesOnRun) {
  const auto g = graph::make_grid(3, 3);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  const auto id = dir.acquire(8);
  EXPECT_GT(id, 0u);
  dir.run();
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{8});
}

TEST(Directory, DefaultInitUsesAlgorithmTwoOnUnitRings) {
  const auto g = graph::make_ring(8);
  const auto init = default_initial_config(g, proto::PolicyKind::kBridge);
  EXPECT_EQ(init.root, 3u);  // Algorithm 2's v_{n/2}
  EXPECT_TRUE(init.parent_edge_is_bridge[4]);
}

TEST(Directory, DefaultInitUsesWeightedSplitOnWeightedRings) {
  support::Rng rng(3);
  const auto g = graph::make_weighted_ring(9, rng, 0.5, 3.0);
  const auto init = default_initial_config(g, proto::PolicyKind::kBridge);
  EXPECT_TRUE(init.is_valid_tree());
  std::size_t bridges = 0;
  for (bool b : init.parent_edge_is_bridge) bridges += b ? 1 : 0;
  EXPECT_EQ(bridges, 1u);
}

TEST(Directory, DefaultInitCentersNonBridgePolicies) {
  const auto g = graph::make_path(9);
  const auto init = default_initial_config(g, proto::PolicyKind::kArrow);
  EXPECT_EQ(init.root, 4u);  // path's metric center
  for (bool b : init.parent_edge_is_bridge) EXPECT_FALSE(b);
}

TEST(Directory, CustomInitialConfigIsHonored) {
  const auto g = graph::make_path(5);
  DirectoryOptions options;
  options.policy = proto::PolicyKind::kArrow;
  options.initial = proto::chain_config(5);
  Directory dir(g, options);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{4});
}

TEST(MultiDirectory, ObjectsAreIndependent) {
  const auto g = graph::make_ring(6);
  MultiDirectory dirs(g, 3, {.policy = proto::PolicyKind::kIvy});
  EXPECT_EQ(dirs.object_count(), 3u);
  dirs.acquire_and_wait(0, 2);
  dirs.acquire_and_wait(1, 4);
  EXPECT_EQ(dirs.object(0).holder(), std::optional<NodeId>{2});
  EXPECT_EQ(dirs.object(1).holder(), std::optional<NodeId>{4});
  // Object 2 was never touched; its holder is its initial root, unaffected
  // by the other objects' traffic.
  EXPECT_TRUE(dirs.object(2).holder().has_value());
  EXPECT_EQ(dirs.object(2).requests().size(), 0u);
}

TEST(MultiDirectory, RootsAreSpreadAcrossNodes) {
  const auto g = graph::make_ring(8);
  MultiDirectory dirs(g, 4, {.policy = proto::PolicyKind::kArrow});
  std::set<NodeId> roots;
  for (std::size_t i = 0; i < 4; ++i) {
    roots.insert(*dirs.object(i).holder());
  }
  EXPECT_GT(roots.size(), 1u);
}

TEST(MultiDirectory, TotalCostsAggregate) {
  const auto g = graph::make_ring(6);
  MultiDirectory dirs(g, 2, {.policy = proto::PolicyKind::kIvy});
  dirs.acquire_and_wait(0, 3);
  dirs.acquire_and_wait(1, 5);
  const auto total = dirs.total_costs();
  EXPECT_DOUBLE_EQ(total.find_distance + total.token_distance,
                   dirs.object(0).costs().total_distance() +
                       dirs.object(1).costs().total_distance());
}

TEST(AnyDirectoryFacade, DirectoryWorksThroughTheBaseInterface) {
  const auto g = graph::make_ring(8);
  std::unique_ptr<AnyDirectory> dir =
      std::make_unique<Directory>(g, DirectoryOptions{});
  EXPECT_EQ(dir->node_count(), 8u);
  const auto id = dir->acquire(3);
  EXPECT_GT(id, 0u);
  EXPECT_TRUE(dir->drain());
  dir->acquire_and_wait(6);
  EXPECT_EQ(dir->submitted_count(), 2u);
  EXPECT_EQ(dir->satisfied_count(), 2u);
  EXPECT_GT(dir->cost_snapshot().total_distance(), 0.0);
  // No faults declared: the stats stay identically zero.
  const auto stats = dir->fault_stats();
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.permanent_losses, 0u);
}

TEST(DirectoryObservers, MessageHookSeesEveryDelivery) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  std::size_t finds = 0;
  std::size_t tokens = 0;
  dir.on_message([&](const MessageEvent& event) {
    ASSERT_LT(event.from, 8u);
    ASSERT_LT(event.to, 8u);
    ASSERT_GT(event.distance, 0.0);
    if (event.is_find) {
      ASSERT_GT(event.request, 0u);
      ++finds;
    } else {
      ASSERT_EQ(event.request, 0u);
      ++tokens;
    }
  });
  dir.acquire_and_wait(4);
  // Observed counts match the charged cost account exactly.
  EXPECT_EQ(finds, dir.costs().find_messages);
  EXPECT_EQ(tokens, dir.costs().token_messages);
  EXPECT_GT(finds + tokens, 0u);
}

TEST(DirectoryObservers, SatisfiedHookFiresOncePerRequestInOrder) {
  const auto g = graph::make_grid(3, 3);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  std::vector<proto::RequestId> satisfied;
  dir.on_satisfied([&](const proto::RequestRecord& record) {
    EXPECT_TRUE(record.satisfied_at.has_value());
    satisfied.push_back(record.id);
  });
  dir.run_sequential(std::vector<NodeId>{1, 5, 7, 2});
  EXPECT_EQ(satisfied, (std::vector<proto::RequestId>{1, 2, 3, 4}));
}

TEST(DirectoryObservers, EventHookSeesAConsistentDirectoryAfterEveryEvent) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  std::size_t events = 0;
  dir.on_event([&](const Directory& d) {
    ++events;
    // The hook receives the facade itself, const: observers can capture and
    // verify but never mutate mid-run.
    EXPECT_LE(d.satisfied_count(), d.submitted_count());
  });
  dir.acquire_and_wait(5);
  EXPECT_GT(events, 0u);
}

TEST(DirectoryOptions_, DesignatedInitCoversTheWholeSurface) {
  const auto g = graph::make_ring(8);
  // The Quickstart's "with faults and retries" form, verbatim shape.
  Directory dir(g, {
                       .policy = proto::PolicyKind::kIvy,
                       .discipline = sim::Discipline::kTimed,
                       .seed = 7,
                       .delay = sim::make_uniform_delay(1.0, 3.0),
                       .faults = {.drop_find = 0.1, .drop_token = 0.1},
                       .retry = {.rto = 4.0, .backoff = 2.0},
                   });
  dir.run_sequential(std::vector<NodeId>{3, 6, 1});
  EXPECT_TRUE(dir.drain());
  EXPECT_EQ(dir.satisfied_count(), 3u);
}

TEST(DirectoryInspect, InspectIsReadOnlyAndMatchesTheFacade) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  dir.acquire_and_wait(2);
  const proto::SimEngine& engine = dir.inspect();
  EXPECT_EQ(engine.requests().size(), dir.requests().size());
  EXPECT_EQ(engine.token_holder(), dir.holder());
  static_assert(
      std::is_const_v<std::remove_reference_t<decltype(dir.inspect())>>,
      "inspect() must hand out a const engine");
}

TEST(DirectoryDeprecated, EngineEscapeHatchStillWorksButWarns) {
  // The deprecated escape hatch must keep compiling (downstream migration
  // window) and keep returning the live engine. This test is the only
  // sanctioned in-repo use.
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  dir.acquire_and_wait(3);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // ARVY-LINT-ALLOW(deprecation): the sanctioned escape-hatch pinning test
  proto::SimEngine& engine = dir.engine();
  const Directory& const_dir = dir;
  // ARVY-LINT-ALLOW(deprecation): the sanctioned escape-hatch pinning test
  const proto::SimEngine& const_engine = const_dir.engine();
#pragma GCC diagnostic pop
  EXPECT_EQ(&engine, &dir.inspect());
  EXPECT_EQ(&const_engine, &dir.inspect());
}

TEST(MultiDirectory, ParallelAcquiresDrainWithRunAll) {
  const auto g = graph::make_grid(3, 3);
  MultiDirectory dirs(g, 3, {.policy = proto::PolicyKind::kIvy});
  dirs.acquire(0, 1);
  dirs.acquire(1, 5);
  dirs.acquire(2, 7);
  dirs.run_all();
  EXPECT_EQ(dirs.object(0).holder(), std::optional<NodeId>{1});
  EXPECT_EQ(dirs.object(1).holder(), std::optional<NodeId>{5});
  EXPECT_EQ(dirs.object(2).holder(), std::optional<NodeId>{7});
}

}  // namespace
