// Tests for the public facade: Directory and MultiDirectory.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "proto/directory.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

TEST(Directory, QuickstartFlow) {
  const auto g = graph::make_ring(8);
  Directory dir(g, {.policy = proto::PolicyKind::kBridge});
  EXPECT_TRUE(dir.holder().has_value());
  dir.acquire_and_wait(3);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{3});
  dir.acquire_and_wait(6);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{6});
  EXPECT_GT(dir.costs().total_distance(), 0.0);
  EXPECT_EQ(dir.requests().size(), 2u);
}

TEST(Directory, AsynchronousAcquireCompletesOnRun) {
  const auto g = graph::make_grid(3, 3);
  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  const auto id = dir.acquire(8);
  EXPECT_GT(id, 0u);
  dir.run();
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{8});
}

TEST(Directory, DefaultInitUsesAlgorithmTwoOnUnitRings) {
  const auto g = graph::make_ring(8);
  const auto init = default_initial_config(g, proto::PolicyKind::kBridge);
  EXPECT_EQ(init.root, 3u);  // Algorithm 2's v_{n/2}
  EXPECT_TRUE(init.parent_edge_is_bridge[4]);
}

TEST(Directory, DefaultInitUsesWeightedSplitOnWeightedRings) {
  support::Rng rng(3);
  const auto g = graph::make_weighted_ring(9, rng, 0.5, 3.0);
  const auto init = default_initial_config(g, proto::PolicyKind::kBridge);
  EXPECT_TRUE(init.is_valid_tree());
  std::size_t bridges = 0;
  for (bool b : init.parent_edge_is_bridge) bridges += b ? 1 : 0;
  EXPECT_EQ(bridges, 1u);
}

TEST(Directory, DefaultInitCentersNonBridgePolicies) {
  const auto g = graph::make_path(9);
  const auto init = default_initial_config(g, proto::PolicyKind::kArrow);
  EXPECT_EQ(init.root, 4u);  // path's metric center
  for (bool b : init.parent_edge_is_bridge) EXPECT_FALSE(b);
}

TEST(Directory, CustomInitialConfigIsHonored) {
  const auto g = graph::make_path(5);
  DirectoryOptions options;
  options.policy = proto::PolicyKind::kArrow;
  options.initial = proto::chain_config(5);
  Directory dir(g, options);
  EXPECT_EQ(dir.holder(), std::optional<NodeId>{4});
}

TEST(MultiDirectory, ObjectsAreIndependent) {
  const auto g = graph::make_ring(6);
  MultiDirectory dirs(g, 3, {.policy = proto::PolicyKind::kIvy});
  EXPECT_EQ(dirs.object_count(), 3u);
  dirs.acquire_and_wait(0, 2);
  dirs.acquire_and_wait(1, 4);
  EXPECT_EQ(dirs.object(0).holder(), std::optional<NodeId>{2});
  EXPECT_EQ(dirs.object(1).holder(), std::optional<NodeId>{4});
  // Object 2 was never touched; its holder is its initial root, unaffected
  // by the other objects' traffic.
  EXPECT_TRUE(dirs.object(2).holder().has_value());
  EXPECT_EQ(dirs.object(2).requests().size(), 0u);
}

TEST(MultiDirectory, RootsAreSpreadAcrossNodes) {
  const auto g = graph::make_ring(8);
  MultiDirectory dirs(g, 4, {.policy = proto::PolicyKind::kArrow});
  std::set<NodeId> roots;
  for (std::size_t i = 0; i < 4; ++i) {
    roots.insert(*dirs.object(i).holder());
  }
  EXPECT_GT(roots.size(), 1u);
}

TEST(MultiDirectory, TotalCostsAggregate) {
  const auto g = graph::make_ring(6);
  MultiDirectory dirs(g, 2, {.policy = proto::PolicyKind::kIvy});
  dirs.acquire_and_wait(0, 3);
  dirs.acquire_and_wait(1, 5);
  const auto total = dirs.total_costs();
  EXPECT_DOUBLE_EQ(total.find_distance + total.token_distance,
                   dirs.object(0).costs().total_distance() +
                       dirs.object(1).costs().total_distance());
}

TEST(MultiDirectory, ParallelAcquiresDrainWithRunAll) {
  const auto g = graph::make_grid(3, 3);
  MultiDirectory dirs(g, 3, {.policy = proto::PolicyKind::kIvy});
  dirs.acquire(0, 1);
  dirs.acquire(1, 5);
  dirs.acquire(2, 7);
  dirs.run_all();
  EXPECT_EQ(dirs.object(0).holder(), std::optional<NodeId>{1});
  EXPECT_EQ(dirs.object(1).holder(), std::optional<NodeId>{5});
  EXPECT_EQ(dirs.object(2).holder(), std::optional<NodeId>{7});
}

}  // namespace
