// Unit tests for the transport-agnostic ArvyCore state machine: each of
// Algorithm 1's procedures in isolation.
#include <gtest/gtest.h>

#include "proto/core.hpp"
#include "proto/policies.hpp"

namespace {

using namespace arvy::proto;

struct CoreFixture : ::testing::Test {
  std::unique_ptr<NewParentPolicy> arrow = make_policy(PolicyKind::kArrow);
  std::unique_ptr<NewParentPolicy> ivy = make_policy(PolicyKind::kIvy);
  std::unique_ptr<NewParentPolicy> bridge = make_policy(PolicyKind::kBridge);

  ArvyCore make_node(NodeId id, NodeId parent, bool token,
                     NewParentPolicy* policy, bool is_bridge = false) {
    ArvyCore core(id, policy, nullptr, nullptr);
    core.initialize(parent, token, is_bridge);
    return core;
  }

  static FindMessage find_by(NodeId producer, std::vector<NodeId> visited,
                             RequestId request = 1, bool bridge_flag = false) {
    FindMessage m;
    m.producer = producer;
    m.visited = std::move(visited);
    m.sender = m.visited.back();
    m.request = request;
    m.sender_edge_was_bridge = bridge_flag;
    return m;
  }
};

TEST_F(CoreFixture, RequestSendsFindToParentAndSelfLoops) {
  ArvyCore node = make_node(2, 5, false, arrow.get());
  const Effects effects = node.request_token(7);
  ASSERT_EQ(effects.sends.size(), 1u);
  EXPECT_EQ(effects.sends[0].to, 5u);
  const auto& find = std::get<FindMessage>(effects.sends[0].payload);
  EXPECT_EQ(find.producer, 2u);
  EXPECT_EQ(find.sender, 2u);
  EXPECT_EQ(find.visited, (std::vector<NodeId>{2}));
  EXPECT_EQ(find.request, 7u);
  EXPECT_TRUE(node.has_self_loop());
  EXPECT_EQ(node.outstanding(), std::optional<RequestId>{7});
  EXPECT_FALSE(effects.satisfied.has_value());
}

TEST_F(CoreFixture, RequestCarriesAndClearsBridgeFlag) {
  ArvyCore node = make_node(2, 5, false, bridge.get(), /*is_bridge=*/true);
  const Effects effects = node.request_token(1);
  const auto& find = std::get<FindMessage>(effects.sends[0].payload);
  EXPECT_TRUE(find.sender_edge_was_bridge);
  EXPECT_FALSE(node.parent_edge_is_bridge());
}

TEST_F(CoreFixture, FindIsForwardedToOldParentUnderArrow) {
  // Node 3 with parent 4 receives "find by 1" from 2: Arrow re-points 3 at
  // the sender 2 and forwards towards the old parent 4.
  ArvyCore node = make_node(3, 4, false, arrow.get());
  const Effects effects = node.on_find(find_by(1, {1, 2}));
  ASSERT_EQ(effects.sends.size(), 1u);
  EXPECT_EQ(effects.sends[0].to, 4u);
  const auto& forwarded = std::get<FindMessage>(effects.sends[0].payload);
  EXPECT_EQ(forwarded.sender, 3u);
  EXPECT_EQ(forwarded.visited, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(forwarded.producer, 1u);
  EXPECT_EQ(node.parent(), 2u);  // Arrow: the sender
  EXPECT_FALSE(node.next().has_value());
}

TEST_F(CoreFixture, FindRepointsToProducerUnderIvy) {
  ArvyCore node = make_node(3, 4, false, ivy.get());
  (void)node.on_find(find_by(1, {1, 2}));
  EXPECT_EQ(node.parent(), 1u);  // Ivy: the producer
}

TEST_F(CoreFixture, ForwardedFindCarriesOldBridgeFlag) {
  // Node's own parent edge was the bridge; the forwarded hop must say so,
  // while the node's new edge (Arrow-chosen) is not a bridge.
  ArvyCore node = make_node(3, 4, false, bridge.get(), /*is_bridge=*/true);
  const Effects effects = node.on_find(find_by(1, {1, 2}));
  const auto& forwarded = std::get<FindMessage>(effects.sends[0].payload);
  EXPECT_TRUE(forwarded.sender_edge_was_bridge);
  EXPECT_FALSE(node.parent_edge_is_bridge());
  EXPECT_EQ(node.parent(), 2u);
}

TEST_F(CoreFixture, BridgeCrossingShortcutsToProducer) {
  ArvyCore node = make_node(3, 4, false, bridge.get());
  const Effects effects =
      node.on_find(find_by(1, {1, 2}, 1, /*bridge_flag=*/true));
  EXPECT_EQ(node.parent(), 1u);  // crossed the bridge: producer
  EXPECT_TRUE(node.parent_edge_is_bridge());
  // Still forwards towards the old parent.
  ASSERT_EQ(effects.sends.size(), 1u);
  EXPECT_EQ(effects.sends[0].to, 4u);
}

TEST_F(CoreFixture, FindStopsAtSelfLoopWithoutToken) {
  // Node 3 requested earlier (self-loop, no token): the find parks as n(3).
  ArvyCore node = make_node(3, 5, false, arrow.get());
  (void)node.request_token(9);
  ASSERT_TRUE(node.has_self_loop());
  const Effects effects = node.on_find(find_by(1, {1, 2}));
  EXPECT_TRUE(effects.sends.empty());
  EXPECT_EQ(node.next(), std::optional<NodeId>{1});
  EXPECT_EQ(node.parent(), 2u);  // still re-points per policy
}

TEST_F(CoreFixture, FindAtTokenHolderSendsTokenImmediately) {
  ArvyCore root = make_node(4, 4, true, arrow.get());
  const Effects effects = root.on_find(find_by(1, {1, 2}));
  ASSERT_EQ(effects.sends.size(), 1u);
  EXPECT_EQ(effects.sends[0].to, 1u);
  EXPECT_TRUE(is_token(effects.sends[0].payload));
  EXPECT_FALSE(root.holds_token());
  EXPECT_FALSE(root.next().has_value());  // cleared after sending
  EXPECT_EQ(root.parent(), 2u);
}

TEST_F(CoreFixture, TokenSatisfiesOutstandingRequest) {
  ArvyCore node = make_node(2, 6, false, arrow.get());
  (void)node.request_token(42);
  const Effects effects = node.on_token(TokenMessage{3});
  EXPECT_EQ(effects.satisfied, std::optional<RequestId>{42});
  EXPECT_TRUE(effects.sends.empty());  // no next: token stays
  EXPECT_TRUE(node.holds_token());
  EXPECT_FALSE(node.outstanding().has_value());
  EXPECT_EQ(node.token_serial(), 3u);
}

TEST_F(CoreFixture, TokenIsForwardedToNextAfterUse) {
  ArvyCore node = make_node(2, 6, false, arrow.get());
  (void)node.request_token(1);
  // A find by node 9 terminates here first.
  (void)node.on_find(find_by(9, {9, 5}, 2));
  ASSERT_EQ(node.next(), std::optional<NodeId>{9});
  const Effects effects = node.on_token(TokenMessage{3});
  EXPECT_EQ(effects.satisfied, std::optional<RequestId>{1});
  ASSERT_EQ(effects.sends.size(), 1u);
  EXPECT_EQ(effects.sends[0].to, 9u);
  const auto& token = std::get<TokenMessage>(effects.sends[0].payload);
  EXPECT_EQ(token.serial, 4u);  // serial increments per transfer
  EXPECT_FALSE(node.holds_token());
  EXPECT_FALSE(node.next().has_value());
}

TEST_F(CoreFixture, OnMessageDispatchesOnAlternative) {
  ArvyCore node = make_node(2, 6, false, arrow.get());
  (void)node.request_token(1);
  const Effects effects = node.on_message(Message{TokenMessage{0}});
  EXPECT_TRUE(effects.satisfied.has_value());
}

using CoreDeath = CoreFixture;

TEST_F(CoreDeath, RequestWhileHoldingTokenAborts) {
  ArvyCore root = make_node(0, 0, true, arrow.get());
  EXPECT_DEATH((void)root.request_token(1), "holding the token");
}

TEST_F(CoreDeath, DuplicateOutstandingRequestAborts) {
  ArvyCore node = make_node(1, 0, false, arrow.get());
  (void)node.request_token(1);
  EXPECT_DEATH((void)node.request_token(2), "duplicate outstanding");
}

TEST_F(CoreDeath, TokenWithoutOutstandingRequestAborts) {
  ArvyCore node = make_node(1, 0, false, arrow.get());
  EXPECT_DEATH((void)node.on_token(TokenMessage{1}), "no outstanding");
}

TEST_F(CoreDeath, RevisitingFindAborts) {
  ArvyCore node = make_node(3, 4, false, arrow.get());
  EXPECT_DEATH((void)node.on_find(find_by(1, {1, 3, 2})), "revisited");
}

TEST_F(CoreDeath, MalformedVisitedOrderAborts) {
  ArvyCore node = make_node(3, 4, false, arrow.get());
  FindMessage bad = find_by(1, {1, 2});
  bad.sender = 1;  // violates visited.back() == sender
  EXPECT_DEATH((void)node.on_find(bad), "visited");
}

TEST_F(CoreDeath, InitializeTwiceAborts) {
  ArvyCore node = make_node(0, 1, false, arrow.get());
  EXPECT_DEATH(node.initialize(1, false, false), "initialized");
}

TEST_F(CoreDeath, RootMustHoldToken) {
  ArvyCore core(0, arrow.get(), nullptr, nullptr);
  EXPECT_DEATH(core.initialize(0, false, false), "parent == id_");
}

}  // namespace
