// The service's lock-free routing table: stability, epoch publication, and
// the reader/writer storm that TSan checks on sanitizer builds (the table is
// the one piece of the service that is concurrently read while written).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "service/routing.hpp"

namespace {

using arvy::service::ObjectId;
using arvy::service::RoutingTable;

TEST(RoutingTable, RegistersDenseIdsOverTheCurrentWidth) {
  RoutingTable table(4);
  EXPECT_EQ(table.object_count(), 0u);
  table.add_objects(100);
  EXPECT_EQ(table.object_count(), 100u);
  EXPECT_EQ(table.shard_count(), 4u);
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_LT(table.lookup(id), 4u);
    EXPECT_TRUE(table.contains(id));
  }
  EXPECT_FALSE(table.contains(100));
}

TEST(RoutingTable, PlacementSpreadsAcrossShards) {
  RoutingTable table(4);
  table.add_objects(256);
  std::vector<std::size_t> per_shard(4, 0);
  for (ObjectId id = 0; id < 256; ++id) {
    ++per_shard[table.lookup(id)];
  }
  // splitmix64 over 256 dense ids: every shard sees a healthy share (an
  // exact-quarter split is not required, emptiness or near-emptiness is a
  // placement-hash bug).
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(per_shard[shard], 256u / 16) << "shard " << shard << " starved";
  }
}

TEST(RoutingTable, SeedPerturbsPlacement) {
  RoutingTable a(8, /*seed=*/1);
  RoutingTable b(8, /*seed=*/2);
  a.add_objects(512);
  b.add_objects(512);
  std::size_t moved = 0;
  for (ObjectId id = 0; id < 512; ++id) {
    if (a.lookup(id) != b.lookup(id)) ++moved;
  }
  EXPECT_GT(moved, 0u);

  // Same seed is fully deterministic.
  RoutingTable c(8, /*seed=*/1);
  c.add_objects(512);
  for (ObjectId id = 0; id < 512; ++id) {
    EXPECT_EQ(a.lookup(id), c.lookup(id));
  }
}

TEST(RoutingTable, AssignmentsAreStableAcrossShardGrowth) {
  RoutingTable table(2);
  table.add_objects(300);
  std::vector<std::uint32_t> before(300);
  for (ObjectId id = 0; id < 300; ++id) before[id] = table.lookup(id);

  // The stability contract: widening the shard range must not move a single
  // existing object (parked protocol state never migrates between engines).
  table.add_shards(2);
  EXPECT_EQ(table.shard_count(), 4u);
  for (ObjectId id = 0; id < 300; ++id) {
    EXPECT_EQ(table.lookup(id), before[id]) << "object " << id << " moved";
  }

  // Objects registered after the widening hash over the full new range.
  table.add_objects(300);
  bool lands_in_new_shards = false;
  for (ObjectId id = 300; id < 600; ++id) {
    if (table.lookup(id) >= 2) lands_in_new_shards = true;
  }
  EXPECT_TRUE(lands_in_new_shards);
}

TEST(RoutingTable, EpochBumpsOncePerControlPlaneOperation) {
  RoutingTable table(1);
  const std::uint64_t start = table.epoch();
  table.add_objects(10);
  EXPECT_EQ(table.epoch(), start + 1);
  table.add_shards(1);
  EXPECT_EQ(table.epoch(), start + 2);
  table.add_objects(10);
  EXPECT_EQ(table.epoch(), start + 3);
}

// The TSan storm: readers hammer lookup/contains/epoch while the single
// control-plane writer publishes growth snapshot after snapshot. On
// sanitizer builds this is the data-race check for the store-release /
// load-acquire protocol; everywhere it checks the reader-visible
// invariants (assignments in range and frozen once seen).
TEST(RoutingTable, ReadersSurviveConcurrentGrowth) {
  RoutingTable table(2, /*seed=*/9);
  table.add_objects(64);

  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kRounds = 64;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&table, r] {
      std::uint32_t first_seen = table.lookup(static_cast<ObjectId>(r));
      std::uint64_t last_epoch = 0;
      for (std::size_t spin = 0; spin < 4096; ++spin) {
        const ObjectId id = static_cast<ObjectId>(spin % 64);
        const std::uint32_t shard = table.lookup(id);
        // Widths only grow, so reading the count AFTER the lookup bounds it.
        ASSERT_LT(shard, table.shard_count());
        // Stability, observed live: this object's placement never changes.
        if (id == static_cast<ObjectId>(r)) {
          ASSERT_EQ(shard, first_seen);
        }
        // Epochs are monotone from any single reader's perspective.
        const std::uint64_t epoch = table.epoch();
        ASSERT_GE(epoch, last_epoch);
        last_epoch = epoch;
        ASSERT_TRUE(table.contains(id));
      }
    });
  }

  for (std::size_t round = 0; round < kRounds; ++round) {
    table.add_objects(16);
    if (round % 8 == 7) table.add_shards(1);
  }
  for (auto& t : readers) t.join();

  EXPECT_EQ(table.object_count(), 64u + 16u * kRounds);
  EXPECT_EQ(table.shard_count(), 2u + kRounds / 8);
}

}  // namespace
