// Unit tests for the support kit: RNG, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using arvy::support::fit_linear;
using arvy::support::Rng;
using arvy::support::StreamingStats;
using arvy::support::summarize;
using arvy::support::Table;
using arvy::support::ZipfSampler;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto x = rng.next_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = items;
  rng.shuffle(std::span<int>(items));
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  EXPECT_NE(a(), b());
}

TEST(Zipf, AlphaZeroIsUniform) {
  Rng rng(17);
  ZipfSampler sampler(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[sampler.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10'000, 600);
}

TEST(Zipf, HighAlphaConcentratesOnRankZero) {
  Rng rng(19);
  ZipfSampler sampler(16, 2.0);
  int zero = 0;
  constexpr int kSamples = 10'000;
  for (int i = 0; i < kSamples; ++i) {
    if (sampler.sample(rng) == 0) ++zero;
  }
  EXPECT_GT(zero, kSamples / 2);
}

TEST(StreamingStats, MeanAndVariance) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSinglePass) {
  StreamingStats all;
  StreamingStats left;
  StreamingStats right;
  arvy::support::Rng rng(23);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.next_double(-5.0, 5.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Summary, PercentilesOfKnownData) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const auto s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(Summary, EmptyInputYieldsZeros) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(TablePrint, AlignsColumnsAndUnderlinesHeader) {
  Table t({"n", "ratio"});
  t.add_row({"8", "1.250"});
  t.add_row({"1024", "4.875"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n     ratio"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
}

TEST(TableCsv, CommaSeparated) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableCell, FormatsDoublesWithPrecision) {
  EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
}

}  // namespace
