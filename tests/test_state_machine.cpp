// Tests for the Lemma 3 node-state machine audit.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/state_machine.hpp"

namespace {

using namespace arvy::verify;
using arvy::graph::NodeId;

Configuration chain(std::size_t n, NodeId root) {
  Configuration cfg;
  cfg.parent.resize(n);
  cfg.next.assign(n, std::nullopt);
  cfg.token_at = root;
  for (NodeId v = 0; v < n; ++v) {
    cfg.parent[v] = v < root ? v + 1 : (v > root ? v - 1 : v);
  }
  return cfg;
}

TEST(Classify, RecognisesTheFiveStates) {
  Configuration cfg = chain(5, 4);
  EXPECT_EQ(classify(cfg, 0), NodeState::kIdle);
  EXPECT_EQ(classify(cfg, 4), NodeState::kLT);
  cfg.parent[0] = 0;
  EXPECT_EQ(classify(cfg, 0), NodeState::kL);
  cfg.parent[0] = 1;
  cfg.next[0] = 2;
  EXPECT_EQ(classify(cfg, 0), NodeState::kN);
  cfg.next[4] = 1;
  cfg.parent[4] = 3;
  EXPECT_EQ(classify(cfg, 4), NodeState::kTN);
}

TEST(Classify, FlagsUnreachableCombination) {
  Configuration cfg = chain(3, 2);
  cfg.parent[0] = 0;
  cfg.next[0] = 1;  // {L, N}
  EXPECT_EQ(classify(cfg, 0), NodeState::kUnreachable);
}

TEST(Audit, AcceptsLegalRequestTransition) {
  Configuration cfg = chain(4, 3);
  StateMachineAudit audit(cfg);
  cfg.parent[0] = 0;  // node 0 requests: {} -> {L}
  EXPECT_TRUE(audit.observe(cfg).ok);
  EXPECT_EQ(audit.transitions_seen(), 1u);
}

TEST(Audit, AcceptsFullHandoverSequence) {
  Configuration cfg = chain(4, 3);
  StateMachineAudit audit(cfg);
  // Event 1: node 0 requests: {} -> {L}.
  cfg.parent[0] = 0;
  EXPECT_TRUE(audit.observe(cfg).ok);
  // Event 2: the find reaches holder 3, which re-points and releases the
  // token (fused SendToken): {L,T} -> {}.
  cfg.parent[3] = 0;
  cfg.token_at.reset();
  cfg.token_in_flight = {{3, 0}};
  EXPECT_TRUE(audit.observe(cfg).ok);
  // Event 3: the token arrives at 0 and is kept: {L} -> {L,T}.
  cfg.token_in_flight.reset();
  cfg.token_at = 0;
  EXPECT_TRUE(audit.observe(cfg).ok);
  EXPECT_EQ(audit.transitions_seen(), 3u);
}

TEST(Audit, RejectsIllegalJump) {
  Configuration cfg = chain(4, 3);
  StateMachineAudit audit(cfg);
  cfg.next[0] = 1;  // {} -> {N} without requesting first
  const auto result = audit.observe(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("illegal"), std::string::npos);
}

TEST(Audit, RejectsTwoSimultaneousChanges) {
  Configuration cfg = chain(5, 4);
  StateMachineAudit audit(cfg);
  cfg.parent[0] = 0;
  cfg.parent[1] = 1;  // two nodes request "in the same event"
  const auto result = audit.observe(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("one node"), std::string::npos);
}

TEST(Audit, TracksAFullProtocolRun) {
  const auto g = arvy::graph::make_path(5);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kArrow);
  arvy::proto::SimEngine engine(g, arvy::proto::chain_config(5), *policy, {});
  StateMachineAudit audit(capture(engine));
  engine.set_post_event_hook([&](const arvy::proto::SimEngine& eng) {
    const auto result = audit.observe(capture(eng));
    ASSERT_TRUE(result.ok) << result.detail;
  });
  engine.run_sequential(std::vector<NodeId>{0, 3, 1});
  // request + terminal-find + token-arrival transitions at least.
  EXPECT_GE(audit.transitions_seen(), 6u);
}

TEST(AuditDeath, InitialStatesMustBeCleanTree) {
  Configuration cfg = chain(3, 2);
  cfg.parent[0] = 0;  // a pre-existing {L} state is not a legal start
  EXPECT_DEATH(StateMachineAudit{cfg}, "initial states");
}

// --- Configuration identity (canonicalize / hash / ConfigurationHash) ------
// The §5 configuration is the model checker's state: its equality and hash
// are first-class API, pinned here independently of the explorer.

TEST(ConfigIdentity, RepeatedCapturesAreEqualAndHashEqual) {
  const auto g = arvy::graph::make_path(5);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kArrow);
  arvy::proto::SimEngine engine(g, arvy::proto::chain_config(5), *policy, {});
  engine.submit(0);
  engine.submit(3);
  const Configuration a = capture(engine);
  const Configuration b = capture(engine);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(ConfigurationHash{}(a), a.hash());
}

TEST(ConfigIdentity, InterleavingOrderWashesOutUnderCanonicalize) {
  // Submitting {0,3} vs {3,0} reaches the same §5 configuration, but the
  // red edges are listed in bus send order, so the raw captures differ.
  // canonicalize() restores the order-insensitive identity the explorer's
  // state cache deduplicates on - equality AND hash.
  const auto g = arvy::graph::make_path(5);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kArrow);
  auto run = [&](std::vector<NodeId> order) {
    arvy::proto::SimEngine engine(g, arvy::proto::chain_config(5), *policy,
                                  {});
    for (const NodeId v : order) engine.submit(v);
    return capture(engine);
  };
  Configuration a = run({0, 3});
  Configuration b = run({3, 0});
  ASSERT_EQ(a.red_edges.size(), 2u);
  EXPECT_NE(a, b);  // send order differs...
  a.canonicalize();
  b.canonicalize();
  EXPECT_EQ(a, b);  // ...the configuration does not
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ConfigIdentity, CanonicalizeIsIdempotent) {
  const auto g = arvy::graph::make_path(5);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kArrow);
  arvy::proto::SimEngine engine(g, arvy::proto::chain_config(5), *policy, {});
  engine.submit(3);
  engine.submit(0);
  Configuration once = capture(engine);
  once.canonicalize();
  Configuration twice = once;
  twice.canonicalize();
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once.hash(), twice.hash());
}

TEST(ConfigIdentity, EveryFieldFeedsTheHash) {
  // hash() must be sensitive to each Configuration field; a field silently
  // dropped from the hash would let the state cache merge distinct states.
  const Configuration base = chain(5, 4);
  const std::size_t h = base.hash();

  Configuration parent_changed = base;
  parent_changed.parent[0] = 0;
  EXPECT_NE(parent_changed.hash(), h);

  Configuration next_changed = base;
  next_changed.next[1] = 2;
  EXPECT_NE(next_changed.hash(), h);

  Configuration token_moved = base;
  token_moved.token_at = 2;
  EXPECT_NE(token_moved.hash(), h);

  Configuration token_flying = base;
  token_flying.token_at = std::nullopt;
  token_flying.token_in_flight = {{4, 3}};
  EXPECT_NE(token_flying.hash(), h);

  Configuration red_added = base;
  RedEdge red;
  red.tail = 0;
  red.head = 1;
  red.producer = 0;
  red.visited = {0};
  red_added.red_edges.push_back(red);
  EXPECT_NE(red_added.hash(), h);

  Configuration visited_changed = red_added;
  visited_changed.red_edges[0].visited = {0, 1};
  EXPECT_NE(visited_changed.hash(), red_added.hash());
}

TEST(ConfigIdentity, CheckingDoesNotPerturbTheSnapshot) {
  // capture -> check_all -> capture must be an identity: the checker (and
  // the waiting_set/previous/top walks it performs) is read-only, so the
  // explorer may check a state and then keep hashing it. Exercised mid-run,
  // with finds in flight.
  const auto g = arvy::graph::make_path(5);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kArrow);
  arvy::proto::SimEngine engine(g, arvy::proto::chain_config(5), *policy, {});
  engine.submit(0);
  engine.submit(3);
  engine.step();
  const Configuration before = capture(engine);
  const auto result = arvy::verify::check_all(before);
  ASSERT_TRUE(result.ok) << result.detail;
  (void)before.waiting_set(0);
  (void)before.previous(3);
  (void)before.top(0);
  const Configuration after = capture(engine);
  EXPECT_EQ(before, after);
  EXPECT_EQ(before.hash(), after.hash());
}

}  // namespace
