// Tests for the Lemma 3 node-state machine audit.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/state_machine.hpp"

namespace {

using namespace arvy::verify;
using arvy::graph::NodeId;

Configuration chain(std::size_t n, NodeId root) {
  Configuration cfg;
  cfg.parent.resize(n);
  cfg.next.assign(n, std::nullopt);
  cfg.token_at = root;
  for (NodeId v = 0; v < n; ++v) {
    cfg.parent[v] = v < root ? v + 1 : (v > root ? v - 1 : v);
  }
  return cfg;
}

TEST(Classify, RecognisesTheFiveStates) {
  Configuration cfg = chain(5, 4);
  EXPECT_EQ(classify(cfg, 0), NodeState::kIdle);
  EXPECT_EQ(classify(cfg, 4), NodeState::kLT);
  cfg.parent[0] = 0;
  EXPECT_EQ(classify(cfg, 0), NodeState::kL);
  cfg.parent[0] = 1;
  cfg.next[0] = 2;
  EXPECT_EQ(classify(cfg, 0), NodeState::kN);
  cfg.next[4] = 1;
  cfg.parent[4] = 3;
  EXPECT_EQ(classify(cfg, 4), NodeState::kTN);
}

TEST(Classify, FlagsUnreachableCombination) {
  Configuration cfg = chain(3, 2);
  cfg.parent[0] = 0;
  cfg.next[0] = 1;  // {L, N}
  EXPECT_EQ(classify(cfg, 0), NodeState::kUnreachable);
}

TEST(Audit, AcceptsLegalRequestTransition) {
  Configuration cfg = chain(4, 3);
  StateMachineAudit audit(cfg);
  cfg.parent[0] = 0;  // node 0 requests: {} -> {L}
  EXPECT_TRUE(audit.observe(cfg).ok);
  EXPECT_EQ(audit.transitions_seen(), 1u);
}

TEST(Audit, AcceptsFullHandoverSequence) {
  Configuration cfg = chain(4, 3);
  StateMachineAudit audit(cfg);
  // Event 1: node 0 requests: {} -> {L}.
  cfg.parent[0] = 0;
  EXPECT_TRUE(audit.observe(cfg).ok);
  // Event 2: the find reaches holder 3, which re-points and releases the
  // token (fused SendToken): {L,T} -> {}.
  cfg.parent[3] = 0;
  cfg.token_at.reset();
  cfg.token_in_flight = {{3, 0}};
  EXPECT_TRUE(audit.observe(cfg).ok);
  // Event 3: the token arrives at 0 and is kept: {L} -> {L,T}.
  cfg.token_in_flight.reset();
  cfg.token_at = 0;
  EXPECT_TRUE(audit.observe(cfg).ok);
  EXPECT_EQ(audit.transitions_seen(), 3u);
}

TEST(Audit, RejectsIllegalJump) {
  Configuration cfg = chain(4, 3);
  StateMachineAudit audit(cfg);
  cfg.next[0] = 1;  // {} -> {N} without requesting first
  const auto result = audit.observe(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("illegal"), std::string::npos);
}

TEST(Audit, RejectsTwoSimultaneousChanges) {
  Configuration cfg = chain(5, 4);
  StateMachineAudit audit(cfg);
  cfg.parent[0] = 0;
  cfg.parent[1] = 1;  // two nodes request "in the same event"
  const auto result = audit.observe(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("one node"), std::string::npos);
}

TEST(Audit, TracksAFullProtocolRun) {
  const auto g = arvy::graph::make_path(5);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kArrow);
  arvy::proto::SimEngine engine(g, arvy::proto::chain_config(5), *policy, {});
  StateMachineAudit audit(capture(engine));
  engine.set_post_event_hook([&](const arvy::proto::SimEngine& eng) {
    const auto result = audit.observe(capture(eng));
    ASSERT_TRUE(result.ok) << result.detail;
  });
  engine.run_sequential(std::vector<NodeId>{0, 3, 1});
  // request + terminal-find + token-arrival transitions at least.
  EXPECT_GE(audit.transitions_seen(), 6u);
}

TEST(AuditDeath, InitialStatesMustBeCleanTree) {
  Configuration cfg = chain(3, 2);
  cfg.parent[0] = 0;  // a pre-existing {L} state is not a legal start
  EXPECT_DEATH(StateMachineAudit{cfg}, "initial states");
}

}  // namespace
