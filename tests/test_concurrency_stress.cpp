// Concurrency stress tests, designed to run under ThreadSanitizer.
//
// The unit tests elsewhere check the runtime's functional behaviour; these
// tests exist to hand TSan (and the lock-rank checker) as many genuinely
// racy schedules as possible: many producers against many consumers on one
// Mailbox, request storms against a full ActorSystem, and repeated
// construct/storm/shutdown churn to shake the join/close ordering. They
// assert functional outcomes too, but their real assertion is "zero
// sanitizer reports" -- the TSan CI job runs exactly this binary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "runtime/actor_system.hpp"
#include "runtime/mailbox.hpp"
#include "support/lock_rank.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

// Generous ceiling for waits: a passing run finishes in milliseconds; the
// timeout only matters when a liveness regression would otherwise hang ctest.
constexpr std::chrono::milliseconds kWaitCeiling{120000};

TEST(MailboxStress, ManyProducersOneConsumerFifo) {
  constexpr int kProducers = 8;
  constexpr int kItemsPerProducer = 2000;
  runtime::Mailbox<int> box;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        box.push(p * kItemsPerProducer + i);
      }
    });
  }

  // Consume concurrently with the producers; close() arrives only after all
  // producers joined (push-after-close is a contract violation by design).
  std::int64_t sum = 0;
  int count = 0;
  std::thread consumer([&] {
    while (auto item = box.pop()) {
      sum += *item;
      ++count;
    }
  });
  for (auto& t : producers) t.join();
  box.close();
  consumer.join();

  constexpr int kTotal = kProducers * kItemsPerProducer;
  EXPECT_EQ(count, kTotal);
  EXPECT_EQ(sum, static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxStress, ManyProducersManyRandomConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kItemsPerProducer = 1500;
  runtime::Mailbox<int> box;
  std::atomic<int> consumed{0};
  std::atomic<std::int64_t> sum{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&box, &consumed, &sum, c] {
      support::Rng rng(static_cast<std::uint64_t>(c) + 1);
      while (auto item = box.pop_random(rng)) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        box.push(p * kItemsPerProducer + i);
      }
    });
  }

  for (auto& t : producers) t.join();
  box.close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kItemsPerProducer;
  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
}

TEST(MailboxStress, CloseRacesWithBlockedConsumers) {
  // Consumers park on an empty mailbox; close() must wake every one of them
  // exactly into the nullopt path. Repeat to sample many interleavings.
  for (int round = 0; round < 50; ++round) {
    runtime::Mailbox<int> box;
    std::atomic<int> finished{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
      consumers.emplace_back([&box, &finished] {
        while (box.pop().has_value()) {
        }
        finished.fetch_add(1, std::memory_order_relaxed);
      });
    }
    box.push(1);
    box.push(2);
    box.close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(finished.load(), 3);
  }
}

TEST(LockRank, NoRankedLocksHeldOutsideCriticalSections) {
  runtime::Mailbox<int> box;
  box.push(1);
  EXPECT_EQ(box.pop(), std::optional<int>{1});
  // Every Mailbox operation must fully release the ranked mutex before
  // returning; a leak here would poison rank checks for the whole thread.
  EXPECT_EQ(support::detail::held_count(), 0u);
}

TEST(ActorSystemStress, RequestStormAllSatisfied) {
  // Distinct-node bursts back-to-back over a reordered, jittered runtime:
  // the model's only rule is one outstanding request per node, so each round
  // fires a batch across many nodes at once and waits for the cumulative
  // count before the next volley.
  constexpr NodeId kNodes = 10;
  const auto g = graph::make_ring(kNodes);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  runtime::ActorOptions options;
  options.seed = 101;
  options.reorder_mailboxes = true;
  options.max_jitter = std::chrono::microseconds(20);
  runtime::ActorSystem system(g, proto::ring_bridge_config(kNodes), *policy,
                              options);

  std::uint64_t expected = 0;
  support::Rng rng(7);
  for (int round = 0; round < 12; ++round) {
    std::set<NodeId> requesters;
    while (requesters.size() < 5) {
      requesters.insert(static_cast<NodeId>(rng.next_below(kNodes)));
    }
    for (NodeId v : requesters) system.request(v);
    expected += requesters.size();
    ASSERT_TRUE(system.wait_for_satisfied_for(expected, kWaitCeiling))
        << "liveness regression: stuck at " << system.satisfied_count()
        << " of " << expected;
  }
  system.shutdown();

  EXPECT_EQ(system.satisfied_count(), expected);
  std::size_t holders = 0;
  for (NodeId v = 0; v < kNodes; ++v) {
    holders += system.node(v).holds_token() ? 1u : 0u;
  }
  EXPECT_EQ(holders, 1u);
}

TEST(ActorSystemStress, ConstructStormShutdownChurn) {
  // Shutdown/join ordering under churn: build a system, satisfy a burst,
  // tear it down, repeat. Half the rounds shut down explicitly, half leave
  // it to the destructor, so both paths see traffic.
  const auto g = graph::make_grid(3, 3);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  for (int round = 0; round < 8; ++round) {
    runtime::ActorOptions options;
    options.seed = static_cast<std::uint64_t>(round) + 1;
    options.reorder_mailboxes = (round % 2 == 0);
    runtime::ActorSystem system(g, proto::from_tree(graph::bfs_tree(g, 4)),
                                *policy, options);
    for (NodeId v : {0u, 2u, 6u, 8u}) system.request(v);
    ASSERT_TRUE(system.wait_for_satisfied_for(4, kWaitCeiling));
    if (round % 2 == 0) {
      system.shutdown();
      EXPECT_TRUE(system.is_shut_down());
      EXPECT_EQ(system.satisfied_count(), 4u);
    }
    // Odd rounds: destructor runs shutdown with mailboxes quiescent.
  }
}

TEST(ActorSystemStress, ConcurrentWaitersAllWake) {
  // Several threads block in wait_for_satisfied while requests trickle in;
  // every waiter must wake (no lost notifications in the CV protocol).
  constexpr NodeId kNodes = 8;
  const auto g = graph::make_ring(kNodes);
  auto policy = proto::make_policy(proto::PolicyKind::kBridge);
  runtime::ActorOptions options;
  options.seed = 31;
  runtime::ActorSystem system(g, proto::ring_bridge_config(kNodes), *policy,
                              options);

  constexpr std::uint64_t kTarget = 6;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&system, &woke] {
      system.wait_for_satisfied(kTarget);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (NodeId v : {1u, 2u, 3u, 5u, 6u, 7u}) {
    system.request(v);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), 4);
  system.shutdown();
  EXPECT_GE(system.satisfied_count(), kTarget);
}

}  // namespace
