// Concurrency stress tests, designed to run under ThreadSanitizer.
//
// The unit tests elsewhere check the runtime's functional behaviour; these
// tests exist to hand TSan (and the lock-rank checker) as many genuinely
// racy schedules as possible: many producers against many consumers on one
// Mailbox, request storms against a full ActorSystem, and repeated
// construct/storm/shutdown churn to shake the join/close ordering. They
// assert functional outcomes too, but their real assertion is "zero
// sanitizer reports" -- the TSan CI job runs exactly this binary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "runtime/actor_system.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/ring_mailbox.hpp"
#include "support/lock_rank.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

// Generous ceiling for waits: a passing run finishes in milliseconds; the
// timeout only matters when a liveness regression would otherwise hang ctest.
constexpr std::chrono::milliseconds kWaitCeiling{120000};

TEST(MailboxStress, ManyProducersOneConsumerFifo) {
  constexpr int kProducers = 8;
  constexpr int kItemsPerProducer = 2000;
  runtime::Mailbox<int> box;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        box.push(p * kItemsPerProducer + i);
      }
    });
  }

  // Consume concurrently with the producers; close() arrives only after all
  // producers joined (push-after-close is a contract violation by design).
  std::int64_t sum = 0;
  int count = 0;
  std::thread consumer([&] {
    while (auto item = box.pop()) {
      sum += *item;
      ++count;
    }
  });
  for (auto& t : producers) t.join();
  box.close();
  consumer.join();

  constexpr int kTotal = kProducers * kItemsPerProducer;
  EXPECT_EQ(count, kTotal);
  EXPECT_EQ(sum, static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxStress, ManyProducersManyRandomConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kItemsPerProducer = 1500;
  runtime::Mailbox<int> box;
  std::atomic<int> consumed{0};
  std::atomic<std::int64_t> sum{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&box, &consumed, &sum, c] {
      support::Rng rng(static_cast<std::uint64_t>(c) + 1);
      while (auto item = box.pop_random(rng)) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        box.push(p * kItemsPerProducer + i);
      }
    });
  }

  for (auto& t : producers) t.join();
  box.close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kItemsPerProducer;
  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
}

TEST(MailboxStress, CloseRacesWithBlockedConsumers) {
  // Consumers park on an empty mailbox; close() must wake every one of them
  // exactly into the nullopt path. Repeat to sample many interleavings.
  for (int round = 0; round < 50; ++round) {
    runtime::Mailbox<int> box;
    std::atomic<int> finished{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
      consumers.emplace_back([&box, &finished] {
        while (box.pop().has_value()) {
        }
        finished.fetch_add(1, std::memory_order_relaxed);
      });
    }
    box.push(1);
    box.push(2);
    box.close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(finished.load(), 3);
  }
}

// --- RingMailbox storms -----------------------------------------------------
//
// The ring carries opaque bytes; these storms use a single uint64 payload per
// slot so every frame is checkable. What TSan is being handed: the
// release/acquire pairing on per-slot sequence words under real contention,
// wrap-around slot reuse, and close racing both producers and a mid-batch
// consumer.

std::uint64_t read_slot_u64(const std::byte* slot) {
  std::uint64_t value = 0;
  std::memcpy(&value, slot, sizeof(value));
  return value;
}

TEST(RingMailboxStress, WrapAroundUnderMultiProducerContention) {
  // Capacity 8 with 4 producers x 5000 frames: thousands of full laps, so
  // every slot is recycled under contention and per-producer FIFO must
  // survive the wrap (tickets are claimed in program order and drained in
  // ticket order).
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  runtime::RingMailbox ring(/*capacity=*/8, /*slot_bytes=*/sizeof(std::uint64_t));
  ASSERT_EQ(ring.capacity(), 8u);

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value = p * kPerProducer + i;
        ASSERT_TRUE(ring.push([value](std::byte* slot) {
          std::memcpy(slot, &value, sizeof(value));
        }));
      }
    });
  }

  std::uint64_t consumed = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> last_seen(kProducers, 0);  // +1 encoded
  while (consumed < kProducers * kPerProducer) {
    const std::size_t batch = ring.acquire_batch(4);
    if (batch == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t k = 0; k < batch; ++k) {
      const std::uint64_t value = read_slot_u64(ring.batch_slot(k));
      const std::uint64_t p = value / kPerProducer;
      const std::uint64_t i = value % kPerProducer;
      ASSERT_LT(p, kProducers);
      // Per-producer FIFO: each producer's frames arrive in push order.
      ASSERT_EQ(last_seen[p], i) << "producer " << p << " reordered";
      last_seen[p] = i + 1;
      sum += value;
      ++consumed;
    }
    ring.release_batch(batch);
  }
  for (auto& t : producers) t.join();
  ring.close();

  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(consumed, kTotal);
  EXPECT_EQ(sum, kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(ring.approx_size(), 0u);
}

TEST(RingMailboxStress, FullRingReportsKFullAndBackpressures) {
  runtime::RingMailbox ring(/*capacity=*/4, /*slot_bytes=*/sizeof(std::uint64_t));
  auto fill = [](std::uint64_t value) {
    return [value](std::byte* slot) {
      std::memcpy(slot, &value, sizeof(value));
    };
  };
  // Deterministic part: exactly capacity slots fit, then kFull - and kFull
  // must not strand a ticket (slots drain and refill cleanly afterwards).
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.try_push(fill(i)), runtime::PushResult::kOk);
  }
  EXPECT_EQ(ring.try_push(fill(99)), runtime::PushResult::kFull);
  EXPECT_EQ(ring.try_push(fill(99)), runtime::PushResult::kFull);
  std::size_t batch = ring.acquire_batch(64);
  ASSERT_EQ(batch, 4u);
  for (std::size_t k = 0; k < batch; ++k) {
    EXPECT_EQ(read_slot_u64(ring.batch_slot(k)), k);
  }
  ring.release_batch(batch);
  EXPECT_EQ(ring.try_push(fill(4)), runtime::PushResult::kOk);

  // Concurrent part: a blocking producer against a deliberately slow
  // consumer; the bounded buffer must backpressure, never lose or corrupt.
  constexpr std::uint64_t kFrames = 3000;
  std::thread producer([&ring, &fill] {
    for (std::uint64_t i = 5; i < kFrames; ++i) {
      ASSERT_TRUE(ring.push(fill(i)));
    }
  });
  std::uint64_t expected = 4;
  while (expected < kFrames) {
    const std::size_t n = ring.acquire_batch(3);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(read_slot_u64(ring.batch_slot(k)), expected);
      ++expected;
    }
    ring.release_batch(n);
    if (expected % 512 < 3) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  producer.join();
  ring.close();
  EXPECT_FALSE(ring.push(fill(0)));
}

TEST(RingMailboxStress, CloseRacesMidBatchDrain) {
  // close() fires from the main thread while producers are pushing and the
  // consumer is mid-drain. Contract: every try_push that reported kOk before
  // the producers observed kClosed is drained (producers are joined before
  // the final sweep, so all successful publishes are visible), and nothing
  // is consumed twice.
  for (int round = 0; round < 20; ++round) {
    runtime::RingMailbox ring(/*capacity=*/16,
                              /*slot_bytes=*/sizeof(std::uint64_t));
    std::atomic<std::uint64_t> pushed{0};
    std::atomic<bool> producers_done{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&ring, &pushed] {
        for (std::uint64_t i = 0;; ++i) {
          const runtime::PushResult r = ring.try_push([i](std::byte* slot) {
            std::memcpy(slot, &i, sizeof(i));
          });
          if (r == runtime::PushResult::kClosed) return;
          if (r == runtime::PushResult::kOk) {
            pushed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::atomic<std::uint64_t> consumed{0};
    std::thread consumer([&ring, &consumed, &producers_done] {
      for (;;) {
        const std::size_t n = ring.acquire_batch(5);
        if (n > 0) {
          for (std::size_t k = 0; k < n; ++k) {
            (void)read_slot_u64(ring.batch_slot(k));
          }
          ring.release_batch(n);
          consumed.fetch_add(n, std::memory_order_relaxed);
          continue;
        }
        if (producers_done.load(std::memory_order_acquire) &&
            !ring.has_ready()) {
          return;
        }
        std::this_thread::yield();
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(200 * (round % 4)));
    ring.close();
    for (auto& t : producers) t.join();
    producers_done.store(true, std::memory_order_release);
    consumer.join();
    EXPECT_EQ(consumed.load(), pushed.load());
  }
}

TEST(RingMailboxStress, TryPushAfterCloseReturnsFalseAndDrains) {
  runtime::RingMailbox ring(/*capacity=*/8, /*slot_bytes=*/sizeof(std::uint64_t));
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(ring.try_push([i](std::byte* slot) {
      std::memcpy(slot, &i, sizeof(i));
    }),
              runtime::PushResult::kOk);
  }
  ring.close();
  EXPECT_TRUE(ring.closed());
  // Producers observe the close on both entry points, with no UB and no
  // frame written.
  EXPECT_EQ(ring.try_push([](std::byte*) { FAIL() << "fill ran on closed"; }),
            runtime::PushResult::kClosed);
  EXPECT_FALSE(ring.push([](std::byte*) { FAIL() << "fill ran on closed"; }));
  // Close drains, then stops: the three published frames are still readable.
  const std::size_t batch = ring.acquire_batch(64);
  ASSERT_EQ(batch, 3u);
  for (std::size_t k = 0; k < batch; ++k) {
    EXPECT_EQ(read_slot_u64(ring.batch_slot(k)), k);
  }
  ring.release_batch(batch);
  EXPECT_FALSE(ring.has_ready());
  EXPECT_EQ(ring.acquire_batch(64), 0u);
}

TEST(LockRank, NoRankedLocksHeldOutsideCriticalSections) {
  runtime::Mailbox<int> box;
  box.push(1);
  EXPECT_EQ(box.pop(), std::optional<int>{1});
  // Every Mailbox operation must fully release the ranked mutex before
  // returning; a leak here would poison rank checks for the whole thread.
  EXPECT_EQ(support::detail::held_count(), 0u);
}

TEST(ActorSystemStress, RequestStormAllSatisfied) {
  // Distinct-node bursts back-to-back over a reordered, jittered runtime:
  // the model's only rule is one outstanding request per node, so each round
  // fires a batch across many nodes at once and waits for the cumulative
  // count before the next volley.
  constexpr NodeId kNodes = 10;
  const auto g = graph::make_ring(kNodes);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  runtime::ActorOptions options;
  options.seed = 101;
  options.reorder_mailboxes = true;
  options.max_jitter = std::chrono::microseconds(20);
  runtime::ActorSystem system(g, proto::ring_bridge_config(kNodes), *policy,
                              options);

  std::uint64_t expected = 0;
  support::Rng rng(7);
  for (int round = 0; round < 12; ++round) {
    std::set<NodeId> requesters;
    while (requesters.size() < 5) {
      requesters.insert(static_cast<NodeId>(rng.next_below(kNodes)));
    }
    for (NodeId v : requesters) system.request(v);
    expected += requesters.size();
    ASSERT_TRUE(system.wait_for_satisfied_for(expected, kWaitCeiling))
        << "liveness regression: stuck at " << system.satisfied_count()
        << " of " << expected;
  }
  system.shutdown();

  EXPECT_EQ(system.satisfied_count(), expected);
  std::size_t holders = 0;
  for (NodeId v = 0; v < kNodes; ++v) {
    holders += system.node(v).holds_token() ? 1u : 0u;
  }
  EXPECT_EQ(holders, 1u);
}

TEST(ActorSystemStress, ConstructStormShutdownChurn) {
  // Shutdown/join ordering under churn: build a system, satisfy a burst,
  // tear it down, repeat. Half the rounds shut down explicitly, half leave
  // it to the destructor, so both paths see traffic.
  const auto g = graph::make_grid(3, 3);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  for (int round = 0; round < 8; ++round) {
    runtime::ActorOptions options;
    options.seed = static_cast<std::uint64_t>(round) + 1;
    options.reorder_mailboxes = (round % 2 == 0);
    runtime::ActorSystem system(g, proto::from_tree(graph::bfs_tree(g, 4)),
                                *policy, options);
    for (NodeId v : {0u, 2u, 6u, 8u}) system.request(v);
    ASSERT_TRUE(system.wait_for_satisfied_for(4, kWaitCeiling));
    if (round % 2 == 0) {
      system.shutdown();
      EXPECT_TRUE(system.is_shut_down());
      EXPECT_EQ(system.satisfied_count(), 4u);
    }
    // Odd rounds: destructor runs shutdown with mailboxes quiescent.
  }
}

TEST(ActorSystemStress, ParkWakeChurnWithTinyRings) {
  // Targets the orderings the PR-9 atomic audit weakened on purpose: the
  // relaxed eventcount phase word behind the two seq_cst Dekker fences
  // (worker park vs producer wake), the release-only overflow_nonempty
  // flag, and the relaxed request/satisfied counters. Tiny rings force
  // overflow spills through the cold Mailbox valve, and deliberate idle
  // gaps between volleys force real park/wake cycles instead of a
  // saturated pipeline - exactly the schedules where a missing fence or a
  // too-weak store would lose a wakeup (deadlock) or a frame (count
  // mismatch). Run under TSan, this is the regression net for the
  // contract table in docs/ARCHITECTURE.md section 6.
  constexpr NodeId kNodes = 12;
  const auto g = graph::make_ring(kNodes);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  runtime::ActorOptions options;
  options.seed = 907;
  options.workers = 2;       // nodes share workers: cross-worker wakes
  options.ring_capacity = 2; // minimum: nearly every burst spills overflow
  options.batch_size = 4;
  runtime::ActorSystem system(g, proto::ring_bridge_config(kNodes), *policy,
                              options);

  // Several submitter threads fire distinct node ranges (one outstanding
  // request per node is the model's rule), sleeping between volleys so
  // workers drain fully and park before the next storm hits cold.
  constexpr int kRounds = 40;
  constexpr int kSubmitters = 3;
  static_assert(kNodes % kSubmitters == 0);
  constexpr NodeId kPerSubmitter = kNodes / kSubmitters;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&system, s] {
      const auto base = static_cast<NodeId>(s) * kPerSubmitter;
      for (int round = 0; round < kRounds; ++round) {
        for (NodeId v = base; v < base + kPerSubmitter; ++v) {
          system.request(v);
        }
        const std::uint64_t target =
            static_cast<std::uint64_t>(round + 1) * kPerSubmitter *
            kSubmitters;
        // Wait for the cumulative cross-thread count, then go idle long
        // enough for every worker to park on the eventcount.
        ASSERT_TRUE(system.wait_for_satisfied_for(target, kWaitCeiling))
            << "liveness regression: stuck at " << system.satisfied_count()
            << " of " << target;
        if (round % 4 == s) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  system.shutdown();

  constexpr std::uint64_t kExpected =
      static_cast<std::uint64_t>(kRounds) * kNodes;
  EXPECT_EQ(system.satisfied_count(), kExpected);
  EXPECT_EQ(system.submitted_count(), kExpected);
  std::size_t holders = 0;
  for (NodeId v = 0; v < kNodes; ++v) {
    holders += system.node(v).holds_token() ? 1u : 0u;
  }
  EXPECT_EQ(holders, 1u);
}

TEST(ActorSystemStress, ConcurrentWaitersAllWake) {
  // Several threads block in wait_for_satisfied while requests trickle in;
  // every waiter must wake (no lost notifications in the CV protocol).
  constexpr NodeId kNodes = 8;
  const auto g = graph::make_ring(kNodes);
  auto policy = proto::make_policy(proto::PolicyKind::kBridge);
  runtime::ActorOptions options;
  options.seed = 31;
  runtime::ActorSystem system(g, proto::ring_bridge_config(kNodes), *policy,
                              options);

  constexpr std::uint64_t kTarget = 6;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&system, &woke] {
      system.wait_for_satisfied(kTarget);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (NodeId v : {1u, 2u, 3u, 5u, 6u, 7u}) {
    system.request(v);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), 4);
  system.shutdown();
  EXPECT_GE(system.satisfied_count(), kTarget);
}

}  // namespace
