// Tests for the sparse-cover hierarchy and the hierarchical directory
// baseline (experiment E11's comparator).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hier/cover.hpp"
#include "hier/hier_directory.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

TEST(Cover, EveryNodeCoveredAtEveryLevel) {
  const auto g = graph::make_ring(16);
  const graph::DistanceOracle oracle(g);
  const hier::CoverHierarchy hierarchy(oracle);
  for (std::size_t i = 0; i < hierarchy.level_count(); ++i) {
    const hier::Level& level = hierarchy.level(i);
    for (NodeId v = 0; v < 16; ++v) {
      EXPECT_FALSE(level.containing[v].empty())
          << "node " << v << " uncovered at level " << i;
    }
  }
}

TEST(Cover, DesignatedClusterSatisfiesMiddleHalfProperty) {
  // Every u within radius/2 of v must lie in v's designated cluster - the
  // property that makes lookups hit at level ~log(distance).
  const auto g = graph::make_ring(16);
  const graph::DistanceOracle oracle(g);
  const hier::CoverHierarchy hierarchy(oracle);
  for (std::size_t i = 1; i < hierarchy.level_count(); ++i) {
    const hier::Level& level = hierarchy.level(i);
    for (NodeId v = 0; v < 16; ++v) {
      const hier::Cluster& designated = level.clusters[level.designated[v]];
      for (NodeId u = 0; u < 16; ++u) {
        if (oracle.distance(u, v) <= level.radius / 2.0) {
          EXPECT_NE(std::find(designated.members.begin(),
                              designated.members.end(), u),
                    designated.members.end())
              << "level " << i << " v=" << v << " u=" << u;
        }
      }
    }
  }
}

TEST(Cover, TopLevelIsOneCluster) {
  const auto g = graph::make_grid(4, 4);
  const graph::DistanceOracle oracle(g);
  const hier::CoverHierarchy hierarchy(oracle);
  const auto& top = hierarchy.level(hierarchy.level_count() - 1);
  ASSERT_EQ(top.clusters.size(), 1u);
  EXPECT_EQ(top.clusters.front().members.size(), 16u);
}

TEST(Cover, LevelCountIsLogDiameter) {
  for (std::size_t n : {8u, 32u, 128u}) {
    const auto g = graph::make_ring(n);
    const graph::DistanceOracle oracle(g);
    const hier::CoverHierarchy hierarchy(oracle);
    const double diameter = static_cast<double>(n) / 2.0;
    const auto expected =
        static_cast<std::size_t>(std::ceil(std::log2(diameter))) + 2;
    EXPECT_LE(hierarchy.level_count(), expected + 1) << "n=" << n;
    EXPECT_GE(hierarchy.level_count(), expected - 2) << "n=" << n;
  }
}

TEST(Cover, SpaceGrowsLogarithmically) {
  // O(log n) words per node: doubling n adds O(1) levels.
  const auto words = [](std::size_t n) {
    const auto g = graph::make_ring(n);
    const graph::DistanceOracle oracle(g);
    return hier::CoverHierarchy(oracle).max_space_words_per_node();
  };
  const std::size_t w32 = words(32);
  const std::size_t w128 = words(128);
  EXPECT_GT(w128, w32);
  EXPECT_LE(w128, w32 + 6);  // ~2 extra levels, small per-level overhead
}

TEST(HierDirectory, MoveTransfersOwnership) {
  const auto g = graph::make_ring(16);
  const graph::DistanceOracle oracle(g);
  hier::HierarchicalDirectory dir(oracle, 0);
  EXPECT_EQ(dir.owner(), 0u);
  const double cost = dir.move(5);
  EXPECT_EQ(dir.owner(), 5u);
  EXPECT_GE(cost, oracle.distance(0, 5));  // at least the object transfer
}

TEST(HierDirectory, RequestAtOwnerIsFree) {
  const auto g = graph::make_ring(8);
  const graph::DistanceOracle oracle(g);
  hier::HierarchicalDirectory dir(oracle, 3);
  EXPECT_DOUBLE_EQ(dir.move(3), 0.0);
  EXPECT_EQ(dir.owner(), 3u);
}

TEST(HierDirectory, LongSequenceKeepsWorking) {
  const auto g = graph::make_ring(32);
  const graph::DistanceOracle oracle(g);
  hier::HierarchicalDirectory dir(oracle, 0);
  support::Rng rng(7);
  double total = 0.0;
  NodeId owner = 0;
  double opt = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(32));
    opt += oracle.distance(owner, v);
    total += dir.move(v);
    owner = v;
    EXPECT_EQ(dir.owner(), v);
  }
  EXPECT_GE(total, opt);  // directory overhead is nonnegative
  // and within the scheme's O(log n) factor with generous slack:
  EXPECT_LE(total, 64.0 * opt + 200.0);
}

TEST(HierDirectory, LocalMovesCostProportionalToDistance) {
  // Adjacent-node moves must not pay diameter-scale costs (the climb stops
  // at a low level thanks to the middle-half property).
  const auto g = graph::make_ring(64);
  const graph::DistanceOracle oracle(g);
  hier::HierarchicalDirectory dir(oracle, 10);
  const double near_cost = dir.move(11);
  EXPECT_LT(near_cost, 32.0);  // far below the diameter-scale worst case
}

TEST(HierDirectory, WorksOnGridsToo) {
  const auto g = graph::make_grid(5, 5);
  const graph::DistanceOracle oracle(g);
  hier::HierarchicalDirectory dir(oracle, 0);
  const std::vector<NodeId> seq{24, 12, 3, 20, 7};
  const double total = dir.run_sequence(seq);
  EXPECT_GT(total, 0.0);
  EXPECT_EQ(dir.owner(), 7u);
}

TEST(HierDirectory, SpaceMatchesHierarchy) {
  const auto g = graph::make_ring(32);
  const graph::DistanceOracle oracle(g);
  hier::HierarchicalDirectory dir(oracle, 0);
  EXPECT_GE(dir.max_space_words_per_node(),
            dir.level_count());  // one designated leader per level at least
}

}  // namespace
