// Unit tests for the Lemma 2 invariant checker on hand-built
// configurations, including deliberately broken ones.
#include <gtest/gtest.h>

#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace arvy::verify;
using arvy::graph::NodeId;

// A quiescent 4-node chain: parents 0->1->2->3, root 3 holds the token.
Configuration quiescent_chain() {
  Configuration cfg;
  cfg.parent = {1, 2, 3, 3};
  cfg.next.assign(4, std::nullopt);
  cfg.token_at = 3;
  return cfg;
}

// Node 0 has requested: red edge (0, 1) with visited {0}.
Configuration one_find_in_flight() {
  Configuration cfg = quiescent_chain();
  cfg.parent[0] = 0;
  RedEdge red;
  red.tail = 0;
  red.head = 1;
  red.producer = 0;
  red.visited = {0};
  cfg.red_edges.push_back(red);
  return cfg;
}

TEST(BrTree, AcceptsQuiescentTree) {
  EXPECT_TRUE(check_br_tree(quiescent_chain()).ok);
}

TEST(BrTree, AcceptsFindInFlight) {
  EXPECT_TRUE(check_br_tree(one_find_in_flight()).ok);
}

TEST(BrTree, RejectsMissingEdge) {
  Configuration cfg = quiescent_chain();
  cfg.parent[0] = 0;  // self-loop without a replacing red edge
  const auto result = check_br_tree(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("want n-1"), std::string::npos);
}

TEST(BrTree, RejectsCycle) {
  Configuration cfg = quiescent_chain();
  // Three black edges (n-1) but 0->1->2->0 is a cycle and the root floats.
  cfg.parent = {1, 2, 0, 3};
  const auto result = check_br_tree(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("cycle"), std::string::npos);
}

TEST(BgTrees, AcceptWhenNoRedEdges) {
  EXPECT_TRUE(check_bg_trees(quiescent_chain()).ok);
}

TEST(BgTrees, AcceptLegalCandidates) {
  EXPECT_TRUE(check_bg_trees(one_find_in_flight()).ok);
}

TEST(BgTrees, RejectCandidateInDestinationComponent) {
  Configuration cfg = one_find_in_flight();
  // Claim node 2 (in the destination component) was visited: the green
  // edge (1, 2) then parallels the black edge 1->2 and closes a cycle.
  cfg.red_edges[0].visited = {0, 2};
  const auto result = check_bg_trees(cfg);
  EXPECT_FALSE(result.ok);
}

TEST(BgTrees, SampledModeStillCatchesViolations) {
  Configuration cfg = one_find_in_flight();
  cfg.red_edges[0].visited = {0, 2};
  InvariantOptions options;
  options.max_bg_combinations = 0;  // force sampling
  options.samples_when_large = 16;
  const auto result = check_bg_trees(cfg, options);
  EXPECT_FALSE(result.ok);
}

TEST(SourceComponents, AcceptLegalConfiguration) {
  EXPECT_TRUE(check_source_components(one_find_in_flight()).ok);
}

TEST(SourceComponents, RejectVisitedNodeInDestination) {
  Configuration cfg = one_find_in_flight();
  cfg.red_edges[0].visited = {0, 3};
  const auto result = check_source_components(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("L2.3"), std::string::npos);
}

TEST(SourceComponents, RejectWaitingNodeInDestination) {
  // Producer 0's waiting chain reaches node 2, which sits across the red
  // edge - impossible per Lemma 2.3.
  Configuration cfg = one_find_in_flight();
  cfg.next[0] = 2;
  const auto result = check_source_components(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("waiting"), std::string::npos);
}

TEST(Token, RejectsVanishedToken) {
  Configuration cfg = quiescent_chain();
  cfg.token_at.reset();
  EXPECT_FALSE(check_token(cfg).ok);
}

TEST(Token, RejectsHeldAndInFlight) {
  Configuration cfg = quiescent_chain();
  cfg.token_in_flight = {{3, 0}};
  EXPECT_FALSE(check_token(cfg).ok);
}

TEST(Token, AcceptsInFlightOnly) {
  Configuration cfg = quiescent_chain();
  cfg.token_at.reset();
  cfg.token_in_flight = {{3, 0}};
  // Node 0 must have an outstanding request for states to be legal; keep
  // this check local to the token rule.
  EXPECT_TRUE(check_token(cfg).ok);
}

TEST(NextChains, RejectsSharedTarget) {
  Configuration cfg = quiescent_chain();
  cfg.next[0] = 2;
  cfg.next[1] = 2;
  const auto result = check_next_chains(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("waiting-chain"), std::string::npos);
}

TEST(NextChains, RejectsCycle) {
  Configuration cfg = quiescent_chain();
  cfg.next[0] = 1;
  cfg.next[1] = 0;
  EXPECT_FALSE(check_next_chains(cfg).ok);
}

TEST(NextChains, RejectsSelfReference) {
  Configuration cfg = quiescent_chain();
  cfg.next[2] = 2;
  EXPECT_FALSE(check_next_chains(cfg).ok);
}

TEST(NextChains, AcceptsDisjointChains) {
  Configuration cfg = quiescent_chain();
  cfg.next[3] = 0;
  cfg.parent[0] = 0;  // keep node states plausible (not checked here)
  EXPECT_TRUE(check_next_chains(cfg).ok);
}

TEST(NextChains, AcceptsOneMaximalChain) {
  // A single waiting chain threading every node: the stamped walk visits
  // each node once in total rather than O(n) times per start node.
  constexpr std::size_t n = 4096;
  Configuration cfg;
  cfg.parent.resize(n);
  for (NodeId v = 0; v < n; ++v) cfg.parent[v] = v;  // irrelevant here
  cfg.next.assign(n, std::nullopt);
  for (NodeId v = 0; v + 1 < n; ++v) cfg.next[v] = v + 1;
  EXPECT_TRUE(check_next_chains(cfg).ok);
}

TEST(NextChains, RejectsTwoCycleBesideLongChain) {
  // A long terminating chain plus a disjoint 2-cycle: indegrees are all
  // unique, so only the stamped acyclicity walk can catch this. The report
  // names the first node of the cycle in scan order.
  constexpr std::size_t n = 64;
  Configuration cfg;
  cfg.parent.resize(n);
  for (NodeId v = 0; v < n; ++v) cfg.parent[v] = v;
  cfg.next.assign(n, std::nullopt);
  for (NodeId v = 0; v + 1 < n - 2; ++v) cfg.next[v] = v + 1;
  cfg.next[n - 2] = n - 1;  // the 2-cycle {n-2, n-1}
  cfg.next[n - 1] = n - 2;
  const auto result = check_next_chains(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("cycle in next chain starting at node " +
                               std::to_string(n - 2)),
            std::string::npos);
}

TEST(NodeStates, RejectsLWithN) {
  // {L, N} is unreachable per Lemma 3.
  Configuration cfg = quiescent_chain();
  cfg.parent[0] = 0;
  cfg.next[0] = 1;
  const auto result = check_node_states(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("unreachable"), std::string::npos);
}

TEST(NodeStates, RejectsTokenWithoutSelfLoopOrNext) {
  // A node holding the token with a non-self parent and no next pointer is
  // not one of the five reachable states.
  Configuration cfg = quiescent_chain();
  cfg.token_at = 1;
  EXPECT_FALSE(check_node_states(cfg).ok);
}

TEST(NodeStates, AcceptsAllFiveReachableStates) {
  Configuration cfg;
  // 0: {} (idle), 1: {L} requester, 2: {N} queued, 3: {L,T} holder,
  // 4: {} forwarding node.
  cfg.parent = {1, 1, 3, 3, 3};
  cfg.next.assign(5, std::nullopt);
  cfg.next[2] = 1;
  cfg.token_at = 3;
  EXPECT_TRUE(check_node_states(cfg).ok);
}

TEST(TopProgress, AcceptsFindInNetworkAndTokenInFlight) {
  // Requester 0's find is in flight: its top (itself) has a find in the
  // network -> pass.
  EXPECT_TRUE(check_top_progress(one_find_in_flight()).ok);
  // Token in flight to the chain's top also passes. The old root 3
  // re-pointed at the requester when the find arrived (as the protocol
  // does), so 0 is the only self-loop.
  Configuration cfg = quiescent_chain();
  cfg.parent[0] = 0;  // 0 requested earlier
  cfg.parent[3] = 0;  // old root re-pointed per NewParent
  cfg.token_at.reset();
  cfg.token_in_flight = {{3, 0}};
  EXPECT_TRUE(check_top_progress(cfg).ok);
}

TEST(TopProgress, DetectsOrphanedWaitingChain) {
  // Node 0 has a self-loop and no token, no token in flight to it, and no
  // find in the network: its waiting chain can never be served.
  Configuration cfg = quiescent_chain();
  cfg.parent[0] = 0;
  // Patch the tree so BR stays plausible is unnecessary: check directly.
  const auto result = check_top_progress(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.detail.find("orphaned"), std::string::npos);
}

TEST(TopProgress, FollowsPreviousChainsToTheTop) {
  // 0 <- 1 <- 2 via next pointers; top(2) = 0 whose find is in flight.
  Configuration cfg = one_find_in_flight();
  cfg.next[0] = 1;
  cfg.next[1] = 2;
  cfg.parent[1] = 0;  // keep states plausible-ish; only top logic matters
  EXPECT_TRUE(check_top_progress(cfg).ok);
}

TEST(CheckAll, PassesOnLegalConfigs) {
  EXPECT_TRUE(check_all(quiescent_chain()).ok);
  EXPECT_TRUE(check_all(one_find_in_flight()).ok);
}

TEST(CheckAll, StopsAtFirstFailureWithDetail) {
  Configuration cfg = quiescent_chain();
  cfg.token_at.reset();
  const auto result = check_all(cfg);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.detail.empty());
}

TEST(WaitingSet, FollowsChains) {
  Configuration cfg = quiescent_chain();
  cfg.next[3] = 1;
  cfg.next[1] = 0;
  EXPECT_EQ(cfg.waiting_set(3), (std::vector<NodeId>{1, 0}));
  EXPECT_EQ(cfg.previous(0), std::optional<NodeId>{1});
  EXPECT_EQ(cfg.top(0), 3u);
  EXPECT_EQ(cfg.top(3), 3u);
}

}  // namespace
