// Unit tests for the graph substrate: Graph, DisjointSets, generators.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy::graph;
using arvy::support::Rng;

TEST(Graph, StartsWithIsolatedNodes) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, AddEdgeIsUndirected) {
  Graph g(3);
  g.add_edge(0, 1, 2.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 2.5);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 2.5);
}

TEST(Graph, NeighborsSpanReflectsAdjacency) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(3).size(), 0u);
}

TEST(Graph, EdgesListsEachOnceNormalized) {
  Graph g(3);
  g.add_edge(2, 0, 1.5);
  g.add_edge(1, 2);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& e : edges) EXPECT_LT(e.a, e.b);
}

TEST(GraphDeath, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(1, 1), "self-loops");
}

TEST(GraphDeath, RejectsDuplicateEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_DEATH(g.add_edge(1, 0), "duplicate");
}

TEST(GraphDeath, RejectsNonPositiveWeight) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 1, 0.0), "positive");
}

TEST(DisjointSets, UniteAndFind) {
  DisjointSets dsu(4);
  EXPECT_EQ(dsu.set_count(), 4u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_FALSE(dsu.unite(1, 0));  // already joined
  EXPECT_EQ(dsu.set_count(), 2u);
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(0, 2));
  EXPECT_TRUE(dsu.unite(0, 3));
  EXPECT_EQ(dsu.set_count(), 1u);
}

TEST(DisjointSets, RollbackRestoresSnapshotState) {
  DisjointSets dsu(6);
  ASSERT_TRUE(dsu.unite(0, 1));  // pre-rollback structure is permanent
  dsu.enable_rollback();
  EXPECT_TRUE(dsu.rollback_enabled());
  const std::size_t mark = dsu.snapshot();
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_TRUE(dsu.unite(0, 2));
  EXPECT_TRUE(dsu.same(1, 3));
  EXPECT_EQ(dsu.set_count(), 3u);
  dsu.rollback(mark);
  EXPECT_EQ(dsu.set_count(), 5u);
  EXPECT_TRUE(dsu.same(0, 1));   // pre-snapshot union survives
  EXPECT_FALSE(dsu.same(2, 3));  // post-snapshot unions undone
  EXPECT_FALSE(dsu.same(0, 2));
}

TEST(DisjointSets, RollbackRoundTripsRepeatedly) {
  // The BG checker's usage pattern: unite a shared base once, then push/pop
  // a different overlay per combination. Every overlay must see the same
  // base regardless of what earlier overlays did.
  DisjointSets dsu(8);
  ASSERT_TRUE(dsu.unite(0, 1));
  ASSERT_TRUE(dsu.unite(2, 3));
  dsu.enable_rollback();
  const std::size_t base = dsu.snapshot();
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(dsu.unite(1, 2));
    EXPECT_TRUE(dsu.unite(4, static_cast<std::size_t>(5 + round % 3)));
    EXPECT_FALSE(dsu.unite(0, 3));  // cycle via the overlay, every round
    dsu.rollback(base);
    EXPECT_EQ(dsu.set_count(), 6u);
    EXPECT_FALSE(dsu.same(1, 2));
    EXPECT_FALSE(dsu.same(4, 5));
  }
}

TEST(DisjointSets, NestedMarksUnwindInLifoOrder) {
  DisjointSets dsu(5);
  dsu.enable_rollback();
  const std::size_t outer = dsu.snapshot();
  ASSERT_TRUE(dsu.unite(0, 1));
  const std::size_t inner = dsu.snapshot();
  ASSERT_TRUE(dsu.unite(2, 3));
  ASSERT_TRUE(dsu.unite(1, 2));
  dsu.rollback(inner);
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(2, 3));
  dsu.rollback(outer);
  EXPECT_FALSE(dsu.same(0, 1));
  EXPECT_EQ(dsu.set_count(), 5u);
}

TEST(DisjointSetsDeath, RollbackWithoutEnableAborts) {
  DisjointSets dsu(3);
  EXPECT_DEATH(dsu.rollback(0), "rollback");
}

TEST(Generators, RingHasNEdgesAndDegreeTwo) {
  const Graph g = make_ring(8);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_TRUE(g.is_connected());
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.neighbors(v).size(), 2u);
  EXPECT_TRUE(g.has_edge(7, 0));
}

TEST(Generators, WeightedRingWeightsInRange) {
  Rng rng(3);
  const Graph g = make_weighted_ring(10, rng, 0.5, 2.0);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LE(e.weight, 2.0);
  }
}

TEST(Generators, PathAndStarShapes) {
  const Graph p = make_path(5);
  EXPECT_EQ(p.edge_count(), 4u);
  EXPECT_EQ(p.neighbors(0).size(), 1u);
  EXPECT_EQ(p.neighbors(2).size(), 2u);

  const Graph s = make_star(6);
  EXPECT_EQ(s.edge_count(), 5u);
  EXPECT_EQ(s.neighbors(0).size(), 5u);
  EXPECT_EQ(s.neighbors(3).size(), 1u);
}

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = make_complete(7);
  EXPECT_EQ(g.edge_count(), 21u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, GridAndTorusDegrees) {
  const Graph grid = make_grid(3, 4);
  EXPECT_EQ(grid.node_count(), 12u);
  EXPECT_EQ(grid.edge_count(), 3u * 3u + 4u * 2u);  // horizontal + vertical
  EXPECT_EQ(grid.neighbors(0).size(), 2u);  // corner

  const Graph torus = make_torus(3, 3);
  EXPECT_EQ(torus.node_count(), 9u);
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(torus.neighbors(v).size(), 4u);
}

TEST(Generators, HypercubeDegreesEqualDimension) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.neighbors(v).size(), 4u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, RandomTreeIsATree) {
  Rng rng(5);
  for (std::size_t n : {2u, 3u, 10u, 57u}) {
    const Graph g = make_random_tree(n, rng);
    EXPECT_EQ(g.edge_count(), n - 1);
    EXPECT_TRUE(g.is_connected());
  }
}

TEST(Generators, BalancedTreeNodeCount) {
  const Graph g = make_balanced_tree(2, 3);  // 1 + 2 + 4 + 8
  EXPECT_EQ(g.node_count(), 15u);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, ConnectedGnpIsConnected) {
  Rng rng(7);
  for (double p : {0.0, 0.1, 0.5}) {
    const Graph g = make_connected_gnp(20, p, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_GE(g.edge_count(), 19u);
  }
}

TEST(Generators, RandomGeometricConnectedWithEuclideanWeights) {
  Rng rng(11);
  const Graph g = make_random_geometric(30, 0.25, rng);
  EXPECT_TRUE(g.is_connected());
  for (const auto& e : g.edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.5);  // unit square diagonal bound
  }
}

TEST(Generators, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  const Graph ga = make_connected_gnp(15, 0.3, a);
  const Graph gb = make_connected_gnp(15, 0.3, b);
  EXPECT_EQ(ga.edge_count(), gb.edge_count());
  for (const auto& e : ga.edges()) EXPECT_TRUE(gb.has_edge(e.a, e.b));
}

}  // namespace
