// Experiment E5/E6 verification at test scale: the Lemma 8 lower-bound
// constructions, including an *exact* closed-form match for Ivy's sweep.
#include <gtest/gtest.h>

#include "analysis/competitive.hpp"
#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "workload/adversarial.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

TEST(IvySweep, SimulatorMatchesClosedFormExactly) {
  // Lemma 8's Ivy instance: unit ring, chain tree rooted at v_n, sweep
  // v_1..v_n. Our accounting (find and find+token) must match the closed
  // forms in workload/adversarial.hpp to the last unit.
  for (std::size_t n : {4u, 5u, 8u, 16u, 33u}) {
    const auto g = graph::make_ring(n);
    const auto init = proto::chain_config(n);
    const auto sweep = workload::ivy_ring_sweep(n);
    auto policy = proto::make_policy(proto::PolicyKind::kIvy);
    const auto report =
        analysis::measure_sequential(g, init, *policy, sweep);
    EXPECT_DOUBLE_EQ(report.find_cost, workload::ivy_sweep_find_cost(n))
        << "n=" << n;
    EXPECT_DOUBLE_EQ(report.find_cost + report.token_cost,
                     workload::ivy_sweep_total_cost(n))
        << "n=" << n;
    EXPECT_DOUBLE_EQ(report.opt, workload::ivy_sweep_opt(n)) << "n=" << n;
  }
}

TEST(IvySweep, CostGrowsQuadratically) {
  const double c16 = workload::ivy_sweep_find_cost(16);
  const double c32 = workload::ivy_sweep_find_cost(32);
  const double c64 = workload::ivy_sweep_find_cost(64);
  // Doubling n should roughly quadruple the cost.
  EXPECT_GT(c32 / c16, 3.0);
  EXPECT_LT(c32 / c16, 5.0);
  EXPECT_GT(c64 / c32, 3.0);
  EXPECT_LT(c64 / c32, 5.0);
}

TEST(IvySweep, RatioGrowsLinearly) {
  // competitive ratio ~ Theta(n): ratio(2n) / ratio(n) -> 2.
  const double r16 =
      workload::ivy_sweep_find_cost(16) / workload::ivy_sweep_opt(16);
  const double r32 =
      workload::ivy_sweep_find_cost(32) / workload::ivy_sweep_opt(32);
  EXPECT_GT(r32 / r16, 1.7);
  EXPECT_LT(r32 / r16, 2.3);
}

TEST(ArrowAlternation, WorstPairIsThePathEnds) {
  const auto g = graph::make_ring(10);
  const auto tree = graph::ring_path_tree(g, 5);
  const auto sequence = workload::arrow_worst_alternation(g, tree, 6);
  ASSERT_EQ(sequence.size(), 6u);
  EXPECT_EQ(std::min(sequence[0], sequence[1]), 0u);
  EXPECT_EQ(std::max(sequence[0], sequence[1]), 9u);
  EXPECT_EQ(sequence[0], sequence[2]);
  EXPECT_EQ(sequence[1], sequence[3]);
}

TEST(ArrowAlternation, RatioIsLinearInN) {
  // Arrow on the ring's spanning path, alternating across the wrap edge:
  // every request costs n-1 (find) while OPT pays 1, except the first
  // request which may be cheaper. Ratio must be close to n-1.
  for (std::size_t n : {8u, 16u, 32u}) {
    const auto g = graph::make_ring(n);
    const auto tree = graph::ring_path_tree(g, static_cast<NodeId>(n / 2));
    const auto init = proto::from_tree(tree);
    // Long enough that the O(n) warmup hop from the middle is amortized:
    // every alternation pays n-1 (find) against OPT 1.
    const auto sequence =
        workload::arrow_worst_alternation(g, tree, /*length=*/4 * n);
    auto policy = proto::make_policy(proto::PolicyKind::kArrow);
    const auto report = analysis::measure_sequential(g, init, *policy, sequence);
    EXPECT_GT(report.ratio_find_only, 0.8 * static_cast<double>(n - 1));
    EXPECT_LT(report.ratio_find_only, 1.2 * static_cast<double>(n - 1));
  }
}

TEST(ArrowAlternation, ArrowEdgesNeverLeaveTheSpanningPath) {
  // Sanity for the lower bound's premise: Arrow's tree stays the spanning
  // path, so the alternation keeps paying the full path forever.
  const auto g = graph::make_ring(12);
  const auto tree = graph::ring_path_tree(g, 6);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  proto::SimEngine engine(g, proto::from_tree(tree), *policy, {});
  engine.run_sequential(workload::alternating_sequence(0, 11, 8));
  for (NodeId v = 0; v < 12; ++v) {
    const NodeId p = engine.node(v).parent();
    if (p != v) {
      EXPECT_EQ(std::max(v, p) - std::min(v, p), 1u)
          << "non-path edge " << v << "->" << p;
    }
  }
}

TEST(BridgeVsLowerBounds, BridgeBeatsArrowAndIvyOnTheirWorstCases) {
  // On the very sequences that sink Arrow and Ivy, Arvy's bridge policy
  // stays within its constant factor.
  constexpr std::size_t n = 16;
  const auto g = graph::make_ring(n);

  // Ivy's nemesis: the sweep.
  {
    const auto sweep = workload::ivy_ring_sweep(n);
    auto bridge = proto::make_policy(proto::PolicyKind::kBridge);
    const auto report = analysis::measure_sequential(
        g, proto::ring_bridge_config(n), *bridge, sweep);
    EXPECT_LE(report.ratio_find_only, 5.0);
    auto ivy = proto::make_policy(proto::PolicyKind::kIvy);
    const auto ivy_report = analysis::measure_sequential(
        g, proto::chain_config(n), *ivy, sweep);
    EXPECT_GT(ivy_report.ratio_find_only, report.ratio_find_only);
  }

  // Arrow's nemesis: alternation across the wrap edge.
  {
    const auto alternation = workload::alternating_sequence(
        0, static_cast<NodeId>(n - 1), 20);
    auto bridge = proto::make_policy(proto::PolicyKind::kBridge);
    const auto report = analysis::measure_sequential(
        g, proto::ring_bridge_config(n), *bridge, alternation);
    EXPECT_LE(report.ratio_find_only, 5.0);
    const auto tree = graph::ring_path_tree(g, static_cast<NodeId>(n / 2));
    auto arrow = proto::make_policy(proto::PolicyKind::kArrow);
    const auto arrow_report = analysis::measure_sequential(
        g, proto::from_tree(tree), *arrow, alternation);
    EXPECT_GT(arrow_report.ratio_find_only, 2.0 * report.ratio_find_only);
  }
}

}  // namespace
