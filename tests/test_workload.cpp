// Unit tests for the workload generators.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy::workload;
using arvy::support::Rng;

TEST(Uniform, LengthAndRange) {
  Rng rng(1);
  const auto seq = uniform_sequence(10, 100, rng);
  EXPECT_EQ(seq.size(), 100u);
  for (NodeId v : seq) EXPECT_LT(v, 10u);
}

TEST(Uniform, AvoidsConsecutiveRepeats) {
  Rng rng(2);
  const auto seq = uniform_sequence(5, 200, rng);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_NE(seq[i], seq[i - 1]);
  }
}

TEST(Uniform, RepeatsAllowedWhenRequested) {
  Rng rng(3);
  const auto seq = uniform_sequence(3, 500, rng, /*avoid_repeats=*/false);
  bool repeat = false;
  for (std::size_t i = 1; i < seq.size(); ++i) repeat |= seq[i] == seq[i - 1];
  EXPECT_TRUE(repeat);
}

TEST(Zipf, HotNodeDominates) {
  Rng rng(5);
  const auto seq = zipf_sequence(20, 2000, 1.5, rng);
  std::vector<int> counts(20, 0);
  for (NodeId v : seq) ++counts[v];
  std::sort(counts.begin(), counts.end(), std::greater<>());
  EXPECT_GT(counts[0], counts[5] * 2);
}

TEST(RoundRobin, CyclesThroughNodes) {
  const auto seq = round_robin_sequence(4, 10);
  const std::vector<NodeId> expected{0, 1, 2, 3, 0, 1, 2, 3, 0, 1};
  EXPECT_EQ(seq, expected);
}

TEST(Alternating, TwoNodesOnly) {
  const auto seq = alternating_sequence(3, 7, 5);
  const std::vector<NodeId> expected{3, 7, 3, 7, 3};
  EXPECT_EQ(seq, expected);
}

TEST(LocalWalk, StepsStayWithinRadius) {
  const auto g = arvy::graph::make_grid(5, 5);
  Rng rng(7);
  const auto seq = local_walk_sequence(g, 40, 2, rng);
  EXPECT_EQ(seq.size(), 40u);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const auto hops = bfs_hops(g, seq[i - 1]);
    EXPECT_LE(hops[seq[i]], 2u);
    EXPECT_NE(seq[i], seq[i - 1]);
  }
}

TEST(Poisson, ArrivalsAreSortedDistinctNodes) {
  Rng rng(9);
  const auto arrivals = poisson_arrivals(20, 12, 2.0, rng);
  EXPECT_EQ(arrivals.size(), 12u);
  std::set<NodeId> nodes;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    nodes.insert(arrivals[i].node);
    if (i > 0) {
      EXPECT_GE(arrivals[i].at, arrivals[i - 1].at);
    }
  }
  EXPECT_EQ(nodes.size(), 12u);  // each node requests at most once
}

TEST(Poisson, MeanGapMatchesRate) {
  Rng rng(11);
  const auto arrivals = poisson_arrivals(3000, 3000, 4.0, rng);
  const double span = arrivals.back().at;
  EXPECT_NEAR(span / static_cast<double>(arrivals.size()), 0.25, 0.03);
}

TEST(Burst, AllAtTimeZero) {
  const auto b = burst({3, 1, 4});
  ASSERT_EQ(b.size(), 3u);
  for (const auto& r : b) EXPECT_DOUBLE_EQ(r.at, 0.0);
  EXPECT_EQ(b[0].node, 3u);
}

TEST(WorkloadDeath, PoissonRejectsMoreRequestsThanNodes) {
  Rng rng(13);
  EXPECT_DEATH((void)poisson_arrivals(5, 6, 1.0, rng), "count");
}

}  // namespace
