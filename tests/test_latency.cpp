// Tests for the request-latency analysis.
#include <gtest/gtest.h>

#include "analysis/latency.hpp"
#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

TEST(Latency, SingleRequestLatencyEqualsRoundTripTime) {
  // Distance-proportional delays: find travels 4 units (4 hops of 1), the
  // token returns over distance 4 -> latency 8.
  const auto g = graph::make_path(5);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  proto::SimEngine engine(g, proto::chain_config(5), *policy, {});
  engine.submit(0);
  engine.run_until_idle();
  const auto report = analysis::measure_latency(engine);
  EXPECT_EQ(report.latency.count, 1u);
  EXPECT_DOUBLE_EQ(report.latency.mean, 8.0);
  EXPECT_EQ(report.unsatisfied, 0u);
}

TEST(Latency, UnsatisfiedRequestsAreCountedNotSummarized) {
  const auto g = graph::make_path(4);
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  proto::SimEngine engine(g, proto::chain_config(4), *policy, {});
  engine.submit(0);  // leave in flight
  const auto report = analysis::measure_latency(engine);
  EXPECT_EQ(report.unsatisfied, 1u);
  EXPECT_EQ(report.latency.count, 0u);
}

TEST(Latency, ConcurrentBurstHasSpreadAndFifoIsOrderly) {
  const auto g = graph::make_ring(12);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine::Options options;
  options.delay = sim::make_constant_delay(1.0);
  proto::SimEngine engine(g, proto::ring_bridge_config(12), *policy,
                          std::move(options));
  support::Rng rng(7);
  const auto arrivals = workload::poisson_arrivals(12, 6, 0.5, rng);
  engine.run_concurrent(arrivals);
  const auto report = analysis::measure_latency(engine);
  EXPECT_EQ(report.latency.count, 6u);
  EXPECT_GT(report.latency.max, 0.0);
  EXPECT_GE(report.latency.p99, report.latency.p50);
  EXPECT_GE(report.latency.max, report.latency.mean);
}

TEST(Latency, QueueDepthZeroForSequentialRuns) {
  const auto g = graph::make_ring(8);
  auto policy = proto::make_policy(proto::PolicyKind::kBridge);
  proto::SimEngine engine(g, proto::ring_bridge_config(8), *policy, {});
  support::Rng rng(3);
  engine.run_sequential(workload::uniform_sequence(8, 20, rng));
  const auto report = analysis::measure_latency(engine);
  // Sequential service is FIFO: satisfaction order == submission order.
  EXPECT_DOUBLE_EQ(report.queue_depth.max, 0.0);
}

}  // namespace
