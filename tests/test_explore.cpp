// The arvy_explore model checker: exhaustive interleaving exploration with
// sleep-set DPOR, counterexample minimization, and replay-as-test.
//
// The headline guarantees pinned here:
//   - small closed scenarios explore exhaustively and cleanly (Lemma 2 on
//     every reachable configuration, Theorem 5 at every quiescent one);
//   - the DPOR reduction is a pure optimization: same state set and
//     fingerprint as naive DFS, fewer transitions;
//   - a seeded protocol-level corruption is caught, minimized to a shortest
//     trace, and the emitted trace file replays to the same failure;
//   - every delivery discipline's outcome is one of the explored quiescent
//     configurations (exploration subsumes per-discipline spot checks).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "explore/explorer.hpp"
#include "explore/independence.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"

namespace {

using namespace arvy;
using explore::Action;
using explore::ActionDesc;
using explore::ActionKind;
using explore::ExploreOptions;
using explore::ExploreResult;
using explore::Scenario;
using explore::Trace;

TEST(Explore, TriangleArrowIsExhaustiveAndClean) {
  const Scenario s = explore::make_scenario("triangle", proto::PolicyKind::kArrow);
  const ExploreResult r = explore::explore(s);
  EXPECT_FALSE(r.violation.has_value()) << r.violation->detail;
  EXPECT_TRUE(r.stats.complete);
  EXPECT_GT(r.stats.states, 0u);
  EXPECT_GT(r.stats.quiescent, 0u);
}

TEST(Explore, MatrixIsExhaustiveAndClean) {
  const struct {
    const char* topology;
    proto::PolicyKind policy;
  } cases[] = {
      {"path4", proto::PolicyKind::kArrow},
      {"path4", proto::PolicyKind::kIvy},
      {"star5", proto::PolicyKind::kIvy},
      {"ring4", proto::PolicyKind::kBridge},
      {"ring6", proto::PolicyKind::kArrow},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.topology);
    const Scenario s = explore::make_scenario(c.topology, c.policy);
    const ExploreResult r = explore::explore(s);
    EXPECT_FALSE(r.violation.has_value())
        << c.topology << ": " << r.violation->detail;
    EXPECT_TRUE(r.stats.complete);
  }
}

TEST(Explore, DporVisitsSameStatesWithFewerTransitions) {
  const Scenario s = explore::make_scenario(
      "ring6", proto::PolicyKind::kArrow, {1, 2, 3, 4, 5});
  ExploreOptions dpor;
  ExploreOptions naive;
  naive.sleep_sets = false;
  const ExploreResult with = explore::explore(s, dpor);
  const ExploreResult without = explore::explore(s, naive);
  ASSERT_FALSE(with.violation.has_value());
  ASSERT_FALSE(without.violation.has_value());
  ASSERT_TRUE(with.stats.complete);
  ASSERT_TRUE(without.stats.complete);
  // Sleep sets only prune transitions, never states: identical state sets
  // (count and order-independent fingerprint), measurably fewer transitions.
  EXPECT_EQ(with.stats.states, without.stats.states);
  EXPECT_EQ(with.stats.state_fingerprint, without.stats.state_fingerprint);
  EXPECT_LT(with.stats.transitions, without.stats.transitions);
  EXPECT_GT(with.stats.sleep_prunes, 0u);
  EXPECT_EQ(without.stats.sleep_prunes, 0u);
}

TEST(Explore, FaultBudgetBranchesStayCleanUnderRelaxedChecks) {
  const Scenario s =
      explore::make_scenario("path4", proto::PolicyKind::kArrow);
  ExploreOptions faultless;
  ExploreOptions faulty;
  faulty.fault_budget = 1;
  const ExploreResult base = explore::explore(s, faultless);
  const ExploreResult with = explore::explore(s, faulty);
  ASSERT_FALSE(base.violation.has_value());
  ASSERT_FALSE(with.violation.has_value()) << with.violation->detail;
  EXPECT_TRUE(with.stats.complete);
  // Drop choice points open strictly more behaviors (every lossy branch,
  // plus the loss-free ones the faultless run already covered).
  EXPECT_GT(with.stats.states, base.stats.states);
  EXPECT_GT(with.stats.quiescent, base.stats.quiescent);
}

TEST(Explore, SeededBugIsCaughtMinimizedAndReplayable) {
  const Scenario s =
      explore::make_scenario("path4", proto::PolicyKind::kArrow, {0, 3});
  ExploreOptions bug;
  bug.corrupt_at_find_delivery = 3;
  bug.corrupt_with = 0;
  const ExploreResult r = explore::explore(s, bug);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_FALSE(r.violation->liveness);
  EXPECT_NE(r.violation->detail.find("find by 3"), std::string::npos)
      << r.violation->detail;
  EXPECT_FALSE(r.violation->dot.empty());

  // Minimized: the corruption fires on the third find delivery, so no
  // shorter trace can exhibit it - the minimizer must land exactly there.
  EXPECT_EQ(r.violation->trace.size(), 3u);

  // Replay-as-test, both sides: with the bug seeded the trace reproduces
  // the violation at the same step; without it the very same schedule is
  // clean (the trace indicts the seeded bug, not the protocol).
  const explore::ReplayOutcome broken =
      explore::replay(s, r.violation->trace, bug);
  EXPECT_FALSE(broken.check.ok);
  EXPECT_EQ(broken.failing_step, r.violation->trace.size());
  EXPECT_EQ(broken.check.detail, r.violation->detail);
  const explore::ReplayOutcome fixed = explore::replay(s, r.violation->trace);
  EXPECT_TRUE(fixed.check.ok) << fixed.check.detail;
}

TEST(Explore, TraceFileRoundTrips) {
  const Scenario s =
      explore::make_scenario("path4", proto::PolicyKind::kArrow, {0, 3});
  ExploreOptions options;
  options.fault_budget = 1;
  options.corrupt_at_find_delivery = 3;
  options.corrupt_with = 0;
  Trace trace;
  trace.push_back(explore::parse_action("deliver:find:0"));
  trace.push_back(explore::parse_action("drop:find:3"));
  trace.push_back(explore::parse_action("deliver:token"));

  std::stringstream buffer;
  explore::write_trace(buffer, s, options, trace, "example detail");
  const explore::TraceFile file = explore::read_trace(buffer);

  EXPECT_EQ(file.scenario.topology, "path4");
  EXPECT_EQ(file.scenario.policy, proto::PolicyKind::kArrow);
  EXPECT_EQ(file.scenario.requests, (std::vector<graph::NodeId>{0, 3}));
  EXPECT_EQ(file.options.fault_budget, 1u);
  EXPECT_EQ(file.options.corrupt_at_find_delivery, 3u);
  EXPECT_EQ(file.options.corrupt_with, 0u);
  EXPECT_EQ(file.trace, trace);
  EXPECT_EQ(file.detail, "example detail");

  EXPECT_EQ(explore::format_action(trace[0]), "deliver:find:0");
  EXPECT_EQ(explore::format_action(trace[1]), "drop:find:3");
  EXPECT_EQ(explore::format_action(trace[2]), "deliver:token");
  EXPECT_THROW((void)explore::parse_action("deliver:bogus"),
               std::invalid_argument);
  EXPECT_THROW((void)explore::read_trace(
                   *std::make_unique<std::stringstream>("topology path4\n")),
               std::invalid_argument);
}

// Committed counterexample traces replay as regression tests: each file
// records a seeded bug whose violation the checker must keep catching, and
// whose schedule must stay clean once the seeding is removed.
TEST(Explore, CommittedTracesReplay) {
  const std::filesystem::path dir = ARVY_EXPLORE_TRACE_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".trace") continue;
    ++seen;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    const explore::TraceFile file = explore::read_trace(in);
    const explore::ReplayOutcome seeded =
        explore::replay(file.scenario, file.trace, file.options);
    EXPECT_FALSE(seeded.check.ok)
        << "committed counterexample no longer reproduces";
    if (!file.detail.empty()) {
      EXPECT_EQ(seeded.check.detail, file.detail);
    }
    ExploreOptions clean = file.options;
    clean.corrupt_at_find_delivery = 0;
    clean.corrupt_with = graph::kInvalidNode;
    const explore::ReplayOutcome fixed =
        explore::replay(file.scenario, file.trace, clean);
    EXPECT_TRUE(fixed.check.ok) << fixed.check.detail;
  }
  EXPECT_GT(seen, 0u) << "no .trace files committed under " << dir;
}

// Every discipline's run is one schedule of the same action graph, so its
// final configuration must be among the explored quiescent ones. This is
// the formal sense in which exhaustive exploration subsumes per-discipline
// spot checks.
TEST(Explore, DisciplineRunsLandInExploredQuiescentSet) {
  const Scenario s = explore::make_scenario("path4", proto::PolicyKind::kIvy);
  ExploreOptions options;
  options.collect_quiescent = true;
  const ExploreResult r = explore::explore(s, options);
  ASSERT_FALSE(r.violation.has_value());
  ASSERT_TRUE(r.stats.complete);
  ASSERT_FALSE(r.quiescent_configs.empty());

  const auto policy = proto::make_policy(s.policy, 2);
  for (const sim::Discipline discipline :
       {sim::Discipline::kTimed, sim::Discipline::kFifo,
        sim::Discipline::kLifo, sim::Discipline::kRandom}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
      proto::EngineOptions engine_options;
      engine_options.discipline = discipline;
      engine_options.seed = seed;
      proto::SimEngine engine(s.graph, s.init, *policy,
                              std::move(engine_options));
      for (const graph::NodeId v : s.requests) engine.submit(v);
      engine.run_until_idle();
      verify::Configuration cfg = verify::capture(engine);
      cfg.canonicalize();
      EXPECT_NE(std::find(r.quiescent_configs.begin(),
                          r.quiescent_configs.end(), cfg),
                r.quiescent_configs.end())
          << "discipline " << static_cast<int>(discipline) << " seed " << seed
          << " reached a configuration the explorer never saw";
    }
  }
}

TEST(Explore, ScenarioValidationRejectsBadInput) {
  EXPECT_THROW((void)explore::make_scenario("klein-bottle",
                                            proto::PolicyKind::kArrow),
               std::invalid_argument);
  EXPECT_THROW(
      (void)explore::make_scenario("path4", proto::PolicyKind::kRandom),
      std::invalid_argument);
  EXPECT_THROW(
      (void)explore::make_scenario("path4", proto::PolicyKind::kArrow, {9}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)explore::make_scenario("path4", proto::PolicyKind::kArrow, {1, 1}),
      std::invalid_argument);
  EXPECT_THROW((void)explore::parse_policy_kind("coinflip"),
               std::invalid_argument);
  EXPECT_EQ(explore::parse_policy_kind("arrow"), proto::PolicyKind::kArrow);
}

TEST(Explore, BudgetsTruncateAndReportIncomplete) {
  const Scenario s = explore::make_scenario(
      "ring6", proto::PolicyKind::kArrow, {1, 2, 3, 4, 5});
  ExploreOptions options;
  options.max_states = 10;
  const ExploreResult r = explore::explore(s, options);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_FALSE(r.violation.has_value());

  ExploreOptions shallow;
  shallow.max_depth = 2;
  const ExploreResult rd = explore::explore(s, shallow);
  EXPECT_FALSE(rd.stats.complete);
  EXPECT_LE(rd.stats.max_depth_seen, 2u);
}

TEST(Explore, EnabledActionsTrackPendingMessages) {
  const Scenario s =
      explore::make_scenario("path4", proto::PolicyKind::kArrow, {0, 3});
  const auto policy = proto::make_policy(s.policy, 2);
  proto::SimEngine engine(s.graph, s.init, *policy);
  for (const graph::NodeId v : s.requests) engine.submit(v);

  const std::vector<ActionDesc> plain = explore::enabled_actions(engine);
  ASSERT_EQ(plain.size(), 2u);  // one find per requester
  for (const ActionDesc& d : plain) {
    EXPECT_EQ(d.action.kind, ActionKind::kDeliver);
    EXPECT_FALSE(d.action.token);
  }
  // With fault budget each pending message also offers a drop.
  const std::vector<ActionDesc> with_drops =
      explore::enabled_actions(engine, 1);
  EXPECT_EQ(with_drops.size(), 4u);

  // resolve() maps semantic actions to live bus ids; apply_action consumes.
  const Action find0 = plain[0].action;
  EXPECT_NE(explore::resolve(engine, find0), 0u);
  EXPECT_TRUE(explore::apply_action(engine, find0));
  EXPECT_EQ(explore::resolve(engine, find0), 0u);
  Action token;
  token.token = true;
  // The first find terminated at the token holder: a token is now in flight.
  EXPECT_NE(explore::resolve(engine, token), 0u);
}

TEST(Explore, StatsJsonIsWellFormed) {
  const Scenario s = explore::make_scenario("triangle", proto::PolicyKind::kArrow);
  const ExploreOptions options;
  const ExploreResult r = explore::explore(s, options);
  const std::string json = explore::stats_json(s, options, r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"scenario\":\"triangle/arrow\""), std::string::npos);
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(json.find("\"violation\":false"), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\":\""), std::string::npos);
}

}  // namespace
