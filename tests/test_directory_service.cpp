// The sharded DirectoryService: golden determinism, Directory equivalence on
// the single-object corner, million-object residency, live-mode parity and
// concurrency, per-shard fault scoping, canonical crash recovery, observers,
// and the control plane. (The single-object facade itself is covered by
// tests/test_directory_api.cpp.)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "graph/generators.hpp"
#include "proto/directory.hpp"
#include "service/directory_service.hpp"
#include "service/request.hpp"
#include "support/rng.hpp"

namespace {

using namespace arvy;
using graph::NodeId;
using service::ObjectRequest;

// A deterministic mixed volley over `objects` objects of a `nodes`-node
// graph; both modes and both determinism runs replay the exact same one.
std::vector<ObjectRequest> make_volley(std::size_t objects, std::size_t nodes,
                                       std::size_t length,
                                       std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<ObjectRequest> volley;
  volley.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    volley.push_back(ObjectRequest{
        static_cast<service::ObjectId>(rng.next_below(objects)),
        static_cast<NodeId>(rng.next_below(nodes)), 0});
  }
  return volley;
}

// The unified-options satellite, pinned: the old names are the new type.
static_assert(std::is_same_v<DirectoryOptions, Options>);
static_assert(std::is_same_v<LiveOptions, Options>);

TEST(ServiceDeterminism, SameSeedSameVolleySameTotals) {
  const auto g = graph::make_grid(3, 3);
  const auto volley = make_volley(16, g.node_count(), 96, /*seed=*/5);
  Options options{.policy = proto::PolicyKind::kIvy, .seed = 11};

  DirectoryService a(g, 16, 3, options);
  DirectoryService b(g, 16, 3, options);
  for (DirectoryService* service : {&a, &b}) {
    service->submit_batch(volley);
    EXPECT_TRUE(service->drain());
  }

  EXPECT_EQ(a.satisfied_count(), b.satisfied_count());
  const auto ca = a.cost_snapshot(), cb = b.cost_snapshot();
  EXPECT_DOUBLE_EQ(ca.total_distance(), cb.total_distance());
  EXPECT_EQ(ca.find_messages, cb.find_messages);
  EXPECT_EQ(ca.token_messages, cb.token_messages);
  for (service::ObjectId id = 0; id < 16; ++id) {
    EXPECT_EQ(a.holder(id), b.holder(id)) << "object " << id;
  }
}

TEST(ServiceDeterminism, SingleObjectMatchesDirectory) {
  // The API-redesign contract: on the 1-object/1-shard corner the service is
  // the same protocol as the single-object facade - same canonical initial
  // tree, same policy, same sequential semantics, so identical holders and
  // identical charged costs.
  const auto g = graph::make_ring(9);
  const std::vector<NodeId> sequence{3, 7, 1, 5, 0, 8};

  Directory dir(g, {.policy = proto::PolicyKind::kIvy});
  DirectoryService service(g, 1, 1, {.policy = proto::PolicyKind::kIvy});
  for (NodeId node : sequence) {
    dir.acquire_and_wait(node);
    service.acquire_and_wait(0, node);
    EXPECT_EQ(service.holder(0), dir.holder());
  }
  const auto dc = dir.costs();
  const auto sc = service.cost_snapshot();
  EXPECT_DOUBLE_EQ(sc.total_distance(), dc.total_distance());
  EXPECT_EQ(sc.find_messages, dc.find_messages);
  EXPECT_EQ(sc.token_messages, dc.token_messages);
}

TEST(ServiceScale, MillionObjectsResidencyTracksTouchedSet) {
  const auto g = graph::make_ring(8);
  constexpr std::size_t kObjects = 1u << 20;
  DirectoryService service(g, kObjects, 4,
                           {.policy = proto::PolicyKind::kArrow});
  EXPECT_EQ(service.object_count(), kObjects);
  EXPECT_EQ(service.resident_objects(), 0u);

  // Touch a scattered 64-object subset of the million.
  constexpr std::size_t kTouched = 64;
  for (std::size_t i = 0; i < kTouched; ++i) {
    const auto object = static_cast<service::ObjectId>(i * 16127 % kObjects);
    service.acquire_and_wait(object, static_cast<NodeId>(i % 8));
  }
  EXPECT_EQ(service.satisfied_count(), kTouched);
  // Residency scales with objects touched, not registered (ids can repeat in
  // the stride above, hence <=).
  EXPECT_LE(service.resident_objects(), kTouched);
  EXPECT_GT(service.resident_objects(), 0u);
  // Parked rows are compact: well under 100 bytes/object on an 8-node graph.
  EXPECT_LT(service.resident_bytes(), service.resident_objects() * 100);

  const auto report = service.check_sampled(/*per_shard=*/4, /*seed=*/3);
  EXPECT_TRUE(static_cast<bool>(report)) << report.first_failure;
  EXPECT_GT(report.objects_checked, 0u);
}

TEST(ServiceLive, MatchesSimTotalsOnTheSameVolley) {
  const auto g = graph::make_grid(3, 3);
  const auto volley = make_volley(12, g.node_count(), 120, /*seed=*/21);
  Options options{.policy = proto::PolicyKind::kIvy, .seed = 4};

  DirectoryService sim(g, 12, 2, options, ServiceMode::kSim);
  sim.submit_batch(volley);
  ASSERT_TRUE(sim.drain());

  DirectoryService live(g, 12, 2, options, ServiceMode::kLive);
  live.submit_batch(volley);
  ASSERT_TRUE(live.drain(std::chrono::milliseconds(60'000)));
  live.shutdown();

  // One caller thread means each shard's ring sees its requests in exactly
  // the sim processing order, and shards are independent - so live totals
  // are not merely close, they are identical.
  EXPECT_EQ(live.satisfied_count(), sim.satisfied_count());
  const auto cs = sim.cost_snapshot(), cl = live.cost_snapshot();
  EXPECT_DOUBLE_EQ(cl.total_distance(), cs.total_distance());
  EXPECT_EQ(cl.find_messages, cs.find_messages);
  EXPECT_EQ(cl.token_messages, cs.token_messages);
  for (service::ObjectId id = 0; id < 12; ++id) {
    EXPECT_EQ(live.holder(id), sim.holder(id)) << "object " << id;
  }
}

TEST(ServiceLive, ConcurrentProducersAllSatisfied) {
  const auto g = graph::make_grid(3, 3);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 128;
  DirectoryService service(g, 32, 2, {.policy = proto::PolicyKind::kIvy},
                           ServiceMode::kLive);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &g, p] {
      support::Rng rng(100 + p);
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        service.acquire(
            static_cast<service::ObjectId>(rng.next_below(32)),
            static_cast<NodeId>(rng.next_below(g.node_count())));
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_TRUE(service.drain(std::chrono::milliseconds(60'000)));
  EXPECT_EQ(service.submitted_count(), kProducers * kPerProducer);
  EXPECT_EQ(service.satisfied_count(), kProducers * kPerProducer);
  service.shutdown();
  const auto report = service.check_sampled();
  EXPECT_TRUE(static_cast<bool>(report)) << report.first_failure;
}

TEST(ServiceLive, AcquireAndWaitBlocksUntilProcessed) {
  const auto g = graph::make_ring(6);
  DirectoryService service(g, 4, 2, {.policy = proto::PolicyKind::kArrow},
                           ServiceMode::kLive);
  for (std::size_t round = 0; round < 8; ++round) {
    const auto object = static_cast<service::ObjectId>(round % 4);
    service.acquire_and_wait(object, static_cast<NodeId>(round % 6));
    // The wait is per-shard-processed, so by now this request is counted.
    EXPECT_GE(service.processed_count(), round + 1);
  }
  service.shutdown();
  EXPECT_EQ(service.satisfied_count(), 8u);
}

TEST(ServiceFaults, PlansScopeToTheirShards) {
  const auto g = graph::make_ring(8);
  Options options;
  options.policy = proto::PolicyKind::kIvy;
  options.discipline = sim::Discipline::kTimed;
  options.delay = sim::make_uniform_delay(1.0, 2.0);
  // Lossy plan scoped to shard 0 only; retries win liveness back.
  options.faults = {.drop_find = 0.5, .seed = 7, .shards = {0}};
  options.retry = {.rto = 4.0, .backoff = 2.0};

  DirectoryService service(g, 16, 2, options);
  for (std::size_t i = 0; i < 64; ++i) {
    service.acquire_and_wait(static_cast<service::ObjectId>(i % 16),
                             static_cast<NodeId>((i * 3) % 8));
  }
  EXPECT_EQ(service.satisfied_count(), 64u);
  const auto scoped = service.shard_fault_stats(0);
  const auto clean = service.shard_fault_stats(1);
  EXPECT_GT(scoped.drops, 0u);
  EXPECT_EQ(clean.drops, 0u);
  EXPECT_EQ(service.fault_stats().drops, scoped.drops);
}

TEST(ServiceFaults, PermanentTokenLossRecoversFromCanonicalTree) {
  const auto g = graph::make_ring(6);
  Options options;
  options.policy = proto::PolicyKind::kArrow;
  options.discipline = sim::Discipline::kTimed;
  options.delay = sim::make_uniform_delay(1.0, 2.0);
  // Every token transfer is dropped and retries are off: the first movement
  // of any object's token is a permanent loss.
  options.faults = {.drop_token = 1.0, .seed = 3};
  options.retry = {.enabled = false};

  DirectoryService service(g, 2, 1, options);
  service.acquire(0, 2);  // token for object 0 is now lost in flight
  // Touching object 1 forces object 0 to park; the park detects the lost
  // token and re-seeds object 0 from its canonical initial tree.
  service.acquire(1, 4);
  EXPECT_GE(service.fault_stats().lost_tokens, 1u);
  EXPECT_GE(service.recovery_count(), 1u);
  // Post-recovery the object is alive again: its holder is a valid node and
  // a sampled Lemma-2 sweep still passes.
  EXPECT_TRUE(service.holder(0).has_value());
  const auto report = service.check_sampled();
  EXPECT_TRUE(static_cast<bool>(report)) << report.first_failure;
}

TEST(ServiceObservers, HooksCarryTheObjectAxis) {
  const auto g = graph::make_ring(6);
  DirectoryService service(g, 4, 2, {.policy = proto::PolicyKind::kIvy});
  std::vector<service::ObjectId> satisfied_objects;
  std::uint64_t messages = 0;
  service.on_satisfied(
      [&](service::ObjectId object, const proto::RequestRecord& record) {
        EXPECT_TRUE(record.satisfied_at.has_value());
        satisfied_objects.push_back(object);
      });
  service.on_message([&](service::ObjectId object, const MessageEvent& event) {
    EXPECT_LT(object, 4u);
    EXPECT_GT(event.distance, 0.0);
    ++messages;
  });

  service.acquire_and_wait(2, 1);
  service.acquire_and_wait(0, 3);
  service.acquire_and_wait(2, 5);
  EXPECT_EQ(satisfied_objects,
            (std::vector<service::ObjectId>{2, 0, 2}));
  const auto costs = service.cost_snapshot();
  EXPECT_EQ(messages, costs.find_messages + costs.token_messages);
}

TEST(ServiceControlPlane, ObjectsAndShardsGrowMidstream) {
  const auto g = graph::make_ring(8);
  DirectoryService service(g, 8, 2, {.policy = proto::PolicyKind::kIvy});
  const auto epoch0 = service.routing_epoch();
  service.acquire_and_wait(7, 3);

  service.add_objects(8);
  EXPECT_EQ(service.object_count(), 16u);
  EXPECT_GT(service.routing_epoch(), epoch0);
  service.acquire_and_wait(12, 5);
  EXPECT_EQ(service.holder(12), std::optional<NodeId>{5});

  // Shard growth (kSim): old placements frozen, new objects may land wider.
  std::vector<std::uint32_t> before(16);
  for (service::ObjectId id = 0; id < 16; ++id) before[id] = service.route(id);
  service.add_shards(2);
  EXPECT_EQ(service.shard_count(), 4u);
  for (service::ObjectId id = 0; id < 16; ++id) {
    EXPECT_EQ(service.route(id), before[id]);
  }
  service.add_objects(64);
  bool widened = false;
  for (service::ObjectId id = 16; id < 80; ++id) {
    if (service.route(id) >= 2) widened = true;
  }
  EXPECT_TRUE(widened);
  service.acquire_and_wait(79, 1);
  EXPECT_EQ(service.holder(79), std::optional<NodeId>{1});
}

}  // namespace
