// Differential properties that must hold for EVERY policy on EVERY
// topology under sequential semantics - the cross-policy contract of
// Algorithm 1:
//   * every request satisfied, in submission order;
//   * the token ends at the last requester and the parent pointers form a
//     tree rooted there;
//   * token traffic equals the offline OPT exactly (the token always moves
//     holder -> requester on a shortest path);
//   * find traffic is at least OPT (the find must reach the token's
//     neighbourhood) and finite;
//   * the invariants hold in the quiescent final configuration.
#include <gtest/gtest.h>

#include "analysis/opt.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/tree_metrics.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"
#include "verify/liveness.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::Graph;
using graph::NodeId;

enum class Topo { kRing, kGrid, kComplete, kTree, kHypercube, kGeometric };

const char* topo_name(Topo t) {
  switch (t) {
    case Topo::kRing:
      return "ring";
    case Topo::kGrid:
      return "grid";
    case Topo::kComplete:
      return "complete";
    case Topo::kTree:
      return "tree";
    case Topo::kHypercube:
      return "hypercube";
    case Topo::kGeometric:
      return "geometric";
  }
  return "?";
}

Graph build(Topo t) {
  support::Rng rng(99);
  switch (t) {
    case Topo::kRing:
      return graph::make_ring(12);
    case Topo::kGrid:
      return graph::make_grid(3, 4);
    case Topo::kComplete:
      return graph::make_complete(9);
    case Topo::kTree:
      return graph::make_random_tree(11, rng);
    case Topo::kHypercube:
      return graph::make_hypercube(3);
    case Topo::kGeometric:
      return graph::make_random_geometric(12, 0.4, rng);
  }
  ARVY_UNREACHABLE("bad topo");
}

struct Params {
  Topo topo;
  proto::PolicyKind policy;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  return std::string(topo_name(info.param.topo)) + "_" +
         std::string(proto::policy_kind_name(info.param.policy));
}

class SequentialContract : public ::testing::TestWithParam<Params> {};

TEST_P(SequentialContract, HoldsForRandomWorkloads) {
  const auto [topo, policy_kind] = GetParam();
  const Graph g = build(topo);
  const bool is_ring = topo == Topo::kRing;
  if (policy_kind == proto::PolicyKind::kBridge && !is_ring) {
    GTEST_SKIP() << "bridge policy is ring-specific";
  }
  const auto init =
      policy_kind == proto::PolicyKind::kBridge
          ? proto::ring_bridge_config(g.node_count())
          : proto::from_tree(shortest_path_tree(
                g, graph::metric_summary(g).center));
  auto policy = proto::make_policy(policy_kind, 2);
  proto::SimEngine engine(g, init, *policy, {});
  support::Rng rng(7);
  const auto sequence = workload::uniform_sequence(g.node_count(), 25, rng);
  engine.run_sequential(sequence);

  // Liveness + order.
  EXPECT_EQ(engine.unsatisfied_count(), 0u);
  const auto audit = verify::audit_liveness(engine);
  EXPECT_TRUE(audit.ok) << audit.detail;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ(engine.requests()[i].satisfaction_index, i + 1);
  }

  // Final placement and structure.
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{sequence.back()});
  const auto cfg = verify::capture(engine);
  const auto check = verify::check_all(cfg);
  EXPECT_TRUE(check.ok) << check.detail;

  // Cost identities/bounds.
  const double opt =
      analysis::opt_sequential(engine.oracle(), init.root, sequence);
  EXPECT_DOUBLE_EQ(engine.costs().token_distance, opt);
  EXPECT_GE(engine.costs().find_distance + 1e-9, opt);
  // Exactly one token transfer per request, except requests made by the
  // node already holding the token.
  std::uint64_t in_place = 0;
  NodeId holder = init.root;
  for (NodeId v : sequence) {
    if (v == holder) ++in_place;
    holder = v;
  }
  EXPECT_EQ(engine.costs().token_messages, sequence.size() - in_place);
}

std::vector<Params> all_params() {
  std::vector<Params> out;
  for (Topo t : {Topo::kRing, Topo::kGrid, Topo::kComplete, Topo::kTree,
                 Topo::kHypercube, Topo::kGeometric}) {
    for (proto::PolicyKind p : proto::all_policy_kinds()) {
      out.push_back({t, p});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, SequentialContract,
                         ::testing::ValuesIn(all_params()), param_name);

// The weighted-ring bridge under concurrent adversarial delivery: Theorem
// 7's configuration fuzzed the way E7 fuzzes the unit ring.
class WeightedBridgeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedBridgeFuzz, InvariantsAndLiveness) {
  const std::uint64_t seed = GetParam();
  support::Rng wrng(seed);
  const auto g = graph::make_weighted_ring(9, wrng, 0.2, 4.0);
  const auto init = proto::weighted_ring_bridge_config(g);
  auto policy = proto::make_policy(proto::PolicyKind::kBridge);
  proto::SimEngine::Options options;
  options.discipline = sim::Discipline::kRandom;
  options.seed = seed;
  proto::SimEngine engine(g, init, *policy, std::move(options));
  engine.set_post_event_hook([&](const proto::SimEngine& eng) {
    const auto check = verify::check_all(verify::capture(eng));
    ASSERT_TRUE(check.ok) << check.detail;
  });
  support::Rng driver(seed * 13 + 5);
  std::size_t submitted = 0;
  while (submitted < 25 || !engine.bus().idle()) {
    if (submitted < 25 && (engine.bus().idle() || driver.next_bool(0.5))) {
      const auto v = static_cast<NodeId>(driver.next_below(9));
      if (!engine.node(v).outstanding().has_value()) {
        engine.submit(v);
        ++submitted;
      }
    } else {
      engine.step();
    }
  }
  EXPECT_TRUE(verify::audit_liveness(engine).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedBridgeFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
