// Negative tests: the paper's model assumptions are load-bearing.
//
// §3 assumes messages "are never lost". These tests inject message loss and
// show precisely which guarantee dies: a lost find strands its request
// forever (Theorem 5 fails), a lost token strands every future request, and
// the liveness audit detects both - while configurations without in-flight
// state remain structurally sound (the safety invariants that don't mention
// red edges survive).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"
#include "verify/fault_tolerant.hpp"
#include "verify/invariants.hpp"
#include "verify/liveness.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

proto::SimEngine make_engine(const graph::Graph& g) {
  auto policy = proto::make_policy(proto::PolicyKind::kArrow);
  return proto::SimEngine(g, proto::chain_config(g.node_count()), *policy, {});
}

TEST(FaultInjection, DropCountsAndRemovesFromFlight) {
  const auto g = graph::make_path(4);
  auto engine = make_engine(g);
  engine.submit(0);
  ASSERT_EQ(engine.bus().in_flight_count(), 1u);
  engine.bus().drop(engine.bus().pending()[0]->id);
  EXPECT_EQ(engine.bus().in_flight_count(), 0u);
  EXPECT_EQ(engine.bus().dropped(), 1u);
  EXPECT_TRUE(engine.bus().idle());
}

TEST(FaultInjection, LostFindStrandsTheRequestForever) {
  const auto g = graph::make_path(5);
  auto engine = make_engine(g);
  engine.submit(0);
  engine.step();  // first hop delivered
  ASSERT_EQ(engine.bus().in_flight_count(), 1u);
  engine.bus().drop(engine.bus().pending()[0]->id);  // lose the find
  engine.run_until_idle();
  // The network is quiet but the request is never satisfied: Theorem 5's
  // conclusion fails exactly because its hypothesis (reliability) was
  // violated.
  EXPECT_EQ(engine.unsatisfied_count(), 1u);
  const auto audit = verify::audit_liveness(engine);
  EXPECT_FALSE(audit.ok);
  EXPECT_NE(audit.detail.find("never satisfied"), std::string::npos);
  // The BR graph is now missing an edge - the checker sees the hole.
  const auto cfg = verify::capture(engine);
  EXPECT_FALSE(verify::check_br_tree(cfg).ok);
}

TEST(FaultInjection, LostTokenStrandsEveryLaterRequest) {
  const auto g = graph::make_path(4);
  auto engine = make_engine(g);
  engine.submit(0);
  // Deliver the finds, then lose the token in flight.
  while (engine.bus().in_flight_count() > 0 &&
         proto::is_find(engine.bus().pending()[0]->payload)) {
    engine.step();
  }
  ASSERT_EQ(engine.bus().in_flight_count(), 1u);
  engine.bus().drop(engine.bus().pending()[0]->id);
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 1u);
  // A second request chases a token that no longer exists: it parks at the
  // first requester's next pointer and waits forever.
  engine.submit(2);
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 2u);
  EXPECT_FALSE(verify::audit_liveness(engine).ok);
}

TEST(FaultInjection, TokenVanishesFromEveryObserver) {
  const auto g = graph::make_path(4);
  auto engine = make_engine(g);
  engine.submit(0);
  while (engine.bus().in_flight_count() > 0 &&
         proto::is_find(engine.bus().pending()[0]->payload)) {
    engine.step();
  }
  engine.bus().drop(engine.bus().pending()[0]->id);
  EXPECT_FALSE(engine.token_holder().has_value());
  // An explicit drop(id) is the explorer's fault choice point, so capture()
  // tolerates the token-less configuration and hands it to the checker:
  // the strict Lemma-2 check refuses it, and the fault-modulo variant
  // accepts it only once the loss account blames a lost token. (A capture
  // with NO recorded loss still aborts on a missing token - that assert is
  // exercised by the faultless suites.)
  const auto cfg = verify::capture(engine);
  EXPECT_FALSE(cfg.token_at.has_value());
  EXPECT_FALSE(cfg.token_in_flight.has_value());
  EXPECT_FALSE(verify::check_token(cfg).ok);
  EXPECT_FALSE(verify::check_all(cfg).ok);
  faults::FaultStats losses;
  losses.drops = 1;
  losses.permanent_losses = 1;
  losses.lost_tokens = 1;
  const auto relaxed = verify::check_all_relaxed(cfg, losses);
  EXPECT_TRUE(relaxed.ok) << relaxed.detail;
}

TEST(FaultInjection, DroppingAFindOnlyHurtsRequestsThatMeetIt) {
  // Star-shaped tree on K6 rooted at 5: requests from 1 and 0 take disjoint
  // paths to the root. Losing 1's find strands only 1; 0 still completes.
  const auto g = graph::make_complete(6);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine::Options options;
  options.discipline = sim::Discipline::kFifo;
  proto::SimEngine engine(g, proto::from_tree(bfs_tree(g, 5)), *policy,
                          std::move(options));
  engine.submit(1);
  ASSERT_EQ(engine.bus().in_flight_count(), 1u);
  engine.bus().drop(engine.bus().pending()[0]->id);  // lose 1's find
  engine.submit(0);
  engine.run_until_idle();
  EXPECT_EQ(engine.unsatisfied_count(), 1u);
  EXPECT_FALSE(engine.requests()[0].satisfied_at.has_value());  // node 1
  EXPECT_TRUE(engine.requests()[1].satisfied_at.has_value());   // node 0
  EXPECT_EQ(engine.token_holder(), std::optional<NodeId>{0});
}

}  // namespace
