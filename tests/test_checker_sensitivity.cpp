// Checker sensitivity: the Lemma 2 invariant checker must not only accept
// every reachable configuration (test_property_invariants) but also REJECT
// corrupted ones. These property tests take genuine mid-execution
// configurations and apply random single-field corruptions; the checker has
// to flag a large fraction of them (some corruptions are benign by
// construction, e.g. re-pointing a parent inside its own component).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "support/rng.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

// Captures a configuration mid-flight (several red edges present).
verify::Configuration busy_configuration(std::uint64_t seed) {
  const auto g = graph::make_ring(10);
  auto policy = proto::make_policy(proto::PolicyKind::kIvy);
  proto::SimEngine::Options options;
  options.discipline = sim::Discipline::kRandom;
  options.seed = seed;
  proto::SimEngine engine(g, proto::ring_bridge_config(10), *policy,
                          std::move(options));
  support::Rng driver(seed + 99);
  std::size_t submitted = 0;
  // Build up concurrent traffic, then freeze.
  while (submitted < 5) {
    const auto v = static_cast<NodeId>(driver.next_below(10));
    if (!engine.node(v).outstanding().has_value() &&
        !engine.node(v).holds_token()) {
      engine.submit(v);
      ++submitted;
    }
  }
  for (int steps = 0; steps < 3 && !engine.bus().idle(); ++steps) {
    engine.step();
  }
  return verify::capture(engine);
}

TEST(CheckerSensitivity, BaselineConfigurationsPass) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto cfg = busy_configuration(seed);
    const auto result = verify::check_all(cfg);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.detail;
  }
}

TEST(CheckerSensitivity, ParentCorruptionIsMostlyDetected) {
  support::Rng rng(1234);
  std::size_t detected = 0;
  std::size_t trials = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto baseline = busy_configuration(seed);
    for (int round = 0; round < 16; ++round) {
      auto cfg = baseline;
      const auto v = static_cast<NodeId>(rng.next_below(cfg.node_count()));
      const auto new_parent =
          static_cast<NodeId>(rng.next_below(cfg.node_count()));
      if (cfg.parent[v] == new_parent) continue;
      cfg.parent[v] = new_parent;
      ++trials;
      if (!verify::check_all(cfg).ok) ++detected;
    }
  }
  ASSERT_GT(trials, 0u);
  // Re-pointing a parent at random almost always breaks the BR tree (cycle
  // or split) or a node-state rule; allow a small benign fraction.
  EXPECT_GT(detected * 10, trials * 8) << detected << "/" << trials;
}

TEST(CheckerSensitivity, RedEdgeRemovalAlwaysDetected) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto cfg = busy_configuration(seed);
    if (cfg.red_edges.empty()) continue;
    cfg.red_edges.pop_back();  // "lose" a find
    EXPECT_FALSE(verify::check_all(cfg).ok) << "seed " << seed;
  }
}

TEST(CheckerSensitivity, VisitedSetCorruptionIsDetected) {
  support::Rng rng(77);
  std::size_t detected = 0;
  std::size_t trials = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto baseline = busy_configuration(seed);
    if (baseline.red_edges.empty()) continue;
    for (int round = 0; round < 8; ++round) {
      auto cfg = baseline;
      auto& red = cfg.red_edges[rng.next_below(cfg.red_edges.size())];
      const auto bogus = static_cast<NodeId>(rng.next_below(cfg.node_count()));
      if (std::find(red.visited.begin(), red.visited.end(), bogus) !=
          red.visited.end()) {
        continue;
      }
      red.visited.push_back(bogus);
      ++trials;
      if (!verify::check_all(cfg).ok) ++detected;
    }
  }
  ASSERT_GT(trials, 0u);
  // A fabricated visited entry usually lands in the destination component
  // (L2.3 / L2.2 violation); nodes already in the source component are
  // benign additions.
  EXPECT_GT(detected * 2, trials) << detected << "/" << trials;
}

TEST(CheckerSensitivity, TokenDuplicationAlwaysDetected) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto cfg = busy_configuration(seed);
    if (cfg.token_at.has_value()) {
      cfg.token_in_flight = {{0, 1}};
    } else {
      cfg.token_at = 0;
    }
    EXPECT_FALSE(verify::check_token(cfg).ok) << "seed " << seed;
  }
}

TEST(CheckerSensitivity, NextPointerCycleAlwaysDetected) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto cfg = busy_configuration(seed);
    cfg.next[0] = 1;
    cfg.next[1] = 0;
    EXPECT_FALSE(verify::check_next_chains(cfg).ok) << "seed " << seed;
  }
}

}  // namespace
