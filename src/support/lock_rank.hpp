// Lock-order (rank) checking: deadlock freedom as an executable invariant.
//
// Every RankedMutex carries a numeric rank. A thread may only acquire a
// mutex whose rank is STRICTLY greater than the rank of every mutex it
// already holds, which rules out wait-for cycles by construction: any cycle
// would need some edge from a higher rank back to a lower one, and that
// acquisition trips the assertion at the call site -- deterministically, on
// the first wrong nesting, not only on the schedule where threads actually
// deadlock. Like the contract macros (assert.hpp) the check is enabled in
// every build type; the bookkeeping is one thread_local fixed array push/pop
// per lock, far below the cost of the lock itself.
//
// RankedMutex satisfies the standard Lockable requirements, so it works with
// std::lock_guard / std::unique_lock; pair it with
// std::condition_variable_any for waiting (the CV's internal unlock/relock
// goes through lock()/unlock() and is rank-checked like any other use).
#pragma once

#include <cstdint>
#include <mutex>

namespace arvy::support {

namespace lock_rank {
// The repo-wide lock hierarchy. Gaps are deliberate: new subsystems slot in
// without renumbering. A thread holding kStats may acquire a kMailbox lock
// (ActorSystem::deliver_effects charges costs, then forwards messages); the
// reverse nesting is the deadlock-shaped one and is what the rank check
// forbids.
inline constexpr std::uint32_t kStats = 100;    // ActorSystem stats/CV mutex
inline constexpr std::uint32_t kFaults = 120;   // ActorSystem fault injector
inline constexpr std::uint32_t kDelayed = 150;  // runtime::DelayedQueue
inline constexpr std::uint32_t kWorker = 160;   // worker park/wake mutex
inline constexpr std::uint32_t kMailbox = 200;  // per-node runtime::Mailbox
}  // namespace lock_rank

namespace detail {
// Records `rank` as held by this thread; aborts (contract failure) if some
// already-held lock has an equal or greater rank.
void note_acquire(std::uint32_t rank, const char* name);
// Removes the innermost held entry with rank `rank` (unlock order need not
// be LIFO); aborts if this thread does not hold such a lock.
void note_release(std::uint32_t rank);
// Number of ranked locks this thread currently holds (test hook).
[[nodiscard]] std::size_t held_count() noexcept;
}  // namespace detail

class RankedMutex {
 public:
  explicit RankedMutex(std::uint32_t rank, const char* name = "mutex")
      : rank_(rank), name_(name) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() {
    // Check before blocking: a would-be deadlock should abort, not hang.
    detail::note_acquire(rank_, name_);
    mutex_.lock();
  }

  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    // try_lock cannot deadlock, but an out-of-rank nesting is still a
    // hierarchy violation somewhere else's blocking path could copy.
    detail::note_acquire(rank_, name_);
    return true;
  }

  void unlock() {
    mutex_.unlock();
    detail::note_release(rank_);
  }

  [[nodiscard]] std::uint32_t rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  std::mutex mutex_;
  std::uint32_t rank_;
  const char* name_;
};

}  // namespace arvy::support
