#include "support/rng.hpp"

#include <algorithm>
#include <cmath>

namespace arvy::support {

double Rng::next_exponential(double mean) noexcept {
  ARVY_EXPECTS(mean > 0.0);
  // 1 - next_double() lies in (0, 1], so the log argument is never zero.
  return -mean * std::log(1.0 - next_double());
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  ARVY_EXPECTS(n > 0);
  ARVY_EXPECTS(alpha >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), alpha);
    cdf_[rank] = total;
  }
  for (auto& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the last bucket short
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace arvy::support
