#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace arvy::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ARVY_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ARVY_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::cell(std::size_t value) { return std::to_string(value); }

std::string Table::cell(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace arvy::support
