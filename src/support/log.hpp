// Minimal leveled logging to stderr.
//
// The simulator and runtime are silent by default; tests and examples can
// raise the level to watch protocol events. Not thread-safe beyond the
// atomicity of the level itself: the threaded runtime serializes its own
// log calls.
#pragma once

#include <atomic>
#include <string_view>

namespace arvy::support {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

// printf-style logging; no-op when the level is filtered out.
void log_line(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace arvy::support

#define ARVY_LOG_INFO(...) \
  ::arvy::support::log_line(::arvy::support::LogLevel::kInfo, __VA_ARGS__)
#define ARVY_LOG_DEBUG(...) \
  ::arvy::support::log_line(::arvy::support::LogLevel::kDebug, __VA_ARGS__)
#define ARVY_LOG_TRACE(...) \
  ::arvy::support::log_line(::arvy::support::LogLevel::kTrace, __VA_ARGS__)
