#include "support/lock_rank.hpp"

#include <array>
#include <cstddef>

#include "support/assert.hpp"

namespace arvy::support::detail {

namespace {

// Per-thread stack of held ranks. Fixed capacity: the runtime's deepest legal
// nesting is two (kStats -> kMailbox); 16 leaves room for future subsystems
// and overflowing it is itself a design smell worth aborting on.
struct HeldLocks {
  std::array<std::uint32_t, 16> ranks{};
  std::size_t count = 0;
};

thread_local HeldLocks t_held;

}  // namespace

void note_acquire(std::uint32_t rank, const char* name) {
  ARVY_ASSERT_MSG(t_held.count < t_held.ranks.size(),
                  "lock nesting deeper than the rank tracker's capacity");
  if (t_held.count > 0) {
    // Held ranks are strictly increasing by induction, so comparing against
    // the innermost one compares against the maximum.
    ARVY_ASSERT_MSG(t_held.ranks[t_held.count - 1] < rank, name);
  }
  t_held.ranks[t_held.count++] = rank;
}

void note_release(std::uint32_t rank) {
  // Unlock order need not be LIFO (std::scoped_lock, manual unique_lock
  // juggling); drop the innermost matching entry.
  for (std::size_t i = t_held.count; i-- > 0;) {
    if (t_held.ranks[i] == rank) {
      for (std::size_t j = i + 1; j < t_held.count; ++j) {
        t_held.ranks[j - 1] = t_held.ranks[j];
      }
      --t_held.count;
      return;
    }
  }
  ARVY_ASSERT_MSG(false, "unlock of a rank this thread does not hold");
}

std::size_t held_count() noexcept { return t_held.count; }

}  // namespace arvy::support::detail
