// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (delivery schedules, workload
// generators, FRT embeddings, policy tie-breaking) draws from an explicitly
// seeded `Rng` so that every experiment row and every failing test is
// replayable from its printed seed. The generator is xoshiro256** seeded via
// splitmix64, following the reference implementations by Blackman and Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace arvy::support {

// One step of the splitmix64 sequence; used for seeding and for cheap
// stateless hashing of (seed, index) pairs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality, 256-bit state, suitable for simulation.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method to avoid modulo bias.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    ARVY_EXPECTS(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    ARVY_EXPECTS(lo <= hi);
    const auto range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // range == 0 means the full 64-bit range was requested.
    const std::uint64_t draw = range == 0 ? (*this)() : next_below(range);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi) noexcept {
    ARVY_EXPECTS(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  // Exponentially distributed double with the given mean (> 0).
  [[nodiscard]] double next_exponential(double mean) noexcept;

  // Bernoulli draw with success probability p in [0, 1].
  [[nodiscard]] bool next_bool(double p) noexcept {
    ARVY_EXPECTS(p >= 0.0 && p <= 1.0);
    return next_double() < p;
  }

  // Uniformly chosen element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    ARVY_EXPECTS(!items.empty());
    return items[next_below(items.size())];
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  // A generator deterministically derived from this one; lets callers hand
  // independent streams to sub-components without sharing state.
  [[nodiscard]] Rng split() noexcept {
    return Rng((*this)() ^ 0xd1b54a32d192ed03ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Draws a Zipf-distributed rank in [0, n) with exponent `alpha` >= 0 using
// inverse-CDF over precomputed weights; see ZipfSampler for repeated draws.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::span<const double> cdf() const noexcept { return cdf_; }
  std::vector<double> cdf_;
};

}  // namespace arvy::support
