#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace arvy::support {

void StreamingStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double StreamingStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingStats::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double StreamingStats::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  ARVY_EXPECTS(!sorted.empty());
  ARVY_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  StreamingStats acc;
  for (double v : sorted) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.sum = acc.sum();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  ARVY_EXPECTS(x.size() == y.size());
  ARVY_EXPECTS(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

}  // namespace arvy::support
