// ARVY_HOT: the hot-path discipline, as an annotation.
//
// Mark a function ARVY_HOT when it sits on a measured per-message or
// per-event path (bus delivery picks, Fenwick descent, engine bookkeeping).
// The annotation does two things:
//
//  1. To the compiler it expands to [[gnu::hot]], biasing layout and
//     optimization toward the annotated function.
//  2. To tools/arvy_lint (rule `hotpath`) it is a contract: the annotated
//     definition must contain no allocation, locking, throwing, or logging
//     constructs - lexically checked over parameters, init list, and body,
//     nested lambdas included. Calls *out* of a hot function are not
//     chased; annotate the callee too if it is on the same path.
//
// The macro exists so the discipline is greppable and machine-checked
// rather than tribal: roadmap item 2 (zero-alloc MPSC runtime path) lands
// by extending the set of ARVY_HOT functions, and the lint keeps each one
// honest from the day it is annotated.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define ARVY_HOT [[gnu::hot]]
#else
#define ARVY_HOT
#endif
