// ARVY_HOT / ARVY_COLD: the hot-path discipline, as annotations.
//
// Mark a function ARVY_HOT when it sits on a measured per-message or
// per-event path (bus delivery picks, Fenwick descent, ring enqueue/drain,
// engine bookkeeping). The annotation does three things:
//
//  1. To the compiler it expands to [[gnu::hot]], biasing layout and
//     optimization toward the annotated function.
//  2. To tools/arvy_lint (rule `hotpath`) it is a contract: the annotated
//     definition must contain no allocation, locking, throwing, or logging
//     constructs - lexically checked over parameters, init list, and body,
//     nested lambdas included. Calls *out* of a hot function are not
//     chased by the lexical rule; annotate the callee too if it is on the
//     same path.
//  3. To the binary audit (arvy_lint --audit-objects) it is the root set:
//     [[gnu::hot]] together with -ffunction-sections (set globally in the
//     top-level CMakeLists) places every annotated function in its own
//     `.text.hot.<mangled-name>` ELF section of the optimized object file.
//     The audit walks the relocation call graph from those sections and
//     rejects any path to an allocator, mutex, throw helper, or logging
//     symbol - closing the lexical rule's blind spots (typedef laundering,
//     allocation inlined through std:: internals) at the instruction level.
//
// ARVY_COLD is the declared escape hatch: a function a hot path may *call*
// but that is off the measured path by design (overflow valves, park/wake
// slow paths, first-arrival dedup inserts, contract-failure plumbing).
// It expands to [[gnu::cold]] [[gnu::noinline]]:
//
//  - [[gnu::cold]] moves the definition into a `.text.unlikely.*` section,
//    which the binary audit deliberately does not descend into - the cold
//    side may lock and allocate, that is what it is for;
//  - [[gnu::noinline]] keeps the body (and anything std:: it drags in,
//    like a hash-table insert) from being inlined back into the hot
//    caller's `.text.hot.*` section, which would re-open the blind spot.
//
// The macros exist so the discipline is greppable and machine-checked
// rather than tribal: the zero-alloc MPSC runtime path (roadmap item 2)
// lands by extending the set of ARVY_HOT functions, and the lint + audit
// keep each one honest from the day it is annotated.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define ARVY_HOT [[gnu::hot]]
#define ARVY_COLD [[gnu::cold]] [[gnu::noinline]]
#else
#define ARVY_HOT
#define ARVY_COLD
#endif
