// Streaming and batch summary statistics used by the benchmark harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace arvy::support {

// Welford's online algorithm: numerically stable mean/variance in one pass,
// constant space. Suitable for accumulating per-request costs in benches.
class StreamingStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  // Merges another accumulator into this one (parallel reduction friendly).
  void merge(const StreamingStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch summary with percentiles; copies and sorts its input once.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

// Linear-interpolated percentile of a sorted sequence, q in [0, 1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

// Least-squares fit y ~ a + b*x; used by benches to report growth exponents
// (e.g. cost vs log n). Returns {intercept, slope}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

}  // namespace arvy::support
