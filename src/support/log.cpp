#include "support/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace arvy::support {

namespace {
// Plain on/off knob: readers only gate output, so relaxed everywhere.
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};  // ARVY-ATOMIC(flag)
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace arvy::support
