// Contract-checking macros for the Arvy library.
//
// All checks are enabled in every build type: the library is a research
// artifact whose value is the trustworthiness of its measurements, so we
// never trade away the precondition checks for speed. The hot paths (event
// queue pops, distance lookups) were measured with checks on and the
// overhead is below the noise floor of the experiments.
#pragma once

#include <string_view>

namespace arvy::support {

// Prints a diagnostic to stderr and aborts. Marked noreturn so the macros
// below can be used in functions that must return a value on the happy path.
[[noreturn]] void contract_failure(std::string_view kind, std::string_view expr,
                                   std::string_view file, long line,
                                   std::string_view message);

}  // namespace arvy::support

#define ARVY_CONTRACT_IMPL(kind, expr, msg)                                  \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      ::arvy::support::contract_failure(kind, #expr, __FILE__, __LINE__,     \
                                        msg);                                \
    }                                                                        \
  } while (false)

// Precondition on the arguments of a function.
#define ARVY_EXPECTS(expr) ARVY_CONTRACT_IMPL("precondition", expr, "")
#define ARVY_EXPECTS_MSG(expr, msg) ARVY_CONTRACT_IMPL("precondition", expr, msg)

// Postcondition / internal invariant.
#define ARVY_ENSURES(expr) ARVY_CONTRACT_IMPL("postcondition", expr, "")
#define ARVY_ASSERT(expr) ARVY_CONTRACT_IMPL("invariant", expr, "")
#define ARVY_ASSERT_MSG(expr, msg) ARVY_CONTRACT_IMPL("invariant", expr, msg)

// Marks unreachable code paths (e.g. exhaustive switch on an enum).
#define ARVY_UNREACHABLE(msg)                                                \
  ::arvy::support::contract_failure("unreachable", "-", __FILE__, __LINE__, msg)
