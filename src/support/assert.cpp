#include "support/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace arvy::support {

[[noreturn]] void contract_failure(std::string_view kind, std::string_view expr,
                                   std::string_view file, long line,
                                   std::string_view message) {
  std::fprintf(stderr, "arvy: %.*s violated: %.*s at %.*s:%ld",
               static_cast<int>(kind.size()), kind.data(),
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line);
  if (!message.empty()) {
    std::fprintf(stderr, " (%.*s)", static_cast<int>(message.size()),
                 message.data());
  }
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace arvy::support
