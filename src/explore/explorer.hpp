// Bounded systematic exploration of SimEngine interleavings.
//
// The paper's asynchrony model (§3) fixes only that messages arrive after
// arbitrary finite delays; the safety results (Lemma 2, Lemma 3) are claimed
// for *every* delivery order and the liveness result (Theorem 5) for every
// complete execution. The simulator's disciplines (timed/fifo/lifo/random)
// each realize one schedule per seed; this module instead enumerates ALL
// schedules of a small closed scenario and runs verify::check_all on every
// reachable configuration plus audit_liveness at every quiescent one. Each
// discipline's schedule is one of the enumerated interleavings, so a clean
// exhaustive run subsumes any per-discipline spot check (docs/TESTING.md).
//
// Mechanics: the engine has no undo, so the DFS is stateless-model-checking
// style - a state is (re)entered by replaying its action prefix from a fresh
// engine. Reached configurations are deduplicated through canonicalized
// verify::Configuration snapshots, and a sleep-set (DPOR) reduction built on
// explore::independent() prunes commuting permutations without losing any
// reachable state. Optional fault choice points (drop an in-flight message,
// bounded by a budget) switch checking to the relaxed fault-modulo variants.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "explore/independence.hpp"
#include "graph/graph.hpp"
#include "proto/engine.hpp"
#include "proto/init.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace arvy::explore {

using Trace = std::vector<Action>;

// A closed exploration program: topology, policy, initial tree, and the
// requests, all submitted up-front (§3's concurrent semantics in its purest
// form - every find is in the network before the first delivery choice).
struct Scenario {
  std::string topology;  // canonical name, e.g. "ring6"
  graph::Graph graph{1};
  proto::PolicyKind policy = proto::PolicyKind::kArrow;
  proto::InitialConfig init;
  std::vector<graph::NodeId> requests;  // submitted in this order

  [[nodiscard]] std::string name() const;  // "ring6/arrow"
};

// Known topologies: "triangle", "path4", "star5", "ring4", "ring6". The
// initial tree is resolve-time identical to the Directory default (shortest
// path tree from the metric center; Algorithm 2 split for kBridge on rings).
// Empty `requests` selects a default spread of three non-root nodes (fewer
// on the triangle). Throws std::invalid_argument for an unknown topology,
// an out-of-range request, or PolicyKind::kRandom - exploration requires
// the relation "same action prefix => same configuration", and a policy
// that draws from the engine RNG breaks it (draw order depends on the
// interleaving).
[[nodiscard]] Scenario make_scenario(std::string_view topology,
                                     proto::PolicyKind policy,
                                     std::vector<graph::NodeId> requests = {});

struct ExploreOptions {
  // Budgets. Exploration is exhaustive iff none of them binds; stats.complete
  // reports which outcome you got.
  std::size_t max_depth = 512;
  std::uint64_t max_states = 2'000'000;
  double time_budget_seconds = std::numeric_limits<double>::infinity();

  // Fault choice points: besides delivering, the explorer may drop any
  // in-flight message, at most this many times per execution. Paths with at
  // least one drop are checked with verify::check_all_relaxed /
  // audit_liveness_relaxed against a synthesized loss account.
  std::uint32_t fault_budget = 0;

  // Sleep-set (DPOR) reduction. Off = naive DFS over the same state graph;
  // the explorer visits the same set of states either way (the comparison
  // test pins that), just through more transitions.
  bool sleep_sets = true;

  verify::InvariantOptions invariants;

  // Collect every distinct quiescent configuration (canonicalized) into
  // ExploreResult::quiescent_configs. The set of quiescent configurations is
  // the model-level meaning of "every possible outcome": any delivery
  // discipline's run ends in one of them (the subsumption test pins this).
  bool collect_quiescent = false;

  // Seeded-bug mode (tools/arvy_explore --seed-bug): on the K-th find
  // delivery of every execution, insert `corrupt_with` into the find's
  // visited list (just before the sender entry). A fabricated visited entry
  // in the destination component is exactly what Lemma 2.3
  // (check_source_components) forbids, so a correct checker must flag the
  // very configuration the corrupted forward produces. 0 = off.
  std::uint64_t corrupt_at_find_delivery = 0;
  graph::NodeId corrupt_with = graph::kInvalidNode;
};

struct ExploreStats {
  std::uint64_t states = 0;        // distinct states reached (cache size)
  std::uint64_t transitions = 0;   // actions executed by the DFS driver
  std::uint64_t cache_hits = 0;    // revisits pruned by the state cache
  std::uint64_t sleep_prunes = 0;  // enabled actions suppressed by sleep sets
  std::uint64_t re_expansions = 0; // cached states re-explored with a
                                   // smaller sleep set (soundness rule for
                                   // sleep sets + state caching)
  std::uint64_t executions = 0;    // engine rebuilds (stateless re-execution)
  std::uint64_t replay_steps = 0;  // actions re-applied during rebuilds
  std::uint64_t quiescent = 0;     // distinct quiescent states audited
  std::size_t max_frontier = 0;    // widest enabled-action set seen
  std::size_t max_depth_seen = 0;
  // XOR of all distinct state-key hashes: an order-independent fingerprint
  // of the explored state set, equal between DPOR and naive runs.
  std::uint64_t state_fingerprint = 0;
  bool complete = true;  // no budget bound the search
  double seconds = 0.0;
};

struct Violation {
  Trace trace;         // minimized: shortest action sequence that fails
  std::string detail;  // the failing CheckResult's description
  std::string dot;     // Graphviz rendering of the offending configuration
  bool liveness = false;  // quiescent liveness audit vs per-state invariant
};

struct ExploreResult {
  ExploreStats stats;
  std::optional<Violation> violation;
  // Distinct quiescent configurations (empty unless collect_quiescent).
  std::vector<verify::Configuration> quiescent_configs;
};

// Explores the scenario. On the first invariant or liveness failure the
// search stops and the counterexample is minimized to a shortest failing
// trace by breadth-first search over the same action graph (sleep sets off,
// so minimization is exact even when the DFS that found the bug pruned).
[[nodiscard]] ExploreResult explore(const Scenario& scenario,
                                    const ExploreOptions& options = {});

// Replays one trace with the same per-step checking the explorer applies.
struct ReplayOutcome {
  verify::CheckResult check;     // first failure, or pass
  std::size_t failing_step = 0;  // actions applied when the failure fired
                                 // (0 = initial state); only meaningful
                                 // when !check.ok
  bool liveness = false;
  verify::Configuration final_config;  // last configuration inspected
};
[[nodiscard]] ReplayOutcome replay(const Scenario& scenario, const Trace& trace,
                                   const ExploreOptions& options = {});

// --- Engine-level helpers (shared with tests) ------------------------------

// The semantic actions enabled at the engine's current state, in bus send
// order (delivers first, then - if budget remains - the matching drops).
[[nodiscard]] std::vector<ActionDesc> enabled_actions(
    const proto::SimEngine& engine, std::uint32_t fault_budget_left = 0);

// Resolves a semantic action to the in-flight message it names; 0 when no
// pending message matches.
[[nodiscard]] sim::MessageId resolve(const proto::SimEngine& engine,
                                     const Action& action);

// Applies one action (deliver or drop the resolved message). Returns false
// (and does nothing) when the action is not currently enabled.
[[nodiscard]] bool apply_action(proto::SimEngine& engine,
                                const Action& action);

// --- Counterexample trace files --------------------------------------------
//
// Line-oriented, human-readable, replayable:
//   topology path4
//   policy arrow
//   requests 0 3
//   fault-budget 1
//   seed-bug 2 3          (only in seeded-bug mode: K and the bogus node)
//   trace deliver:find:0 drop:find:3 deliver:token
//   detail <free text to end of line>
// Unknown keys are rejected; see docs/TESTING.md for the workflow.

struct TraceFile {
  Scenario scenario;
  ExploreOptions options;  // fault_budget and seed-bug fields only
  Trace trace;
  std::string detail;
};

void write_trace(std::ostream& os, const Scenario& scenario,
                 const ExploreOptions& options, const Trace& trace,
                 std::string_view detail);
// Throws std::invalid_argument on malformed input.
[[nodiscard]] TraceFile read_trace(std::istream& is);

[[nodiscard]] std::string format_action(const Action& action);
[[nodiscard]] Action parse_action(std::string_view text);

// Policy-kind lookup by the canonical policy_kind_name; throws
// std::invalid_argument for unknown names.
[[nodiscard]] proto::PolicyKind parse_policy_kind(std::string_view name);

// Machine-readable stats summary (one JSON object; CI artifact format).
[[nodiscard]] std::string stats_json(const Scenario& scenario,
                                     const ExploreOptions& options,
                                     const ExploreResult& result);

}  // namespace arvy::explore
