// The independence relation driving the explorer's DPOR reduction.
//
// Model-checker actions are *semantic*, not bus-id-based: the model (§3)
// allows at most one outstanding find per producer and exactly one token, so
// "deliver the find by v" / "deliver the token" names an in-flight message
// unambiguously in every configuration that has it pending. Semantic
// identity is what makes traces replayable across interleavings and makes
// sleep sets comparable across different paths into the same cached state
// (raw MessageIds are assigned in send order, which varies with the
// interleaving even between runs that reach identical configurations).
//
// Two enabled actions are independent when they commute (executing them in
// either order reaches the same configuration) and neither disables the
// other. The facts backing each arm are exactly the Lemma 1 commutativity
// lemmas pinned by tests/test_commutativity.cpp, which derives its test
// pairs from this very predicate - one predicate, exercised from both sides.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace arvy::explore {

enum class ActionKind : std::uint8_t {
  kDeliver,  // deliver the named in-flight message
  kDrop,     // fault choice point: discard it (consumes fault budget)
};

// A replay-stable action. For finds, `producer` names the message; for the
// token, producer is unused (there is only ever one token in flight).
struct Action {
  ActionKind kind = ActionKind::kDeliver;
  bool token = false;
  graph::NodeId producer = graph::kInvalidNode;  // find only

  friend bool operator==(const Action&, const Action&) = default;
};

// An action plus the one piece of configuration context independence needs:
// the node whose state a delivery would mutate. The target of a pending
// message is fixed from send to delivery, so it is stable while the action
// stays enabled - safe to carry inside sleep sets.
struct ActionDesc {
  Action action;
  graph::NodeId target = graph::kInvalidNode;

  friend bool operator==(const ActionDesc&, const ActionDesc&) = default;
};

[[nodiscard]] constexpr bool same_message(const Action& a,
                                          const Action& b) noexcept {
  return a.token == b.token && (a.token || a.producer == b.producer);
}

// The shared independence predicate. Symmetric. Conservative: every `true`
// is backed by a commutation argument; anything uncertain is dependent.
//
//   deliver/deliver: independent iff the targets differ (Lemma 1: a delivery
//     mutates exactly its target's node state and appends sends - deliveries
//     at distinct nodes commute and cannot disable each other). Two
//     messages bound for the *same* node are the schedule choices DPOR must
//     explore, so they are dependent.
//   deliver/drop: independent iff they name different messages (dropping one
//     message neither perturbs another's delivery effects nor re-enables
//     it). Deliver and drop of the same message are two fates of one
//     message: each disables the other.
//   drop/drop: always dependent - drops compete for the shared fault
//     budget, so with one unit left, taking either disables the other.
[[nodiscard]] constexpr bool independent(const ActionDesc& a,
                                         const ActionDesc& b) noexcept {
  const bool a_drop = a.action.kind == ActionKind::kDrop;
  const bool b_drop = b.action.kind == ActionKind::kDrop;
  if (a_drop && b_drop) return false;
  if (a_drop || b_drop) return !same_message(a.action, b.action);
  return !same_message(a.action, b.action) && a.target != b.target;
}

}  // namespace arvy::explore
