#include "explore/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>

#include "graph/generators.hpp"
#include "proto/directory.hpp"
#include "proto/messages.hpp"
#include "support/assert.hpp"
#include "verify/fault_tolerant.hpp"
#include "verify/liveness.hpp"

namespace arvy::explore {

namespace {

using graph::NodeId;

constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t z = (h ^ v) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// The model checker's notion of "same state". The configuration alone is not
// enough: the legal continuations also depend on how much fault budget
// remains, which relaxed-check regime the accumulated losses put us in, and
// (in seeded-bug mode) how many find deliveries remain until the mutator
// fires - all path functions the configuration cannot see.
struct StateKey {
  verify::Configuration cfg;  // canonicalized
  std::uint32_t drops_left = 0;
  std::uint32_t lost_finds = 0;
  std::uint32_t lost_tokens = 0;
  std::uint64_t bug_countdown = 0;  // finds until corruption; 0 = off/fired

  friend bool operator==(const StateKey&, const StateKey&) = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const noexcept {
    std::uint64_t h = k.cfg.hash();
    h = mix(h, k.drops_left);
    h = mix(h, k.lost_finds);
    h = mix(h, k.lost_tokens);
    h = mix(h, k.bug_countdown);
    return static_cast<std::size_t>(h);
  }
};

// Sleep sets are tiny (bounded by the frontier width), so a flat vector
// beats any node-based set.
using SleepSet = std::vector<ActionDesc>;

bool contains(const SleepSet& set, const ActionDesc& a) {
  return std::find(set.begin(), set.end(), a) != set.end();
}

bool subset(const SleepSet& small, const SleepSet& big) {
  return std::all_of(small.begin(), small.end(),
                     [&](const ActionDesc& a) { return contains(big, a); });
}

SleepSet intersect(const SleepSet& a, const SleepSet& b) {
  SleepSet out;
  for (const ActionDesc& x : a) {
    if (contains(b, x)) out.push_back(x);
  }
  return out;
}

// Stateless re-execution harness: the engine has no undo, so "being at"
// state s means "a fresh engine with s's action prefix replayed". ensure()
// extends in place when the target path extends the applied one and rebuilds
// otherwise.
class Execution {
 public:
  Execution(const Scenario& scenario, const ExploreOptions& options)
      : scenario_(&scenario), options_(&options) {
    rebuild();
  }

  std::uint64_t executions = 0;
  std::uint64_t replay_steps = 0;

  void ensure(const Trace& path) {
    const bool extends =
        applied_.size() <= path.size() &&
        std::equal(applied_.begin(), applied_.end(), path.begin());
    std::size_t from = applied_.size();
    if (!extends) {
      rebuild();
      from = 0;
    }
    for (std::size_t i = from; i < path.size(); ++i) {
      apply(path[i]);
      ++replay_steps;
    }
  }

  void apply(const Action& a) {
    const bool ok = try_apply(a);
    ARVY_ASSERT_MSG(ok, "explorer action names no pending message");
  }

  [[nodiscard]] bool try_apply(const Action& a) {
    const sim::MessageId id = resolve(*engine_, a);
    if (id == 0) return false;
    if (a.kind == ActionKind::kDeliver) {
      engine_->bus().deliver(id);
    } else {
      ARVY_ASSERT(drops_left() > 0);
      if (a.token) {
        ++lost_tokens_;
      } else {
        ++lost_finds_;
      }
      engine_->bus().drop(id);
    }
    applied_.push_back(a);
    return true;
  }

  [[nodiscard]] std::vector<ActionDesc> enabled() const {
    return enabled_actions(*engine_, drops_left());
  }

  [[nodiscard]] std::uint32_t drops_left() const {
    return options_->fault_budget - lost_finds_ - lost_tokens_;
  }

  [[nodiscard]] StateKey key() const {
    StateKey k;
    k.cfg = verify::capture(*engine_);
    k.cfg.canonicalize();
    k.drops_left = drops_left();
    k.lost_finds = lost_finds_;
    k.lost_tokens = lost_tokens_;
    if (options_->corrupt_at_find_delivery > find_deliveries_) {
      k.bug_countdown = options_->corrupt_at_find_delivery - find_deliveries_;
    }
    return k;
  }

  // Per-state safety: strict Lemma 2 checks on loss-free paths, the
  // fault-modulo relaxation (against the synthesized loss account) once a
  // drop choice point was taken.
  [[nodiscard]] verify::CheckResult check(
      const verify::Configuration& cfg) const {
    if (lost_finds_ + lost_tokens_ == 0) {
      return verify::check_all(cfg, options_->invariants);
    }
    return verify::check_all_relaxed(cfg, synth_stats(), options_->invariants);
  }

  // Quiescent liveness: Theorem 5 strict, or excused by the recorded losses.
  [[nodiscard]] verify::CheckResult audit() const {
    if (lost_finds_ + lost_tokens_ == 0) {
      return verify::audit_liveness(*engine_);
    }
    return verify::audit_liveness_relaxed(*engine_, synth_stats());
  }

  [[nodiscard]] bool quiescent() const { return engine_->bus().idle(); }
  [[nodiscard]] const proto::SimEngine& sim_engine() const { return *engine_; }

 private:
  // The explorer's drops bypass the fault injector, so the relaxed audits
  // get an equivalent hand-built account: every drop is a permanent loss
  // (the explorer never retries - a retry is just a later delivery, which
  // the enumeration already covers as a separate branch).
  [[nodiscard]] faults::FaultStats synth_stats() const {
    faults::FaultStats s;
    s.drops = lost_finds_ + lost_tokens_;
    s.permanent_losses = s.drops;
    s.lost_finds = lost_finds_;
    s.lost_tokens = lost_tokens_;
    return s;
  }

  void rebuild() {
    const auto policy = proto::make_policy(scenario_->policy, /*k=*/2);
    proto::EngineOptions opts;
    // Discipline is irrelevant: the explorer never calls step(), every
    // delivery is an explicit deliver(id). kFifo keeps the bus's own
    // bookkeeping trivially deterministic.
    opts.discipline = sim::Discipline::kFifo;
    engine_ = std::make_unique<proto::SimEngine>(scenario_->graph,
                                                 scenario_->init, *policy,
                                                 std::move(opts));
    applied_.clear();
    find_deliveries_ = 0;
    lost_finds_ = 0;
    lost_tokens_ = 0;
    if (options_->corrupt_at_find_delivery > 0) {
      engine_->set_message_hook(
          [this](const sim::MessageBus<proto::Message>::InFlight& entry) {
            delivery_target_ = entry.to;
          });
      engine_->set_delivery_mutator([this](proto::Message& m) {
        auto* find = std::get_if<proto::FindMessage>(&m);
        if (find == nullptr) return;
        ++find_deliveries_;
        if (find_deliveries_ == options_->corrupt_at_find_delivery) {
          corrupt(*find);
        }
      });
    }
    for (const NodeId v : scenario_->requests) engine_->submit(v);
    ++executions;
  }

  // Fabricate a visited entry. The corruption keeps the receiving core's
  // preconditions intact - visited.front() stays the producer and
  // visited.back() the sender (which forces a multi-hop find: a fresh
  // one-entry visited has no slot between them), and the receiver is never
  // fabricated (that would count as a revisit) - so the *protocol* accepts
  // the message; catching the damage is squarely the checker's job, which
  // is the point of the exercise. A skipped trigger still consumes the
  // countdown: whether the bug fires is a function of the delivery prefix,
  // which keeps state caching sound in seeded-bug mode.
  void corrupt(proto::FindMessage& find) {
    const NodeId bogus = options_->corrupt_with;
    if (find.visited.size() < 2) return;
    if (bogus == delivery_target_) return;
    if (std::find(find.visited.begin(), find.visited.end(), bogus) !=
        find.visited.end()) {
      return;
    }
    find.visited.insert(find.visited.end() - 1, bogus);
  }

  const Scenario* scenario_;
  const ExploreOptions* options_;
  std::unique_ptr<proto::SimEngine> engine_;
  Trace applied_;
  std::uint64_t find_deliveries_ = 0;
  std::uint32_t lost_finds_ = 0;
  std::uint32_t lost_tokens_ = 0;
  NodeId delivery_target_ = graph::kInvalidNode;
};

// Exact shortest counterexample: plain BFS over the same action graph, no
// sleep sets (reduction could skip an equally short failure elsewhere, and
// minimization wants the true minimum), state cache for termination.
std::optional<Violation> shortest_violation(Execution& exec,
                                            const ExploreOptions& options,
                                            std::size_t max_len) {
  std::unordered_set<StateKey, StateKeyHash> seen;
  std::deque<Trace> queue;

  exec.ensure({});
  {
    StateKey k0 = exec.key();
    if (const verify::CheckResult r = exec.check(k0.cfg); !r) {
      return Violation{{}, r.detail, k0.cfg.to_dot(), false};
    }
    if (exec.quiescent()) {
      if (const verify::CheckResult live = exec.audit(); !live) {
        return Violation{{}, live.detail, k0.cfg.to_dot(), true};
      }
    }
    seen.insert(std::move(k0));
  }
  queue.push_back({});

  while (!queue.empty()) {
    if (seen.size() > options.max_states) return std::nullopt;  // give up
    const Trace t = std::move(queue.front());
    queue.pop_front();
    if (t.size() >= max_len) continue;
    exec.ensure(t);
    const std::vector<ActionDesc> enabled = exec.enabled();
    for (const ActionDesc& a : enabled) {
      exec.ensure(t);
      exec.apply(a.action);
      Trace child = t;
      child.push_back(a.action);
      StateKey k = exec.key();
      if (const verify::CheckResult r = exec.check(k.cfg); !r) {
        return Violation{std::move(child), r.detail, k.cfg.to_dot(), false};
      }
      if (exec.quiescent()) {
        if (const verify::CheckResult live = exec.audit(); !live) {
          return Violation{std::move(child), live.detail, k.cfg.to_dot(),
                           true};
        }
      }
      if (seen.insert(std::move(k)).second && child.size() < max_len) {
        queue.push_back(std::move(child));
      }
    }
  }
  return std::nullopt;
}

// One DFS level: the actions to explore from a state (post sleep-filter),
// the sleep set the state was entered with, and the explored-so-far list
// feeding the children's sleep sets.
struct Frame {
  std::vector<ActionDesc> actions;
  SleepSet sleep;
  std::vector<ActionDesc> done;
  std::size_t next = 0;
};

}  // namespace

std::string Scenario::name() const {
  std::string out = topology;
  out += '/';
  out += proto::policy_kind_name(policy);
  return out;
}

Scenario make_scenario(std::string_view topology, proto::PolicyKind policy,
                       std::vector<NodeId> requests) {
  if (policy == proto::PolicyKind::kRandom) {
    throw std::invalid_argument(
        "arvy_explore: PolicyKind::kRandom draws from the engine RNG, whose "
        "draw order depends on the interleaving; exploration requires "
        "deterministic policies");
  }
  Scenario s;
  s.topology = std::string(topology);
  s.policy = policy;
  if (topology == "triangle") {
    s.graph = graph::make_ring(3);
  } else if (topology == "path4") {
    s.graph = graph::make_path(4);
  } else if (topology == "star5") {
    s.graph = graph::make_star(5);
  } else if (topology == "ring4") {
    s.graph = graph::make_ring(4);
  } else if (topology == "ring6") {
    s.graph = graph::make_ring(6);
  } else {
    throw std::invalid_argument("arvy_explore: unknown topology '" +
                                std::string(topology) +
                                "' (triangle|path4|star5|ring4|ring6)");
  }
  s.init = default_initial_config(s.graph, policy);
  const std::size_t n = s.graph.node_count();
  if (requests.empty()) {
    std::vector<NodeId> non_root;
    for (NodeId v = 0; v < n; ++v) {
      if (v != s.init.root) non_root.push_back(v);
    }
    const std::size_t want = std::min<std::size_t>(3, non_root.size());
    for (std::size_t i = 0; i < want; ++i) {
      requests.push_back(non_root[i * non_root.size() / want]);
    }
  } else {
    for (const NodeId v : requests) {
      if (v >= n) {
        throw std::invalid_argument("arvy_explore: request node out of range");
      }
    }
    std::vector<NodeId> sorted = requests;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument(
          "arvy_explore: duplicate request node (the model allows one "
          "outstanding request per node)");
    }
  }
  s.requests = std::move(requests);
  return s;
}

std::vector<ActionDesc> enabled_actions(const proto::SimEngine& engine,
                                        std::uint32_t fault_budget_left) {
  const std::vector<const sim::MessageBus<proto::Message>::InFlight*> pending =
      engine.bus().pending();
  std::vector<ActionDesc> out;
  out.reserve(pending.size() * (fault_budget_left > 0 ? 2 : 1));
  const auto describe = [](const sim::MessageBus<proto::Message>::InFlight*
                               entry,
                           ActionKind kind) {
    ActionDesc d;
    d.action.kind = kind;
    if (const auto* find =
            std::get_if<proto::FindMessage>(&entry->payload)) {
      d.action.token = false;
      d.action.producer = find->producer;
    } else {
      d.action.token = true;
    }
    d.target = entry->to;
    return d;
  };
  for (const auto* entry : pending) {
    out.push_back(describe(entry, ActionKind::kDeliver));
  }
  if (fault_budget_left > 0) {
    for (const auto* entry : pending) {
      out.push_back(describe(entry, ActionKind::kDrop));
    }
  }
  return out;
}

sim::MessageId resolve(const proto::SimEngine& engine, const Action& action) {
  for (const auto* entry : engine.bus().pending()) {
    if (action.token) {
      if (std::holds_alternative<proto::TokenMessage>(entry->payload)) {
        return entry->id;
      }
    } else if (const auto* find =
                   std::get_if<proto::FindMessage>(&entry->payload);
               find != nullptr && find->producer == action.producer) {
      return entry->id;
    }
  }
  return 0;
}

bool apply_action(proto::SimEngine& engine, const Action& action) {
  const sim::MessageId id = resolve(engine, action);
  if (id == 0) return false;
  if (action.kind == ActionKind::kDeliver) {
    engine.bus().deliver(id);
  } else {
    engine.bus().drop(id);
  }
  return true;
}

ExploreResult explore(const Scenario& scenario, const ExploreOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  ExploreResult result;
  ExploreStats& st = result.stats;
  Execution exec(scenario, options);

  // Per cached state: the sleep set it was explored with. A revisit whose
  // sleep set is a superset is fully covered (prune); a revisit with new
  // wake-ups must re-expand with the intersection, or the combination of
  // sleep sets and state caching would drop reachable states (the classic
  // unsoundness Godefroid warns about).
  std::unordered_map<StateKey, SleepSet, StateKeyHash> cache;
  std::vector<Frame> frames;
  Trace path;
  std::optional<Violation> raw;

  // In seeded-bug mode the delivery mutator reads a global find-delivery
  // counter, so two find deliveries no longer commute even at different
  // targets (their order decides which message gets corrupted); the
  // reduction must treat them as dependent or it would prune the very
  // schedules that trigger the bug.
  const bool bug_mode = options.corrupt_at_find_delivery > 0;
  const auto indep = [bug_mode](const ActionDesc& x, const ActionDesc& y) {
    if (bug_mode && x.action.kind == ActionKind::kDeliver &&
        y.action.kind == ActionKind::kDeliver && !x.action.token &&
        !y.action.token) {
      return false;
    }
    return independent(x, y);
  };

  // Engine sits at the state reached by `path`; decide what to do with it.
  const auto enter = [&](SleepSet sleep) -> bool {
    StateKey key = exec.key();
    const auto it = cache.find(key);
    if (it == cache.end()) {
      ++st.states;
      st.state_fingerprint ^= StateKeyHash{}(key);
      if (const verify::CheckResult r = exec.check(key.cfg); !r) {
        raw = Violation{path, r.detail, key.cfg.to_dot(), false};
        return false;
      }
      if (exec.quiescent()) {
        ++st.quiescent;
        if (const verify::CheckResult live = exec.audit(); !live) {
          raw = Violation{path, live.detail, key.cfg.to_dot(), true};
          return false;
        }
        if (options.collect_quiescent) {
          result.quiescent_configs.push_back(key.cfg);
        }
        // Terminal: no successors, so any sleep set covers it forever.
        cache.emplace(std::move(key), SleepSet{});
        return false;
      }
    } else {
      if (!options.sleep_sets || subset(it->second, sleep)) {
        ++st.cache_hits;
        return false;
      }
      if (exec.quiescent()) {
        ++st.cache_hits;
        return false;
      }
      sleep = intersect(sleep, it->second);
      ++st.re_expansions;
    }
    if (path.size() >= options.max_depth) {
      st.complete = false;
      cache.insert_or_assign(std::move(key), std::move(sleep));
      return false;
    }
    std::vector<ActionDesc> enabled = exec.enabled();
    st.max_frontier = std::max(st.max_frontier, enabled.size());
    std::vector<ActionDesc> to_explore;
    to_explore.reserve(enabled.size());
    for (ActionDesc& a : enabled) {
      if (options.sleep_sets && contains(sleep, a)) {
        ++st.sleep_prunes;
        continue;
      }
      to_explore.push_back(a);
    }
    cache.insert_or_assign(std::move(key), sleep);
    if (to_explore.empty()) return false;
    frames.push_back(Frame{std::move(to_explore), std::move(sleep), {}, 0});
    st.max_depth_seen = std::max(st.max_depth_seen, path.size());
    return true;
  };

  exec.ensure({});
  enter(SleepSet{});

  while (!raw.has_value() && !frames.empty()) {
    if (st.states > options.max_states ||
        elapsed() > options.time_budget_seconds) {
      st.complete = false;
      break;
    }
    Frame& f = frames.back();
    if (f.next >= f.actions.size()) {
      frames.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const ActionDesc a = f.actions[f.next++];
    SleepSet child;
    if (options.sleep_sets) {
      for (const ActionDesc& b : f.sleep) {
        if (indep(a, b)) child.push_back(b);
      }
      for (const ActionDesc& b : f.done) {
        if (indep(a, b)) child.push_back(b);
      }
    }
    f.done.push_back(a);
    exec.ensure(path);
    exec.apply(a.action);
    ++st.transitions;
    path.push_back(a.action);
    if (!enter(std::move(child))) {
      path.pop_back();
    }
  }

  if (raw.has_value()) {
    st.complete = false;
    std::optional<Violation> minimized =
        shortest_violation(exec, options, raw->trace.size());
    result.violation = minimized.has_value() ? std::move(*minimized)
                                             : std::move(*raw);
  }

  st.executions = exec.executions;
  st.replay_steps = exec.replay_steps;
  st.seconds = elapsed();
  return result;
}

ReplayOutcome replay(const Scenario& scenario, const Trace& trace,
                     const ExploreOptions& options) {
  Execution exec(scenario, options);
  ReplayOutcome out;

  const auto inspect = [&](std::size_t applied) -> bool {
    verify::Configuration cfg = verify::capture(exec.sim_engine());
    cfg.canonicalize();
    out.final_config = cfg;
    if (verify::CheckResult r = exec.check(cfg); !r) {
      out.check = std::move(r);
      out.failing_step = applied;
      return true;
    }
    if (exec.quiescent()) {
      if (verify::CheckResult live = exec.audit(); !live) {
        out.check = std::move(live);
        out.failing_step = applied;
        out.liveness = true;
        return true;
      }
    }
    return false;
  };

  if (inspect(0)) return out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!exec.try_apply(trace[i])) {
      throw std::invalid_argument(
          "arvy_explore: trace action " + std::to_string(i + 1) + " (" +
          format_action(trace[i]) + ") names no pending message");
    }
    if (inspect(i + 1)) return out;
  }
  return out;
}

std::string format_action(const Action& action) {
  std::string out =
      action.kind == ActionKind::kDeliver ? "deliver:" : "drop:";
  if (action.token) {
    out += "token";
  } else {
    out += "find:";
    out += std::to_string(action.producer);
  }
  return out;
}

Action parse_action(std::string_view text) {
  Action a;
  const auto take = [&text](std::string_view prefix) {
    if (text.substr(0, prefix.size()) != prefix) return false;
    text.remove_prefix(prefix.size());
    return true;
  };
  if (take("deliver:")) {
    a.kind = ActionKind::kDeliver;
  } else if (take("drop:")) {
    a.kind = ActionKind::kDrop;
  } else {
    throw std::invalid_argument("arvy_explore: bad action '" +
                                std::string(text) + "'");
  }
  if (text == "token") {
    a.token = true;
    return a;
  }
  if (!take("find:") || text.empty()) {
    throw std::invalid_argument("arvy_explore: bad action payload '" +
                                std::string(text) + "'");
  }
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("arvy_explore: bad find producer '" +
                                  std::string(text) + "'");
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  a.producer = static_cast<NodeId>(value);
  return a;
}

proto::PolicyKind parse_policy_kind(std::string_view name) {
  for (const proto::PolicyKind kind : proto::all_policy_kinds()) {
    if (proto::policy_kind_name(kind) == name) return kind;
  }
  throw std::invalid_argument("arvy_explore: unknown policy '" +
                              std::string(name) + "'");
}

void write_trace(std::ostream& os, const Scenario& scenario,
                 const ExploreOptions& options, const Trace& trace,
                 std::string_view detail) {
  os << "# arvy_explore counterexample trace (see docs/TESTING.md)\n";
  os << "topology " << scenario.topology << '\n';
  os << "policy " << proto::policy_kind_name(scenario.policy) << '\n';
  os << "requests";
  for (const NodeId v : scenario.requests) os << ' ' << v;
  os << '\n';
  if (options.fault_budget > 0) {
    os << "fault-budget " << options.fault_budget << '\n';
  }
  if (options.corrupt_at_find_delivery > 0) {
    os << "seed-bug " << options.corrupt_at_find_delivery << ' '
       << options.corrupt_with << '\n';
  }
  os << "trace";
  for (const Action& a : trace) os << ' ' << format_action(a);
  os << '\n';
  if (!detail.empty()) {
    os << "detail " << detail << '\n';
  }
}

TraceFile read_trace(std::istream& is) {
  std::string topology;
  std::optional<proto::PolicyKind> policy;
  std::vector<NodeId> requests;
  TraceFile out;
  bool saw_trace = false;

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "topology") {
      ls >> topology;
    } else if (key == "policy") {
      std::string name;
      ls >> name;
      policy = parse_policy_kind(name);
    } else if (key == "requests") {
      NodeId v = 0;
      while (ls >> v) requests.push_back(v);
    } else if (key == "fault-budget") {
      if (!(ls >> out.options.fault_budget)) {
        throw std::invalid_argument("arvy_explore: bad fault-budget line");
      }
    } else if (key == "seed-bug") {
      if (!(ls >> out.options.corrupt_at_find_delivery >>
            out.options.corrupt_with)) {
        throw std::invalid_argument("arvy_explore: bad seed-bug line");
      }
    } else if (key == "trace") {
      saw_trace = true;
      std::string token;
      while (ls >> token) out.trace.push_back(parse_action(token));
    } else if (key == "detail") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      out.detail = std::move(rest);
    } else {
      throw std::invalid_argument("arvy_explore: unknown trace-file key '" +
                                  key + "'");
    }
  }
  if (topology.empty() || !policy.has_value() || !saw_trace) {
    throw std::invalid_argument(
        "arvy_explore: trace file needs topology, policy and trace lines");
  }
  out.scenario = make_scenario(topology, *policy, std::move(requests));
  return out;
}

std::string stats_json(const Scenario& scenario, const ExploreOptions& options,
                       const ExploreResult& result) {
  const ExploreStats& st = result.stats;
  std::ostringstream os;
  os << "{\"scenario\":\"" << scenario.name() << "\""
     << ",\"topology\":\"" << scenario.topology << "\""
     << ",\"policy\":\"" << proto::policy_kind_name(scenario.policy) << "\""
     << ",\"requests\":[";
  for (std::size_t i = 0; i < scenario.requests.size(); ++i) {
    if (i > 0) os << ',';
    os << scenario.requests[i];
  }
  os << "],\"fault_budget\":" << options.fault_budget
     << ",\"sleep_sets\":" << (options.sleep_sets ? "true" : "false")
     << ",\"states\":" << st.states
     << ",\"transitions\":" << st.transitions
     << ",\"cache_hits\":" << st.cache_hits
     << ",\"sleep_prunes\":" << st.sleep_prunes
     << ",\"re_expansions\":" << st.re_expansions
     << ",\"executions\":" << st.executions
     << ",\"replay_steps\":" << st.replay_steps
     << ",\"quiescent\":" << st.quiescent
     << ",\"max_frontier\":" << st.max_frontier
     << ",\"max_depth\":" << st.max_depth_seen
     << ",\"fingerprint\":\"" << std::hex << st.state_fingerprint << std::dec
     << "\",\"complete\":" << (st.complete ? "true" : "false")
     << ",\"violation\":" << (result.violation.has_value() ? "true" : "false")
     << ",\"seconds\":" << st.seconds << '}';
  return os.str();
}

}  // namespace arvy::explore
