// Request-sequence generators.
//
// A workload is either a plain node sequence (sequential semantics: each
// request is issued after the previous one is satisfied, the §6 model) or a
// timed set of requests (concurrent semantics, the §5 model).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "proto/engine.hpp"
#include "support/rng.hpp"

namespace arvy::workload {

using graph::NodeId;

// Uniformly random nodes; consecutive repeats are skipped when
// `avoid_repeats` (a repeat request is free for every protocol and only
// dilutes ratio measurements).
[[nodiscard]] std::vector<NodeId> uniform_sequence(std::size_t node_count,
                                                   std::size_t length,
                                                   support::Rng& rng,
                                                   bool avoid_repeats = true);

// Reusable Zipf hotspot sampler: builds the popularity CDF and the
// rank -> identity shuffle ONCE, then every draw is an O(log n) lookup.
// This is what per-request workload loops should hold on to - the old
// pattern of calling zipf_sequence(n, 1, ...) per request rebuilt both per
// draw (the bench/multi_object.cpp allocation bug this class fixes).
// Identities are shuffled so the hot ranks are not metrically adjacent.
class ZipfNodeSampler {
 public:
  // `rng` only seeds the one-time shuffle; draws take their own stream.
  ZipfNodeSampler(std::size_t count, double alpha, support::Rng& rng);

  // Zipf-ranked identity in [0, count): as a node id or as a raw index
  // (object ids and other non-node domains). Allocation-free.
  [[nodiscard]] NodeId sample(support::Rng& rng) const {
    return static_cast<NodeId>(sample_index(rng));
  }
  [[nodiscard]] std::size_t sample_index(support::Rng& rng) const {
    return relabel_[sampler_.sample(rng)];
  }
  [[nodiscard]] std::size_t size() const noexcept { return relabel_.size(); }

 private:
  support::ZipfSampler sampler_;
  std::vector<std::size_t> relabel_;  // rank -> identity
};

// Zipf-distributed node popularity with exponent alpha (hotspot traffic);
// node identities are shuffled so the hot nodes are not metrically adjacent.
// One-shot convenience over ZipfNodeSampler.
[[nodiscard]] std::vector<NodeId> zipf_sequence(std::size_t node_count,
                                                std::size_t length,
                                                double alpha,
                                                support::Rng& rng);

// Round-robin sweep 0, 1, ..., n-1, 0, 1, ... of the given length.
[[nodiscard]] std::vector<NodeId> round_robin_sequence(std::size_t node_count,
                                                       std::size_t length);

// a, b, a, b, ... of the given length.
[[nodiscard]] std::vector<NodeId> alternating_sequence(NodeId a, NodeId b,
                                                       std::size_t length);

// Random-walk locality: the next requester is a node within `hop_radius`
// hops of the previous one (models producer-consumer locality).
[[nodiscard]] std::vector<NodeId> local_walk_sequence(const graph::Graph& g,
                                                      std::size_t length,
                                                      std::uint32_t hop_radius,
                                                      support::Rng& rng);

// Poisson arrivals with the given rate over distinct random nodes (each node
// requests at most once, so the model's one-outstanding-per-node rule can
// never be violated regardless of delays). count <= node_count.
[[nodiscard]] std::vector<proto::SimEngine::TimedRequest> poisson_arrivals(
    std::size_t node_count, std::size_t count, double rate, support::Rng& rng);

// All of `nodes` request at once (a burst); time 0.
[[nodiscard]] std::vector<proto::SimEngine::TimedRequest> burst(
    std::vector<NodeId> nodes);

}  // namespace arvy::workload
