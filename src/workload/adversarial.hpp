// The adversarial request sequences behind the paper's lower bounds
// (Lemma 8 and the §2 discussion of Arrow's tree dependence).
#pragma once

#include "graph/spanning_tree.hpp"
#include "workload/workload.hpp"

namespace arvy::workload {

// Lemma 8 (Arrow): a spanning tree of a ring has a pair with stretch
// Omega(n); alternating requests across that pair cost Arrow the tree path
// every time while OPT pays the ring distance. Returns the alternating
// sequence for the worst-stretch pair of `tree` in `g`.
[[nodiscard]] std::vector<NodeId> arrow_worst_alternation(
    const graph::Graph& g, const graph::RootedTree& tree, std::size_t length);

// Lemma 8 (Ivy): with the chain tree rooted at v_n, the sweep
// v_1, v_2, ..., v_n costs Ivy Theta(n^2) while OPT pays n. Node ids are
// 0-based: the sweep is 0, 1, ..., n-1 and the initial tree must be
// proto::chain_config(n).
[[nodiscard]] std::vector<NodeId> ivy_ring_sweep(std::size_t node_count);

// Exact costs of the sweep on a unit ring of n >= 3 nodes under our
// simulator's accounting, with S = sum_{j=1}^{n-2} min(j, n-j) (the sum of
// ring distances d(v_1, v_i) for 2 <= i <= n-1, Theta(n^2)):
//   find traffic only:      n + 2S
//   find + token traffic:   2n + 2S
// The paper states n + 2*sum - 1 with its own (find-oriented) edge-count
// argument; the Theta(n^2) growth and the Omega(n) ratio are identical.
// Tests assert the simulator reproduces these numbers *exactly*.
[[nodiscard]] double ivy_sweep_find_cost(std::size_t node_count);
[[nodiscard]] double ivy_sweep_total_cost(std::size_t node_count);

// OPT for the sweep: every request is one ring hop from the token, so
// OPT(sigma) = n (the paper's figure).
[[nodiscard]] double ivy_sweep_opt(std::size_t node_count);

}  // namespace arvy::workload
