#include "workload/adversarial.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arvy::workload {

std::vector<NodeId> arrow_worst_alternation(const graph::Graph& g,
                                            const graph::RootedTree& tree,
                                            std::size_t length) {
  const graph::StretchReport report = max_stretch_pair(g, tree);
  ARVY_ASSERT(report.a != graph::kInvalidNode);
  return alternating_sequence(report.a, report.b, length);
}

std::vector<NodeId> ivy_ring_sweep(std::size_t node_count) {
  ARVY_EXPECTS(node_count >= 3);
  std::vector<NodeId> out(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    out[i] = static_cast<NodeId>(i);
  }
  return out;
}

namespace {

// S = sum of ring distances from v_1 (0-based node 0) to the interior sweep
// targets v_2..v_{n-1}.
double sweep_distance_sum(std::size_t n) {
  double s = 0.0;
  for (std::size_t j = 1; j + 1 < n; ++j) {
    s += static_cast<double>(std::min(j, n - j));
  }
  return s;
}

}  // namespace

double ivy_sweep_find_cost(std::size_t node_count) {
  ARVY_EXPECTS(node_count >= 3);
  return static_cast<double>(node_count) + 2.0 * sweep_distance_sum(node_count);
}

double ivy_sweep_total_cost(std::size_t node_count) {
  ARVY_EXPECTS(node_count >= 3);
  return 2.0 * static_cast<double>(node_count) +
         2.0 * sweep_distance_sum(node_count);
}

double ivy_sweep_opt(std::size_t node_count) {
  ARVY_EXPECTS(node_count >= 3);
  return static_cast<double>(node_count);
}

}  // namespace arvy::workload
