#include "workload/workload.hpp"

#include <algorithm>
#include <numeric>

#include "graph/shortest_paths.hpp"
#include "support/assert.hpp"

namespace arvy::workload {

std::vector<NodeId> uniform_sequence(std::size_t node_count,
                                     std::size_t length, support::Rng& rng,
                                     bool avoid_repeats) {
  ARVY_EXPECTS(node_count >= 2);
  std::vector<NodeId> out;
  out.reserve(length);
  while (out.size() < length) {
    const auto v = static_cast<NodeId>(rng.next_below(node_count));
    if (avoid_repeats && !out.empty() && out.back() == v) continue;
    out.push_back(v);
  }
  return out;
}

ZipfNodeSampler::ZipfNodeSampler(std::size_t count, double alpha,
                                 support::Rng& rng)
    : sampler_(count, alpha), relabel_(count) {
  ARVY_EXPECTS(count >= 1);
  // Shuffle rank -> identity so popularity is independent of the labelling
  // (node ids often encode position in generated topologies).
  std::iota(relabel_.begin(), relabel_.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(relabel_));
}

std::vector<NodeId> zipf_sequence(std::size_t node_count, std::size_t length,
                                  double alpha, support::Rng& rng) {
  ARVY_EXPECTS(node_count >= 2);
  const ZipfNodeSampler sampler(node_count, alpha, rng);
  std::vector<NodeId> out;
  out.reserve(length);
  while (out.size() < length) {
    const NodeId v = sampler.sample(rng);
    if (!out.empty() && out.back() == v) continue;
    out.push_back(v);
  }
  return out;
}

std::vector<NodeId> round_robin_sequence(std::size_t node_count,
                                         std::size_t length) {
  ARVY_EXPECTS(node_count >= 2);
  std::vector<NodeId> out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<NodeId>(i % node_count));
  }
  return out;
}

std::vector<NodeId> alternating_sequence(NodeId a, NodeId b,
                                         std::size_t length) {
  ARVY_EXPECTS(a != b);
  std::vector<NodeId> out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(i % 2 == 0 ? a : b);
  }
  return out;
}

std::vector<NodeId> local_walk_sequence(const graph::Graph& g,
                                        std::size_t length,
                                        std::uint32_t hop_radius,
                                        support::Rng& rng) {
  ARVY_EXPECTS(g.node_count() >= 2);
  ARVY_EXPECTS(hop_radius >= 1);
  std::vector<NodeId> out;
  out.reserve(length);
  auto current = static_cast<NodeId>(rng.next_below(g.node_count()));
  out.push_back(current);
  while (out.size() < length) {
    const std::vector<std::uint32_t> hops = bfs_hops(g, current);
    std::vector<NodeId> near;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v != current && hops[v] <= hop_radius) near.push_back(v);
    }
    ARVY_ASSERT(!near.empty());  // connected graph, radius >= 1
    current = rng.pick(std::span<const NodeId>(near));
    out.push_back(current);
  }
  return out;
}

std::vector<proto::SimEngine::TimedRequest> poisson_arrivals(
    std::size_t node_count, std::size_t count, double rate,
    support::Rng& rng) {
  ARVY_EXPECTS(count <= node_count);
  ARVY_EXPECTS(rate > 0.0);
  std::vector<NodeId> nodes(node_count);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  rng.shuffle(std::span<NodeId>(nodes));
  nodes.resize(count);
  std::vector<proto::SimEngine::TimedRequest> out;
  out.reserve(count);
  double t = 0.0;
  for (NodeId v : nodes) {
    t += rng.next_exponential(1.0 / rate);
    out.push_back({v, t});
  }
  return out;
}

std::vector<proto::SimEngine::TimedRequest> burst(std::vector<NodeId> nodes) {
  std::vector<proto::SimEngine::TimedRequest> out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) out.push_back({v, 0.0});
  return out;
}

}  // namespace arvy::workload
