// A blocking multi-producer mailbox for the threaded runtime.
//
// The paper's network model only promises eventual delivery; a mutex +
// condition-variable deque provides exactly that (plus per-sender FIFO,
// which the protocol does not rely on - the simulator's adversarial
// disciplines cover reordering).
//
// Thread-safety contract (checked by tests/test_concurrency_stress.cpp
// under ThreadSanitizer):
//  - push / pop / pop_random / size may be called from any thread;
//  - close may race with consumers (they drain, then observe nullopt) but
//    NOT with push-producers: push on a closed mailbox is a contract
//    violation, so push callers must quiesce or join before closing.
//    Producers that may legitimately outlive quiescence (peer actors and
//    the fault nurse during a non-quiescent shutdown) use try_push, which
//    discards instead of aborting once the box is closed;
//  - the internal mutex is rank-checked (support/lock_rank.hpp): holding a
//    mailbox lock while acquiring any lower-ranked lock aborts.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/assert.hpp"
#include "support/lock_rank.hpp"

namespace arvy::runtime {

template <typename T>
class Mailbox {
 public:
  // Enqueues an item; wakes one waiting consumer. Never blocks long (the
  // queue is unbounded - protocol traffic per node is small and finite).
  void push(T item) {
    {
      std::lock_guard<support::RankedMutex> lock(mutex_);
      ARVY_ASSERT_MSG(!closed_, "push to a closed mailbox");
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
  }

  // Close-tolerant push for producers that may legitimately race shutdown
  // (actor-to-actor deliveries, the fault nurse's deferred retries): the
  // item is discarded once the box is closed, and the caller learns it.
  // External submitters must keep using push - losing a user's request
  // silently is a bug, losing in-flight traffic at teardown is the
  // documented "accepted loss" of a non-quiescent shutdown.
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<support::RankedMutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or the box is closed; nullopt on
  // close-and-empty.
  //
  // gcc 12 reports a bogus -Wuninitialized when T contains a std::variant:
  // the diagnostic points into the variant storage of the moved-FROM deque
  // slot, which items_.front()/items_[index] guarantee is alive (same false-
  // positive family as gcc PR 105593). Suppressed for the two pop bodies
  // only; clang compiles them clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<support::RankedMutex> lock(mutex_);
    ready_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  // Non-blocking pop: nullopt when the box is currently empty (closed or
  // not). Used by the ring runtime's workers to drain the cold overflow
  // valve without parking on the mailbox CV.
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard<support::RankedMutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  // Like pop, but takes a uniformly random queued item instead of the
  // oldest: per-channel FIFO is an accident of the transport, not a protocol
  // assumption, and this consumes messages in adversarially shuffled order
  // (the threaded analogue of the simulator's kRandom discipline).
  template <typename Rng>
  [[nodiscard]] std::optional<T> pop_random(Rng& rng) {
    std::unique_lock<support::RankedMutex> lock(mutex_);
    ready_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    const std::size_t index = rng.next_below(items_.size());
    std::optional<T> item(std::move(items_[index]));
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(index));
    return item;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  // After close, pop drains remaining items and then returns nullopt.
  void close() {
    {
      std::lock_guard<support::RankedMutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<support::RankedMutex> lock(mutex_);
    return items_.size();
  }

 private:
  // condition_variable_any because the mutex is the rank-checked wrapper,
  // not std::mutex; the CV's internal unlock/relock is rank-checked too.
  mutable support::RankedMutex mutex_{support::lock_rank::kMailbox, "mailbox"};
  std::condition_variable_any ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace arvy::runtime
