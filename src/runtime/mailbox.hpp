// A blocking multi-producer mailbox for the threaded runtime.
//
// The paper's network model only promises eventual delivery; a mutex +
// condition-variable deque provides exactly that (plus per-sender FIFO,
// which the protocol does not rely on - the simulator's adversarial
// disciplines cover reordering).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/assert.hpp"

namespace arvy::runtime {

template <typename T>
class Mailbox {
 public:
  // Enqueues an item; wakes one waiting consumer. Never blocks long (the
  // queue is unbounded - protocol traffic per node is small and finite).
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ARVY_ASSERT_MSG(!closed_, "push to a closed mailbox");
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
  }

  // Blocks until an item is available or the box is closed; nullopt on
  // close-and-empty.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Like pop, but takes a uniformly random queued item instead of the
  // oldest: per-channel FIFO is an accident of the transport, not a protocol
  // assumption, and this consumes messages in adversarially shuffled order
  // (the threaded analogue of the simulator's kRandom discipline).
  template <typename Rng>
  [[nodiscard]] std::optional<T> pop_random(Rng& rng) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    const std::size_t index = rng.next_below(items_.size());
    T item = std::move(items_[index]);
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(index));
    return item;
  }

  // After close, pop drains remaining items and then returns nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace arvy::runtime
