// A threaded actor runtime for the Arvy protocol family.
//
// One std::thread per node, each owning an ArvyCore and a Mailbox. This is
// the "real asynchrony" counterpart of the discrete-event engine: message
// interleavings come from the OS scheduler (optionally roughened with random
// sender-side jitter), so experiment E13 exercises the paper's model outside
// the simulator with the exact same protocol core.
//
// Threading contract:
//  - each core is touched only by its node's thread;
//  - the policy object is cloned per node; cores also get per-node RNGs;
//  - the distance oracle is prewarmed before threads start and then only read;
//  - cost/satisfaction accounting goes through one mutex-protected Stats.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "proto/core.hpp"
#include "proto/init.hpp"
#include "proto/policies.hpp"
#include "runtime/mailbox.hpp"

namespace arvy::runtime {

using graph::NodeId;

struct ActorOptions {
  std::uint64_t seed = 1;
  // Random sleep in [0, max_jitter] before each message send; 0 disables.
  std::chrono::microseconds max_jitter{0};
  // Consume mailbox items in random order instead of FIFO: full asynchrony
  // (the paper never assumes channel ordering).
  bool reorder_mailboxes = false;
};

class ActorSystem {
 public:
  using Options = ActorOptions;

  ActorSystem(const graph::Graph& g, const proto::InitialConfig& init,
              const proto::NewParentPolicy& policy, Options options = {});
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  // Injects a token request at node v (processed on v's thread). The caller
  // must respect the model's rule: do not request at a node whose previous
  // request is still outstanding. Returns the request id.
  proto::RequestId request(NodeId v);

  // Blocks until at least `count` requests (cumulative) are satisfied.
  void wait_for_satisfied(std::uint64_t count);

  [[nodiscard]] std::uint64_t satisfied_count() const noexcept {
    return satisfied_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t submitted_count() const noexcept {
    return next_request_.load(std::memory_order_acquire) - 1;
  }

  // Total distance-weighted traffic so far (find + token).
  [[nodiscard]] double total_cost() const;
  [[nodiscard]] double find_cost() const;

  // Stops all node threads. Callers should wait_for_satisfied first so the
  // network is quiescent; pending mailbox items are still drained.
  void shutdown();

  // Post-shutdown inspection (threads joined, single-threaded again).
  [[nodiscard]] const proto::ArvyCore& node(NodeId v) const;
  [[nodiscard]] bool is_shut_down() const noexcept { return shut_down_; }

 private:
  struct Envelope {
    enum class Kind { kRequest, kProtocol } kind = Kind::kProtocol;
    proto::RequestId request = 0;   // kRequest
    proto::Message payload;         // kProtocol
    NodeId from = graph::kInvalidNode;
  };

  struct NodeActor {
    std::unique_ptr<proto::NewParentPolicy> policy;
    std::unique_ptr<support::Rng> rng;
    std::unique_ptr<proto::ArvyCore> core;
    Mailbox<Envelope> mailbox;
    std::thread thread;
    support::Rng jitter_rng{0};
  };

  void run_node(NodeId v);
  void deliver_effects(NodeId from, proto::Effects&& effects,
                       support::Rng& jitter_rng);

  graph::DistanceOracle oracle_;
  Options options_;
  std::vector<std::unique_ptr<NodeActor>> actors_;

  std::atomic<std::uint64_t> next_request_{1};
  std::atomic<std::uint64_t> satisfied_{0};
  mutable std::mutex stats_mutex_;
  std::condition_variable satisfied_cv_;
  double find_cost_ = 0.0;
  double token_cost_ = 0.0;
  bool shut_down_ = false;
};

}  // namespace arvy::runtime
