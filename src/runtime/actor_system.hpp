// A threaded actor runtime for the Arvy protocol family.
//
// One std::thread per node, each owning an ArvyCore and a Mailbox. This is
// the "real asynchrony" counterpart of the discrete-event engine: message
// interleavings come from the OS scheduler (optionally roughened with random
// sender-side jitter), so experiment E13 exercises the paper's model outside
// the simulator with the exact same protocol core.
//
// Threading contract (checked under ThreadSanitizer by the tier-1 suite):
//  - each core is touched only by its node's thread;
//  - the policy object is cloned per node; cores also get per-node RNGs;
//  - the distance oracle is prewarmed before threads start and then only read;
//  - cost accounting goes through one mutex-protected block (stats_mutex_);
//  - the satisfied counter is atomic so satisfied_count() is wait-free, but
//    every increment happens while holding stats_mutex_ followed by a CV
//    notify: the increment cannot interleave between a waiter's predicate
//    check and its wait, so wakeups are never lost;
//  - request/wait_for_satisfied/satisfied_count may be called from any
//    thread; shutdown() must not race with request() (close-vs-push is a
//    contract violation in the mailbox) and node() is legal only after
//    shutdown() has returned;
//  - all mutexes are rank-checked (support/lock_rank.hpp): stats < faults <
//    delayed-queue < mailbox is the only legal nesting order.
//
// Fault injection (Options::faults): the same faults::FaultInjector the
// simulator uses, serialized behind its own mutex, decides each send's fate.
// Deferred deliveries (retransmission backoff, pauses, storms, duplicate
// staggering) park in a DelayedQueue drained by one nurse thread; sim-time
// units scale to wall time via Options::fault_time_unit. Duplicate copies
// carry a dedup id and are discarded by the receiving actor if the group was
// already handled (at-least-once wire, exactly-once protocol core).
// Shutdown closes and joins the nurse BEFORE closing mailboxes, so deferred
// items never hit a closed mailbox; items still pending in the delayed
// queue at shutdown are discarded.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "proto/core.hpp"
#include "proto/init.hpp"
#include "proto/policies.hpp"
#include "runtime/delayed_queue.hpp"
#include "runtime/mailbox.hpp"
#include "support/lock_rank.hpp"

namespace arvy::runtime {

using graph::NodeId;

struct ActorOptions {
  std::uint64_t seed = 1;
  // Random sleep in [0, max_jitter] before each message send; 0 disables.
  std::chrono::microseconds max_jitter{0};
  // Consume mailbox items in random order instead of FIFO: full asynchrony
  // (the paper never assumes channel ordering).
  bool reorder_mailboxes = false;
  // Declarative fault schedule; empty = strict no-op (no injector, no nurse
  // thread, the send path is exactly the fault-free one).
  faults::FaultPlan faults;
  faults::RetryPolicy retry;
  // Wall-time length of one sim-time unit for the fault schedule: backoffs,
  // storm windows and pause windows are declared in sim time and scaled by
  // this on the threaded transport.
  std::chrono::microseconds fault_time_unit{200};
};

class ActorSystem {
 public:
  using Options = ActorOptions;

  ActorSystem(const graph::Graph& g, const proto::InitialConfig& init,
              const proto::NewParentPolicy& policy, Options options = {});
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  // Injects a token request at node v (processed on v's thread). The caller
  // must respect the model's rule: do not request at a node whose previous
  // request is still outstanding. Returns the request id.
  proto::RequestId request(NodeId v);

  // Blocks until at least `count` requests (cumulative) are satisfied.
  void wait_for_satisfied(std::uint64_t count);

  // Like wait_for_satisfied, but gives up after `timeout`. Returns whether
  // the target was reached. Tests use this instead of the untimed wait so a
  // liveness regression fails the test instead of hanging ctest forever.
  [[nodiscard]] bool wait_for_satisfied_for(std::uint64_t count,
                                            std::chrono::milliseconds timeout);

  [[nodiscard]] std::uint64_t satisfied_count() const noexcept {
    return satisfied_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t submitted_count() const noexcept {
    return next_request_.load(std::memory_order_acquire) - 1;
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return actors_.size();
  }

  // Total distance-weighted traffic so far (find + token).
  [[nodiscard]] double total_cost() const;
  [[nodiscard]] double find_cost() const;
  [[nodiscard]] std::uint64_t find_messages() const;
  [[nodiscard]] std::uint64_t token_messages() const;

  // Snapshot of the injector's counters (zero-initialized when no faults
  // were declared). Callable from any thread.
  [[nodiscard]] faults::FaultStats fault_stats() const;

  // Stops all node threads. Callers should wait_for_satisfied first so the
  // network is quiescent; pending mailbox items are still drained.
  void shutdown();

  // Post-shutdown inspection (threads joined, single-threaded again).
  [[nodiscard]] const proto::ArvyCore& node(NodeId v) const;
  [[nodiscard]] bool is_shut_down() const noexcept {
    return shut_down_.load(std::memory_order_acquire);
  }

 private:
  struct Envelope {
    enum class Kind { kRequest, kProtocol } kind = Kind::kProtocol;
    proto::RequestId request = 0;   // kRequest
    proto::Message payload;         // kProtocol
    NodeId from = graph::kInvalidNode;
    // Non-zero when this envelope belongs to a duplicated send: copies share
    // the id and the receiving actor handles only the first to arrive.
    std::uint64_t dedup = 0;
  };

  struct Deferred {
    NodeId to = graph::kInvalidNode;
    Envelope envelope;
  };

  struct NodeActor {
    std::unique_ptr<proto::NewParentPolicy> policy;
    std::unique_ptr<support::Rng> rng;
    std::unique_ptr<proto::ArvyCore> core;
    Mailbox<Envelope> mailbox;
    std::thread thread;
    support::Rng jitter_rng{0};
    // Dedup groups already handled; touched only by this node's thread.
    std::unordered_set<std::uint64_t> handled_dups;
  };

  void run_node(NodeId v);
  void run_nurse();
  void deliver_effects(NodeId from, proto::Effects&& effects,
                       support::Rng& jitter_rng);
  // Routes one envelope through the fault injector (which must be active):
  // drops it, defers it, and/or fans out duplicate copies.
  void send_with_faults(NodeId to, Envelope&& envelope, double distance);
  // Current fault-schedule time: wall time since construction, in sim-time
  // units (fault_time_unit).
  [[nodiscard]] double fault_now() const;
  // The single writer path for satisfied_: increment under stats_mutex_,
  // notify after releasing it (see the threading contract above).
  void note_satisfied();

  graph::DistanceOracle oracle_;
  Options options_;
  std::vector<std::unique_ptr<NodeActor>> actors_;

  std::atomic<std::uint64_t> next_request_{1};
  std::atomic<std::uint64_t> satisfied_{0};
  mutable support::RankedMutex stats_mutex_{support::lock_rank::kStats,
                                            "actor-stats"};
  std::condition_variable_any satisfied_cv_;
  double find_cost_ = 0.0;   // guarded by stats_mutex_
  double token_cost_ = 0.0;  // guarded by stats_mutex_
  std::uint64_t find_messages_ = 0;   // guarded by stats_mutex_
  std::uint64_t token_messages_ = 0;  // guarded by stats_mutex_

  // Fault machinery; all null/idle when options.faults is empty.
  std::unique_ptr<faults::FaultInjector> injector_;  // guarded by faults_mutex_
  mutable support::RankedMutex faults_mutex_{support::lock_rank::kFaults,
                                             "actor-faults"};
  DelayedQueue<Deferred> delayed_;
  std::thread nurse_;
  std::atomic<std::uint64_t> next_dedup_{1};
  std::chrono::steady_clock::time_point start_;

  // False until shutdown() has joined every node thread; the join provides
  // the happens-before edge that makes post-shutdown core inspection safe.
  std::atomic<bool> shut_down_{false};
};

}  // namespace arvy::runtime
