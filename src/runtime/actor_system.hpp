// A threaded actor runtime for the Arvy protocol family.
//
// A pool of worker threads, each owning a partition of the node actors. Every
// actor has a bounded MPSC RingMailbox of wire-encoded envelopes
// (proto/wire.hpp), and a worker drains its actors in batches: one wakeup
// consumes every ready slot, so the futex/CV handoff of the old
// one-thread-per-node design is amortized across a whole batch instead of
// paid per message. This is the "real asynchrony" counterpart of the
// discrete-event engine: interleavings come from the OS scheduler (optionally
// roughened with random sender-side jitter and in-batch shuffling), with the
// exact same protocol core.
//
// Hot path (all ARVY_HOT, checked by arvy_lint: no alloc/lock/throw/log):
//   enqueue: encode_envelope into a claimed ring slot (one CAS) + a fenced
//   wake check; drain: acquire_batch -> decode_envelope views -> core
//   dispatch -> deliver_effects -> release_batch. The only allocations left
//   per message are inside ArvyCore itself (visited copies), shared with the
//   sim transport. Cold paths stay conventional: a full ring overflows into
//   the actor's old Mailbox (the overflow valve - a worker must never block
//   on a ring it drains itself), and the fault nurse re-drives deferred
//   deliveries the same way.
//
// Threading contract (checked under ThreadSanitizer by the tier-1 suite):
//  - each core is touched only by the worker that owns its actor; with
//    workers == node_count this degenerates to the old thread-per-node model
//    (the default), with workers == 1 the runtime is sequential and
//    deterministic for a fixed submission order;
//  - the policy object is cloned per node; cores also get per-node RNGs;
//  - the distance oracle is prewarmed before threads start and then only read;
//  - cost accounting is per-actor single-writer atomics (the owner worker of
//    the SENDING actor writes; readers sum). The writes are sequenced before
//    the ring publish of the message they charge for, so any observer that
//    saw the message's consequences sees the charge;
//  - the satisfied counter is atomic so satisfied_count() is wait-free, but
//    every increment happens while holding stats_mutex_ followed by a CV
//    notify: the increment cannot interleave between a waiter's predicate
//    check and its wait, so wakeups are never lost;
//  - worker parking is an eventcount: a producer publishes its frame, issues
//    a seq_cst fence, and reads the consumer's phase word; the consumer
//    announces kPreparing with a seq_cst store, rescans its rings, and only
//    then parks (with a short timed backstop). One side always observes the
//    other, so no wakeup is lost without any lock on the publish path;
//  - request/wait_for_satisfied/satisfied_count may be called from any
//    thread; shutdown() must not race with request() (push-after-close
//    aborts) and node() is legal only after shutdown() has returned;
//  - all mutexes are rank-checked (support/lock_rank.hpp): stats < faults <
//    delayed-queue < worker < mailbox is the only legal nesting order.
//
// Fault injection (Options::faults): the same faults::FaultInjector the
// simulator uses, serialized behind its own mutex, decides each send's fate.
// Deferred deliveries (retransmission backoff, pauses, storms, duplicate
// staggering) park in a DelayedQueue drained by one nurse thread; sim-time
// units scale to wall time via Options::fault_time_unit. Duplicate copies
// carry a dedup id and are discarded by the receiving actor if the group was
// already handled (at-least-once wire, exactly-once protocol core).
// Shutdown closes and joins the nurse BEFORE closing rings, so deferred
// items never hit a closed ring; items still pending in the delayed
// queue at shutdown are discarded.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "proto/core.hpp"
#include "proto/init.hpp"
#include "proto/options.hpp"
#include "proto/policies.hpp"
#include "proto/wire.hpp"
#include "runtime/delayed_queue.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/ring_mailbox.hpp"
#include "support/hot.hpp"
#include "support/lock_rank.hpp"

namespace arvy::runtime {

using graph::NodeId;

// The runtime reads the unified options surface (proto/options.hpp): seed,
// max_jitter, reorder_mailboxes, workers, batch_size, ring_capacity, faults,
// retry and fault_time_unit. The protocol-resolution fields (policy, initial,
// sim discipline/delay) are the facade's job - ActorSystem takes the already
// resolved policy and initial config as constructor arguments.
using ActorOptions = arvy::Options;

class ActorSystem {
 public:
  using Options = ActorOptions;

  ActorSystem(const graph::Graph& g, const proto::InitialConfig& init,
              const proto::NewParentPolicy& policy, Options options = {});
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  // Injects a token request at node v (processed on v's owner worker). The
  // caller must respect the model's rule: do not request at a node whose
  // previous request is still outstanding. Returns the request id. Applies
  // bounded-buffer backpressure (blocks while v's ring is full).
  proto::RequestId request(NodeId v);

  // Blocks until at least `count` requests (cumulative) are satisfied.
  void wait_for_satisfied(std::uint64_t count);

  // Like wait_for_satisfied, but gives up after `timeout`. Returns whether
  // the target was reached. Tests use this instead of the untimed wait so a
  // liveness regression fails the test instead of hanging ctest forever.
  [[nodiscard]] bool wait_for_satisfied_for(std::uint64_t count,
                                            std::chrono::milliseconds timeout);

  // Monotone counter peeks: relaxed is the whole contract - the value is
  // exact-at-some-moment, and callers who need an ordered view already hold
  // stats_mutex_ (the CV waits) or observed shut_down_ (the joins).
  [[nodiscard]] std::uint64_t satisfied_count() const noexcept {
    return satisfied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t submitted_count() const noexcept {
    return next_request_.load(std::memory_order_relaxed) - 1;
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return actors_.size();
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  // Total distance-weighted traffic so far (find + token).
  [[nodiscard]] double total_cost() const;
  [[nodiscard]] double find_cost() const;
  [[nodiscard]] std::uint64_t find_messages() const;
  [[nodiscard]] std::uint64_t token_messages() const;

  // Snapshot of the injector's counters (zero-initialized when no faults
  // were declared). Callable from any thread.
  [[nodiscard]] faults::FaultStats fault_stats() const;

  // Stops all worker threads. Callers should wait_for_satisfied first so the
  // network is quiescent; pending ring/overflow items are still drained.
  void shutdown();

  // Post-shutdown inspection (threads joined, single-threaded again).
  [[nodiscard]] const proto::ArvyCore& node(NodeId v) const;
  [[nodiscard]] bool is_shut_down() const noexcept {
    return shut_down_.load(std::memory_order_acquire);
  }

 private:
  // Boxed message format of the COLD paths only (overflow valve, delayed
  // queue). The hot paths carry flat wire envelopes inside ring slots.
  struct Envelope {
    proto::Message payload;
    NodeId from = graph::kInvalidNode;
    // Non-zero when this envelope belongs to a duplicated send: copies share
    // the id and the receiving actor handles only the first to arrive.
    std::uint64_t dedup = 0;
  };

  struct Deferred {
    NodeId to = graph::kInvalidNode;
    Envelope envelope;
  };

  // One drain-side thread. Parking is an eventcount (see file comment);
  // the mutex/CV pair is only the slow path of wake().
  struct Worker {
    enum Phase : std::uint32_t { kRunning = 0, kPreparing = 1, kNotified = 2 };

    std::vector<NodeId> actors;  // owned partition, round-robin by id
    std::thread thread;
    // The eventcount word: all ordering comes from the two seq_cst Dekker
    // fences (run_worker / maybe_wake), so the accesses themselves stay
    // relaxed except the kPreparing announcement (see actor_system.cpp).
    std::atomic<std::uint32_t> phase{kRunning};  // ARVY-ATOMIC(eventcount)
    support::RankedMutex mutex{support::lock_rank::kWorker, "worker-park"};
    std::condition_variable_any cv;
    std::vector<std::uint32_t> shuffle;  // reorder_mailboxes batch scratch
  };

  struct NodeActor {
    NodeId id = graph::kInvalidNode;
    Worker* owner = nullptr;
    std::unique_ptr<proto::NewParentPolicy> policy;
    std::unique_ptr<support::Rng> rng;
    std::unique_ptr<proto::ArvyCore> core;
    // Hot channel: bounded ring of flat wire envelopes.
    std::optional<RingMailbox> ring;
    // Cold overflow valve: a worker that finds a peer's ring full must not
    // spin (it might BE that ring's drainer), so the frame falls back to the
    // old boxed mailbox, flagged here and drained before the next batch.
    Mailbox<Envelope> overflow;
    std::atomic<bool> overflow_nonempty{false};  // ARVY-ATOMIC(flag)
    support::Rng jitter_rng{0};
    // Reused decode target for find frames: visited is reserved to the node
    // count up front, so the hot drain's assign() never reallocates.
    proto::FindMessage scratch_find;
    // Dedup groups already handled; touched only by the owner worker.
    std::unordered_set<std::uint64_t> handled_dups;
    // Cost accounting for messages SENT by this actor. Single writer (the
    // owner worker), so load+store with relaxed ordering is exact; readers
    // sum across actors. Padded apart by the surrounding unique_ptr graph.
    std::atomic<double> find_cost{0.0};           // ARVY-ATOMIC(single-writer)
    std::atomic<double> token_cost{0.0};          // ARVY-ATOMIC(single-writer)
    std::atomic<std::uint64_t> find_messages{0};  // ARVY-ATOMIC(single-writer)
    std::atomic<std::uint64_t> token_messages{0};  // ARVY-ATOMIC(single-writer)
  };

  void run_worker(Worker& worker);
  void run_nurse();
  // Drains up to batch_size ready ring slots (plus any overflow spill) of
  // one actor. Returns whether anything was processed.
  bool drain_actor(Worker& worker, NodeActor& actor);
  // Decodes and dispatches one ring frame on the owner worker.
  void process_frame(NodeActor& actor, const std::byte* slot);
  // Cold twin of process_frame for boxed overflow envelopes.
  void process_envelope(NodeActor& actor, Envelope& envelope);
  void deliver_effects(NodeActor& from, proto::Effects&& effects);
  // Hot enqueue of a protocol message into `to`'s ring; spills to the
  // overflow valve when full, drops (accepted loss) when closed.
  void enqueue_protocol(NodeId to, const proto::Message& message,
                        std::uint64_t dedup);
  // Cold overflow spill + slow wake, out of line so enqueue stays hot-clean.
  // ARVY_COLD keeps these (and the std:: machinery they drag in) out of the
  // callers' .text.hot sections, so the binary audit sees the hot/cold
  // boundary exactly where the design puts it (see support/hot.hpp).
  ARVY_COLD void overflow_send(NodeActor& peer, const proto::Message& message,
                               std::uint64_t dedup);
  // Eventcount wake: fence + phase check inline, locking slow path only if
  // the owner is parked or preparing to park.
  void maybe_wake(Worker& worker);
  ARVY_COLD void wake_slow(Worker& worker);
  [[nodiscard]] bool worker_has_work(const Worker& worker) const;
  // First-arrival check for a duplicated send's dedup group (cold: the
  // hash-table insert may rehash, i.e. allocate).
  ARVY_COLD [[nodiscard]] bool first_arrival(NodeActor& actor,
                                             std::uint64_t dedup);
  ARVY_COLD void drain_overflow(NodeActor& actor);
  // Routes one envelope through the fault injector (which must be active):
  // drops it, defers it, and/or fans out duplicate copies.
  ARVY_COLD void send_with_faults(NodeId to, Envelope&& envelope,
                                  double distance);
  // Current fault-schedule time: wall time since construction, in sim-time
  // units (fault_time_unit).
  [[nodiscard]] double fault_now() const;
  // The single writer path for satisfied_: increment under stats_mutex_,
  // notify after releasing it (see the threading contract above).
  ARVY_COLD void note_satisfied();

  graph::DistanceOracle oracle_;
  Options options_;
  std::vector<std::unique_ptr<NodeActor>> actors_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<std::uint64_t> next_request_{1};  // ARVY-ATOMIC(counter)
  std::atomic<std::uint64_t> satisfied_{0};     // ARVY-ATOMIC(counter)
  mutable support::RankedMutex stats_mutex_{support::lock_rank::kStats,
                                            "actor-stats"};
  std::condition_variable_any satisfied_cv_;

  // Fault machinery; all null/idle when options.faults is empty.
  std::unique_ptr<faults::FaultInjector> injector_;  // guarded by faults_mutex_
  mutable support::RankedMutex faults_mutex_{support::lock_rank::kFaults,
                                             "actor-faults"};
  DelayedQueue<Deferred> delayed_;
  std::thread nurse_;
  std::atomic<std::uint64_t> next_dedup_{1};  // ARVY-ATOMIC(counter)
  std::chrono::steady_clock::time_point start_;

  // Set (before rings close) to tell workers to exit once their partition
  // has no remaining work; workers drain everything already published first.
  std::atomic<bool> stopping_{false};  // ARVY-ATOMIC(flag)
  // False until shutdown() has joined every worker; the join provides the
  // happens-before edge that makes post-shutdown core inspection safe.
  std::atomic<bool> shut_down_{false};  // ARVY-ATOMIC(flag)
};

}  // namespace arvy::runtime
