// LiveDirectory: the AnyDirectory facade over the threaded actor runtime.
//
// Same contract as the simulator-backed arvy::Directory - submit requests,
// drain, snapshot costs and fault stats - but execution is real OS
// asynchrony: a worker pool batch-draining per-node MPSC ring mailboxes of
// wire-encoded envelopes (LiveOptions picks the pool and batch sizes),
// wall-clock fault windows. Code written against AnyDirectory runs on
// either transport; the fault-matrix tests run the identical scenario list
// on both.
//
//   arvy::LiveDirectory dir(g, {.policy = arvy::proto::PolicyKind::kIvy,
//                               .faults = {.drop_find = 0.1},
//                               .retry = {.rto = 4.0}});
//   dir.acquire(3);
//   dir.acquire(6);
//   bool all = dir.drain(std::chrono::seconds(5));
//   dir.shutdown();
//
// The sim-only DirectoryOptions fields (discipline, delay) are ignored here:
// the OS scheduler is the delivery discipline.
#pragma once

#include <chrono>
#include <memory>

#include "proto/directory.hpp"
#include "runtime/actor_system.hpp"

namespace arvy {

// Threaded-transport tuning knobs, orthogonal to the protocol options.
struct LiveOptions {
  // Random sender-side sleep in [0, max_jitter] per message; 0 disables.
  std::chrono::microseconds max_jitter{0};
  // Consume each drained ring batch in random order (full asynchrony).
  bool reorder_mailboxes = false;
  // Worker threads the node actors are partitioned across. 0 = one worker
  // per node (legacy thread-per-node, maximal interleaving); 1 = sequential
  // and deterministic for a fixed submission order; a small fixed pool is
  // the throughput configuration.
  std::size_t workers = 0;
  // Max ring slots drained per actor visit (amortizes the wakeup handoff).
  std::size_t batch_size = 16;
  // Ring slots per actor's mailbox (rounded up to a power of two).
  std::size_t ring_capacity = 256;
  // Wall-time length of one sim-time unit for the fault schedule.
  std::chrono::microseconds fault_time_unit{200};
};

class LiveDirectory final : public AnyDirectory {
 public:
  explicit LiveDirectory(const graph::Graph& g, DirectoryOptions options = {},
                         LiveOptions live = {});
  // Shuts the actor system down if the caller has not already.
  ~LiveDirectory() override;

  // --- AnyDirectory ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const override;
  proto::RequestId acquire(graph::NodeId v) override;
  // Blocks until every request submitted so far is satisfied (the runtime
  // counts satisfactions cumulatively, so "mine is done" is observed as
  // "all submitted are done"; with one outstanding request per node that is
  // the same thing). Asserts on timeout - a liveness bug, not a slow run.
  void acquire_and_wait(graph::NodeId v) override;
  [[nodiscard]] bool drain(std::chrono::milliseconds budget =
                               std::chrono::milliseconds(10'000)) override;
  [[nodiscard]] std::uint64_t submitted_count() const override;
  [[nodiscard]] std::uint64_t satisfied_count() const override;
  [[nodiscard]] proto::CostAccount cost_snapshot() const override;
  [[nodiscard]] faults::FaultStats fault_stats() const override;

  // --- Runtime-specific -----------------------------------------------------
  // Stops all node threads (drain first for a quiescent stop). Idempotent.
  void shutdown();
  [[nodiscard]] bool is_shut_down() const noexcept;
  // Post-shutdown inspection of a node's protocol core (tree sanity checks).
  [[nodiscard]] const proto::ArvyCore& node(graph::NodeId v) const;

 private:
  std::unique_ptr<runtime::ActorSystem> system_;
};

}  // namespace arvy
