// LiveDirectory: the AnyDirectory facade over the threaded actor runtime.
//
// Same contract as the simulator-backed arvy::Directory - submit requests,
// drain, snapshot costs and fault stats - but execution is real OS
// asynchrony: a worker pool batch-draining per-node MPSC ring mailboxes of
// wire-encoded envelopes (LiveOptions picks the pool and batch sizes),
// wall-clock fault windows. Code written against AnyDirectory runs on
// either transport; the fault-matrix tests run the identical scenario list
// on both.
//
//   arvy::LiveDirectory dir(g, {.policy = arvy::proto::PolicyKind::kIvy,
//                               .faults = {.drop_find = 0.1},
//                               .retry = {.rto = 4.0}});
//   dir.acquire(3);
//   dir.acquire(6);
//   bool all = dir.drain(std::chrono::seconds(5));
//   dir.shutdown();
//
// The sim-only DirectoryOptions fields (discipline, delay) are ignored here:
// the OS scheduler is the delivery discipline.
#pragma once

#include <chrono>
#include <memory>

#include "proto/directory.hpp"
#include "runtime/actor_system.hpp"

namespace arvy {

class LiveDirectory final : public AnyDirectory {
 public:
  // The unified Options carries both the protocol fields and the threaded
  // transport knobs (max_jitter, workers, batch_size, ...); see
  // proto/options.hpp for the field guide.
  explicit LiveDirectory(const graph::Graph& g, Options options = {});
  // Historical two-struct shape (kept for one release, like the LiveOptions
  // alias itself): protocol fields come from `options`, transport knobs from
  // `live`.
  LiveDirectory(const graph::Graph& g, Options options, LiveOptions live);
  // Shuts the actor system down if the caller has not already.
  ~LiveDirectory() override;

  // --- AnyDirectory ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const override;
  proto::RequestId acquire(graph::NodeId v) override;
  // Blocks until every request submitted so far is satisfied (the runtime
  // counts satisfactions cumulatively, so "mine is done" is observed as
  // "all submitted are done"; with one outstanding request per node that is
  // the same thing). Asserts on timeout - a liveness bug, not a slow run.
  void acquire_and_wait(graph::NodeId v) override;
  [[nodiscard]] bool drain(std::chrono::milliseconds budget =
                               std::chrono::milliseconds(10'000)) override;
  [[nodiscard]] std::uint64_t submitted_count() const override;
  [[nodiscard]] std::uint64_t satisfied_count() const override;
  [[nodiscard]] proto::CostAccount cost_snapshot() const override;
  [[nodiscard]] faults::FaultStats fault_stats() const override;

  // --- Runtime-specific -----------------------------------------------------
  // Stops all node threads (drain first for a quiescent stop). Idempotent.
  void shutdown();
  [[nodiscard]] bool is_shut_down() const noexcept;
  // Post-shutdown inspection of a node's protocol core (tree sanity checks).
  [[nodiscard]] const proto::ArvyCore& node(graph::NodeId v) const;

 private:
  std::unique_ptr<runtime::ActorSystem> system_;
};

}  // namespace arvy
