// A bounded MPSC ring buffer of fixed-stride byte slots: the zero-alloc
// mailbox of the threaded runtime (roadmap item 2).
//
// The old Mailbox paid a mutex + condition variable + std::deque node per
// message; this ring pays one CAS and two cache-line touches. Messages cross
// it as flat wire-encoded frames (proto/wire.hpp), written in place by the
// producer and read in place by the consumer, so the actor-to-actor path
// performs no allocation at all - the slab is sized once at construction.
//
// Design (Vyukov bounded-queue tickets, specialized to one consumer):
//  - every slot carries a sequence number; slot i is writable for ticket t
//    when seq == t, readable when seq == t + 1, and recycled by the consumer
//    to seq = t + capacity for the next lap;
//  - producers claim a ticket with a CAS on tail_ (the CAS, not a blind
//    fetch_add, is what lets try_push report kFull without stranding a
//    ticket the consumer would wait on forever);
//  - the single consumer drains in BATCHES: acquire_batch scans forward from
//    head over published slots, the caller processes them in place, and
//    release_batch recycles the whole run - one head advance amortized over
//    the batch instead of a CV handshake per message.
//
// Memory-order contract (the slot lifecycle, checked under TSan by
// tests/test_concurrency_stress.cpp):
//
//    producer                                consumer
//    --------                                --------
//    s = seq[t].load(acquire)   // writable?
//    CAS tail_: t -> t+1 (relaxed)
//    ...write payload bytes...
//    seq[t].store(t+1, release) ----------→  seq[h].load(acquire) == h+1
//                                            ...read payload bytes...
//                               ←----------  seq[h].store(h+cap, release)
//    (next-lap producer's acquire load of seq pairs with that store, so the
//    consumer's reads finish before the slot is overwritten)
//
// The release/acquire pair on the slot's sequence word is the only
// synchronization the payload needs; head_ and tail_ use relaxed ordering
// because neither is ever used to justify reading payload bytes.
//
// Close protocol (preserves the old Mailbox's shutdown contract):
//  - close() is sticky; after it, try_push/push return kClosed/false and the
//    frame is NOT enqueued;
//  - the consumer keeps draining published slots after close (close drains,
//    then stops) - a producer that won its CAS before observing close
//    completes its write and the frame is either drained or is part of the
//    documented accepted loss of a non-quiescent shutdown;
//  - push (blocking, for external submitters) spins with yield on a full
//    ring - bounded-buffer backpressure - and fails only on close.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "support/assert.hpp"
#include "support/hot.hpp"

namespace arvy::runtime {

enum class PushResult : std::uint8_t { kOk = 0, kFull = 1, kClosed = 2 };

class RingMailbox {
 public:
  // `capacity` is rounded up to a power of two; `slot_bytes` is the fixed
  // frame budget per message (callers size it so the largest legal wire
  // envelope fits - see wire::envelope_bytes). The slab is the only
  // allocation this class ever performs.
  RingMailbox(std::size_t capacity, std::size_t slot_bytes)
      : slot_stride_((slot_bytes + 7) & ~std::size_t{7}) {
    ARVY_EXPECTS(capacity >= 2);
    ARVY_EXPECTS(slot_bytes > 0);
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      seq_[i].store(i, std::memory_order_relaxed);
    }
    slab_ = std::make_unique<std::byte[]>(cap * slot_stride_);
  }

  RingMailbox(const RingMailbox&) = delete;
  RingMailbox& operator=(const RingMailbox&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t slot_bytes() const noexcept { return slot_stride_; }

  // Non-blocking multi-producer enqueue. Claims a slot, invokes
  // fill(slot_pointer) to write at most slot_bytes() bytes, publishes.
  // kFull when the ring has no free slot (the caller applies its own
  // backpressure or overflow policy), kClosed after close().
  template <typename Fill>
  ARVY_HOT PushResult try_push(Fill&& fill) {
    if (closed_.load(std::memory_order_acquire)) return PushResult::kClosed;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      std::atomic<std::uint64_t>& seq = seq_[pos & mask_];  // ARVY-ATOMIC(vyukov-slot)
      const std::uint64_t s = seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::int64_t>(s) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          fill(slab_.get() + (pos & mask_) * slot_stride_);
          seq.store(pos + 1, std::memory_order_release);
          return PushResult::kOk;
        }
        // CAS failure reloaded pos; retry against the new tail.
      } else if (diff < 0) {
        return PushResult::kFull;  // a full lap behind: no free slot
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Blocking enqueue for external submitters: spins (with yield) on a full
  // ring until space frees up - bounded-buffer backpressure - and returns
  // false only when the ring is closed. Losing a user's request silently is
  // a bug, so callers assert on the return value.
  template <typename Fill>
  ARVY_HOT [[nodiscard]] bool push(Fill&& fill) {
    for (std::uint32_t spins = 0;; ++spins) {
      const PushResult r = try_push(fill);
      if (r == PushResult::kOk) return true;
      if (r == PushResult::kClosed) return false;
      if (spins >= kSpinsBeforeYield) std::this_thread::yield();
    }
  }

  // --- single-consumer batch interface --------------------------------------

  // True when at least one published frame is ready (callable from any
  // thread as a hint; exact only for the consumer).
  [[nodiscard]] ARVY_HOT bool has_ready() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return seq_[head & mask_].load(std::memory_order_acquire) == head + 1;
  }

  // Scans forward from head over published slots and returns the run length
  // (<= max). The slots stay claimed - read them with batch_slot - until
  // release_batch recycles the whole run. Consumer-only.
  [[nodiscard]] ARVY_HOT std::size_t acquire_batch(std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t n = 0;
    while (n < max &&
           seq_[(head + n) & mask_].load(std::memory_order_acquire) ==
               head + n + 1) {
      ++n;
    }
    return n;
  }

  // Frame bytes of the k-th slot of the batch acquired above. Consumer-only.
  [[nodiscard]] ARVY_HOT const std::byte* batch_slot(std::size_t k) const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return slab_.get() + ((head + k) & mask_) * slot_stride_;
  }

  // Recycles the first `n` slots of the acquired batch for the producers'
  // next lap and advances head. Consumer-only.
  ARVY_HOT void release_batch(std::size_t n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < n; ++k) {
      seq_[(head + k) & mask_].store(head + k + capacity_,
                                     std::memory_order_release);
    }
    head_.store(head + n, std::memory_order_release);
  }

  // Sticky. Producers observe kClosed/false; the consumer drains whatever
  // was published, then sees an empty ring. Wakeups are the owner's job
  // (the runtime parks workers, not rings). Release pairs with try_push's
  // acquire load; nothing about close participates in a Dekker-style
  // store/load protocol, so seq_cst (the previous order) bought nothing.
  void close() { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  // Claimed-but-not-yet-consumed frame count; approximate under concurrency
  // (test/diagnostic use only). The tail read is relaxed like every other
  // ticket access: neither counter justifies reading payload bytes, and an
  // approximate difference needs no ordering at all.
  [[nodiscard]] std::size_t approx_size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  static constexpr std::uint32_t kSpinsBeforeYield = 64;

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t slot_stride_;
  // Per-slot sequence words: the release/acquire publish protocol above.
  std::unique_ptr<std::atomic<std::uint64_t>[]> seq_;  // ARVY-ATOMIC(vyukov-slot)
  std::unique_ptr<std::byte[]> slab_;

  // Producers and consumer on separate cache lines; head_ is atomic only so
  // approx_size/has_ready may peek from other threads. tail_ is a pure
  // ticket counter (relaxed CAS); head_ is single-writer (the consumer).
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // ARVY-ATOMIC(ticket)
  alignas(64) std::atomic<std::uint64_t> head_{0};  // ARVY-ATOMIC(single-writer)
  alignas(64) std::atomic<bool> closed_{false};     // ARVY-ATOMIC(flag)
};

}  // namespace arvy::runtime
