// A deadline-ordered holding pen for deferred runtime messages.
//
// The fault layer turns drops-with-retry, duplicate staggering, pauses and
// storms into "deliver this later"; in the simulator that is a bigger
// deliver_at, here it is a min-heap of (deadline, item) drained by one nurse
// thread (ActorSystem's) that re-pushes due items into the target mailbox.
//
// Thread-safety contract (exercised by tests/test_fault_matrix.cpp under
// ThreadSanitizer):
//  - push may be called from any thread; pushing after close silently
//    discards the item (a deferred message at shutdown is just dropped -
//    callers quiesce first when they care);
//  - pop_due blocks until some item's deadline passes or the queue closes,
//    and is intended for a single consumer (the nurse thread);
//  - close wakes the consumer; remaining items are discarded;
//  - the internal mutex has rank kDelayed: above the stats mutex, below the
//    mailboxes, so the nurse may push into a mailbox with nothing held and
//    actors may defer items while charging costs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "support/lock_rank.hpp"

namespace arvy::runtime {

template <typename T>
class DelayedQueue {
 public:
  using Clock = std::chrono::steady_clock;

  // Holds `item` until `due`. Discards it when the queue is closed.
  void push(T item, Clock::time_point due) {
    auto boxed = std::make_unique<T>(std::move(item));
    {
      std::lock_guard<support::RankedMutex> lock(mutex_);
      if (closed_) return;
      heap_.push(Entry{due, seq_++, std::move(boxed)});
    }
    ready_.notify_one();
  }

  // Blocks until the earliest item is due (returning it) or the queue is
  // closed (returning nullopt). Single consumer.
  [[nodiscard]] std::optional<T> pop_due() {
    std::unique_lock<support::RankedMutex> lock(mutex_);
    while (true) {
      if (heap_.empty()) {
        if (closed_) return std::nullopt;
        ready_.wait(lock, [this] { return closed_ || !heap_.empty(); });
        continue;
      }
      if (closed_) return std::nullopt;
      const Clock::time_point due = heap_.top().due;
      if (Clock::now() >= due) {
        // top() is const-ref only; the const_cast move is safe because the
        // entry is popped immediately after.
        std::unique_ptr<T> item =
            std::move(const_cast<Entry&>(heap_.top()).item);
        heap_.pop();
        return std::move(*item);
      }
      ready_.wait_until(lock, due);
    }
  }

  void close() {
    {
      std::lock_guard<support::RankedMutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<support::RankedMutex> lock(mutex_);
    return heap_.size();
  }

 private:
  struct Entry {
    Clock::time_point due;
    std::uint64_t seq;  // FIFO among equal deadlines
    // Boxed so heap sift moves a pointer, not T. Deferral volume is tiny
    // (only faulted messages land here), and a payload with a std::variant
    // inside trips gcc 12's bogus -Wmaybe-uninitialized (PR 105593) when
    // moved through push_heap/pop_heap slots.
    std::unique_ptr<T> item;

    bool operator>(const Entry& other) const noexcept {
      if (due != other.due) return due > other.due;
      return seq > other.seq;
    }
  };

  mutable support::RankedMutex mutex_{support::lock_rank::kDelayed,
                                      "delayed-queue"};
  std::condition_variable_any ready_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  bool closed_ = false;
};

}  // namespace arvy::runtime
