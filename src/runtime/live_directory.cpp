#include "runtime/live_directory.hpp"

#include "support/assert.hpp"

namespace arvy {

LiveDirectory::LiveDirectory(const graph::Graph& g, Options options) {
  const auto policy = resolve_policy(options);
  const proto::InitialConfig init = resolve_initial_config(g, options);
  system_ = std::make_unique<runtime::ActorSystem>(g, init, *policy,
                                                   std::move(options));
}

LiveDirectory::LiveDirectory(const graph::Graph& g, Options options,
                             LiveOptions live) {
  // Legacy merge: transport knobs from the second struct override the
  // (defaulted) ones in the first.
  options.max_jitter = live.max_jitter;
  options.reorder_mailboxes = live.reorder_mailboxes;
  options.workers = live.workers;
  options.batch_size = live.batch_size;
  options.ring_capacity = live.ring_capacity;
  options.fault_time_unit = live.fault_time_unit;
  const auto policy = resolve_policy(options);
  const proto::InitialConfig init = resolve_initial_config(g, options);
  system_ = std::make_unique<runtime::ActorSystem>(g, init, *policy,
                                                   std::move(options));
}

LiveDirectory::~LiveDirectory() { shutdown(); }

std::size_t LiveDirectory::node_count() const {
  return system_->node_count();
}

proto::RequestId LiveDirectory::acquire(graph::NodeId v) {
  return system_->request(v);
}

void LiveDirectory::acquire_and_wait(graph::NodeId v) {
  acquire(v);
  const bool satisfied = system_->wait_for_satisfied_for(
      system_->submitted_count(), std::chrono::milliseconds(10'000));
  ARVY_ASSERT_MSG(satisfied, "acquire_and_wait timed out (liveness bug)");
}

bool LiveDirectory::drain(std::chrono::milliseconds budget) {
  return system_->wait_for_satisfied_for(system_->submitted_count(), budget);
}

std::uint64_t LiveDirectory::submitted_count() const {
  return system_->submitted_count();
}

std::uint64_t LiveDirectory::satisfied_count() const {
  return system_->satisfied_count();
}

proto::CostAccount LiveDirectory::cost_snapshot() const {
  proto::CostAccount account;
  account.find_distance = system_->find_cost();
  account.token_distance = system_->total_cost() - account.find_distance;
  account.find_messages = system_->find_messages();
  account.token_messages = system_->token_messages();
  return account;
}

faults::FaultStats LiveDirectory::fault_stats() const {
  return system_->fault_stats();
}

void LiveDirectory::shutdown() { system_->shutdown(); }

bool LiveDirectory::is_shut_down() const noexcept {
  return system_->is_shut_down();
}

const proto::ArvyCore& LiveDirectory::node(graph::NodeId v) const {
  return system_->node(v);
}

}  // namespace arvy
