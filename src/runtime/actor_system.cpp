#include "runtime/actor_system.hpp"

#include "support/assert.hpp"

namespace arvy::runtime {

ActorSystem::ActorSystem(const graph::Graph& g,
                         const proto::InitialConfig& init,
                         const proto::NewParentPolicy& policy, Options options)
    : oracle_(g), options_(options) {
  ARVY_EXPECTS(init.node_count() == g.node_count());
  ARVY_EXPECTS(init.is_valid_tree());
  oracle_.prewarm_all();  // all threads read the oracle concurrently

  support::Rng seeder(options_.seed);
  actors_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto actor = std::make_unique<NodeActor>();
    actor->policy = policy.clone();
    actor->rng = std::make_unique<support::Rng>(seeder.split());
    actor->core = std::make_unique<proto::ArvyCore>(
        v, actor->policy.get(), &oracle_, actor->rng.get());
    actor->core->initialize(init.parent[v], v == init.root,
                            init.parent_edge_is_bridge[v]);
    actor->jitter_rng = seeder.split();
    actors_.push_back(std::move(actor));
  }
  start_ = std::chrono::steady_clock::now();
  if (!options_.faults.empty()) {
    // Counters only: a per-event log under a hot mutex would serialize the
    // actors harder than the faults do.
    injector_ = std::make_unique<faults::FaultInjector>(
        options_.faults, options_.retry, /*record_events=*/false);
    nurse_ = std::thread([this] { run_nurse(); });
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    actors_[v]->thread = std::thread([this, v] { run_node(v); });
  }
}

ActorSystem::~ActorSystem() {
  if (!is_shut_down()) shutdown();
}

proto::RequestId ActorSystem::request(NodeId v) {
  ARVY_EXPECTS(v < actors_.size());
  ARVY_EXPECTS_MSG(!is_shut_down(), "request after shutdown");
  const proto::RequestId id =
      next_request_.fetch_add(1, std::memory_order_acq_rel);
  Envelope envelope;
  envelope.kind = Envelope::Kind::kRequest;
  envelope.request = id;
  actors_[v]->mailbox.push(std::move(envelope));
  return id;
}

void ActorSystem::wait_for_satisfied(std::uint64_t count) {
  std::unique_lock<support::RankedMutex> lock(stats_mutex_);
  satisfied_cv_.wait(lock, [this, count] {
    return satisfied_.load(std::memory_order_acquire) >= count;
  });
}

bool ActorSystem::wait_for_satisfied_for(std::uint64_t count,
                                         std::chrono::milliseconds timeout) {
  std::unique_lock<support::RankedMutex> lock(stats_mutex_);
  return satisfied_cv_.wait_for(lock, timeout, [this, count] {
    return satisfied_.load(std::memory_order_acquire) >= count;
  });
}

double ActorSystem::total_cost() const {
  std::lock_guard<support::RankedMutex> lock(stats_mutex_);
  return find_cost_ + token_cost_;
}

double ActorSystem::find_cost() const {
  std::lock_guard<support::RankedMutex> lock(stats_mutex_);
  return find_cost_;
}

std::uint64_t ActorSystem::find_messages() const {
  std::lock_guard<support::RankedMutex> lock(stats_mutex_);
  return find_messages_;
}

std::uint64_t ActorSystem::token_messages() const {
  std::lock_guard<support::RankedMutex> lock(stats_mutex_);
  return token_messages_;
}

faults::FaultStats ActorSystem::fault_stats() const {
  std::lock_guard<support::RankedMutex> lock(faults_mutex_);
  if (!injector_) return {};
  return injector_->stats();
}

void ActorSystem::shutdown() {
  if (is_shut_down()) return;
  // Order matters: the nurse pushes into mailboxes, so it must be stopped
  // and joined before any mailbox closes (close-vs-push contract). Deferred
  // items still pending are discarded - by the time callers shut down they
  // have either waited for quiescence or accepted the loss.
  delayed_.close();
  if (nurse_.joinable()) nurse_.join();
  for (auto& actor : actors_) actor->mailbox.close();
  for (auto& actor : actors_) {
    if (actor->thread.joinable()) actor->thread.join();
  }
  // Publish only after every join: node() may rely on the joins'
  // happens-before edges the moment this flag reads true.
  shut_down_.store(true, std::memory_order_release);
}

const proto::ArvyCore& ActorSystem::node(NodeId v) const {
  ARVY_EXPECTS_MSG(is_shut_down(),
                   "cores may only be inspected after shutdown (data race)");
  ARVY_EXPECTS(v < actors_.size());
  return *actors_[v]->core;
}

void ActorSystem::note_satisfied() {
  {
    // The mutex, not the atomicity, is what makes the CV protocol sound: a
    // waiter evaluates its predicate under stats_mutex_, so this increment
    // either happens-before the check (waiter sees it) or after the waiter
    // is parked (notify_all wakes it). Incrementing outside the lock could
    // land between the two and the notification would be lost.
    std::lock_guard<support::RankedMutex> lock(stats_mutex_);
    satisfied_.fetch_add(1, std::memory_order_acq_rel);
  }
  satisfied_cv_.notify_all();
}

void ActorSystem::run_node(NodeId v) {
  NodeActor& actor = *actors_[v];
  auto next = [&]() {
    return options_.reorder_mailboxes ? actor.mailbox.pop_random(actor.jitter_rng)
                                      : actor.mailbox.pop();
  };
  while (auto envelope = next()) {
    if (envelope->dedup != 0 &&
        !actor.handled_dups.insert(envelope->dedup).second) {
      // A copy of a duplicated send whose group was already handled: the
      // wire is at-least-once, the protocol core sees exactly-once.
      continue;
    }
    proto::Effects effects;
    if (envelope->kind == Envelope::Kind::kRequest) {
      if (actor.core->holds_token()) {
        // Trivially satisfied at the holder, as in the simulator.
        note_satisfied();
        continue;
      }
      effects = actor.core->request_token(envelope->request);
    } else {
      effects = actor.core->on_message(envelope->payload);
    }
    deliver_effects(v, std::move(effects), actor.jitter_rng);
  }
}

void ActorSystem::deliver_effects(NodeId from, proto::Effects&& effects,
                                  support::Rng& jitter_rng) {
  if (effects.satisfied.has_value()) note_satisfied();
  for (proto::Outgoing& out : effects.sends) {
    if (options_.max_jitter.count() > 0) {
      const auto jitter = std::chrono::microseconds(
          jitter_rng.next_below(
              static_cast<std::uint64_t>(options_.max_jitter.count()) + 1));
      std::this_thread::sleep_for(jitter);
    }
    const double distance = oracle_.distance(from, out.to);
    {
      std::lock_guard<support::RankedMutex> lock(stats_mutex_);
      if (proto::is_find(out.payload)) {
        find_cost_ += distance;
        ++find_messages_;
      } else {
        token_cost_ += distance;
        ++token_messages_;
      }
    }
    Envelope envelope;
    envelope.kind = Envelope::Kind::kProtocol;
    envelope.payload = std::move(out.payload);
    envelope.from = from;
    if (injector_) {
      send_with_faults(out.to, std::move(envelope), distance);
    } else {
      // Actor-to-actor delivery may race a non-quiescent shutdown: once the
      // peer's mailbox has closed, the message is part of the teardown's
      // accepted loss, not a contract violation.
      (void)actors_[out.to]->mailbox.try_push(std::move(envelope));
    }
  }
}

double ActorSystem::fault_now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double>(elapsed) /
         std::chrono::duration<double>(options_.fault_time_unit);
}

void ActorSystem::send_with_faults(NodeId to, Envelope&& envelope,
                                   double distance) {
  faults::MessageKind kind = faults::MessageKind::kToken;
  faults::RequestId request = 0;
  if (const auto* find = std::get_if<proto::FindMessage>(&envelope.payload)) {
    kind = faults::MessageKind::kFind;
    request = find->request;
  }
  faults::Verdict verdict;
  {
    std::lock_guard<support::RankedMutex> lock(faults_mutex_);
    verdict = injector_->on_send(kind, envelope.from, to, fault_now(),
                                 distance, request);
  }
  if (verdict.lost) return;  // permanently lost: retries exhausted/disabled
  if (verdict.duplicates > 0) {
    envelope.dedup = next_dedup_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto unit =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          options_.fault_time_unit);
  const auto now = std::chrono::steady_clock::now();
  // Duplicate copies are staggered by the link's transit time so they arrive
  // as genuine reorder hazards, not back-to-back mailbox neighbours.
  for (std::uint32_t i = 0; i < verdict.duplicates; ++i) {
    const auto stagger = unit * (i + 1.0) * std::max(distance, 1.0);
    delayed_.push(
        Deferred{to, envelope},
        now +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                stagger));
  }
  if (verdict.extra_delay > 0.0) {
    const auto defer =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            unit * verdict.extra_delay);
    delayed_.push(Deferred{to, std::move(envelope)}, now + defer);
    return;
  }
  (void)actors_[to]->mailbox.try_push(std::move(envelope));
}

void ActorSystem::run_nurse() {
  // Single consumer of the delayed queue: re-drives deferred envelopes into
  // their target mailbox once due. The queue closes strictly before the
  // mailboxes do (see shutdown), so a plain push would already be safe;
  // try_push keeps the nurse correct even if that ordering ever changes.
  while (auto deferred = delayed_.pop_due()) {
    (void)actors_[deferred->to]->mailbox.try_push(std::move(deferred->envelope));
  }
}

}  // namespace arvy::runtime
