#include "runtime/actor_system.hpp"

#include "support/assert.hpp"

namespace arvy::runtime {

ActorSystem::ActorSystem(const graph::Graph& g,
                         const proto::InitialConfig& init,
                         const proto::NewParentPolicy& policy, Options options)
    : oracle_(g), options_(options) {
  ARVY_EXPECTS(init.node_count() == g.node_count());
  ARVY_EXPECTS(init.is_valid_tree());
  oracle_.prewarm_all();  // all threads read the oracle concurrently

  support::Rng seeder(options_.seed);
  actors_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto actor = std::make_unique<NodeActor>();
    actor->policy = policy.clone();
    actor->rng = std::make_unique<support::Rng>(seeder.split());
    actor->core = std::make_unique<proto::ArvyCore>(
        v, actor->policy.get(), &oracle_, actor->rng.get());
    actor->core->initialize(init.parent[v], v == init.root,
                            init.parent_edge_is_bridge[v]);
    actor->jitter_rng = seeder.split();
    actors_.push_back(std::move(actor));
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    actors_[v]->thread = std::thread([this, v] { run_node(v); });
  }
}

ActorSystem::~ActorSystem() {
  if (!is_shut_down()) shutdown();
}

proto::RequestId ActorSystem::request(NodeId v) {
  ARVY_EXPECTS(v < actors_.size());
  ARVY_EXPECTS_MSG(!is_shut_down(), "request after shutdown");
  const proto::RequestId id =
      next_request_.fetch_add(1, std::memory_order_acq_rel);
  Envelope envelope;
  envelope.kind = Envelope::Kind::kRequest;
  envelope.request = id;
  actors_[v]->mailbox.push(std::move(envelope));
  return id;
}

void ActorSystem::wait_for_satisfied(std::uint64_t count) {
  std::unique_lock<support::RankedMutex> lock(stats_mutex_);
  satisfied_cv_.wait(lock, [this, count] {
    return satisfied_.load(std::memory_order_acquire) >= count;
  });
}

bool ActorSystem::wait_for_satisfied_for(std::uint64_t count,
                                         std::chrono::milliseconds timeout) {
  std::unique_lock<support::RankedMutex> lock(stats_mutex_);
  return satisfied_cv_.wait_for(lock, timeout, [this, count] {
    return satisfied_.load(std::memory_order_acquire) >= count;
  });
}

double ActorSystem::total_cost() const {
  std::lock_guard<support::RankedMutex> lock(stats_mutex_);
  return find_cost_ + token_cost_;
}

double ActorSystem::find_cost() const {
  std::lock_guard<support::RankedMutex> lock(stats_mutex_);
  return find_cost_;
}

void ActorSystem::shutdown() {
  if (is_shut_down()) return;
  for (auto& actor : actors_) actor->mailbox.close();
  for (auto& actor : actors_) {
    if (actor->thread.joinable()) actor->thread.join();
  }
  // Publish only after every join: node() may rely on the joins'
  // happens-before edges the moment this flag reads true.
  shut_down_.store(true, std::memory_order_release);
}

const proto::ArvyCore& ActorSystem::node(NodeId v) const {
  ARVY_EXPECTS_MSG(is_shut_down(),
                   "cores may only be inspected after shutdown (data race)");
  ARVY_EXPECTS(v < actors_.size());
  return *actors_[v]->core;
}

void ActorSystem::note_satisfied() {
  {
    // The mutex, not the atomicity, is what makes the CV protocol sound: a
    // waiter evaluates its predicate under stats_mutex_, so this increment
    // either happens-before the check (waiter sees it) or after the waiter
    // is parked (notify_all wakes it). Incrementing outside the lock could
    // land between the two and the notification would be lost.
    std::lock_guard<support::RankedMutex> lock(stats_mutex_);
    satisfied_.fetch_add(1, std::memory_order_acq_rel);
  }
  satisfied_cv_.notify_all();
}

void ActorSystem::run_node(NodeId v) {
  NodeActor& actor = *actors_[v];
  auto next = [&]() {
    return options_.reorder_mailboxes ? actor.mailbox.pop_random(actor.jitter_rng)
                                      : actor.mailbox.pop();
  };
  while (auto envelope = next()) {
    proto::Effects effects;
    if (envelope->kind == Envelope::Kind::kRequest) {
      if (actor.core->holds_token()) {
        // Trivially satisfied at the holder, as in the simulator.
        note_satisfied();
        continue;
      }
      effects = actor.core->request_token(envelope->request);
    } else {
      effects = actor.core->on_message(envelope->payload);
    }
    deliver_effects(v, std::move(effects), actor.jitter_rng);
  }
}

void ActorSystem::deliver_effects(NodeId from, proto::Effects&& effects,
                                  support::Rng& jitter_rng) {
  if (effects.satisfied.has_value()) note_satisfied();
  for (proto::Outgoing& out : effects.sends) {
    if (options_.max_jitter.count() > 0) {
      const auto jitter = std::chrono::microseconds(
          jitter_rng.next_below(
              static_cast<std::uint64_t>(options_.max_jitter.count()) + 1));
      std::this_thread::sleep_for(jitter);
    }
    const double distance = oracle_.distance(from, out.to);
    {
      std::lock_guard<support::RankedMutex> lock(stats_mutex_);
      if (proto::is_find(out.payload)) {
        find_cost_ += distance;
      } else {
        token_cost_ += distance;
      }
    }
    Envelope envelope;
    envelope.kind = Envelope::Kind::kProtocol;
    envelope.payload = std::move(out.payload);
    envelope.from = from;
    actors_[out.to]->mailbox.push(std::move(envelope));
  }
}

}  // namespace arvy::runtime
