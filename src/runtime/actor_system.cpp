#include "runtime/actor_system.hpp"

#include <algorithm>

#include "support/assert.hpp"

// TSan cannot model standalone fences (GCC diagnoses them under
// -fsanitize=thread). The two seq_cst fences in this TU only order the
// eventcount's flag checks against each other (the Dekker pairing in
// run_worker/maybe_wake); every cross-thread *data* transfer synchronizes
// through atomics TSan does track (the ring slot sequence words), and a
// missed wakeup is bounded by the worker's 2 ms timed backstop. Ignoring
// the fences therefore costs the analysis nothing.
#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
#pragma GCC diagnostic ignored "-Wtsan"
#endif

namespace arvy::runtime {

ActorSystem::ActorSystem(const graph::Graph& g,
                         const proto::InitialConfig& init,
                         const proto::NewParentPolicy& policy, Options options)
    : oracle_(g), options_(options) {
  ARVY_EXPECTS(init.node_count() == g.node_count());
  ARVY_EXPECTS(init.is_valid_tree());
  ARVY_EXPECTS(g.node_count() >= 1);
  ARVY_EXPECTS(options_.batch_size >= 1);
  ARVY_EXPECTS(options_.ring_capacity >= 2);
  oracle_.prewarm_all();  // all threads read the oracle concurrently

  // 0 = legacy thread-per-node shape; otherwise a fixed pool (never more
  // workers than actors - extra workers would own empty partitions).
  const std::size_t worker_count =
      options_.workers == 0 ? g.node_count()
                            : std::min(options_.workers, g.node_count());
  workers_.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->shuffle.resize(options_.batch_size);
    workers_.push_back(std::move(worker));
  }

  // Every slot must fit the largest legal envelope: a find whose visited
  // history has one entry per node (the paper's bound).
  const std::size_t slot_bytes = proto::wire::envelope_bytes(g.node_count());
  support::Rng seeder(options_.seed);
  actors_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto actor = std::make_unique<NodeActor>();
    actor->id = v;
    actor->owner = workers_[v % worker_count].get();
    actor->owner->actors.push_back(v);
    actor->policy = policy.clone();
    actor->rng = std::make_unique<support::Rng>(seeder.split());
    actor->core = std::make_unique<proto::ArvyCore>(
        v, actor->policy.get(), &oracle_, actor->rng.get());
    actor->core->initialize(init.parent[v], v == init.root,
                            init.parent_edge_is_bridge[v]);
    actor->ring.emplace(options_.ring_capacity, slot_bytes);
    actor->jitter_rng = seeder.split();
    // Pre-size the decode scratch so the hot drain's assign() never grows it.
    actor->scratch_find.visited.reserve(g.node_count());
    actors_.push_back(std::move(actor));
  }
  start_ = std::chrono::steady_clock::now();
  if (!options_.faults.empty()) {
    // Counters only: a per-event log under a hot mutex would serialize the
    // actors harder than the faults do.
    injector_ = std::make_unique<faults::FaultInjector>(
        options_.faults, options_.retry, /*record_events=*/false);
    nurse_ = std::thread([this] { run_nurse(); });
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { run_worker(*w); });
  }
}

ActorSystem::~ActorSystem() {
  if (!is_shut_down()) shutdown();
}

proto::RequestId ActorSystem::request(NodeId v) {
  ARVY_EXPECTS(v < actors_.size());
  ARVY_EXPECTS_MSG(!is_shut_down(), "request after shutdown");
  // Relaxed id allocation: the increment only needs to be atomic, not
  // ordered - the request id travels to the worker inside the ring frame,
  // and the slot's release/acquire publish orders everything the worker
  // reads. (Was acq_rel, which ordered nothing anyone relied on.)
  const proto::RequestId id =
      next_request_.fetch_add(1, std::memory_order_relaxed);
  NodeActor& actor = *actors_[v];
  // Blocking push: a full ring is bounded-buffer backpressure on the
  // submitter, not message loss. False only when the ring is closed, which
  // here means request() raced shutdown - a caller contract violation, same
  // as the old mailbox's push-after-close abort.
  const bool pushed = actor.ring->push([id](std::byte* slot) {
    (void)proto::wire::encode_request_envelope(id, slot);
  });
  ARVY_ASSERT_MSG(pushed, "request raced shutdown");
  maybe_wake(*actor.owner);
  return id;
}

// The CV predicates read satisfied_ relaxed: both the predicate and the
// increment in note_satisfied run under stats_mutex_, so the mutex already
// provides every ordering the protocol needs - an acquire here would be
// decoration (see the threading contract in the header).
void ActorSystem::wait_for_satisfied(std::uint64_t count) {
  std::unique_lock<support::RankedMutex> lock(stats_mutex_);
  satisfied_cv_.wait(lock, [this, count] {
    return satisfied_.load(std::memory_order_relaxed) >= count;
  });
}

bool ActorSystem::wait_for_satisfied_for(std::uint64_t count,
                                         std::chrono::milliseconds timeout) {
  std::unique_lock<support::RankedMutex> lock(stats_mutex_);
  return satisfied_cv_.wait_for(lock, timeout, [this, count] {
    return satisfied_.load(std::memory_order_relaxed) >= count;
  });
}

// The accounting atomics are single-writer (the sending actor's owner
// worker), so each relaxed load reads an exact committed value; the sum is
// a consistent total only once the system is quiescent. Readers who need
// the final numbers already have a happens-before edge that covers every
// charge: wait_for_satisfied's stats_mutex_ handoff, or the thread joins
// behind shut_down_. The previous acquire loads suggested a pairing with a
// release store that does not exist (the writes are relaxed) - they bought
// nothing and were downgraded in the PR-9 ordering audit.
double ActorSystem::total_cost() const {
  double total = 0.0;
  for (const auto& actor : actors_) {
    total += actor->find_cost.load(std::memory_order_relaxed) +
             actor->token_cost.load(std::memory_order_relaxed);
  }
  return total;
}

double ActorSystem::find_cost() const {
  double total = 0.0;
  for (const auto& actor : actors_) {
    total += actor->find_cost.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ActorSystem::find_messages() const {
  std::uint64_t total = 0;
  for (const auto& actor : actors_) {
    total += actor->find_messages.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ActorSystem::token_messages() const {
  std::uint64_t total = 0;
  for (const auto& actor : actors_) {
    total += actor->token_messages.load(std::memory_order_relaxed);
  }
  return total;
}

faults::FaultStats ActorSystem::fault_stats() const {
  std::lock_guard<support::RankedMutex> lock(faults_mutex_);
  if (!injector_) return {};
  return injector_->stats();
}

void ActorSystem::shutdown() {
  if (is_shut_down()) return;
  // Order matters: the nurse pushes into rings, so it must be stopped and
  // joined before any ring closes. Deferred items still pending are
  // discarded - by the time callers shut down they have either waited for
  // quiescence or accepted the loss.
  delayed_.close();
  if (nurse_.joinable()) nurse_.join();
  // Tell workers to exit once their partition runs dry, then close the
  // channels. A worker drains everything already published before leaving;
  // frames sent to an already-closed ring during a non-quiescent teardown
  // are the documented accepted loss. Release (not seq_cst: the flag takes
  // no part in the Dekker pairing) - a parked worker observes the store
  // through wake_slow's mutex handoff below, a running one through its
  // next park attempt or the 2 ms timed backstop.
  stopping_.store(true, std::memory_order_release);
  for (auto& actor : actors_) {
    actor->ring->close();
    actor->overflow.close();
  }
  for (auto& worker : workers_) wake_slow(*worker);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Publish only after every join: node() may rely on the joins'
  // happens-before edges the moment this flag reads true.
  shut_down_.store(true, std::memory_order_release);
}

const proto::ArvyCore& ActorSystem::node(NodeId v) const {
  ARVY_EXPECTS_MSG(is_shut_down(),
                   "cores may only be inspected after shutdown (data race)");
  ARVY_EXPECTS(v < actors_.size());
  return *actors_[v]->core;
}

void ActorSystem::note_satisfied() {
  {
    // The mutex, not the atomicity, is what makes the CV protocol sound: a
    // waiter evaluates its predicate under stats_mutex_, so this increment
    // either happens-before the check (waiter sees it) or after the waiter
    // is parked (notify_all wakes it). Incrementing outside the lock could
    // land between the two and the notification would be lost.
    std::lock_guard<support::RankedMutex> lock(stats_mutex_);
    // Relaxed: stats_mutex_ orders this against the CV predicates and
    // satisfied_count is a monotone peek (was acq_rel - the RMW never
    // published anything beyond the counter itself).
    satisfied_.fetch_add(1, std::memory_order_relaxed);
  }
  satisfied_cv_.notify_all();
}

// --- worker loop -----------------------------------------------------------

void ActorSystem::run_worker(Worker& worker) {
  for (;;) {
    bool did_work = false;
    for (const NodeId v : worker.actors) {
      did_work |= drain_actor(worker, *actors_[v]);
    }
    if (did_work) continue;

    // Eventcount park. Announce intent with a seq_cst store, re-scan, and
    // only then wait: a producer that published after the re-scan began
    // observes kPreparing past its own seq_cst fence and takes the wake_slow
    // path; a producer that published before is caught by the re-scan. The
    // short timed wait is a belt-and-braces backstop, not a correctness
    // requirement.
    worker.phase.store(Worker::kPreparing, std::memory_order_seq_cst);
    // Store-load fence: the re-scan's loads must not be satisfied from
    // before the kPreparing store became visible (Dekker pairing with the
    // producer's fence in maybe_wake).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (worker_has_work(worker)) {
      worker.phase.store(Worker::kRunning, std::memory_order_relaxed);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      worker.phase.store(Worker::kRunning, std::memory_order_relaxed);
      return;  // partition drained and the system is stopping
    }
    {
      std::unique_lock<support::RankedMutex> lock(worker.mutex);
      if (worker.phase.load(std::memory_order_relaxed) == Worker::kPreparing &&
          !stopping_.load(std::memory_order_acquire)) {
        worker.cv.wait_for(lock, std::chrono::milliseconds(2));
      }
    }
    worker.phase.store(Worker::kRunning, std::memory_order_relaxed);
  }
}

bool ActorSystem::worker_has_work(const Worker& worker) const {
  for (const NodeId v : worker.actors) {
    const NodeActor& actor = *actors_[v];
    if (actor.ring->has_ready() ||
        actor.overflow_nonempty.load(std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

ARVY_HOT bool ActorSystem::drain_actor(Worker& worker, NodeActor& actor) {
  bool any = false;
  if (actor.overflow_nonempty.load(std::memory_order_acquire)) {
    // Clear before draining: a spill racing this drain re-sets the flag and
    // is picked up on the next sweep at worst.
    actor.overflow_nonempty.store(false, std::memory_order_relaxed);
    drain_overflow(actor);
    any = true;
  }
  const std::size_t batch = actor.ring->acquire_batch(options_.batch_size);
  if (batch == 0) return any;
  if (options_.reorder_mailboxes) {
    // Fisher-Yates over the batch with the actor's own RNG: the threaded
    // analogue of the simulator's kRandom discipline, now scoped to a batch
    // (per-channel FIFO remains an accident, not a guarantee).
    std::vector<std::uint32_t>& order = worker.shuffle;
    for (std::size_t k = 0; k < batch; ++k) {
      order[k] = static_cast<std::uint32_t>(k);
    }
    for (std::size_t k = batch; k > 1; --k) {
      const std::size_t j =
          static_cast<std::size_t>(actor.jitter_rng.next_below(k));
      const std::uint32_t tmp = order[k - 1];
      order[k - 1] = order[j];
      order[j] = tmp;
    }
    for (std::size_t k = 0; k < batch; ++k) {
      process_frame(actor, actor.ring->batch_slot(order[k]));
    }
  } else {
    for (std::size_t k = 0; k < batch; ++k) {
      process_frame(actor, actor.ring->batch_slot(k));
    }
  }
  actor.ring->release_batch(batch);
  return true;
}

ARVY_HOT void ActorSystem::process_frame(NodeActor& actor,
                                         const std::byte* slot) {
  const proto::wire::EnvelopeView view = proto::wire::decode_envelope(slot);
  if (view.dedup != 0 && !first_arrival(actor, view.dedup)) {
    // A copy of a duplicated send whose group was already handled: the
    // wire is at-least-once, the protocol core sees exactly-once.
    return;
  }
  proto::Effects effects;
  switch (view.kind) {
    case proto::wire::Kind::kRequest:
      if (actor.core->holds_token()) {
        // Trivially satisfied at the holder, as in the simulator.
        note_satisfied();
        return;
      }
      effects = actor.core->request_token(view.request);
      break;
    case proto::wire::Kind::kToken:
      effects = actor.core->on_token(proto::TokenMessage{view.token_serial});
      break;
    case proto::wire::Kind::kFind: {
      // Rehydrate into the preallocated scratch: assign() into reserved
      // storage copies the span without touching the heap. The vector's
      // grow-and-throw branch is still statically present in the object
      // code (the compiler cannot prove the capacity invariant), so the
      // binary audit carries a declared allow edge for exactly this call
      // site - see [audit] allow in docs/layers.toml.
      proto::FindMessage& find = actor.scratch_find;
      ARVY_ASSERT(view.visited.size() <= find.visited.capacity());
      find.producer = view.producer;
      find.sender = view.sender;
      find.request = view.request;
      find.sender_edge_was_bridge = view.sender_edge_was_bridge;
      find.visited.assign(view.visited.begin(), view.visited.end());
      effects = actor.core->on_find(find);
      break;
    }
  }
  deliver_effects(actor, std::move(effects));
}

void ActorSystem::process_envelope(NodeActor& actor, Envelope& envelope) {
  if (envelope.dedup != 0 && !first_arrival(actor, envelope.dedup)) return;
  proto::Effects effects = actor.core->on_message(envelope.payload);
  deliver_effects(actor, std::move(effects));
}

ARVY_HOT void ActorSystem::deliver_effects(NodeActor& from,
                                           proto::Effects&& effects) {
  if (effects.satisfied.has_value()) note_satisfied();
  for (proto::Outgoing& out : effects.sends) {
    if (options_.max_jitter.count() > 0) {
      const auto jitter = std::chrono::microseconds(
          from.jitter_rng.next_below(
              static_cast<std::uint64_t>(options_.max_jitter.count()) + 1));
      std::this_thread::sleep_for(jitter);
    }
    const double distance = oracle_.distance(from.id, out.to);
    // Single-writer accounting (see total_cost): load+store is exact here.
    if (proto::is_find(out.payload)) {
      from.find_cost.store(
          from.find_cost.load(std::memory_order_relaxed) + distance,
          std::memory_order_relaxed);
      from.find_messages.store(
          from.find_messages.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    } else {
      from.token_cost.store(
          from.token_cost.load(std::memory_order_relaxed) + distance,
          std::memory_order_relaxed);
      from.token_messages.store(
          from.token_messages.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    }
    if (injector_) {
      Envelope envelope;
      envelope.payload = std::move(out.payload);
      envelope.from = from.id;
      send_with_faults(out.to, std::move(envelope), distance);
    } else {
      enqueue_protocol(out.to, out.payload, /*dedup=*/0);
    }
  }
}

ARVY_HOT void ActorSystem::enqueue_protocol(NodeId to,
                                            const proto::Message& message,
                                            std::uint64_t dedup) {
  NodeActor& peer = *actors_[to];
  const auto* find = std::get_if<proto::FindMessage>(&message);
  ARVY_ASSERT(proto::wire::envelope_bytes(find ? find->visited.size() : 0) <=
              peer.ring->slot_bytes());
  const PushResult result = peer.ring->try_push([&](std::byte* slot) {
    (void)proto::wire::encode_envelope(message, dedup, slot);
  });
  if (result == PushResult::kFull) {
    // Never spin on a peer's full ring: this thread may be its drainer.
    overflow_send(peer, message, dedup);
    return;
  }
  if (result == PushResult::kOk) maybe_wake(*peer.owner);
  // kClosed: delivery raced a non-quiescent shutdown - the message is part
  // of the teardown's accepted loss, not a contract violation.
}

void ActorSystem::overflow_send(NodeActor& peer, const proto::Message& message,
                                std::uint64_t dedup) {
  Envelope envelope;
  envelope.payload = message;  // boxed copy - cold path only
  envelope.dedup = dedup;
  if (!peer.overflow.try_push(std::move(envelope))) return;  // accepted loss
  // Release is enough (was seq_cst): maybe_wake's seq_cst fence right after
  // this store is the producer half of the Dekker pairing, so either the
  // parking worker's post-fence rescan sees the flag or this thread sees
  // kPreparing and takes wake_slow - same argument as the ring publish.
  peer.overflow_nonempty.store(true, std::memory_order_release);
  maybe_wake(*peer.owner);
}

ARVY_HOT void ActorSystem::maybe_wake(Worker& worker) {
  // Publish-then-check side of the eventcount: the fence orders this
  // thread's frame publish before the phase read, pairing with the
  // consumer's seq_cst kPreparing store before its re-scan.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (worker.phase.load(std::memory_order_relaxed) != Worker::kRunning) {
    wake_slow(worker);
  }
}

void ActorSystem::wake_slow(Worker& worker) {
  {
    std::lock_guard<support::RankedMutex> lock(worker.mutex);
    worker.phase.store(Worker::kNotified, std::memory_order_relaxed);
  }
  worker.cv.notify_one();
}

bool ActorSystem::first_arrival(NodeActor& actor, std::uint64_t dedup) {
  return actor.handled_dups.insert(dedup).second;
}

void ActorSystem::drain_overflow(NodeActor& actor) {
  while (auto envelope = actor.overflow.try_pop()) {
    process_envelope(actor, *envelope);
  }
}

// --- fault path (cold) ------------------------------------------------------

double ActorSystem::fault_now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double>(elapsed) /
         std::chrono::duration<double>(options_.fault_time_unit);
}

void ActorSystem::send_with_faults(NodeId to, Envelope&& envelope,
                                   double distance) {
  faults::MessageKind kind = faults::MessageKind::kToken;
  faults::RequestId request = 0;
  if (const auto* find = std::get_if<proto::FindMessage>(&envelope.payload)) {
    kind = faults::MessageKind::kFind;
    request = find->request;
  }
  faults::Verdict verdict;
  {
    std::lock_guard<support::RankedMutex> lock(faults_mutex_);
    verdict = injector_->on_send(kind, envelope.from, to, fault_now(),
                                 distance, request);
  }
  if (verdict.lost) return;  // permanently lost: retries exhausted/disabled
  if (verdict.duplicates > 0) {
    envelope.dedup = next_dedup_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto unit =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          options_.fault_time_unit);
  const auto now = std::chrono::steady_clock::now();
  // Duplicate copies are staggered by the link's transit time so they arrive
  // as genuine reorder hazards, not back-to-back ring neighbours.
  for (std::uint32_t i = 0; i < verdict.duplicates; ++i) {
    const auto stagger = unit * (i + 1.0) * std::max(distance, 1.0);
    delayed_.push(
        Deferred{to, envelope},
        now +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                stagger));
  }
  if (verdict.extra_delay > 0.0) {
    const auto defer =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            unit * verdict.extra_delay);
    delayed_.push(Deferred{to, std::move(envelope)}, now + defer);
    return;
  }
  enqueue_protocol(to, envelope.payload, envelope.dedup);
}

void ActorSystem::run_nurse() {
  // Single consumer of the delayed queue: re-drives deferred envelopes into
  // their target ring once due. The queue closes strictly before the rings
  // do (see shutdown), and enqueue_protocol tolerates a closed ring anyway.
  while (auto deferred = delayed_.pop_due()) {
    enqueue_protocol(deferred->to, deferred->envelope.payload,
                     deferred->envelope.dedup);
  }
}

}  // namespace arvy::runtime
