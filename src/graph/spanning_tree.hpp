// Rooted spanning trees: construction and quality measures.
//
// Arrow runs on a fixed spanning tree; its competitive ratio is governed by
// the tree's stretch (§2, §6 of the paper). This module builds the trees the
// experiments need and measures their stretch.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace arvy::graph {

// A rooted tree over the graph's nodes, stored as parent pointers.
// parent[root] == root. Edge weights are stored per node (weight of the edge
// to the parent; 0 at the root) so trees whose edges are not graph edges
// (e.g. FRT embeddings) carry their own metric.
struct RootedTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> parent;
  std::vector<Weight> parent_edge_weight;

  [[nodiscard]] std::size_t node_count() const noexcept { return parent.size(); }

  // Distance between two nodes measured along the tree.
  [[nodiscard]] Weight tree_distance(NodeId a, NodeId b) const;

  // Depth (hops to root) per node.
  [[nodiscard]] std::vector<std::uint32_t> depths() const;

  // Weighted depth of v (sum of edge weights to the root).
  [[nodiscard]] Weight weighted_depth(NodeId v) const;

  // Validates: exactly one root, no cycles, all nodes reach the root.
  [[nodiscard]] bool is_valid() const;

  // The tree as an undirected Graph (for reuse of graph algorithms).
  [[nodiscard]] Graph as_graph() const;
};

// Breadth-first spanning tree from `root` (unit hop metric but carries the
// true edge weights).
[[nodiscard]] RootedTree bfs_tree(const Graph& g, NodeId root);

// Shortest-path tree from `root` (Dijkstra parents).
[[nodiscard]] RootedTree shortest_path_tree(const Graph& g, NodeId root);

// Minimum spanning tree (Prim), rooted at `root`.
[[nodiscard]] RootedTree minimum_spanning_tree(const Graph& g, NodeId root);

// Total weight of the minimum spanning tree restricted to the complete
// metric closure over `terminals` (used as a lower bound for batch OPT).
[[nodiscard]] Weight metric_mst_weight(const std::vector<NodeId>& terminals,
                                       const class DistanceOracle& oracle);

// The path spanning tree of a ring: drop the edge {n-1, 0}, root at `root`.
[[nodiscard]] RootedTree ring_path_tree(const Graph& ring, NodeId root);

// max over node pairs of tree_distance / graph_distance, and an attaining
// pair. O(n^2) distance queries - intended for experiment-sized graphs.
struct StretchReport {
  double max_stretch = 1.0;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
};
[[nodiscard]] StretchReport max_stretch_pair(const Graph& g,
                                             const RootedTree& tree);

}  // namespace arvy::graph
