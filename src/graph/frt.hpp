// FRT-style random hierarchical tree embeddings.
//
// Ghodselahi and Kuhn (DISC '17) show that Arrow on a random tree drawn from
// an FRT embedding [Fakcharoenphol-Rao-Talwar, STOC '03] is O(log n)
// competitive on general graphs; the Arvy paper cites this as the best known
// fixed-tree strategy and contrasts it with Arvy's adaptive trees (§2). We
// implement the classic FRT decomposition and collapse the resulting HST
// onto the real vertex set (each internal cluster is represented by its
// pi-first member) so Arrow can run on it directly. The collapse preserves
// the O(log n) expected stretch guarantee up to constants, which is all the
// E9 experiment needs.
#pragma once

#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"
#include "support/rng.hpp"

namespace arvy::graph {

struct FrtResult {
  RootedTree tree;      // over the graph's own nodes; edge weights are HST radii
  double beta = 0.0;    // the sampled radius scale in [1, 2)
  std::size_t levels = 0;
};

// Samples one FRT tree: random permutation + random beta, hierarchical ball
// partition with radii beta * 2^i, HST collapsed onto representative nodes.
[[nodiscard]] FrtResult sample_frt_tree(const Graph& g, support::Rng& rng);

// Average stretch of the embedding over all node pairs (diagnostic used by
// tests and the E9 bench).
[[nodiscard]] double average_stretch(const Graph& g, const RootedTree& tree);

}  // namespace arvy::graph
