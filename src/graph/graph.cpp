#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace arvy::graph {

Graph::Graph(std::size_t n) : adjacency_(n) { ARVY_EXPECTS(n > 0); }

void Graph::add_edge(NodeId a, NodeId b, Weight weight) {
  ARVY_EXPECTS(contains(a) && contains(b));
  ARVY_EXPECTS_MSG(a != b, "self-loops are not allowed");
  ARVY_EXPECTS_MSG(weight > 0.0, "edge weights must be positive");
  ARVY_EXPECTS_MSG(!has_edge(a, b), "duplicate edge");
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++edge_count_;
  total_weight_ += weight;
}

std::span<const Edge> Graph::neighbors(NodeId v) const {
  ARVY_EXPECTS(contains(v));
  return adjacency_[v];
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  ARVY_EXPECTS(contains(a) && contains(b));
  const auto& adj = adjacency_[a];
  return std::any_of(adj.begin(), adj.end(),
                     [b](const Edge& e) { return e.to == b; });
}

Weight Graph::edge_weight(NodeId a, NodeId b) const {
  ARVY_EXPECTS(contains(a) && contains(b));
  for (const Edge& e : adjacency_[a]) {
    if (e.to == b) return e.weight;
  }
  ARVY_UNREACHABLE("edge_weight queried for a missing edge");
}

bool Graph::is_connected() const {
  DisjointSets dsu(node_count());
  for (NodeId v = 0; v < node_count(); ++v) {
    for (const Edge& e : adjacency_[v]) dsu.unite(v, e.to);
  }
  return dsu.set_count() == 1;
}

std::vector<EdgeRef> Graph::edges() const {
  std::vector<EdgeRef> out;
  out.reserve(edge_count_);
  for (NodeId v = 0; v < node_count(); ++v) {
    for (const Edge& e : adjacency_[v]) {
      if (v < e.to) out.push_back({v, e.to, e.weight});
    }
  }
  return out;
}

DisjointSets::DisjointSets(std::size_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t DisjointSets::find(std::size_t x) noexcept {
  ARVY_EXPECTS(x < parent_.size());
  if (rollback_enabled_) {
    // No compression: halving across a post-snapshot union would leave
    // pointers that survive rollback (union by size keeps depth O(log n)).
    while (parent_[x] != x) x = parent_[x];
    return x;
  }
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool DisjointSets::unite(std::size_t x, std::size_t y) noexcept {
  std::size_t rx = find(x);
  std::size_t ry = find(y);
  if (rx == ry) return false;
  if (size_[rx] < size_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  size_[rx] += size_[ry];
  --sets_;
  if (rollback_enabled_) undo_.push_back(ry);
  return true;
}

void DisjointSets::rollback(std::size_t mark) noexcept {
  ARVY_EXPECTS(rollback_enabled_);
  ARVY_EXPECTS(mark <= undo_.size());
  while (undo_.size() > mark) {
    const std::size_t child = undo_.back();
    undo_.pop_back();
    const std::size_t root = parent_[child];
    size_[root] -= size_[child];
    parent_[child] = child;
    ++sets_;
  }
}

}  // namespace arvy::graph
