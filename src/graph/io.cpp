#include "graph/io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace arvy::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  // max_digits10 so weights round-trip bit-exactly through text.
  const auto old_precision =
      os.precision(std::numeric_limits<Weight>::max_digits10);
  os << "# arvy graph, " << g.node_count() << " nodes, " << g.edge_count()
     << " edges\n";
  os << "nodes " << g.node_count() << '\n';
  for (const EdgeRef& e : g.edges()) {
    os << "edge " << e.a << ' ' << e.b << ' ' << e.weight << '\n';
  }
  os.precision(old_precision);
}

Graph read_edge_list(std::istream& is) {
  std::string keyword;
  std::size_t n = 0;
  bool have_nodes = false;
  // First directive must declare the node count.
  while (is >> keyword) {
    if (keyword[0] == '#') {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    ARVY_EXPECTS_MSG(keyword == "nodes",
                     "edge list must start with a 'nodes' directive");
    is >> n;
    ARVY_EXPECTS_MSG(is.good() || is.eof(), "malformed 'nodes' directive");
    have_nodes = true;
    break;
  }
  ARVY_EXPECTS_MSG(have_nodes && n > 0, "missing 'nodes' directive");
  Graph g(n);
  while (is >> keyword) {
    if (keyword[0] == '#') {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    ARVY_EXPECTS_MSG(keyword == "edge", "unknown directive in edge list");
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    Weight w = 1.0;
    is >> a >> b >> w;
    ARVY_EXPECTS_MSG(!is.fail(), "malformed 'edge' directive");
    g.add_edge(a, b, w);
  }
  return g;
}

std::string to_edge_list_string(const Graph& g) {
  std::ostringstream os;
  write_edge_list(g, os);
  return os.str();
}

Graph from_edge_list_string(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

std::string to_dot(const Graph& g, const RootedTree* tree) {
  std::ostringstream os;
  os << "graph network {\n  layout=circo;\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  n" << v;
    if (tree != nullptr && tree->root == v) {
      os << " [shape=doublecircle]";
    }
    os << ";\n";
  }
  for (const EdgeRef& e : g.edges()) {
    const bool on_tree =
        tree != nullptr &&
        ((tree->parent[e.a] == e.b) || (tree->parent[e.b] == e.a));
    os << "  n" << e.a << " -- n" << e.b;
    os << " [label=\"" << e.weight << '"';
    if (on_tree) os << ", penwidth=2, color=black";
    else if (tree != nullptr) os << ", color=gray";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace arvy::graph
