#include "graph/tree_metrics.hpp"

#include <algorithm>

#include "graph/shortest_paths.hpp"
#include "support/assert.hpp"

namespace arvy::graph {

std::vector<Weight> eccentricities(const Graph& g) {
  std::vector<Weight> ecc(g.node_count(), 0.0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const ShortestPathTree sp = dijkstra(g, v);
    ecc[v] = *std::max_element(sp.distance.begin(), sp.distance.end());
  }
  return ecc;
}

MetricSummary metric_summary(const Graph& g) {
  ARVY_EXPECTS(g.is_connected());
  const std::vector<Weight> ecc = eccentricities(g);
  MetricSummary s;
  s.radius = ecc.front();
  s.center = 0;
  for (NodeId v = 0; v < ecc.size(); ++v) {
    if (ecc[v] > s.diameter) {
      s.diameter = ecc[v];
      s.periphery = v;
    }
    if (ecc[v] < s.radius) {
      s.radius = ecc[v];
      s.center = v;
    }
  }
  return s;
}

}  // namespace arvy::graph
