#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/assert.hpp"

namespace arvy::graph {

namespace {
constexpr Weight kInf = std::numeric_limits<Weight>::infinity();
}  // namespace

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  ARVY_EXPECTS(target < distance.size());
  ARVY_EXPECTS_MSG(distance[target] != kInf, "target unreachable");
  std::vector<NodeId> path;
  for (NodeId v = target; v != source; v = parent[v]) {
    path.push_back(v);
    ARVY_ASSERT_MSG(path.size() <= distance.size(), "cycle in parent chain");
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  ARVY_EXPECTS(g.contains(source));
  const std::size_t n = g.node_count();
  ShortestPathTree out;
  out.source = source;
  out.distance.assign(n, kInf);
  out.parent.assign(n, kInvalidNode);
  out.distance[source] = 0.0;
  out.parent[source] = source;

  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > out.distance[v]) continue;  // stale entry
    for (const Edge& e : g.neighbors(v)) {
      const Weight nd = d + e.weight;
      if (nd < out.distance[e.to]) {
        out.distance[e.to] = nd;
        out.parent[e.to] = v;
        heap.push({nd, e.to});
      }
    }
  }
  return out;
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  ARVY_EXPECTS(g.contains(source));
  constexpr auto kUnseen = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> hops(g.node_count(), kUnseen);
  std::queue<NodeId> frontier;
  hops[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const Edge& e : g.neighbors(v)) {
      if (hops[e.to] == kUnseen) {
        hops[e.to] = hops[v] + 1;
        frontier.push(e.to);
      }
    }
  }
  return hops;
}

DistanceMatrix::DistanceMatrix(const Graph& g) : n_(g.node_count()) {
  data_.resize(n_ * n_);
  for (NodeId src = 0; src < n_; ++src) {
    const ShortestPathTree tree = dijkstra(g, src);
    std::copy(tree.distance.begin(), tree.distance.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(src * n_));
  }
}

Weight DistanceMatrix::diameter() const {
  Weight best = 0.0;
  for (Weight d : data_) {
    ARVY_ASSERT_MSG(d != kInf, "diameter of a disconnected graph");
    best = std::max(best, d);
  }
  return best;
}

}  // namespace arvy::graph
