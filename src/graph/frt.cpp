#include "graph/frt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/shortest_paths.hpp"
#include "support/assert.hpp"

namespace arvy::graph {

namespace {

// First node in permutation order within `radius` of u; u itself always
// qualifies (distance 0), so the result is well defined.
NodeId first_center_within(const DistanceMatrix& dm,
                           const std::vector<NodeId>& permutation, NodeId u,
                           Weight radius) {
  for (NodeId c : permutation) {
    if (dm.at(u, c) <= radius) return c;
  }
  ARVY_UNREACHABLE("node is within distance 0 of itself");
}

}  // namespace

FrtResult sample_frt_tree(const Graph& g, support::Rng& rng) {
  const std::size_t n = g.node_count();
  ARVY_EXPECTS(n >= 1);
  const DistanceMatrix dm(g);

  FrtResult result;
  result.tree.parent.assign(n, kInvalidNode);
  result.tree.parent_edge_weight.assign(n, 0.0);
  if (n == 1) {
    result.tree.root = 0;
    result.tree.parent[0] = 0;
    result.levels = 1;
    return result;
  }

  Weight min_dist = std::numeric_limits<Weight>::infinity();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      min_dist = std::min(min_dist, dm.at(a, b));
    }
  }
  const Weight diameter = dm.diameter();
  ARVY_ASSERT(min_dist > 0.0 && diameter >= min_dist);

  // pi: random vertex permutation; beta in [1, 2) scales every radius.
  std::vector<NodeId> permutation(n);
  std::iota(permutation.begin(), permutation.end(), NodeId{0});
  rng.shuffle(std::span<NodeId>(permutation));
  const double beta = rng.next_double(1.0, 2.0);
  result.beta = beta;

  // Top level: radius covers the whole graph from any node.
  int top = 0;
  while (beta * std::ldexp(1.0, top) < diameter) ++top;
  ARVY_ASSERT(top < 64);

  // Permutation rank, used to pick cluster representatives (pi-first member).
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t i = 0; i < n; ++i) rank[permutation[i]] = i;
  auto pi_min_member = [&](const std::vector<NodeId>& members) {
    return *std::min_element(members.begin(), members.end(),
                             [&](NodeId a, NodeId b) { return rank[a] < rank[b]; });
  };

  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), NodeId{0});
  struct Cluster {
    std::vector<NodeId> members;
    NodeId rep;
  };
  std::vector<Cluster> clusters;
  clusters.push_back({std::move(all), pi_min_member(permutation)});
  result.tree.root = clusters.front().rep;
  result.tree.parent[result.tree.root] = result.tree.root;
  result.levels = 1;

  // Split level by level until every cluster is a singleton. A cluster at
  // level i is refined by grouping members on their pi-first center within
  // radius beta * 2^(i-1); the HST edge from the level-i cluster to each
  // child weighs beta * 2^i.
  for (int i = top; ; --i) {
    const Weight child_radius = beta * std::ldexp(1.0, i - 1);
    const Weight edge_weight = beta * std::ldexp(1.0, i);
    bool any_split_possible = false;
    std::vector<Cluster> next;
    for (Cluster& cluster : clusters) {
      if (cluster.members.size() == 1) {
        next.push_back(std::move(cluster));
        continue;
      }
      any_split_possible = true;
      // Group members by their first center; keep deterministic order by
      // scanning members and collecting per-center buckets.
      std::vector<std::pair<NodeId, std::vector<NodeId>>> buckets;
      for (NodeId u : cluster.members) {
        const NodeId c = first_center_within(dm, permutation, u, child_radius);
        auto it = std::find_if(buckets.begin(), buckets.end(),
                               [c](const auto& b) { return b.first == c; });
        if (it == buckets.end()) {
          buckets.push_back({c, {u}});
        } else {
          it->second.push_back(u);
        }
      }
      for (auto& [center, members] : buckets) {
        Cluster child{std::move(members), kInvalidNode};
        child.rep = pi_min_member(child.members);
        if (child.rep != cluster.rep &&
            result.tree.parent[child.rep] == kInvalidNode) {
          result.tree.parent[child.rep] = cluster.rep;
          result.tree.parent_edge_weight[child.rep] = edge_weight;
        }
        next.push_back(std::move(child));
      }
    }
    clusters = std::move(next);
    ++result.levels;
    if (!any_split_possible) break;
    ARVY_ASSERT_MSG(result.levels < 128, "FRT recursion failed to terminate");
  }

  for (NodeId v = 0; v < n; ++v) {
    ARVY_ASSERT_MSG(result.tree.parent[v] != kInvalidNode,
                    "FRT collapse left an orphan node");
  }
  ARVY_ENSURES(result.tree.is_valid());
  return result;
}

double average_stretch(const Graph& g, const RootedTree& tree) {
  const DistanceMatrix dm(g);
  const std::size_t n = g.node_count();
  ARVY_EXPECTS(n >= 2);
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const Weight dg = dm.at(a, b);
      ARVY_ASSERT(dg > 0.0);
      total += tree.tree_distance(a, b) / dg;
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace arvy::graph
