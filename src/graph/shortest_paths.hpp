// Single-source and all-pairs shortest paths.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace arvy::graph {

// Result of a single-source run: distance and predecessor per node.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Weight> distance;   // distance[v] from source
  std::vector<NodeId> parent;     // parent[v] on a shortest path; source's is itself

  // Reconstructs the node sequence source -> ... -> target.
  [[nodiscard]] std::vector<NodeId> path_to(NodeId target) const;
};

// Dijkstra with a binary heap; weights must be positive (enforced by Graph).
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source);

// Unweighted BFS hop counts (ignores weights).
[[nodiscard]] std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

// Dense all-pairs matrix; O(n * m log n) time, O(n^2) space.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(const Graph& g);

  [[nodiscard]] Weight at(NodeId a, NodeId b) const {
    return data_[static_cast<std::size_t>(a) * n_ + b];
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  // Weighted diameter: max over pairs of shortest-path distance.
  [[nodiscard]] Weight diameter() const;

 private:
  std::size_t n_;
  std::vector<Weight> data_;
};

}  // namespace arvy::graph
