// Graph serialization: a plain edge-list text format and Graphviz export.
//
// Edge-list format (whitespace separated, '#' comments):
//   nodes <n>
//   edge <a> <b> <weight>
// Deterministic output (edges in normalized order) so files diff cleanly.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"

namespace arvy::graph {

// Writes the edge-list representation.
void write_edge_list(const Graph& g, std::ostream& os);

// Parses an edge list written by write_edge_list (or by hand). Aborts with
// a contract failure on malformed input - experiment inputs are trusted;
// returns the parsed graph otherwise.
[[nodiscard]] Graph read_edge_list(std::istream& is);

// Round-trips through strings for convenience in tests and tools.
[[nodiscard]] std::string to_edge_list_string(const Graph& g);
[[nodiscard]] Graph from_edge_list_string(const std::string& text);

// Graphviz export of the topology; `tree`, when given, highlights its
// parent edges (the directory's current tree over the network).
[[nodiscard]] std::string to_dot(const Graph& g,
                                 const RootedTree* tree = nullptr);

}  // namespace arvy::graph
