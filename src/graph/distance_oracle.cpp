#include "graph/distance_oracle.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arvy::graph {

DistanceOracle::DistanceOracle(const Graph& g)
    : graph_(&g), rows_(g.node_count()) {}

const ShortestPathTree& DistanceOracle::row(NodeId source) const {
  ARVY_EXPECTS(graph_->contains(source));
  auto& slot = rows_[source];
  if (!slot) {
    slot = std::make_unique<ShortestPathTree>(dijkstra(*graph_, source));
  }
  return *slot;
}

Weight DistanceOracle::distance(NodeId from, NodeId to) const {
  ARVY_EXPECTS(graph_->contains(from) && graph_->contains(to));
  if (from == to) return 0.0;
  // Reuse whichever row is already cached before computing a new one.
  if (rows_[to] && !rows_[from]) return rows_[to]->distance[from];
  return row(from).distance[to];
}

std::vector<NodeId> DistanceOracle::shortest_path(NodeId from, NodeId to) const {
  return row(from).path_to(to);
}

void DistanceOracle::prewarm_all() const {
  for (NodeId v = 0; v < graph_->node_count(); ++v) {
    (void)row(v);
  }
}

std::size_t DistanceOracle::cached_rows() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(rows_.begin(), rows_.end(),
                    [](const auto& p) { return p != nullptr; }));
}

}  // namespace arvy::graph
