// Topology generators for experiments.
//
// Every generator that uses randomness takes an explicit Rng so experiment
// rows are replayable. All generators return connected graphs.
#pragma once

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace arvy::graph {

// Cycle v0 - v1 - ... - v(n-1) - v0, unit weights. n >= 3.
[[nodiscard]] Graph make_ring(std::size_t n);

// Ring with i.i.d. uniform weights in [min_weight, max_weight].
[[nodiscard]] Graph make_weighted_ring(std::size_t n, support::Rng& rng,
                                       Weight min_weight, Weight max_weight);

// Path v0 - v1 - ... - v(n-1), unit weights. n >= 2.
[[nodiscard]] Graph make_path(std::size_t n);

// Star with center 0, unit weights. n >= 2.
[[nodiscard]] Graph make_star(std::size_t n);

// Complete graph K_n, unit weights. n >= 2.
[[nodiscard]] Graph make_complete(std::size_t n);

// rows x cols grid, unit weights.
[[nodiscard]] Graph make_grid(std::size_t rows, std::size_t cols);

// rows x cols torus (grid with wraparound), unit weights. rows, cols >= 3.
[[nodiscard]] Graph make_torus(std::size_t rows, std::size_t cols);

// d-dimensional hypercube on 2^d nodes, unit weights. 1 <= d <= 20.
[[nodiscard]] Graph make_hypercube(std::size_t dimension);

// Uniform random labelled tree (via a random Prüfer sequence), unit weights.
[[nodiscard]] Graph make_random_tree(std::size_t n, support::Rng& rng);

// Balanced tree with the given branching factor and depth, unit weights.
// depth 0 is a single root.
[[nodiscard]] Graph make_balanced_tree(std::size_t branching, std::size_t depth);

// Erdős–Rényi G(n, p) conditioned on connectivity: a random spanning tree is
// laid down first and each remaining pair is added with probability p.
[[nodiscard]] Graph make_connected_gnp(std::size_t n, double p,
                                       support::Rng& rng);

// Random points in the unit square; edges between pairs closer than `radius`
// with Euclidean weights, plus a Euclidean spanning tree to force
// connectivity. Models the "metric-space network" setting of [9].
[[nodiscard]] Graph make_random_geometric(std::size_t n, double radius,
                                          support::Rng& rng);

}  // namespace arvy::graph
