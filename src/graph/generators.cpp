#include "graph/generators.hpp"

#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace arvy::graph {

Graph make_ring(std::size_t n) {
  ARVY_EXPECTS(n >= 3);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<NodeId>((i + 1) % n));
  }
  return g;
}

Graph make_weighted_ring(std::size_t n, support::Rng& rng, Weight min_weight,
                         Weight max_weight) {
  ARVY_EXPECTS(n >= 3);
  ARVY_EXPECTS(0.0 < min_weight && min_weight <= max_weight);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<NodeId>((i + 1) % n),
               rng.next_double(min_weight, max_weight));
  }
  return g;
}

Graph make_path(std::size_t n) {
  ARVY_EXPECTS(n >= 2);
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1);
  }
  return g;
}

Graph make_star(std::size_t n) {
  ARVY_EXPECTS(n >= 2);
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) {
    g.add_edge(0, i);
  }
  return g;
}

Graph make_complete(std::size_t n) {
  ARVY_EXPECTS(n >= 2);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      g.add_edge(i, j);
    }
  }
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  ARVY_EXPECTS(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  ARVY_EXPECTS(rows >= 3 && cols >= 3);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return g;
}

Graph make_hypercube(std::size_t dimension) {
  ARVY_EXPECTS(dimension >= 1 && dimension <= 20);
  const std::size_t n = std::size_t{1} << dimension;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < dimension; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (v < u) g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(u));
    }
  }
  return g;
}

Graph make_random_tree(std::size_t n, support::Rng& rng) {
  ARVY_EXPECTS(n >= 1);
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Decode a uniformly random Prüfer sequence of length n-2.
  std::vector<std::size_t> prufer(n - 2);
  for (auto& x : prufer) x = rng.next_below(n);
  std::vector<std::size_t> degree(n, 1);
  for (std::size_t x : prufer) ++degree[x];
  std::size_t ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  std::size_t leaf = ptr;
  for (std::size_t x : prufer) {
    g.add_edge(static_cast<NodeId>(leaf), static_cast<NodeId>(x));
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  g.add_edge(static_cast<NodeId>(leaf), static_cast<NodeId>(n - 1));
  return g;
}

Graph make_balanced_tree(std::size_t branching, std::size_t depth) {
  ARVY_EXPECTS(branching >= 1);
  // Count nodes: 1 + b + b^2 + ... + b^depth.
  std::size_t n = 1;
  std::size_t level = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    level *= branching;
    n += level;
    ARVY_EXPECTS_MSG(n < (std::size_t{1} << 24), "balanced tree too large");
  }
  Graph g(n);
  // Children of node v are branching*v + 1 ... branching*v + branching.
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t c = 1; c <= branching; ++c) {
      const std::size_t child = branching * v + c;
      if (child < n) g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(child));
    }
  }
  return g;
}

Graph make_connected_gnp(std::size_t n, double p, support::Rng& rng) {
  ARVY_EXPECTS(n >= 2);
  ARVY_EXPECTS(p >= 0.0 && p <= 1.0);
  // Random spanning tree backbone: attach node i to a random earlier node.
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) {
    g.add_edge(i, static_cast<NodeId>(rng.next_below(i)));
  }
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (!g.has_edge(i, j) && rng.next_bool(p)) g.add_edge(i, j);
    }
  }
  return g;
}

Graph make_random_geometric(std::size_t n, double radius, support::Rng& rng) {
  ARVY_EXPECTS(n >= 2);
  ARVY_EXPECTS(radius > 0.0);
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.next_double();
    ys[i] = rng.next_double();
  }
  auto dist = [&](std::size_t i, std::size_t j) {
    const double dx = xs[i] - xs[j];
    const double dy = ys[i] - ys[j];
    return std::sqrt(dx * dx + dy * dy);
  };
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const double d = dist(i, j);
      if (d <= radius && d > 0.0) g.add_edge(i, j, d);
    }
  }
  // Force connectivity with a Euclidean spanning chain over any remaining
  // components (greedy nearest-component joins, Prim-style).
  DisjointSets dsu(n);
  for (const EdgeRef& e : g.edges()) dsu.unite(e.a, e.b);
  while (dsu.set_count() > 1) {
    double best = 1e300;
    NodeId ba = kInvalidNode;
    NodeId bb = kInvalidNode;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (dsu.same(i, j)) continue;
        const double d = dist(i, j);
        if (d < best && d > 0.0) {
          best = d;
          ba = i;
          bb = j;
        }
      }
    }
    ARVY_ASSERT(ba != kInvalidNode);
    g.add_edge(ba, bb, best);
    dsu.unite(ba, bb);
  }
  return g;
}

}  // namespace arvy::graph
