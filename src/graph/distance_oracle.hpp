// Lazy cached distance queries.
//
// The simulator charges every message send with dist_G(from, to) (§3 of the
// paper: routing is solved and follows shortest paths). An experiment on a
// ring of 1024 nodes only ever touches a few source rows, so the oracle
// computes Dijkstra rows on demand and caches them instead of paying the
// full O(n^2) APSP up front.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"

namespace arvy::graph {

class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& g);

  // Shortest-path distance; computes and caches the source row on first use.
  [[nodiscard]] Weight distance(NodeId from, NodeId to) const;

  // Nodes on a shortest path from -> to (inclusive of both endpoints).
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId from, NodeId to) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::size_t cached_rows() const noexcept;

  // Computes every row eagerly. After this call all queries are pure reads,
  // which makes the oracle safe to share across threads (the lazy cache is
  // NOT thread-safe).
  void prewarm_all() const;

 private:
  const ShortestPathTree& row(NodeId source) const;

  const Graph* graph_;
  // unique_ptr cells so cached rows have stable addresses; mutable because
  // caching does not change observable distances.
  mutable std::vector<std::unique_ptr<ShortestPathTree>> rows_;
};

}  // namespace arvy::graph
