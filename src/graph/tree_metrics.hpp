// Global metric properties of graphs (diameter, radius, eccentricity).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace arvy::graph {

// Weighted eccentricity of every node (max shortest-path distance).
[[nodiscard]] std::vector<Weight> eccentricities(const Graph& g);

// Weighted diameter (max eccentricity) and radius (min eccentricity).
struct MetricSummary {
  Weight diameter = 0.0;
  Weight radius = 0.0;
  NodeId center = kInvalidNode;     // a node attaining the radius
  NodeId periphery = kInvalidNode;  // a node attaining the diameter
};
[[nodiscard]] MetricSummary metric_summary(const Graph& g);

}  // namespace arvy::graph
