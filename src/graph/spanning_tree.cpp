#include "graph/spanning_tree.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/distance_oracle.hpp"
#include "graph/shortest_paths.hpp"
#include "support/assert.hpp"

namespace arvy::graph {

Weight RootedTree::tree_distance(NodeId a, NodeId b) const {
  ARVY_EXPECTS(a < parent.size() && b < parent.size());
  // Walk both nodes to the root recording prefix distances, then splice at
  // the lowest common ancestor.
  std::vector<std::pair<NodeId, Weight>> trail_a;
  Weight da = 0.0;
  for (NodeId v = a;; v = parent[v]) {
    trail_a.push_back({v, da});
    if (parent[v] == v) break;
    da += parent_edge_weight[v];
  }
  Weight db = 0.0;
  for (NodeId v = b;; v = parent[v]) {
    for (const auto& [node, prefix] : trail_a) {
      if (node == v) return prefix + db;
    }
    ARVY_ASSERT_MSG(parent[v] != v, "nodes in different trees");
    db += parent_edge_weight[v];
  }
}

std::vector<std::uint32_t> RootedTree::depths() const {
  std::vector<std::uint32_t> depth(parent.size(),
                                   std::numeric_limits<std::uint32_t>::max());
  for (NodeId v = 0; v < parent.size(); ++v) {
    // Walk up until a node with known depth, then unwind.
    std::vector<NodeId> chain;
    NodeId u = v;
    while (depth[u] == std::numeric_limits<std::uint32_t>::max() &&
           parent[u] != u) {
      chain.push_back(u);
      u = parent[u];
    }
    std::uint32_t d = parent[u] == u ? 0 : depth[u];
    if (parent[u] == u) depth[u] = 0;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
  }
  return depth;
}

Weight RootedTree::weighted_depth(NodeId v) const {
  ARVY_EXPECTS(v < parent.size());
  Weight d = 0.0;
  std::size_t guard = 0;
  while (parent[v] != v) {
    d += parent_edge_weight[v];
    v = parent[v];
    ARVY_ASSERT_MSG(++guard <= parent.size(), "cycle in tree");
  }
  return d;
}

bool RootedTree::is_valid() const {
  if (root >= parent.size() || parent[root] != root) return false;
  if (parent_edge_weight.size() != parent.size()) return false;
  for (NodeId v = 0; v < parent.size(); ++v) {
    NodeId u = v;
    std::size_t steps = 0;
    while (parent[u] != u) {
      u = parent[u];
      if (++steps > parent.size()) return false;  // cycle
    }
    if (u != root) return false;  // disconnected
  }
  return true;
}

Graph RootedTree::as_graph() const {
  Graph g(parent.size());
  for (NodeId v = 0; v < parent.size(); ++v) {
    if (parent[v] != v) {
      g.add_edge(v, parent[v],
                 parent_edge_weight[v] > 0.0 ? parent_edge_weight[v] : 1.0);
    }
  }
  return g;
}

RootedTree bfs_tree(const Graph& g, NodeId root) {
  ARVY_EXPECTS(g.contains(root));
  RootedTree t;
  t.root = root;
  t.parent.assign(g.node_count(), kInvalidNode);
  t.parent_edge_weight.assign(g.node_count(), 0.0);
  t.parent[root] = root;
  std::queue<NodeId> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const Edge& e : g.neighbors(v)) {
      if (t.parent[e.to] == kInvalidNode) {
        t.parent[e.to] = v;
        t.parent_edge_weight[e.to] = e.weight;
        frontier.push(e.to);
      }
    }
  }
  ARVY_ENSURES(t.is_valid());
  return t;
}

RootedTree shortest_path_tree(const Graph& g, NodeId root) {
  const ShortestPathTree sp = dijkstra(g, root);
  RootedTree t;
  t.root = root;
  t.parent = sp.parent;
  t.parent_edge_weight.assign(g.node_count(), 0.0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (t.parent[v] != v) {
      t.parent_edge_weight[v] = g.edge_weight(v, t.parent[v]);
    }
  }
  ARVY_ENSURES(t.is_valid());
  return t;
}

RootedTree minimum_spanning_tree(const Graph& g, NodeId root) {
  ARVY_EXPECTS(g.contains(root));
  const std::size_t n = g.node_count();
  RootedTree t;
  t.root = root;
  t.parent.assign(n, kInvalidNode);
  t.parent_edge_weight.assign(n, 0.0);
  std::vector<Weight> best(n, std::numeric_limits<Weight>::infinity());
  std::vector<bool> in_tree(n, false);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  best[root] = 0.0;
  t.parent[root] = root;
  heap.push({0.0, root});
  while (!heap.empty()) {
    const auto [w, v] = heap.top();
    heap.pop();
    if (in_tree[v] || w > best[v]) continue;
    in_tree[v] = true;
    for (const Edge& e : g.neighbors(v)) {
      if (!in_tree[e.to] && e.weight < best[e.to]) {
        best[e.to] = e.weight;
        t.parent[e.to] = v;
        t.parent_edge_weight[e.to] = e.weight;
        heap.push({e.weight, e.to});
      }
    }
  }
  ARVY_ENSURES(t.is_valid());
  return t;
}

Weight metric_mst_weight(const std::vector<NodeId>& terminals,
                         const DistanceOracle& oracle) {
  if (terminals.size() <= 1) return 0.0;
  const std::size_t k = terminals.size();
  std::vector<Weight> best(k, std::numeric_limits<Weight>::infinity());
  std::vector<bool> used(k, false);
  best[0] = 0.0;
  Weight total = 0.0;
  for (std::size_t iter = 0; iter < k; ++iter) {
    std::size_t pick = k;
    for (std::size_t i = 0; i < k; ++i) {
      if (!used[i] && (pick == k || best[i] < best[pick])) pick = i;
    }
    used[pick] = true;
    total += best[pick];
    for (std::size_t i = 0; i < k; ++i) {
      if (!used[i]) {
        best[i] = std::min(best[i],
                           oracle.distance(terminals[pick], terminals[i]));
      }
    }
  }
  return total;
}

RootedTree ring_path_tree(const Graph& ring, NodeId root) {
  const std::size_t n = ring.node_count();
  ARVY_EXPECTS(ring.contains(root));
  ARVY_EXPECTS_MSG(ring.has_edge(static_cast<NodeId>(n - 1), 0),
                   "ring_path_tree expects a canonical ring");
  // Tree edges are {i, i+1} for i in [0, n-2]; orient towards `root`.
  RootedTree t;
  t.root = root;
  t.parent.assign(n, kInvalidNode);
  t.parent_edge_weight.assign(n, 0.0);
  t.parent[root] = root;
  for (NodeId v = root; v > 0; --v) {
    t.parent[v - 1] = v;
    t.parent_edge_weight[v - 1] = ring.edge_weight(v - 1, v);
  }
  for (NodeId v = root; v + 1 < n; ++v) {
    t.parent[v + 1] = v;
    t.parent_edge_weight[v + 1] = ring.edge_weight(v, v + 1);
  }
  ARVY_ENSURES(t.is_valid());
  return t;
}

StretchReport max_stretch_pair(const Graph& g, const RootedTree& tree) {
  DistanceOracle oracle(g);
  StretchReport report;
  report.max_stretch = 0.0;  // ensures an attaining pair is always recorded
  for (NodeId a = 0; a < g.node_count(); ++a) {
    for (NodeId b = a + 1; b < g.node_count(); ++b) {
      const Weight dg = oracle.distance(a, b);
      if (dg <= 0.0) continue;
      const double stretch = tree.tree_distance(a, b) / dg;
      if (stretch > report.max_stretch) {
        report.max_stretch = stretch;
        report.a = a;
        report.b = b;
      }
    }
  }
  ARVY_ENSURES(report.a != kInvalidNode);
  return report;
}

}  // namespace arvy::graph
