// Weighted undirected graphs.
//
// This is the network substrate of the paper's model (§3): a connected
// network G = (V, E) with positive edge weights; routing between arbitrary
// pairs is "solved" and follows shortest paths, so the higher layers only
// ever ask for distances (see DistanceOracle).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace arvy::graph {

// Node identifiers are dense indices in [0, node_count).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

using Weight = double;

struct Edge {
  NodeId to = kInvalidNode;
  Weight weight = 1.0;
};

// An undirected edge as a value (endpoints normalized so a <= b).
struct EdgeRef {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Weight weight = 1.0;

  friend bool operator==(const EdgeRef&, const EdgeRef&) = default;
};

class Graph {
 public:
  // Creates a graph with `n` isolated nodes.
  explicit Graph(std::size_t n);

  // Adds an undirected edge {a, b} with positive weight. Self-loops and
  // duplicate edges are rejected (duplicates would make "the" edge weight
  // ambiguous for routing).
  void add_edge(NodeId a, NodeId b, Weight weight = 1.0);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] std::span<const Edge> neighbors(NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  // Weight of edge {a, b}; precondition: the edge exists.
  [[nodiscard]] Weight edge_weight(NodeId a, NodeId b) const;

  // Sum of all edge weights (each undirected edge counted once).
  [[nodiscard]] Weight total_weight() const noexcept { return total_weight_; }

  [[nodiscard]] bool is_connected() const;

  // All edges, each once, with normalized endpoints. Useful for MST and for
  // iterating in deterministic order.
  [[nodiscard]] std::vector<EdgeRef> edges() const;

  [[nodiscard]] bool contains(NodeId v) const noexcept {
    return v < adjacency_.size();
  }

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
  Weight total_weight_ = 0.0;
};

// Union-find with path halving and union by size; used by tree checks, MST,
// and the invariant checker's component queries.
//
// Optional rollback: after enable_rollback(), every successful unite is
// recorded on an undo stack and can be reverted with snapshot()/rollback().
// While rollback is enabled, find() stops path-halving - compression across
// a union made after a snapshot would leave parent pointers that survive
// the rollback - so finds cost O(log n) (union by size bounds the depth).
// Compression performed *before* enable_rollback() is safe and kept.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n);

  [[nodiscard]] std::size_t find(std::size_t x) noexcept;
  // Returns false when x and y were already in the same set.
  bool unite(std::size_t x, std::size_t y) noexcept;
  [[nodiscard]] bool same(std::size_t x, std::size_t y) noexcept {
    return find(x) == find(y);
  }
  [[nodiscard]] std::size_t set_count() const noexcept { return sets_; }

  // Switches to rollback mode (one-way): subsequent unites are undoable.
  void enable_rollback() noexcept { rollback_enabled_ = true; }
  [[nodiscard]] bool rollback_enabled() const noexcept {
    return rollback_enabled_;
  }
  // A mark for rollback(); only unites made after the mark are reverted.
  [[nodiscard]] std::size_t snapshot() const noexcept { return undo_.size(); }
  // Reverts every unite made since the mark (LIFO). Precondition: rollback
  // mode is enabled and `mark` came from snapshot() on this instance.
  void rollback(std::size_t mark) noexcept;

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
  // Roots absorbed by a unite since enable_rollback(), in order: undoing
  // entry r restores parent_[r] = r and shrinks the absorbing root by
  // size_[r] (r's own size is frozen while it is not a root).
  std::vector<std::size_t> undo_;
  bool rollback_enabled_ = false;
};

}  // namespace arvy::graph
