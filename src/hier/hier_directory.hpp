// A hierarchical (sparse-cover) distributed directory - the comparator the
// Arvy paper cites as the state of the art on general graphs ([14] and
// relatives, §2).
//
// SUBSTITUTION NOTE (see DESIGN.md): the original Spiral protocol is a
// concurrent protocol over an overlay of O(log n) labelled covers; we
// implement its directory mechanics (publish path of downward pointers,
// upward lookup through the requester's clusters, cut-and-graft move) as a
// sequential cost model over our CoverHierarchy. This preserves what E11
// measures - per-move message distance and per-node space - while omitting
// the concurrency control machinery that does not affect either.
//
// Mechanics: the owner maintains a chain of downward pointers, one per
// level, from the root cluster to itself. move(r) climbs r's clusters level
// by level until it finds a chain pointer, walks the chain down (deleting
// it), moves the object to r, and grafts r's designated chain below the hit
// cluster.
#pragma once

#include <map>
#include <span>

#include "hier/cover.hpp"

namespace arvy::hier {

class HierarchicalDirectory {
 public:
  HierarchicalDirectory(const graph::DistanceOracle& oracle,
                        NodeId initial_owner);

  // Moves the object to `requester`, returning the distance-weighted cost of
  // all control and object messages. A request at the owner costs zero.
  double move(NodeId requester);

  // Sum of move costs over a sequence.
  double run_sequence(std::span<const NodeId> sequence);

  [[nodiscard]] NodeId owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return hierarchy_.level_count();
  }
  [[nodiscard]] std::size_t max_space_words_per_node() const {
    return hierarchy_.max_space_words_per_node();
  }

 private:
  const graph::DistanceOracle* oracle_;
  CoverHierarchy hierarchy_;
  NodeId owner_;
  // pointer[(level, cluster index)] -> node id of the next chain element one
  // level down (the owner itself below level 1).
  std::map<std::pair<std::size_t, std::size_t>, NodeId> pointers_;
  // The cluster index of the chain's element at each level (level 0 is the
  // owner's designated singleton-ish cluster).
  std::vector<std::size_t> chain_cluster_;
};

}  // namespace arvy::hier
