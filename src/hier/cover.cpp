#include "hier/cover.hpp"

#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace arvy::hier {

CoverHierarchy::CoverHierarchy(const graph::DistanceOracle& oracle) {
  node_count_ = oracle.graph().node_count();
  ARVY_EXPECTS(node_count_ >= 1);

  for (std::size_t i = 0;; ++i) {
    Level level;
    level.radius = std::ldexp(1.0, static_cast<int>(i));  // 2^i
    const double separation = level.radius / 2.0;         // 2^(i-1)

    // Greedy centers: every node ends up within `separation` of a center.
    std::vector<NodeId> centers;
    for (NodeId v = 0; v < node_count_; ++v) {
      bool covered = false;
      for (NodeId c : centers) {
        if (oracle.distance(v, c) <= separation) {
          covered = true;
          break;
        }
      }
      if (!covered) centers.push_back(v);
    }

    level.clusters.reserve(centers.size());
    for (NodeId c : centers) {
      Cluster cluster;
      cluster.center = c;
      for (NodeId v = 0; v < node_count_; ++v) {
        if (oracle.distance(v, c) <= level.radius) cluster.members.push_back(v);
      }
      level.clusters.push_back(std::move(cluster));
    }

    level.designated.assign(node_count_, 0);
    level.containing.assign(node_count_, {});
    for (std::size_t ci = 0; ci < level.clusters.size(); ++ci) {
      for (NodeId v : level.clusters[ci].members) {
        level.containing[v].push_back(ci);
      }
    }
    for (NodeId v = 0; v < node_count_; ++v) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t ci : level.containing[v]) {
        const double d = oracle.distance(v, level.clusters[ci].center);
        if (d < best) {
          best = d;
          level.designated[v] = ci;
        }
      }
      ARVY_ASSERT_MSG(best <= separation,
                      "greedy centers failed to cover a node");
    }

    const bool single =
        level.clusters.size() == 1 &&
        level.clusters.front().members.size() == node_count_;
    levels_.push_back(std::move(level));
    if (single) break;
    ARVY_ASSERT_MSG(i < 64, "cover hierarchy failed to converge");
  }
}

const Level& CoverHierarchy::level(std::size_t i) const {
  ARVY_EXPECTS(i < levels_.size());
  return levels_[i];
}

NodeId CoverHierarchy::designated_leader(std::size_t i, NodeId v) const {
  const Level& lvl = level(i);
  ARVY_EXPECTS(v < node_count_);
  return lvl.clusters[lvl.designated[v]].center;
}

std::size_t CoverHierarchy::max_space_words_per_node() const {
  std::vector<std::size_t> words(node_count_, 0);
  for (const Level& lvl : levels_) {
    for (NodeId v = 0; v < node_count_; ++v) {
      words[v] += 1;  // the designated leader id at this level
    }
    for (const Cluster& c : lvl.clusters) {
      words[c.center] += 1;  // the downward pointer slot this node leads
    }
  }
  std::size_t best = 0;
  for (std::size_t w : words) best = std::max(best, w);
  return best;
}

}  // namespace arvy::hier
