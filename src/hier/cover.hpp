// Sparse-cover hierarchies.
//
// The Arvy paper's related work (§2) contrasts Arvy with directory protocols
// built on hierarchies of sparse covers ([2, 4, 9, 14]): those achieve
// O(log n) competitive ratio on rings but need O(log n) space per node and
// O(log n) levels of bookkeeping. This module implements the hierarchy
// substrate: at level i, greedily chosen centers at pairwise distance
// > 2^(i-1) cover every node within 2^(i-1), and each center's cluster is
// the ball of radius 2^i around it. The "designated" cluster of a node v is
// the one whose center is nearest to v, which guarantees the middle-half
// property: every u within 2^(i-1) of v belongs to v's designated level-i
// cluster.
#pragma once

#include <optional>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace arvy::hier {

using graph::NodeId;

struct Cluster {
  NodeId center = graph::kInvalidNode;  // also the cluster's leader
  std::vector<NodeId> members;          // ball of radius 2^level around center
};

struct Level {
  double radius = 0.0;  // 2^level
  std::vector<Cluster> clusters;
  // designated[v]: index into `clusters` of v's designated cluster.
  std::vector<std::size_t> designated;
  // containing[v]: indices of every cluster containing v (degree list).
  std::vector<std::vector<std::size_t>> containing;
};

class CoverHierarchy {
 public:
  // Builds levels 0, 1, ... until a single cluster covers the graph.
  explicit CoverHierarchy(const graph::DistanceOracle& oracle);

  [[nodiscard]] std::size_t level_count() const noexcept {
    return levels_.size();
  }
  [[nodiscard]] const Level& level(std::size_t i) const;

  // Leader of v's designated cluster at level i.
  [[nodiscard]] NodeId designated_leader(std::size_t i, NodeId v) const;

  // Space audit: for each node, the words of hierarchy state it must hold
  // (one designated-leader id per level, plus one pointer slot per cluster
  // it leads). Returns the maximum over nodes.
  [[nodiscard]] std::size_t max_space_words_per_node() const;

 private:
  std::vector<Level> levels_;
  std::size_t node_count_ = 0;
};

}  // namespace arvy::hier
