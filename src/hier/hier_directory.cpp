#include "hier/hier_directory.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arvy::hier {

HierarchicalDirectory::HierarchicalDirectory(
    const graph::DistanceOracle& oracle, NodeId initial_owner)
    : oracle_(&oracle), hierarchy_(oracle), owner_(initial_owner) {
  ARVY_EXPECTS(oracle.graph().contains(initial_owner));
  // Initial publish: the owner's designated chain, one pointer per level
  // from 1 up to the root. Level-1 pointers aim directly at the owner; every
  // higher pointer aims at the center of the chain cluster one level down.
  const std::size_t levels = hierarchy_.level_count();
  chain_cluster_.assign(levels, 0);
  for (std::size_t j = 1; j < levels; ++j) {
    const Level& lvl = hierarchy_.level(j);
    chain_cluster_[j] = lvl.designated[owner_];
    const NodeId target =
        j == 1 ? owner_
               : hierarchy_.level(j - 1)
                     .clusters[chain_cluster_[j - 1]]
                     .center;
    pointers_[{j, chain_cluster_[j]}] = target;
  }
}

double HierarchicalDirectory::move(NodeId requester) {
  ARVY_EXPECTS(oracle_->graph().contains(requester));
  if (requester == owner_) return 0.0;
  const std::size_t levels = hierarchy_.level_count();
  ARVY_ASSERT(levels >= 2);  // n >= 2 implies at least levels 0 and 1
  double cost = 0.0;

  // Climb: probe every cluster containing the requester, level by level,
  // until one of them is the chain cluster (the root level always is).
  std::size_t hit_level = 0;
  std::size_t hit_cluster = 0;
  bool found = false;
  for (std::size_t i = 1; i < levels && !found; ++i) {
    const Level& lvl = hierarchy_.level(i);
    for (std::size_t ci : lvl.containing[requester]) {
      cost += 2.0 * oracle_->distance(requester, lvl.clusters[ci].center);
      if (ci == chain_cluster_[i]) {
        hit_level = i;
        hit_cluster = ci;
        found = true;
        break;
      }
    }
  }
  ARVY_ASSERT_MSG(found, "lookup missed the chain at the root level");

  // Descend the chain from the hit cluster to the owner, erasing the
  // pointers being replaced.
  NodeId cursor = hierarchy_.level(hit_level).clusters[hit_cluster].center;
  for (std::size_t j = hit_level; j >= 2; --j) {
    pointers_.erase({j, chain_cluster_[j]});
    const NodeId next =
        hierarchy_.level(j - 1).clusters[chain_cluster_[j - 1]].center;
    cost += oracle_->distance(cursor, next);
    cursor = next;
  }
  pointers_.erase({1, chain_cluster_[1]});
  cost += oracle_->distance(cursor, owner_);

  // The object travels directly to the requester.
  cost += oracle_->distance(owner_, requester);

  // Graft the requester's designated chain below the hit cluster. The hit
  // cluster itself keeps its place on the chain; its pointer now descends
  // towards the new owner.
  NodeId previous = requester;
  for (std::size_t j = 1; j <= hit_level; ++j) {
    const std::size_t cluster =
        j == hit_level ? hit_cluster
                       : hierarchy_.level(j).designated[requester];
    const NodeId center = hierarchy_.level(j).clusters[cluster].center;
    cost += oracle_->distance(previous, center);
    const NodeId target =
        j == 1 ? requester
               : hierarchy_.level(j - 1)
                     .clusters[chain_cluster_[j - 1]]
                     .center;
    chain_cluster_[j] = cluster;
    pointers_[{j, cluster}] = target;
    previous = center;
  }
  owner_ = requester;
  // One pointer per level 1..L must exist at all times.
  ARVY_ENSURES(pointers_.size() == levels - 1);
  return cost;
}

double HierarchicalDirectory::run_sequence(std::span<const NodeId> sequence) {
  double total = 0.0;
  for (NodeId v : sequence) total += move(v);
  return total;
}

}  // namespace arvy::hier
