// Declarative fault schedules for the directory protocols.
//
// The paper's only network assumption (§3) is that every message is
// eventually delivered. A FaultPlan declares exactly how a run is allowed to
// violate that assumption - per-transmission drop probabilities, duplication,
// reorder spikes, link latency storms, node ingress pauses and token-holder
// stalls - and a RetryPolicy declares how the transport wins liveness back
// (capped exponential-backoff retransmission, the standard ARQ recovery).
// Both are plain aggregates so DirectoryOptions can designated-initialize
// them: `{.faults = {.drop_find = 0.1}, .retry = {.rto = 4.0}}`.
//
// The layer sits below proto on purpose: it knows message *kinds*, not
// protocol messages, so both the discrete-event bus and the threaded mailbox
// path consume the same plans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/time.hpp"

namespace arvy::faults {

using graph::NodeId;
// Mirrors proto::RequestId without depending on proto (faults sits below it).
using RequestId = std::uint64_t;

// What the injector needs to know about a message; the transport classifies.
enum class MessageKind { kFind, kToken, kOther };

[[nodiscard]] const char* message_kind_name(MessageKind kind) noexcept;

// During [at, at + duration) every message's latency is multiplied by
// `factor` (modelled as extra distance-proportional delay; only observable
// under the timed discipline / the threaded runtime).
struct LatencyStorm {
  sim::Time at = 0.0;
  sim::Time duration = 0.0;
  double factor = 4.0;

  friend bool operator==(const LatencyStorm&, const LatencyStorm&) = default;
};

// During [at, at + duration) node `node` accepts no deliveries: messages
// sent to it are deferred until the window closes (an ingress pause - the
// crash-recovery shape where a node is unresponsive but loses no state).
struct PauseWindow {
  NodeId node = graph::kInvalidNode;
  sim::Time at = 0.0;
  sim::Time duration = 0.0;

  friend bool operator==(const PauseWindow&, const PauseWindow&) = default;
};

// During [at, at + duration) token messages stall: whoever holds the token
// sits on it until the window closes (the paper's SendToken event being
// arbitrarily delayed, pushed to the extreme).
struct HolderStall {
  sim::Time at = 0.0;
  sim::Time duration = 0.0;

  friend bool operator==(const HolderStall&, const HolderStall&) = default;
};

// The declarative fault schedule. Default-constructed == "no faults", and a
// no-fault plan is a *strict no-op*: transports must not even consult the
// injector, so schedules stay bit-identical (see test_golden_schedule).
struct FaultPlan {
  // Per-transmission drop probability by message kind.
  double drop_find = 0.0;
  double drop_token = 0.0;
  // Probability that a message is duplicated in flight (one extra copy;
  // receivers dedupe, so the duplicate costs traffic but not correctness).
  double duplicate = 0.0;
  // Probability of a reorder spike: the message is held back by an extra
  // uniform delay in [0, reorder_spike), letting younger traffic overtake.
  double reorder = 0.0;
  sim::Time reorder_spike = 8.0;
  std::vector<LatencyStorm> storms;
  std::vector<PauseWindow> pauses;
  std::vector<HolderStall> stalls;
  // Seed of the injector's own RNG stream (never the transport's, so an
  // active injector does not perturb delivery-order draws).
  std::uint64_t seed = 1;
  // Shard scoping for the sharded DirectoryService: when non-empty, only the
  // listed shards see this plan (for_shard returns the empty no-op plan for
  // everyone else). Empty = every shard. Single-object transports ignore it.
  std::vector<std::uint32_t> shards;

  [[nodiscard]] bool empty() const noexcept;

  // The plan shard `shard` actually runs: the empty plan when the shard is
  // scoped out, otherwise this plan with `shards` cleared and the seed
  // decorrelated per shard (each shard engine owns an independent fault RNG
  // stream, mirroring MultiDirectory's per-object seed spreading).
  [[nodiscard]] FaultPlan for_shard(std::uint32_t shard) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

// Retransmission policy: deadline-free capped exponential backoff. A dropped
// transmission is re-issued after `rto`, then rto*backoff, ... capped at
// `max_backoff`, giving up (permanent loss) after `max_attempts` total
// transmissions. Re-issues are idempotent: transports key them to the
// original send (finds carry their RequestId), and receivers suppress
// duplicates, so a retry can never double-apply a protocol event.
struct RetryPolicy {
  bool enabled = true;
  sim::Time rto = 4.0;       // initial retransmission timeout
  double backoff = 2.0;      // multiplier per attempt
  sim::Time max_backoff = 64.0;
  std::uint32_t max_attempts = 12;  // total transmissions incl. the first

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

// Parses the CLI grammar: a comma-separated `key=value` list.
//   drop=P        drop_find = drop_token = P
//   dropfind=P / droptoken=P
//   dup=P         duplicate = P
//   reorder=P[:SPIKE]
//   storm=AT:DUR[:FACTOR]
//   pause=NODE:AT:DUR
//   stall=AT:DUR
//   seed=S
//   shards=A[:B:...]   scope the plan to the listed service shards
// Throws std::invalid_argument on malformed specs.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

// Parses the CLI grammar for --retry: `off`, or a comma-separated list of
//   backoff=Mx (e.g. 2x), rto=T, cap=T, attempts=N
[[nodiscard]] RetryPolicy parse_retry_policy(const std::string& spec);

}  // namespace arvy::faults
