// The fault injector: turns a FaultPlan + RetryPolicy into per-send verdicts.
//
// Transports consult the injector once per logical send and obey the
// verdict: deliver (possibly with extra delay), enqueue duplicate copies, or
// treat the message as permanently lost. The retransmission chain is
// resolved at send time: "the first k transmissions were dropped, the
// (k+1)-th survives after the backoff sum" is statistically identical to
// timing out and re-sending each attempt, and it keeps the discrete-event
// schedule deterministic. A drop with retries left therefore shows up as a
// *delayed* delivery plus drop/retry records; only an exhausted or disabled
// retry produces a permanent loss, which is exactly the case where Theorem 5
// is allowed to fail (see verify/fault_tolerant.hpp).
//
// The injector draws from its own RNG stream, never the transport's, so an
// active plan does not perturb delivery-order draws, and an empty plan must
// not be consulted at all (strict no-op; transports gate on active()).
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"
#include "support/rng.hpp"

namespace arvy::faults {

// What the transport must do with one logical send.
struct Verdict {
  bool lost = false;             // permanently lost (no retry will re-drive it)
  sim::Time extra_delay = 0.0;   // retransmission backoff + storms/pauses/stalls
  std::uint32_t duplicates = 0;  // extra copies to put on the wire
};

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kDrop,           // one transmission attempt was dropped
    kRetry,          // ...and re-issued after backoff
    kPermanentLoss,  // retries disabled or exhausted: the message is gone
    kDuplicate,      // an extra copy was put on the wire
    kDelay,          // storm / pause / stall / reorder-spike deferral
  };
  Kind kind = Kind::kDrop;
  MessageKind message = MessageKind::kOther;
  RequestId request = 0;  // the find's request id; 0 for token/other
  NodeId from = graph::kInvalidNode;
  NodeId to = graph::kInvalidNode;
  sim::Time at = 0.0;
  std::uint32_t attempt = 0;  // 1-based transmission attempt (drop/retry)
};

struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t retries = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t permanent_losses = 0;
  // Permanent losses split by kind: a lost find orphans its producer's
  // request (and any chain routed behind it), a lost token is catastrophic.
  // The relaxed verifier keys its excuses off these.
  std::uint64_t lost_finds = 0;
  std::uint64_t lost_tokens = 0;
  std::uint64_t delays = 0;
  // Extra distance traversed by retransmissions and duplicate copies; the
  // engine's CostAccount charges each logical send once, this is the
  // robustness overhead on top.
  double overhead_distance = 0.0;
  // Per-event log (empty unless the injector records events; the threaded
  // runtime keeps counters only).
  std::vector<FaultEvent> events;

  [[nodiscard]] std::uint64_t total_faults() const noexcept {
    return drops + duplicates + delays;
  }
  void merge(const FaultStats& other);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, RetryPolicy retry = {},
                         bool record_events = true);

  // False for an empty plan; transports must skip the injector entirely
  // then (the strict-no-op contract).
  [[nodiscard]] bool active() const noexcept { return !plan_.empty(); }

  // Decides the fate of one logical send. `now` is transport time (sim time
  // or scaled wall time), `distance` the shortest-path distance the message
  // traverses, `request` the find's request id (0 otherwise).
  [[nodiscard]] Verdict on_send(MessageKind kind, NodeId from, NodeId to,
                                sim::Time now, double distance,
                                RequestId request = 0);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }

 private:
  void record(FaultEvent::Kind kind, MessageKind message, RequestId request,
              NodeId from, NodeId to, sim::Time now, std::uint32_t attempt);

  FaultPlan plan_;
  RetryPolicy retry_;
  support::Rng rng_;
  bool record_events_;
  FaultStats stats_;
};

}  // namespace arvy::faults
