#include "faults/injector.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arvy::faults {

void FaultStats::merge(const FaultStats& other) {
  drops += other.drops;
  retries += other.retries;
  duplicates += other.duplicates;
  permanent_losses += other.permanent_losses;
  lost_finds += other.lost_finds;
  lost_tokens += other.lost_tokens;
  delays += other.delays;
  overhead_distance += other.overhead_distance;
  events.insert(events.end(), other.events.begin(), other.events.end());
}

FaultInjector::FaultInjector(FaultPlan plan, RetryPolicy retry,
                             bool record_events)
    : plan_(std::move(plan)),
      retry_(retry),
      rng_(plan_.seed ^ 0xfa017c7d9e1f23abULL),
      record_events_(record_events) {
  ARVY_EXPECTS(retry_.max_attempts >= 1);
}

void FaultInjector::record(FaultEvent::Kind kind, MessageKind message,
                           RequestId request, NodeId from, NodeId to,
                           sim::Time now, std::uint32_t attempt) {
  if (!record_events_) return;
  FaultEvent event;
  event.kind = kind;
  event.message = message;
  event.request = request;
  event.from = from;
  event.to = to;
  event.at = now;
  event.attempt = attempt;
  stats_.events.push_back(event);
}

Verdict FaultInjector::on_send(MessageKind kind, NodeId from, NodeId to,
                               sim::Time now, double distance,
                               RequestId request) {
  ARVY_EXPECTS_MSG(active(), "empty FaultPlan must bypass the injector");
  Verdict verdict;

  // Scheduled delays: storms, ingress pauses, holder stalls. These model
  // slow links / unresponsive nodes, not loss, so they add latency only.
  sim::Time scheduled = 0.0;
  for (const LatencyStorm& storm : plan_.storms) {
    if (now >= storm.at && now < storm.at + storm.duration) {
      scheduled += std::max(0.0, storm.factor - 1.0) * std::max(distance, 1.0);
    }
  }
  for (const PauseWindow& pause : plan_.pauses) {
    if (to == pause.node && now >= pause.at && now < pause.at + pause.duration) {
      scheduled += (pause.at + pause.duration) - now;
    }
  }
  if (kind == MessageKind::kToken) {
    for (const HolderStall& stall : plan_.stalls) {
      if (now >= stall.at && now < stall.at + stall.duration) {
        scheduled += (stall.at + stall.duration) - now;
      }
    }
  }
  if (plan_.reorder > 0.0 && rng_.next_bool(plan_.reorder)) {
    scheduled += rng_.next_double(0.0, plan_.reorder_spike);
  }
  if (scheduled > 0.0) {
    verdict.extra_delay += scheduled;
    ++stats_.delays;
    record(FaultEvent::Kind::kDelay, kind, request, from, to, now, 0);
  }

  // Drop + retransmission chain, resolved at send time: attempt i is lost
  // with the per-transmission probability; each loss re-issues after the
  // capped exponential backoff until one survives or attempts run out.
  const double drop_p = kind == MessageKind::kFind   ? plan_.drop_find
                        : kind == MessageKind::kToken ? plan_.drop_token
                                                      : 0.0;
  if (drop_p > 0.0) {
    sim::Time backoff = retry_.rto;
    std::uint32_t attempt = 1;
    while (rng_.next_bool(drop_p)) {
      ++stats_.drops;
      record(FaultEvent::Kind::kDrop, kind, request, from, to, now, attempt);
      if (!retry_.enabled || attempt >= retry_.max_attempts) {
        ++stats_.permanent_losses;
        if (kind == MessageKind::kFind) ++stats_.lost_finds;
        if (kind == MessageKind::kToken) ++stats_.lost_tokens;
        record(FaultEvent::Kind::kPermanentLoss, kind, request, from, to, now,
               attempt);
        verdict.lost = true;
        return verdict;
      }
      ++stats_.retries;
      stats_.overhead_distance += distance;
      verdict.extra_delay += backoff;
      ++attempt;
      record(FaultEvent::Kind::kRetry, kind, request, from, to, now, attempt);
      backoff = std::min(backoff * retry_.backoff, retry_.max_backoff);
    }
  }

  // Duplication: one extra copy; the receiver-side dedup makes it harmless
  // to the protocol, so the only lasting effect is overhead traffic.
  if (plan_.duplicate > 0.0 && rng_.next_bool(plan_.duplicate)) {
    verdict.duplicates = 1;
    ++stats_.duplicates;
    stats_.overhead_distance += distance;
    record(FaultEvent::Kind::kDuplicate, kind, request, from, to, now, 0);
  }

  return verdict;
}

}  // namespace arvy::faults
