#include "faults/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace arvy::faults {

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("fault spec '" + spec + "': " + why);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, sep)) out.push_back(part);
  return out;
}

double parse_probability(const std::string& spec, const std::string& value) {
  double p = 0.0;
  try {
    p = std::stod(value);
  } catch (const std::exception&) {
    bad_spec(spec, "'" + value + "' is not a number");
  }
  if (p < 0.0 || p > 1.0) bad_spec(spec, "probability must be in [0, 1]");
  return p;
}

double parse_number(const std::string& spec, const std::string& value) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    bad_spec(spec, "'" + value + "' is not a number");
  }
}

}  // namespace

const char* message_kind_name(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kFind:
      return "find";
    case MessageKind::kToken:
      return "token";
    case MessageKind::kOther:
      return "other";
  }
  return "?";
}

bool FaultPlan::empty() const noexcept {
  return drop_find == 0.0 && drop_token == 0.0 && duplicate == 0.0 &&
         reorder == 0.0 && storms.empty() && pauses.empty() && stalls.empty();
}

FaultPlan FaultPlan::for_shard(std::uint32_t shard) const {
  if (!shards.empty() &&
      std::find(shards.begin(), shards.end(), shard) == shards.end()) {
    return {};
  }
  FaultPlan scoped = *this;
  scoped.shards.clear();
  // Golden-ratio mixing, shard+1 so shard 0 still decorrelates from the
  // unscoped plan's own stream.
  scoped.seed = seed ^ ((shard + 1ULL) * 0x9e3779b97f4a7c15ULL);
  return scoped;
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") return plan;
  for (const std::string& item : split(spec, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) bad_spec(spec, "expected key=value in '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    const auto parts = split(value, ':');
    if (key == "drop") {
      plan.drop_find = plan.drop_token = parse_probability(spec, value);
    } else if (key == "dropfind") {
      plan.drop_find = parse_probability(spec, value);
    } else if (key == "droptoken") {
      plan.drop_token = parse_probability(spec, value);
    } else if (key == "dup") {
      plan.duplicate = parse_probability(spec, value);
    } else if (key == "reorder") {
      plan.reorder = parse_probability(spec, parts.at(0));
      if (parts.size() > 1) plan.reorder_spike = parse_number(spec, parts[1]);
    } else if (key == "storm") {
      if (parts.size() < 2) bad_spec(spec, "storm needs AT:DUR[:FACTOR]");
      LatencyStorm storm;
      storm.at = parse_number(spec, parts[0]);
      storm.duration = parse_number(spec, parts[1]);
      if (parts.size() > 2) storm.factor = parse_number(spec, parts[2]);
      plan.storms.push_back(storm);
    } else if (key == "pause") {
      if (parts.size() != 3) bad_spec(spec, "pause needs NODE:AT:DUR");
      PauseWindow pause;
      pause.node = static_cast<NodeId>(std::stoul(parts[0]));
      pause.at = parse_number(spec, parts[1]);
      pause.duration = parse_number(spec, parts[2]);
      plan.pauses.push_back(pause);
    } else if (key == "stall") {
      if (parts.size() != 2) bad_spec(spec, "stall needs AT:DUR");
      HolderStall stall;
      stall.at = parse_number(spec, parts[0]);
      stall.duration = parse_number(spec, parts[1]);
      plan.stalls.push_back(stall);
    } else if (key == "seed") {
      plan.seed = std::stoull(value);
    } else if (key == "shards") {
      if (parts.empty()) bad_spec(spec, "shards needs A[:B:...]");
      for (const std::string& part : parts) {
        plan.shards.push_back(static_cast<std::uint32_t>(std::stoul(part)));
      }
    } else {
      bad_spec(spec, "unknown key '" + key + "'");
    }
  }
  return plan;
}

RetryPolicy parse_retry_policy(const std::string& spec) {
  RetryPolicy retry;
  if (spec.empty()) return retry;
  if (spec == "off") {
    retry.enabled = false;
    return retry;
  }
  for (const std::string& item : split(spec, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) bad_spec(spec, "expected key=value in '" + item + "'");
    const std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    if (key == "backoff") {
      if (!value.empty() && value.back() == 'x') value.pop_back();
      retry.backoff = parse_number(spec, value);
      if (retry.backoff < 1.0) bad_spec(spec, "backoff multiplier must be >= 1");
    } else if (key == "rto") {
      retry.rto = parse_number(spec, value);
    } else if (key == "cap") {
      retry.max_backoff = parse_number(spec, value);
    } else if (key == "attempts") {
      retry.max_attempts = static_cast<std::uint32_t>(std::stoul(value));
      if (retry.max_attempts == 0) bad_spec(spec, "attempts must be >= 1");
    } else {
      bad_spec(spec, "unknown key '" + key + "'");
    }
  }
  return retry;
}

}  // namespace arvy::faults
