// Simulated time.
//
// The paper's model is fully asynchronous: message delays are arbitrary but
// finite. Simulated time is therefore only a device for (a) ordering events
// deterministically and (b) expressing workload arrival processes; no
// protocol logic may depend on it.
#pragma once

namespace arvy::sim {

using Time = double;

}  // namespace arvy::sim
