// A generic asynchronous message bus for protocol simulation.
//
// The bus models the paper's network (§3): point-to-point messages between
// arbitrary node pairs (routing is solved), arbitrary finite delays, no
// loss, no duplication. It is templated on the message type so protocol
// layers and substrate tests can each use their own payloads.
//
// Delivery order is controlled by a Discipline (see sim/delivery.hpp).
// Whatever the discipline, every sent message is delivered exactly once
// before the bus reports idle - the "reliable network" assumption.
//
// Fault injection hooks through one seam: an optional SendFilter consulted
// once per send (see set_send_filter). The filter can declare the message
// permanently lost, add delivery delay (retransmission backoff, latency
// storms), or request duplicate copies; duplicated copies share a dedup
// group and only the first delivered copy reaches the handler (at-least-once
// wire, exactly-once handler - the standard transport dedup). With no filter
// installed the send path is bit-identical to the filter-free bus, which is
// what keeps golden schedules stable (test_golden_schedule).
//
// Internals: in-flight messages live in a slot arena recycled through a
// free list, so steady-state traffic performs no per-message heap
// allocation (the payload's own buffers are moved, never copied). Send
// order is tracked by a window of slot indices keyed by message id with a
// Fenwick tree counting the live entries, which makes every discipline's
// pick O(log live) or better: kFifo/kLifo/kRandom select the k-th live
// message in send order by Fenwick descent (the seed implementation paid
// O(live) per kRandom pick via std::advance on a std::map), and kTimed
// keeps its lazy min-heap. Delivery semantics are bit-identical to the
// map-based implementation: kRandom draws the same index-in-send-order for
// a given seed, so recorded schedules replay unchanged (guarded by
// test_replay and test_golden_schedule).
#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/delivery.hpp"
#include "sim/time.hpp"
#include "support/assert.hpp"
#include "support/hot.hpp"
#include "support/rng.hpp"

namespace arvy::sim {

using graph::NodeId;
using MessageId = std::uint64_t;

// What a SendFilter tells the bus to do with one logical send.
struct SendVerdict {
  bool lost = false;             // permanently lost: never enqueued
  Time extra_delay = 0.0;        // added to the delivery delay (kTimed only)
  std::uint32_t duplicates = 0;  // extra copies sharing a dedup group
};

// Message-POD discipline (lint `msgpod`): the verdict crosses the send
// seam by value on every filtered send.
static_assert(std::is_trivially_copyable_v<SendVerdict>);

template <typename Msg>
class MessageBus {
 public:
  struct InFlight {
    MessageId id = 0;
    NodeId from = graph::kInvalidNode;
    NodeId to = graph::kInvalidNode;
    Msg payload{};
    Time sent_at = 0.0;
    Time deliver_at = 0.0;
    double distance = 0.0;
    // Non-zero when this message was duplicated in flight: the id of the
    // primary copy. Only the first delivered copy of a group is handled.
    MessageId dup_group = 0;
  };

  // A trivially copyable payload must keep the whole in-flight record
  // trivially copyable - the contract roadmap item 2's flat wire frames
  // (proto/wire.hpp) build on. Checked at instantiation, so a substrate
  // with a POD message type cannot silently lose the property.
  static_assert(std::is_trivially_copyable_v<InFlight> ||
                !std::is_trivially_copyable_v<Msg>);

  // Called when a message is delivered.
  using Handler = std::function<void(const InFlight&)>;

  // Consulted once per send() when installed; see the header comment.
  using SendFilter = std::function<SendVerdict(
      NodeId from, NodeId to, const Msg& payload, Time now, double distance)>;

  struct Options {
    Discipline discipline = Discipline::kTimed;
    std::uint64_t seed = 1;
    // Only used with Discipline::kTimed; defaults to the distance model.
    std::unique_ptr<DelayModel> delay;
    // Required for Discipline::kScripted: the delivery order to replay.
    Schedule script;
    // When true, every delivered message id is appended to schedule() -
    // record under any discipline, replay under kScripted.
    bool record_schedule = false;
  };

  explicit MessageBus(Options options)
      : discipline_(options.discipline),
        rng_(options.seed),
        delay_(options.delay ? std::move(options.delay)
                             : make_distance_delay()),
        script_(std::move(options.script)),
        record_schedule_(options.record_schedule) {
    ARVY_EXPECTS(discipline_ != Discipline::kScripted || !script_.empty());
  }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  // Installs the fault-injection seam. Pass nullptr to remove. The filter
  // runs on the caller's thread inside send(); it must not re-enter the bus.
  void set_send_filter(SendFilter filter) { filter_ = std::move(filter); }

  // Enqueues a message; `distance` is the shortest-path distance the message
  // will traverse (cost accounting is the caller's concern; the bus uses it
  // only for the timed delay model). Returns the message id, or 0 when an
  // installed SendFilter declared the message permanently lost.
  MessageId send(NodeId from, NodeId to, Msg payload, double distance = 0.0) {
    if (!filter_) return enqueue(from, to, std::move(payload), distance, 0.0, 0);
    const SendVerdict verdict = filter_(from, to, payload, now_, distance);
    if (verdict.lost) {
      ++lost_;
      return 0;
    }
    if (verdict.duplicates == 0) {
      return enqueue(from, to, std::move(payload), distance,
                     verdict.extra_delay, 0);
    }
    // The primary copy's id names the dedup group (it is enqueued first, so
    // the group id equals the returned message id).
    const MessageId group = next_id_;
    const MessageId id =
        enqueue(from, to, payload, distance, verdict.extra_delay, group);
    for (std::uint32_t i = 0; i < verdict.duplicates; ++i) {
      // Copies trail the primary by one flight time each so that under
      // kTimed they are genuine reorder hazards, not instant ghosts.
      enqueue(from, to, payload, distance,
              verdict.extra_delay +
                  static_cast<double>(i + 1) * std::max(distance, 1.0),
              group);
    }
    groups_.emplace(group, Group{verdict.duplicates + 1, false});
    return id;
  }

  // Delivers one message per the discipline. Returns false when idle.
  bool step() {
    if (live_count_ == 0) return false;
    deliver_locked(pick_next());
    return true;
  }

  // Delivers a specific in-flight message (used by scripted replays such as
  // the Figure 1 trace).
  void deliver(MessageId id) {
    ARVY_EXPECTS_MSG(lookup(id) != kNoSlot, "unknown or delivered message");
    deliver_locked(id);
  }

  // FAULT INJECTION: silently discards an in-flight message. This violates
  // the model's reliability assumption (§3: "messages ... are never lost")
  // on purpose - the negative tests use it to show the assumption is
  // load-bearing (a lost find or token breaks liveness).
  void drop(MessageId id) {
    const std::uint32_t slot = lookup(id);
    ARVY_EXPECTS_MSG(slot != kNoSlot, "unknown or delivered message");
    const MessageId group = slots_[slot].entry.dup_group;
    release(id, slot);
    if (group != 0) retire_group_copy(group, /*delivered=*/false);
    ++dropped_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  // Messages a SendFilter declared permanently lost (never enqueued).
  [[nodiscard]] std::uint64_t lost() const noexcept { return lost_; }
  // Deliveries suppressed because an earlier copy of the same dedup group
  // already reached the handler.
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_;
  }

  // True when `entry` (still pending) is a duplicate copy whose group has
  // already been handled: it is on the wire but semantically absent. The
  // configuration capture skips such ghosts.
  [[nodiscard]] bool logically_delivered(const InFlight& entry) const {
    if (entry.dup_group == 0) return false;
    const auto it = groups_.find(entry.dup_group);
    return it != groups_.end() && it->second.delivered;
  }

  // The recorded delivery order (empty unless Options::record_schedule).
  [[nodiscard]] const Schedule& schedule() const noexcept { return recorded_; }

  // Runs until no message is in flight. `max_steps` guards against protocol
  // bugs that would generate messages forever.
  void run_until_idle(std::size_t max_steps = 10'000'000) {
    std::size_t steps = 0;
    while (step()) {
      ARVY_ASSERT_MSG(++steps <= max_steps, "message bus failed to quiesce");
    }
  }

  [[nodiscard]] std::size_t in_flight_count() const noexcept {
    return live_count_;
  }
  [[nodiscard]] bool idle() const noexcept { return live_count_ == 0; }
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }

  // --- Enumeration seam (tools/arvy_explore) -------------------------------
  // Under the paper's network model (§3: arbitrary finite delays) every
  // in-flight message may legally be the next one delivered, so the set of
  // deliverable messages is exactly the live set. Returns their ids in send
  // order - stable across replays, no rng draws, no mutation - so a
  // systematic explorer can enumerate the choices and apply one via
  // deliver(id) (or drop(id) for a fault choice point). The priority
  // disciplines above are untouched: enumerating cannot perturb a recorded
  // or golden schedule (pinned by test_sim_bus).
  [[nodiscard]] std::vector<MessageId> deliverable_ids() const {
    std::vector<MessageId> out;
    out.reserve(live_count_);
    for (const std::uint32_t slot : window_) {
      if (slot != kNoSlot) out.push_back(slots_[slot].entry.id);
    }
    return out;
  }

  // Snapshot of in-flight messages in send order (stable ids). Used by the
  // invariant checker to reconstruct red edges. The pointers are invalidated
  // by the next send (the arena may grow); copy what you need.
  [[nodiscard]] std::vector<const InFlight*> pending() const {
    std::vector<const InFlight*> out;
    out.reserve(live_count_);
    for (const std::uint32_t slot : window_) {
      if (slot != kNoSlot) out.push_back(&slots_[slot].entry);
    }
    return out;
  }

  // The earliest pending delivery - smallest deliver_at, ties by send order
  // - or nullptr when idle, without materializing a pending() snapshot.
  // Tie-break contract (pinned by test_sim_bus so the enumeration seam can
  // never silently change priority-mode schedules): message ids are assigned
  // in send order, and the timed heap orders equal deliver_at by ascending
  // id, so colliding timestamps deliver oldest-send first. Under kTimed and
  // kFifo the peeked message is exactly what the next step() delivers; under
  // kLifo/kRandom peek() still reports the *oldest* live message (the
  // earliest deliver_at), which step()'s pick may ignore.
  // Amortized O(1); the pointer is invalidated by the next send/delivery.
  [[nodiscard]] ARVY_HOT const InFlight* peek() {
    if (live_count_ == 0) return nullptr;
    if (discipline_ == Discipline::kTimed) {
      return &slots_[heap_top_slot()].entry;
    }
    // Outside kTimed, deliver_at is the clock at send time, which never
    // decreases: the earliest pending delivery is the oldest live message.
    return &slots_[window_[select_live(0)]].entry;
  }

  // Time of the earliest pending delivery, +infinity when idle. Lets
  // drivers interleave timed arrivals without scanning the pending set.
  [[nodiscard]] Time next_deliver_at() {
    const InFlight* head = peek();
    return head != nullptr ? head->deliver_at
                           : std::numeric_limits<Time>::infinity();
  }

  // Advances the logical clock without delivering (used by drivers to space
  // out request arrivals under the timed discipline).
  void advance_time(Time to) {
    ARVY_EXPECTS(to >= now_);
    now_ = to;
  }

 private:
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  struct Slot {
    InFlight entry{};
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  ARVY_HOT MessageId pick_next() {
    ARVY_ASSERT(live_count_ > 0);
    switch (discipline_) {
      case Discipline::kFifo:
        return slots_[window_[select_live(0)]].entry.id;
      case Discipline::kLifo:
        return slots_[window_[select_live(live_count_ - 1)]].entry.id;
      case Discipline::kRandom: {
        // Same draw as the seed implementation: a uniform index into the
        // live set ordered by send order (schedules replay bit-for-bit).
        const auto index = rng_.next_below(live_count_);
        return slots_[window_[select_live(index)]].entry.id;
      }
      case Discipline::kTimed:
        return slots_[heap_top_slot()].entry.id;
      case Discipline::kScripted: {
        ARVY_ASSERT_MSG(script_position_ < script_.size(),
                        "replay schedule exhausted with messages pending");
        const MessageId id = script_[script_position_++];
        ARVY_ASSERT_MSG(lookup(id) != kNoSlot,
                        "replay schedule does not match this run's sends");
        return id;
      }
    }
    ARVY_UNREACHABLE("bad discipline");
  }

  void deliver_locked(MessageId id) {
    const std::uint32_t slot = lookup(id);
    ARVY_ASSERT(slot != kNoSlot);
    InFlight entry = std::move(slots_[slot].entry);
    release(id, slot);
    now_ = std::max(now_, entry.deliver_at);
    ++deliveries_;
    if (record_schedule_) recorded_.push_back(id);
    if (entry.dup_group != 0 && retire_group_copy(entry.dup_group, true)) {
      ++suppressed_;  // an earlier copy already reached the handler
      return;
    }
    ARVY_ASSERT_MSG(handler_ != nullptr, "no handler installed");
    handler_(entry);
  }

  // Internal send path shared by the plain and filtered cases.
  MessageId enqueue(NodeId from, NodeId to, Msg payload, double distance,
                    Time extra_delay, MessageId group) {
    const MessageId id = next_id_++;
    const std::uint32_t slot = acquire_slot();
    InFlight& entry = slots_[slot].entry;
    entry.id = id;
    entry.from = from;
    entry.to = to;
    entry.payload = std::move(payload);
    entry.sent_at = now_;
    entry.distance = distance;
    entry.dup_group = group;
    entry.deliver_at =
        now_ + (discipline_ == Discipline::kTimed
                    ? delay_->delay(from, to, distance, rng_) + extra_delay
                    : 0.0);
    slots_[slot].live = true;
    ++live_count_;
    push_order(slot);
    if (discipline_ == Discipline::kTimed) {
      timed_heap_.push({entry.deliver_at, id});
    }
    return id;
  }

  // Retires one copy of a dedup group; returns whether the group had
  // already been handled before this copy (i.e. this copy is a ghost).
  bool retire_group_copy(MessageId group, bool delivered) {
    const auto it = groups_.find(group);
    ARVY_ASSERT(it != groups_.end());
    const bool was_delivered = it->second.delivered;
    if (delivered) it->second.delivered = true;
    if (--it->second.remaining == 0) groups_.erase(it);
    return was_delivered;
  }

  // --- Slot arena ----------------------------------------------------------

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  // Slot index for a live message id, kNoSlot when unknown or delivered.
  [[nodiscard]] ARVY_HOT std::uint32_t lookup(MessageId id) const {
    if (id < window_base_id_) return kNoSlot;
    const auto w = static_cast<std::size_t>(id - window_base_id_);
    if (w >= window_.size()) return kNoSlot;
    return window_[w];
  }

  // Retires a message: frees its slot and clears its send-order position.
  ARVY_HOT void release(MessageId id, std::uint32_t slot) {
    const auto w = static_cast<std::size_t>(id - window_base_id_);
    window_[w] = kNoSlot;
    fenwick_add(w, false);
    slots_[slot].live = false;
    slots_[slot].next_free = free_head_;
    free_head_ = slot;
    --live_count_;
    if (live_count_ == 0) {
      // Every Fenwick increment has been matched by a decrement, so the
      // tree is all-zero: restart the window at the next id for free.
      window_.clear();
      window_base_id_ = next_id_;
      return;
    }
    maybe_trim();
  }

  // --- Send-order window + Fenwick index -----------------------------------
  //
  // window_[id - window_base_id_] is the slot of message `id` (kNoSlot once
  // retired); fenwick_ counts live entries so the k-th live message in send
  // order is found by binary descent. The window only ever grows at the
  // back; dead prefixes are trimmed once they cover half the window, and
  // the whole window resets whenever the bus drains, so its footprint
  // tracks the live population (a pathological forever-undelivered oldest
  // message would pin it, but the reliability assumption - and
  // run_until_idle - drain every message).

  void push_order(std::uint32_t slot) {
    window_.push_back(slot);
    if (window_.size() > fenwick_cap_) {
      rebuild_fenwick();  // doubles capacity; counts the new entry
    } else {
      fenwick_add(window_.size() - 1, true);
    }
  }

  ARVY_HOT void fenwick_add(std::size_t pos, bool add) {
    for (std::size_t i = pos + 1; i <= fenwick_cap_; i += i & (~i + 1)) {
      fenwick_[i] += add ? 1u : ~0u;  // unsigned -1
    }
  }

  // Position in window_ of the (k+1)-th live entry; precondition k < live.
  [[nodiscard]] ARVY_HOT std::size_t select_live(std::size_t k) const {
    std::size_t idx = 0;
    std::size_t remaining = k + 1;
    for (std::size_t step = fenwick_cap_; step > 0; step >>= 1) {
      const std::size_t next = idx + step;
      if (next <= fenwick_cap_ && fenwick_[next] < remaining) {
        idx = next;
        remaining -= fenwick_[next];
      }
    }
    ARVY_ASSERT(idx < window_.size());
    return idx;
  }

  // Amortized: runs once per capacity doubling (push side) or per trimmed
  // half-window (release side), never per message. ARVY_COLD keeps the
  // assign()'s allocation out of the hot sections the object audit walks.
  ARVY_COLD void rebuild_fenwick() {
    std::size_t cap = 64;
    while (cap < window_.size()) cap *= 2;
    fenwick_cap_ = cap;
    fenwick_.assign(cap + 1, 0);
    for (std::size_t w = 0; w < window_.size(); ++w) {
      if (window_[w] != kNoSlot) fenwick_[w + 1] += 1;
    }
    for (std::size_t i = 1; i <= cap; ++i) {
      const std::size_t parent = i + (i & (~i + 1));
      if (parent <= cap) fenwick_[parent] += fenwick_[i];
    }
  }

  void maybe_trim() {
    if (window_.size() < 64) return;
    const std::size_t first = select_live(0);
    if (first * 2 < window_.size()) return;
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(first));
    window_base_id_ += first;
    rebuild_fenwick();
  }

  // --- Timed discipline ----------------------------------------------------

  // Heap top that is still in flight (entries for messages delivered via
  // deliver(id) are discarded lazily).
  ARVY_HOT std::uint32_t heap_top_slot() {
    while (true) {
      ARVY_ASSERT(!timed_heap_.empty());
      const std::uint32_t slot = lookup(timed_heap_.top().second);
      if (slot == kNoSlot) {
        timed_heap_.pop();
        continue;
      }
      return slot;
    }
  }

  Discipline discipline_;
  support::Rng rng_;
  std::unique_ptr<DelayModel> delay_;
  Handler handler_;
  SendFilter filter_;

  struct Group {
    std::uint32_t remaining = 0;  // copies still on the wire
    bool delivered = false;       // some copy already reached the handler
  };
  std::unordered_map<MessageId, Group> groups_;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_count_ = 0;
  std::vector<std::uint32_t> window_;
  std::vector<std::uint32_t> fenwick_;  // 1-indexed, fenwick_cap_ + 1 wide
  std::size_t fenwick_cap_ = 0;
  MessageId window_base_id_ = 1;

  using HeapEntry = std::pair<Time, MessageId>;
  struct HeapCompare {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      // Earliest deliver_at first; ties broken by send order for determinism.
      return a.first > b.first || (a.first == b.first && a.second > b.second);
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare>
      timed_heap_;
  Schedule script_;
  std::size_t script_position_ = 0;
  bool record_schedule_ = false;
  Schedule recorded_;
  MessageId next_id_ = 1;
  Time now_ = 0.0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace arvy::sim
