// A generic asynchronous message bus for protocol simulation.
//
// The bus models the paper's network (§3): point-to-point messages between
// arbitrary node pairs (routing is solved), arbitrary finite delays, no
// loss, no duplication. It is templated on the message type so protocol
// layers and substrate tests can each use their own payloads.
//
// Delivery order is controlled by a Discipline (see sim/delivery.hpp).
// Whatever the discipline, every sent message is delivered exactly once
// before the bus reports idle - the "reliable network" assumption.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <vector>

#include "graph/graph.hpp"
#include "sim/delivery.hpp"
#include "sim/time.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace arvy::sim {

using graph::NodeId;
using MessageId = std::uint64_t;

template <typename Msg>
class MessageBus {
 public:
  struct InFlight {
    MessageId id = 0;
    NodeId from = graph::kInvalidNode;
    NodeId to = graph::kInvalidNode;
    Msg payload{};
    Time sent_at = 0.0;
    Time deliver_at = 0.0;
    double distance = 0.0;
  };

  // Called when a message is delivered.
  using Handler = std::function<void(const InFlight&)>;

  struct Options {
    Discipline discipline = Discipline::kTimed;
    std::uint64_t seed = 1;
    // Only used with Discipline::kTimed; defaults to the distance model.
    std::unique_ptr<DelayModel> delay;
    // Required for Discipline::kScripted: the delivery order to replay.
    Schedule script;
    // When true, every delivered message id is appended to schedule() -
    // record under any discipline, replay under kScripted.
    bool record_schedule = false;
  };

  explicit MessageBus(Options options)
      : discipline_(options.discipline),
        rng_(options.seed),
        delay_(options.delay ? std::move(options.delay)
                             : make_distance_delay()),
        script_(std::move(options.script)),
        record_schedule_(options.record_schedule) {
    ARVY_EXPECTS(discipline_ != Discipline::kScripted || !script_.empty());
  }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  // Enqueues a message; `distance` is the shortest-path distance the message
  // will traverse (cost accounting is the caller's concern; the bus uses it
  // only for the timed delay model). Returns the message id.
  MessageId send(NodeId from, NodeId to, Msg payload, double distance = 0.0) {
    const MessageId id = next_id_++;
    InFlight entry{id,  from, to, std::move(payload), now_,
                   0.0, distance};
    entry.deliver_at =
        now_ + (discipline_ == Discipline::kTimed
                    ? delay_->delay(from, to, distance, rng_)
                    : 0.0);
    timed_heap_.push({entry.deliver_at, id});
    pending_.emplace(id, std::move(entry));
    return id;
  }

  // Delivers one message per the discipline. Returns false when idle.
  bool step() {
    if (pending_.empty()) return false;
    deliver_locked(pick_next());
    return true;
  }

  // Delivers a specific in-flight message (used by scripted replays such as
  // the Figure 1 trace).
  void deliver(MessageId id) {
    ARVY_EXPECTS_MSG(pending_.count(id) == 1, "unknown or delivered message");
    deliver_locked(id);
  }

  // FAULT INJECTION: silently discards an in-flight message. This violates
  // the model's reliability assumption (§3: "messages ... are never lost")
  // on purpose - the negative tests use it to show the assumption is
  // load-bearing (a lost find or token breaks liveness).
  void drop(MessageId id) {
    auto it = pending_.find(id);
    ARVY_EXPECTS_MSG(it != pending_.end(), "unknown or delivered message");
    pending_.erase(it);
    ++dropped_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  // The recorded delivery order (empty unless Options::record_schedule).
  [[nodiscard]] const Schedule& schedule() const noexcept { return recorded_; }

  // Runs until no message is in flight. `max_steps` guards against protocol
  // bugs that would generate messages forever.
  void run_until_idle(std::size_t max_steps = 10'000'000) {
    std::size_t steps = 0;
    while (step()) {
      ARVY_ASSERT_MSG(++steps <= max_steps, "message bus failed to quiesce");
    }
  }

  [[nodiscard]] std::size_t in_flight_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }

  // Snapshot of in-flight messages in send order (stable ids). Used by the
  // invariant checker to reconstruct red edges.
  [[nodiscard]] std::vector<const InFlight*> pending() const {
    std::vector<const InFlight*> out;
    out.reserve(pending_.size());
    for (const auto& [id, entry] : pending_) out.push_back(&entry);
    return out;
  }

  // Advances the logical clock without delivering (used by drivers to space
  // out request arrivals under the timed discipline).
  void advance_time(Time to) {
    ARVY_EXPECTS(to >= now_);
    now_ = to;
  }

 private:
  MessageId pick_next() {
    ARVY_ASSERT(!pending_.empty());
    switch (discipline_) {
      case Discipline::kFifo:
        return pending_.begin()->first;  // map is keyed by send order
      case Discipline::kLifo:
        return pending_.rbegin()->first;
      case Discipline::kRandom: {
        const auto index = rng_.next_below(pending_.size());
        auto it = pending_.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(index));
        return it->first;
      }
      case Discipline::kTimed: {
        while (true) {
          ARVY_ASSERT(!timed_heap_.empty());
          const auto [at, id] = timed_heap_.top();
          if (pending_.count(id) == 0) {
            timed_heap_.pop();  // already delivered via deliver(id)
            continue;
          }
          return id;
        }
      }
      case Discipline::kScripted: {
        ARVY_ASSERT_MSG(script_position_ < script_.size(),
                        "replay schedule exhausted with messages pending");
        const MessageId id = script_[script_position_++];
        ARVY_ASSERT_MSG(pending_.count(id) == 1,
                        "replay schedule does not match this run's sends");
        return id;
      }
    }
    ARVY_UNREACHABLE("bad discipline");
  }

  void deliver_locked(MessageId id) {
    auto it = pending_.find(id);
    ARVY_ASSERT(it != pending_.end());
    InFlight entry = std::move(it->second);
    pending_.erase(it);
    now_ = std::max(now_, entry.deliver_at);
    ++deliveries_;
    if (record_schedule_) recorded_.push_back(id);
    ARVY_ASSERT_MSG(handler_ != nullptr, "no handler installed");
    handler_(entry);
  }

  Discipline discipline_;
  support::Rng rng_;
  std::unique_ptr<DelayModel> delay_;
  Handler handler_;
  std::map<MessageId, InFlight> pending_;  // keyed by send order
  using HeapEntry = std::pair<Time, MessageId>;
  struct HeapCompare {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      // Earliest deliver_at first; ties broken by send order for determinism.
      return a.first > b.first || (a.first == b.first && a.second > b.second);
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare>
      timed_heap_;
  Schedule script_;
  std::size_t script_position_ = 0;
  bool record_schedule_ = false;
  Schedule recorded_;
  MessageId next_id_ = 1;
  Time now_ = 0.0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace arvy::sim
