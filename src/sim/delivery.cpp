#include "sim/delivery.hpp"

#include "support/assert.hpp"

namespace arvy::sim {

std::string_view discipline_name(Discipline d) noexcept {
  switch (d) {
    case Discipline::kTimed:
      return "timed";
    case Discipline::kFifo:
      return "fifo";
    case Discipline::kLifo:
      return "lifo";
    case Discipline::kRandom:
      return "random";
    case Discipline::kScripted:
      return "scripted";
  }
  return "unknown";
}

namespace {

class DistanceDelay final : public DelayModel {
 public:
  explicit DistanceDelay(double seconds_per_unit)
      : seconds_per_unit_(seconds_per_unit) {
    ARVY_EXPECTS(seconds_per_unit > 0.0);
  }
  Time delay(graph::NodeId, graph::NodeId, double distance,
             support::Rng&) override {
    return distance * seconds_per_unit_;
  }
  std::string_view name() const noexcept override { return "distance"; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<DistanceDelay>(*this);
  }

 private:
  double seconds_per_unit_;
};

class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Time latency) : latency_(latency) {
    ARVY_EXPECTS(latency >= 0.0);
  }
  Time delay(graph::NodeId, graph::NodeId, double, support::Rng&) override {
    return latency_;
  }
  std::string_view name() const noexcept override { return "constant"; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<ConstantDelay>(*this);
  }

 private:
  Time latency_;
};

class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {
    ARVY_EXPECTS(0.0 <= lo && lo < hi);
  }
  Time delay(graph::NodeId, graph::NodeId, double, support::Rng& rng) override {
    return rng.next_double(lo_, hi_);
  }
  std::string_view name() const noexcept override { return "uniform"; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<UniformDelay>(*this);
  }

 private:
  Time lo_;
  Time hi_;
};

class ExponentialDelay final : public DelayModel {
 public:
  explicit ExponentialDelay(Time mean) : mean_(mean) {
    ARVY_EXPECTS(mean > 0.0);
  }
  Time delay(graph::NodeId, graph::NodeId, double, support::Rng& rng) override {
    return rng.next_exponential(mean_);
  }
  std::string_view name() const noexcept override { return "exponential"; }
  std::unique_ptr<DelayModel> clone() const override {
    return std::make_unique<ExponentialDelay>(*this);
  }

 private:
  Time mean_;
};

}  // namespace

std::unique_ptr<DelayModel> make_distance_delay(double seconds_per_unit) {
  return std::make_unique<DistanceDelay>(seconds_per_unit);
}

std::unique_ptr<DelayModel> make_constant_delay(Time latency) {
  return std::make_unique<ConstantDelay>(latency);
}

std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi) {
  return std::make_unique<UniformDelay>(lo, hi);
}

std::unique_ptr<DelayModel> make_exponential_delay(Time mean) {
  return std::make_unique<ExponentialDelay>(mean);
}

}  // namespace arvy::sim
