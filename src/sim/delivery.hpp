// Message delivery disciplines and delay models.
//
// The paper's only assumption about the network (§3) is that every message
// is eventually delivered; delays are otherwise arbitrary. The fuzzing
// experiments (E7) therefore exercise several adversarial disciplines, while
// the performance experiments use the distance-proportional model, which is
// the natural reading of "routing follows shortest paths".
#pragma once

#include <memory>
#include <string_view>

#include "graph/graph.hpp"
#include "sim/time.hpp"
#include "support/rng.hpp"

namespace arvy::sim {

// How the bus picks the next in-flight message to deliver.
enum class Discipline {
  kTimed,     // by deliver_at = sent_at + DelayModel(...), ties by send order
  kFifo,      // global send order (a "nice" network)
  kLifo,      // newest first (maximal overtaking)
  kRandom,    // uniformly random pending message (the classic async adversary)
  kScripted,  // replay a recorded delivery schedule exactly
};

[[nodiscard]] std::string_view discipline_name(Discipline d) noexcept;

// A recorded delivery schedule: message ids in delivery order. Message ids
// are assigned deterministically by send order, so a schedule recorded from
// one run replays against any other run of the same deterministic program.
using Schedule = std::vector<std::uint64_t>;

// Latency assigned to a message under Discipline::kTimed.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  [[nodiscard]] virtual Time delay(graph::NodeId from, graph::NodeId to,
                                   double distance, support::Rng& rng) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<DelayModel> clone() const = 0;
};

// delay = distance * seconds_per_unit: messages travel at constant speed
// along their shortest path.
[[nodiscard]] std::unique_ptr<DelayModel> make_distance_delay(
    double seconds_per_unit = 1.0);

// Constant latency regardless of distance.
[[nodiscard]] std::unique_ptr<DelayModel> make_constant_delay(Time latency);

// Uniform latency in [lo, hi): bounded but arbitrary reordering.
[[nodiscard]] std::unique_ptr<DelayModel> make_uniform_delay(Time lo, Time hi);

// Exponential latency with the given mean: unbounded reordering (heavy tail).
[[nodiscard]] std::unique_ptr<DelayModel> make_exponential_delay(Time mean);

}  // namespace arvy::sim
