#include "proto/core.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arvy::proto {

ArvyCore::ArvyCore(NodeId id, NewParentPolicy* policy,
                   const graph::DistanceOracle* distances, support::Rng* rng)
    : id_(id),
      policy_(policy),
      distances_(distances),
      rng_(rng),
      parent_(id) {
  ARVY_EXPECTS(policy != nullptr);
}

void ArvyCore::initialize(NodeId parent, bool holds_token,
                          bool parent_edge_is_bridge) {
  ARVY_EXPECTS(!initialized_);
  // The root points to itself and holds the token; everyone else points
  // strictly towards the root (tree shape is validated by the engine).
  ARVY_EXPECTS((parent == id_) == holds_token);
  parent_ = parent;
  holds_token_ = holds_token;
  parent_edge_is_bridge_ = parent_edge_is_bridge;
  next_.reset();
  outstanding_.reset();
  initialized_ = true;
}

void ArvyCore::reinitialize(NodeId parent, bool holds_token,
                            bool parent_edge_is_bridge) {
  ARVY_EXPECTS((parent == id_) == holds_token);
  parent_ = parent;
  holds_token_ = holds_token;
  parent_edge_is_bridge_ = parent_edge_is_bridge;
  next_.reset();
  outstanding_.reset();
  token_serial_ = 0;
  initialized_ = true;
}

Effects ArvyCore::request_token(RequestId request) {
  ARVY_EXPECTS(initialized_);
  ARVY_EXPECTS_MSG(!holds_token_, "requesting while holding the token");
  ARVY_EXPECTS_MSG(!outstanding_.has_value(),
                   "duplicate outstanding request (model violation)");
  // p(v) == v without the token means a request is already in flight, which
  // the precondition above excludes.
  ARVY_ASSERT(parent_ != id_);

  Effects effects;
  FindMessage find;
  find.producer = id_;
  find.sender = id_;
  find.visited = {id_};
  find.request = request;
  // Algorithm 2 plumbing: the message records whether the edge it traverses
  // (v, old p(v)) was the bridge; the requester's fresh self-loop is not.
  find.sender_edge_was_bridge = parent_edge_is_bridge_;
  effects.sends.push_back({parent_, Message{std::move(find)}});

  parent_ = id_;                    // line 3
  parent_edge_is_bridge_ = false;
  outstanding_ = request;
  return effects;
}

Effects ArvyCore::on_message(const Message& message) {
  if (const auto* find = std::get_if<FindMessage>(&message)) {
    return on_find(*find);
  }
  return on_token(std::get<TokenMessage>(message));
}

Effects ArvyCore::on_find(const FindMessage& find) {
  ARVY_EXPECTS(initialized_);
  ARVY_EXPECTS(!find.visited.empty());
  ARVY_EXPECTS(find.visited.front() == find.producer);
  ARVY_EXPECTS(find.visited.back() == find.sender);
  // Theorem 4: a find visits each node at most once; receiving one's own
  // find back would violate Lemma 2's source-component invariant.
  ARVY_ASSERT_MSG(std::find(find.visited.begin(), find.visited.end(), id_) ==
                      find.visited.end(),
                  "find message revisited a node");

  const NodeId old_parent = parent_;            // line 6: f <- p(w)
  const bool old_bridge = parent_edge_is_bridge_;

  PolicyContext ctx;
  ctx.receiver = id_;
  ctx.sender = find.sender;
  ctx.producer = find.producer;
  ctx.visited = find.visited;
  ctx.sender_edge_was_bridge = find.sender_edge_was_bridge;
  ctx.receiver_has_self_loop = old_parent == id_;
  ctx.distances = distances_;
  ctx.rng = rng_;
  const PolicyDecision decision = policy_->choose(ctx);  // line 7
  ARVY_ASSERT_MSG(std::find(find.visited.begin(), find.visited.end(),
                            decision.new_parent) != find.visited.end(),
                  "policy returned a node outside the visited set");
  parent_ = decision.new_parent;
  parent_edge_is_bridge_ = decision.new_edge_is_bridge;

  Effects effects;
  if (old_parent != id_) {  // lines 8-9: forward towards the old parent
    FindMessage forwarded = find;
    forwarded.sender = id_;
    forwarded.visited.push_back(id_);
    forwarded.sender_edge_was_bridge = old_bridge;
    effects.sends.push_back({old_parent, Message{std::move(forwarded)}});
  } else {  // lines 10-14: the find stops here
    // Lemma 3's state machine: {L, N} is unreachable, so the next pointer
    // must be free when a find terminates at a self-loop node.
    ARVY_ASSERT_MSG(!next_.has_value(), "next pointer already occupied");
    next_ = find.producer;  // line 11
    if (holds_token_ && auto_send_token_) {
      send_token_if_waiting(effects);  // line 13
    }
  }
  return effects;
}

Effects ArvyCore::on_token(const TokenMessage& token) {
  ARVY_EXPECTS(initialized_);
  ARVY_ASSERT_MSG(!holds_token_, "duplicate token");
  ARVY_ASSERT_MSG(outstanding_.has_value(),
                  "token arrived at a node with no outstanding request");
  holds_token_ = true;
  token_serial_ = token.serial;

  Effects effects;
  effects.satisfied = outstanding_;  // line 21: use the token
  outstanding_.reset();
  send_token_if_waiting(effects);  // line 22
  return effects;
}

Effects ArvyCore::flush_token() {
  ARVY_EXPECTS_MSG(holds_token_, "flush_token on a node without the token");
  Effects effects;
  send_token_if_waiting(effects);
  return effects;
}

void ArvyCore::send_token_if_waiting(Effects& effects) {
  ARVY_ASSERT(holds_token_);
  if (!next_.has_value()) return;  // line 25: keep the token
  TokenMessage token;
  token.serial = token_serial_ + 1;
  effects.sends.push_back({*next_, Message{token}});  // line 26
  next_.reset();                                      // line 27
  holds_token_ = false;
}

}  // namespace arvy::proto
