// Structured event traces of protocol executions.
//
// The recorder captures the paper's event vocabulary (§5) - request token,
// receive message, send token, receive token - with enough payload to
// replay or pretty-print an execution. It powers the Figure 1 style textual
// traces and gives downstream users a debugging story.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "proto/messages.hpp"
#include "sim/time.hpp"

namespace arvy::proto {

enum class TraceEventKind : unsigned char {
  kRequest,       // node issued RequestToken
  kFindSent,      // find hop entered the network
  kFindReceived,  // find hop delivered (forwarded or terminated)
  kTokenSent,     // token transfer entered the network
  kTokenReceived  // token delivered; request satisfied
};

[[nodiscard]] const char* trace_event_kind_name(TraceEventKind kind) noexcept;

struct TraceEvent {
  TraceEventKind kind{};
  sim::Time at = 0.0;
  NodeId node = graph::kInvalidNode;  // where the event happened
  // Message endpoints for send/receive events.
  NodeId from = graph::kInvalidNode;
  NodeId to = graph::kInvalidNode;
  // The find's producer (request/find events) or kInvalidNode.
  NodeId producer = graph::kInvalidNode;
  RequestId request = 0;
  double distance = 0.0;  // charged message distance (send events)
  // New parent adopted by `node` (find receive events).
  NodeId new_parent = graph::kInvalidNode;
};

class TraceRecorder {
 public:
  void clear() noexcept { events_.clear(); }
  void record(TraceEvent event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  // Events touching one request id, in order.
  [[nodiscard]] std::vector<TraceEvent> for_request(RequestId request) const;

  // Human-readable listing, one line per event.
  void print(std::ostream& os) const;

  // Total distance per event kind (cross-check for the cost accountant).
  [[nodiscard]] double total_distance(TraceEventKind kind) const noexcept;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace arvy::proto
