// The Arvy protocol state machine (Algorithm 1), transport-agnostic.
//
// ArvyCore holds one node's protocol state - the parent pointer p(v), the
// next pointer n(v), token possession, and the ring-bridge flag - and turns
// each of the paper's four event kinds (request token, receive message,
// receive token, send token) into a list of outgoing messages. It performs
// no I/O: the discrete-event engine (proto/engine.hpp) and the threaded
// runtime (runtime/) both drive the same core, so correctness results carry
// across transports.
#pragma once

#include <optional>
#include <vector>

#include "proto/messages.hpp"
#include "proto/policy.hpp"

namespace arvy::proto {

struct Outgoing {
  NodeId to = graph::kInvalidNode;
  Message payload;
};

// The externally visible result of one protocol event.
struct Effects {
  std::vector<Outgoing> sends;
  // Set when the token arrived here and satisfied this node's request.
  std::optional<RequestId> satisfied;
};

class ArvyCore {
 public:
  // `policy` and (optionally) `distances`/`rng` must outlive the core; all
  // nodes of one directory instance share them.
  ArvyCore(NodeId id, NewParentPolicy* policy,
           const graph::DistanceOracle* distances, support::Rng* rng);

  // Installs the initial configuration: parent pointers forming a rooted
  // tree, the token at the root (parent == id), bridge flag per Algorithm 2.
  void initialize(NodeId parent, bool holds_token, bool parent_edge_is_bridge);

  // Re-seats the core on a different object's parked state (the sharded
  // DirectoryService swaps object trees through one engine). Same contract
  // as initialize, but legal on an already-initialized core; resets every
  // per-object field including the token serial.
  void reinitialize(NodeId parent, bool holds_token,
                    bool parent_edge_is_bridge);

  // Lines 1-4: RequestToken. Precondition: the node neither holds the token
  // nor has an outstanding request (the model's one-outstanding rule; the
  // engine queues duplicates instead, see SimEngine).
  [[nodiscard]] Effects request_token(RequestId request);

  // Lines 5-16 / 20-23: dispatch on the message alternative.
  [[nodiscard]] Effects on_message(const Message& message);
  [[nodiscard]] Effects on_find(const FindMessage& find);
  [[nodiscard]] Effects on_token(const TokenMessage& token);

  // The paper's event model (§5) treats "send token" as its own event that
  // may occur any time after the enabling receive; Algorithm 1's pseudocode
  // calls SendToken inline. The core does the latter by default; scripted
  // replays (the Figure 1 trace) disable auto-send and trigger the event
  // explicitly via flush_token. Only the find-at-holder path is deferrable;
  // a received token still forwards inline.
  void set_auto_send_token(bool enabled) noexcept {
    auto_send_token_ = enabled;
  }
  // The standalone SendToken event. Precondition: this node holds the token.
  [[nodiscard]] Effects flush_token();

  // Observers (used by the invariant checker and the space audit).
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] NodeId parent() const noexcept { return parent_; }
  [[nodiscard]] bool has_self_loop() const noexcept { return parent_ == id_; }
  [[nodiscard]] std::optional<NodeId> next() const noexcept { return next_; }
  [[nodiscard]] bool holds_token() const noexcept { return holds_token_; }
  [[nodiscard]] bool parent_edge_is_bridge() const noexcept {
    return parent_edge_is_bridge_;
  }
  [[nodiscard]] std::optional<RequestId> outstanding() const noexcept {
    return outstanding_;
  }
  [[nodiscard]] std::uint64_t token_serial() const noexcept {
    return token_serial_;
  }
  [[nodiscard]] const NewParentPolicy& policy() const noexcept {
    return *policy_;
  }

 private:
  // Lines 24-29: SendToken.
  void send_token_if_waiting(Effects& effects);

  NodeId id_;
  NewParentPolicy* policy_;
  const graph::DistanceOracle* distances_;
  support::Rng* rng_;

  NodeId parent_;
  std::optional<NodeId> next_;
  bool holds_token_ = false;
  bool parent_edge_is_bridge_ = false;
  std::optional<RequestId> outstanding_;
  std::uint64_t token_serial_ = 0;
  bool initialized_ = false;
  bool auto_send_token_ = true;
};

}  // namespace arvy::proto
