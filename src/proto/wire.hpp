// Flat POD wire encoding for protocol messages.
//
// This is the prerequisite artifact for roadmap item 2 (zero-alloc MPSC
// runtime path, socket transport): a message crosses a ring buffer or a
// socket as one contiguous frame - a trivially copyable WireHeader followed
// by `visited_count` raw NodeIds - so transports memcpy instead of chasing
// a variant that owns a heap vector. The msgpod lint rule plus the
// static_asserts below keep every struct in this header POD, which is what
// makes the memcpy legal (and what the generated asserts in messages.hpp
// protect on the rich side).
//
// Scope: in-memory/wire layout for same-architecture endpoints (the
// multi-process socket transport targets one host). Fields are fixed-width
// and the encoder writes the header by memcpy, so the only portability
// caveat is endianness, deliberately out of scope until a cross-machine
// transport exists.
//
// Round-trip contract (pinned by tests/test_wire.cpp):
//   decode(encode(m)) reconstructs m exactly, for both alternatives of
//   proto::Message, including the bridge flag and full visited history.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "proto/messages.hpp"
#include "support/assert.hpp"

namespace arvy::proto::wire {

// Discriminates the frame payload; a byte so the header stays dense.
enum class Kind : std::uint8_t { kFind = 0, kToken = 1 };

// Flag bits (WireHeader::flags).
inline constexpr std::uint8_t kFlagSenderEdgeWasBridge = 0x1;

// The fixed-size frame prefix. A find frame is followed by visited_count
// NodeIds (the visited history in hop order); a token frame by nothing.
struct WireHeader {
  std::uint8_t kind = 0;           // wire::Kind
  std::uint8_t flags = 0;          // kFlag* bits; finds only
  std::uint16_t visited_count = 0;  // trailing NodeIds; finds only
  NodeId producer = graph::kInvalidNode;  // finds only
  NodeId sender = graph::kInvalidNode;    // finds only
  RequestId request = 0;                  // finds only
  std::uint64_t token_serial = 0;         // tokens only
};

static_assert(std::is_trivially_copyable_v<WireHeader>);
static_assert(std::is_trivially_copyable_v<NodeId>);
static_assert(sizeof(WireHeader) == 32,
              "keep the frame prefix dense: two cache lines of visited "
              "NodeIds fit a 160-byte frame");

// Size in bytes of the encoded frame for `m`.
[[nodiscard]] inline std::size_t encoded_size(const Message& m) {
  if (const auto* find = std::get_if<FindMessage>(&m)) {
    return sizeof(WireHeader) + find->visited.size() * sizeof(NodeId);
  }
  return sizeof(WireHeader);
}

// Appends the flat frame for `m` to `out`. Precondition: a find's visited
// history fits the 16-bit count (65535 hops - orders of magnitude above any
// graph this repo runs; the paper bounds visited by one entry per node).
inline void encode(const Message& m, std::vector<std::byte>& out) {
  WireHeader header;
  std::span<const NodeId> trailer;
  if (const auto* find = std::get_if<FindMessage>(&m)) {
    ARVY_EXPECTS_MSG(find->visited.size() <= 0xffff,
                     "visited history exceeds the wire count field");
    header.kind = static_cast<std::uint8_t>(Kind::kFind);
    if (find->sender_edge_was_bridge) header.flags |= kFlagSenderEdgeWasBridge;
    header.visited_count = static_cast<std::uint16_t>(find->visited.size());
    header.producer = find->producer;
    header.sender = find->sender;
    header.request = find->request;
    trailer = find->visited;
  } else {
    header.kind = static_cast<std::uint8_t>(Kind::kToken);
    header.token_serial = std::get<TokenMessage>(m).serial;
  }
  const std::size_t at = out.size();
  out.resize(at + sizeof(WireHeader) + trailer.size() * sizeof(NodeId));
  std::memcpy(out.data() + at, &header, sizeof(WireHeader));
  if (!trailer.empty()) {
    std::memcpy(out.data() + at + sizeof(WireHeader), trailer.data(),
                trailer.size() * sizeof(NodeId));
  }
}

// Decodes one frame. Precondition: `frame` is exactly one encode() result.
[[nodiscard]] inline Message decode(std::span<const std::byte> frame) {
  ARVY_EXPECTS_MSG(frame.size() >= sizeof(WireHeader),
                   "frame shorter than a wire header");
  WireHeader header;
  std::memcpy(&header, frame.data(), sizeof(WireHeader));
  if (header.kind == static_cast<std::uint8_t>(Kind::kToken)) {
    ARVY_EXPECTS(frame.size() == sizeof(WireHeader));
    return TokenMessage{header.token_serial};
  }
  ARVY_EXPECTS(header.kind == static_cast<std::uint8_t>(Kind::kFind));
  const std::size_t trailer_bytes =
      static_cast<std::size_t>(header.visited_count) * sizeof(NodeId);
  ARVY_EXPECTS_MSG(frame.size() == sizeof(WireHeader) + trailer_bytes,
                   "frame length disagrees with the header's visited count");
  FindMessage find;
  find.producer = header.producer;
  find.sender = header.sender;
  find.request = header.request;
  find.sender_edge_was_bridge =
      (header.flags & kFlagSenderEdgeWasBridge) != 0;
  find.visited.resize(static_cast<std::size_t>(header.visited_count));
  if (trailer_bytes > 0) {
    std::memcpy(find.visited.data(), frame.data() + sizeof(WireHeader),
                trailer_bytes);
  }
  return find;
}

}  // namespace arvy::proto::wire
