// Flat POD wire encoding for protocol messages.
//
// This is the prerequisite artifact for roadmap item 2 (zero-alloc MPSC
// runtime path, socket transport): a message crosses a ring buffer or a
// socket as one contiguous frame - a trivially copyable WireHeader followed
// by `visited_count` raw NodeIds - so transports memcpy instead of chasing
// a variant that owns a heap vector. The msgpod lint rule plus the
// static_asserts below keep every struct in this header POD, which is what
// makes the memcpy legal (and what the generated asserts in messages.hpp
// protect on the rich side).
//
// Scope: in-memory/wire layout for same-architecture endpoints (the
// multi-process socket transport targets one host). Fields are fixed-width
// and the encoder writes the header by memcpy, so the only portability
// caveat is endianness, deliberately out of scope until a cross-machine
// transport exists.
//
// Round-trip contract (pinned by tests/test_wire.cpp):
//   decode(encode(m)) reconstructs m exactly, for both alternatives of
//   proto::Message, including the bridge flag and full visited history.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "proto/messages.hpp"
#include "support/assert.hpp"
#include "support/hot.hpp"

namespace arvy::proto::wire {

// Discriminates the frame payload; a byte so the header stays dense.
// kRequest is runtime-only: an external submitter injecting "node, request
// the token" into an actor's ring, with no protocol payload of its own.
enum class Kind : std::uint8_t { kFind = 0, kToken = 1, kRequest = 2 };

// Flag bits (WireHeader::flags).
inline constexpr std::uint8_t kFlagSenderEdgeWasBridge = 0x1;

// The fixed-size frame prefix. A find frame is followed by visited_count
// NodeIds (the visited history in hop order); a token frame by nothing.
struct WireHeader {
  std::uint8_t kind = 0;           // wire::Kind
  std::uint8_t flags = 0;          // kFlag* bits; finds only
  std::uint16_t visited_count = 0;  // trailing NodeIds; finds only
  NodeId producer = graph::kInvalidNode;  // finds only
  NodeId sender = graph::kInvalidNode;    // finds only
  RequestId request = 0;                  // finds only
  std::uint64_t token_serial = 0;         // tokens only
};

static_assert(std::is_trivially_copyable_v<WireHeader>);
static_assert(std::is_trivially_copyable_v<NodeId>);
static_assert(sizeof(WireHeader) == 32,
              "keep the frame prefix dense: two cache lines of visited "
              "NodeIds fit a 160-byte frame");

// Size in bytes of the encoded frame for `m`.
[[nodiscard]] inline std::size_t encoded_size(const Message& m) {
  if (const auto* find = std::get_if<FindMessage>(&m)) {
    return sizeof(WireHeader) + find->visited.size() * sizeof(NodeId);
  }
  return sizeof(WireHeader);
}

// Appends the flat frame for `m` to `out`. Precondition: a find's visited
// history fits the 16-bit count (65535 hops - orders of magnitude above any
// graph this repo runs; the paper bounds visited by one entry per node).
inline void encode(const Message& m, std::vector<std::byte>& out) {
  WireHeader header;
  std::span<const NodeId> trailer;
  if (const auto* find = std::get_if<FindMessage>(&m)) {
    ARVY_EXPECTS_MSG(find->visited.size() <= 0xffff,
                     "visited history exceeds the wire count field");
    header.kind = static_cast<std::uint8_t>(Kind::kFind);
    if (find->sender_edge_was_bridge) header.flags |= kFlagSenderEdgeWasBridge;
    header.visited_count = static_cast<std::uint16_t>(find->visited.size());
    header.producer = find->producer;
    header.sender = find->sender;
    header.request = find->request;
    trailer = find->visited;
  } else {
    header.kind = static_cast<std::uint8_t>(Kind::kToken);
    header.token_serial = std::get<TokenMessage>(m).serial;
  }
  const std::size_t at = out.size();
  out.resize(at + sizeof(WireHeader) + trailer.size() * sizeof(NodeId));
  std::memcpy(out.data() + at, &header, sizeof(WireHeader));
  if (!trailer.empty()) {
    std::memcpy(out.data() + at + sizeof(WireHeader), trailer.data(),
                trailer.size() * sizeof(NodeId));
  }
}

// Decodes one frame. Precondition: `frame` is exactly one encode() result.
[[nodiscard]] inline Message decode(std::span<const std::byte> frame) {
  ARVY_EXPECTS_MSG(frame.size() >= sizeof(WireHeader),
                   "frame shorter than a wire header");
  WireHeader header;
  std::memcpy(&header, frame.data(), sizeof(WireHeader));
  if (header.kind == static_cast<std::uint8_t>(Kind::kToken)) {
    ARVY_EXPECTS(frame.size() == sizeof(WireHeader));
    return TokenMessage{header.token_serial};
  }
  ARVY_EXPECTS(header.kind == static_cast<std::uint8_t>(Kind::kFind));
  const std::size_t trailer_bytes =
      static_cast<std::size_t>(header.visited_count) * sizeof(NodeId);
  ARVY_EXPECTS_MSG(frame.size() == sizeof(WireHeader) + trailer_bytes,
                   "frame length disagrees with the header's visited count");
  FindMessage find;
  find.producer = header.producer;
  find.sender = header.sender;
  find.request = header.request;
  find.sender_edge_was_bridge =
      (header.flags & kFlagSenderEdgeWasBridge) != 0;
  find.visited.resize(static_cast<std::size_t>(header.visited_count));
  if (trailer_bytes > 0) {
    std::memcpy(find.visited.data(), frame.data() + sizeof(WireHeader),
                trailer_bytes);
  }
  return find;
}

// ---------------------------------------------------------------------------
// Ring envelopes: the runtime's in-slot frame format.
//
// A RingMailbox slot holds exactly one envelope: an EnvelopeHeader (the wire
// frame prefix plus the fault layer's dedup id) followed by the find's
// visited trailer, same layout as encode() above. The encode/decode pair
// below is the raw-pointer, zero-alloc face of that format - it writes into
// a preallocated slot and reads back a *view* whose visited span aliases the
// slot bytes, so the actor-to-actor path never touches the heap. These
// functions are ARVY_HOT: tools/arvy_lint rejects any allocation, lock,
// throw, or log that sneaks into them.
// ---------------------------------------------------------------------------

// Slot frame prefix. dedup is the fault injector's duplicate-collapse id
// (0 = not a tracked duplicate), carried out-of-band of the protocol frame.
struct EnvelopeHeader {
  std::uint64_t dedup = 0;
  WireHeader frame;
};

static_assert(std::is_trivially_copyable_v<EnvelopeHeader>);
static_assert(sizeof(EnvelopeHeader) == 40,
              "dedup word plus the 32-byte wire frame prefix");

// Decoded, non-owning read of one envelope. `visited` aliases the slot the
// envelope was decoded from: valid only until the ring recycles that slot
// (i.e. within the consumer's current batch).
struct EnvelopeView {
  Kind kind = Kind::kRequest;
  std::uint64_t dedup = 0;
  RequestId request = 0;       // kRequest, kFind
  NodeId producer = graph::kInvalidNode;  // kFind
  NodeId sender = graph::kInvalidNode;    // kFind
  bool sender_edge_was_bridge = false;    // kFind
  std::uint64_t token_serial = 0;         // kToken
  std::span<const NodeId> visited;        // kFind
};

static_assert(std::is_trivially_copyable_v<EnvelopeView>);

// Bytes one envelope occupies for a find with `visited_count` entries
// (tokens and requests carry no trailer, so this is also the upper bound
// used to size ring slots: envelope_bytes(max visited) = node count).
[[nodiscard]] constexpr std::size_t envelope_bytes(
    std::size_t visited_count) noexcept {
  return sizeof(EnvelopeHeader) + visited_count * sizeof(NodeId);
}

// Writes the envelope for protocol message `m` into `out` (a ring slot of
// at least envelope_bytes(m's visited size) bytes). Returns bytes written.
ARVY_HOT inline std::size_t encode_envelope(const Message& m,
                                            std::uint64_t dedup,
                                            std::byte* out) {
  EnvelopeHeader header;
  header.dedup = dedup;
  const NodeId* trailer = nullptr;
  std::size_t trailer_count = 0;
  if (const auto* find = std::get_if<FindMessage>(&m)) {
    ARVY_EXPECTS_MSG(find->visited.size() <= 0xffff,
                     "visited history exceeds the wire count field");
    header.frame.kind = static_cast<std::uint8_t>(Kind::kFind);
    if (find->sender_edge_was_bridge) {
      header.frame.flags |= kFlagSenderEdgeWasBridge;
    }
    header.frame.visited_count =
        static_cast<std::uint16_t>(find->visited.size());
    header.frame.producer = find->producer;
    header.frame.sender = find->sender;
    header.frame.request = find->request;
    trailer = find->visited.data();
    trailer_count = find->visited.size();
  } else {
    header.frame.kind = static_cast<std::uint8_t>(Kind::kToken);
    header.frame.token_serial = std::get<TokenMessage>(m).serial;
  }
  std::memcpy(out, &header, sizeof(EnvelopeHeader));
  if (trailer_count > 0) {
    std::memcpy(out + sizeof(EnvelopeHeader), trailer,
                trailer_count * sizeof(NodeId));
  }
  return envelope_bytes(trailer_count);
}

// Writes a kRequest envelope ("this actor requests the token for `request`")
// into `out`. Returns bytes written (always sizeof(EnvelopeHeader)).
ARVY_HOT inline std::size_t encode_request_envelope(RequestId request,
                                                    std::byte* out) {
  EnvelopeHeader header;
  header.frame.kind = static_cast<std::uint8_t>(Kind::kRequest);
  header.frame.request = request;
  std::memcpy(out, &header, sizeof(EnvelopeHeader));
  return sizeof(EnvelopeHeader);
}

// Reads the envelope in `slot` without copying the trailer: the returned
// view's visited span points into `slot` (slots are 8-byte aligned and the
// 40-byte header keeps the trailer NodeId-aligned).
ARVY_HOT [[nodiscard]] inline EnvelopeView decode_envelope(
    const std::byte* slot) {
  EnvelopeHeader header;
  std::memcpy(&header, slot, sizeof(EnvelopeHeader));
  EnvelopeView view;
  view.dedup = header.dedup;
  if (header.frame.kind == static_cast<std::uint8_t>(Kind::kToken)) {
    view.kind = Kind::kToken;
    view.token_serial = header.frame.token_serial;
    return view;
  }
  if (header.frame.kind == static_cast<std::uint8_t>(Kind::kRequest)) {
    view.kind = Kind::kRequest;
    view.request = header.frame.request;
    return view;
  }
  ARVY_EXPECTS(header.frame.kind == static_cast<std::uint8_t>(Kind::kFind));
  view.kind = Kind::kFind;
  view.request = header.frame.request;
  view.producer = header.frame.producer;
  view.sender = header.frame.sender;
  view.sender_edge_was_bridge =
      (header.frame.flags & kFlagSenderEdgeWasBridge) != 0;
  view.visited = std::span<const NodeId>(
      reinterpret_cast<const NodeId*>(slot + sizeof(EnvelopeHeader)),
      static_cast<std::size_t>(header.frame.visited_count));
  return view;
}

}  // namespace arvy::proto::wire
