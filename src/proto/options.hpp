// The one composable options surface for every directory facade.
//
// Directory (sim), LiveDirectory (threaded) and DirectoryService (sharded
// multi-object) all accept the same `arvy::Options` aggregate; each facade
// reads the fields meaningful for its transport and ignores the rest. The
// historical per-facade structs survive as thin aliases for one release:
//
//   using DirectoryOptions = Options;          // since PR 10
//   using LiveOptions = Options;               // since PR 10
//   namespace runtime { using ActorOptions = arvy::Options; }
//
// Field guide (all designated-init friendly; order matters for designated
// initializers, so protocol fields keep their historical DirectoryOptions
// order and the transport knobs are appended after them - every pre-PR-10
// initializer keeps compiling unchanged):
//   .policy      NewParent policy (Arrow, Ivy, ring bridge, ...).
//   .kback_k     k for PolicyKind::kKBack only.
//   .discipline  sim-only: delivery order (timed / fifo / lifo / random).
//   .seed        master seed for delivery, policy tie-breaks and faults.
//   .delay       sim-only: DelayModel for Discipline::kTimed (cloned;
//                default distance-proportional). Shared_ptr so options stay
//                copyable: `.delay = arvy::sim::make_uniform_delay(1, 5)`.
//   .faults      declarative fault schedule (faults/fault_plan.hpp); the
//                default empty plan is a strict no-op.
//   .retry       retransmission policy re-driving dropped messages.
//   .initial     initial tree; when unset the directory builds a
//                shortest-path tree from the metrically central node, and
//                for PolicyKind::kBridge on canonical rings the Algorithm 2
//                split is used.
//   .record_schedule  sim-only: record the delivery order for goldens and
//                kScripted replay (read via inspect().bus().schedule()).
//   .max_jitter  threaded-only: random sender-side sleep in [0, max_jitter]
//                per message; 0 disables.
//   .reorder_mailboxes  threaded-only: consume each drained ring batch in
//                random order (full asynchrony).
//   .workers     threaded-only: worker threads the node actors are
//                partitioned across. 0 = one worker per node (legacy
//                thread-per-node, maximal interleaving); 1 = sequential and
//                deterministic for a fixed submission order. DirectoryService
//                ignores this: its worker count IS its shard count.
//   .batch_size  threaded-only: max ring slots drained per visit.
//   .ring_capacity  threaded-only: ring slots per mailbox (rounded up to a
//                power of two).
//   .fault_time_unit  threaded-only: wall-time length of one sim-time unit
//                for the fault schedule.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "faults/fault_plan.hpp"
#include "proto/init.hpp"
#include "proto/policies.hpp"
#include "sim/delivery.hpp"

namespace arvy {

struct Options {
  // --- protocol (every facade) ---------------------------------------------
  proto::PolicyKind policy = proto::PolicyKind::kIvy;
  std::size_t kback_k = 2;  // only for PolicyKind::kKBack
  sim::Discipline discipline = sim::Discipline::kTimed;
  std::uint64_t seed = 1;
  // Shared so Options stays copyable; cloned into each engine.
  std::shared_ptr<sim::DelayModel> delay;
  faults::FaultPlan faults;
  faults::RetryPolicy retry;
  std::optional<proto::InitialConfig> initial;
  bool record_schedule = false;
  // --- threaded transport (LiveDirectory / DirectoryService kLive) ---------
  std::chrono::microseconds max_jitter{0};
  bool reorder_mailboxes = false;
  std::size_t workers = 0;
  std::size_t batch_size = 16;
  std::size_t ring_capacity = 256;
  std::chrono::microseconds fault_time_unit{200};
};

// Historical names, kept as aliases for one release (see the header comment).
using DirectoryOptions = Options;
using LiveOptions = Options;

}  // namespace arvy
