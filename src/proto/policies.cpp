#include "proto/policies.hpp"

#include <array>
#include <limits>

#include "support/assert.hpp"

namespace arvy::proto {

namespace {

// Arvy with NewParent = sender: only edge directions change on the current
// path, never the edge set - the original Arrow protocol.
class ArrowPolicy final : public NewParentPolicy {
 public:
  PolicyDecision choose(const PolicyContext& ctx) override {
    return {ctx.sender, false};
  }
  std::string_view name() const noexcept override { return "arrow"; }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<ArrowPolicy>(*this);
  }
};

// Arvy with NewParent = producer: every visited node re-points at the
// requester - the original Ivy protocol (path reversal / short-cutting).
class IvyPolicy final : public NewParentPolicy {
 public:
  PolicyDecision choose(const PolicyContext& ctx) override {
    return {ctx.producer, false};
  }
  std::string_view name() const noexcept override { return "ivy"; }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<IvyPolicy>(*this);
  }
};

// Algorithm 2: if the find crossed the bridge, short-cut to the producer and
// declare the new parent edge the bridge; otherwise behave like Arrow. Keeps
// the two semicircles of a ring stitched by a single long-range pointer.
class BridgePolicy final : public NewParentPolicy {
 public:
  PolicyDecision choose(const PolicyContext& ctx) override {
    if (ctx.sender_edge_was_bridge) {
      return {ctx.producer, true};
    }
    return {ctx.sender, false};
  }
  std::string_view name() const noexcept override { return "bridge"; }
  std::size_t node_state_words() const noexcept override {
    return 1;  // the per-node "my parent edge is the bridge" flag
  }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<BridgePolicy>(*this);
  }
};

// Uniformly random member of the visited set.
class RandomPolicy final : public NewParentPolicy {
 public:
  PolicyDecision choose(const PolicyContext& ctx) override {
    ARVY_EXPECTS(ctx.rng != nullptr);
    ARVY_EXPECTS(!ctx.visited.empty());
    return {ctx.rng->pick(ctx.visited), false};
  }
  std::string_view name() const noexcept override { return "random"; }
  MessageNeeds message_needs() const noexcept override {
    return MessageNeeds::kFullPath;
  }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<RandomPolicy>(*this);
  }
};

// Middle of the visited path: repeated passes halve chain lengths, a
// deterministic compromise between Arrow (no short-cutting) and Ivy (full
// short-cutting).
class MidpointPolicy final : public NewParentPolicy {
 public:
  PolicyDecision choose(const PolicyContext& ctx) override {
    ARVY_EXPECTS(!ctx.visited.empty());
    return {ctx.visited[ctx.visited.size() / 2], false};
  }
  std::string_view name() const noexcept override { return "midpoint"; }
  MessageNeeds message_needs() const noexcept override {
    return MessageNeeds::kFullPath;
  }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<MidpointPolicy>(*this);
  }
};

// Visited node metrically closest to the receiver: greedy locality.
class ClosestPolicy final : public NewParentPolicy {
 public:
  PolicyDecision choose(const PolicyContext& ctx) override {
    ARVY_EXPECTS_MSG(ctx.distances != nullptr,
                     "closest policy needs a distance oracle");
    ARVY_EXPECTS(!ctx.visited.empty());
    NodeId best = ctx.visited.front();
    double best_dist = std::numeric_limits<double>::infinity();
    for (NodeId candidate : ctx.visited) {
      const double d = ctx.distances->distance(ctx.receiver, candidate);
      if (d < best_dist) {
        best_dist = d;
        best = candidate;
      }
    }
    return {best, false};
  }
  std::string_view name() const noexcept override { return "closest"; }
  MessageNeeds message_needs() const noexcept override {
    return MessageNeeds::kFullPath;
  }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<ClosestPolicy>(*this);
  }
};

// k hops back along the visited path (k = 1 is Arrow; large k approaches
// Ivy). Needs only the last k entries of the path in a real deployment.
class KBackPolicy final : public NewParentPolicy {
 public:
  explicit KBackPolicy(std::size_t k) : k_(k) { ARVY_EXPECTS(k >= 1); }
  PolicyDecision choose(const PolicyContext& ctx) override {
    ARVY_EXPECTS(!ctx.visited.empty());
    const std::size_t last = ctx.visited.size() - 1;
    const std::size_t back = k_ - 1 > last ? 0 : last - (k_ - 1);
    return {ctx.visited[back], false};
  }
  std::string_view name() const noexcept override { return "kback"; }
  MessageNeeds message_needs() const noexcept override {
    return MessageNeeds::kFullPath;  // bounded by k, conservatively reported
  }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<KBackPolicy>(*this);
  }

 private:
  std::size_t k_;
};

// The Arrow<->Ivy dial: index round(lambda * (|visited| - 1)) into the path.
class SpectrumPolicy final : public NewParentPolicy {
 public:
  explicit SpectrumPolicy(double lambda) : lambda_(lambda) {
    ARVY_EXPECTS(lambda >= 0.0 && lambda <= 1.0);
  }
  PolicyDecision choose(const PolicyContext& ctx) override {
    ARVY_EXPECTS(!ctx.visited.empty());
    const double position =
        lambda_ * static_cast<double>(ctx.visited.size() - 1);
    const auto index = static_cast<std::size_t>(position + 0.5);
    return {ctx.visited[index], false};
  }
  std::string_view name() const noexcept override { return "spectrum"; }
  MessageNeeds message_needs() const noexcept override {
    return MessageNeeds::kFullPath;
  }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<SpectrumPolicy>(*this);
  }

 private:
  double lambda_;
};

constexpr std::array<PolicyKind, 8> kAllKinds = {
    PolicyKind::kArrow,  PolicyKind::kIvy,      PolicyKind::kBridge,
    PolicyKind::kRandom, PolicyKind::kMidpoint, PolicyKind::kClosest,
    PolicyKind::kKBack,  PolicyKind::kSpectrum,
};

}  // namespace

std::string_view policy_kind_name(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kArrow:
      return "arrow";
    case PolicyKind::kIvy:
      return "ivy";
    case PolicyKind::kBridge:
      return "bridge";
    case PolicyKind::kRandom:
      return "random";
    case PolicyKind::kMidpoint:
      return "midpoint";
    case PolicyKind::kClosest:
      return "closest";
    case PolicyKind::kKBack:
      return "kback";
    case PolicyKind::kSpectrum:
      return "spectrum";
  }
  return "unknown";
}

std::unique_ptr<NewParentPolicy> make_policy(PolicyKind kind, std::size_t k) {
  switch (kind) {
    case PolicyKind::kArrow:
      return std::make_unique<ArrowPolicy>();
    case PolicyKind::kIvy:
      return std::make_unique<IvyPolicy>();
    case PolicyKind::kBridge:
      return std::make_unique<BridgePolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
    case PolicyKind::kMidpoint:
      return std::make_unique<MidpointPolicy>();
    case PolicyKind::kClosest:
      return std::make_unique<ClosestPolicy>();
    case PolicyKind::kKBack:
      return std::make_unique<KBackPolicy>(k);
    case PolicyKind::kSpectrum:
      return std::make_unique<SpectrumPolicy>(0.5);
  }
  ARVY_UNREACHABLE("bad policy kind");
}

std::unique_ptr<NewParentPolicy> make_spectrum_policy(double lambda) {
  return std::make_unique<SpectrumPolicy>(lambda);
}

std::span<const PolicyKind> all_policy_kinds() noexcept { return kAllKinds; }

}  // namespace arvy::proto
