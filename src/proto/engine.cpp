#include "proto/engine.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/hot.hpp"

namespace arvy::proto {

namespace {

sim::MessageBus<Message>::Options bus_options(SimEngine::Options& options) {
  sim::MessageBus<Message>::Options out;
  out.discipline = options.discipline;
  out.seed = options.seed;
  out.delay = std::move(options.delay);
  out.script = std::move(options.script);
  out.record_schedule = options.record_schedule;
  return out;
}

}  // namespace

SimEngine::SimEngine(const graph::Graph& g, const InitialConfig& init,
                     const NewParentPolicy& policy, Options options)
    : graph_(&g),
      oracle_(g),
      policy_(policy.clone()),
      policy_rng_(options.seed ^ 0x9e3779b97f4a7c15ULL),
      bus_(bus_options(options)) {
  const bool auto_send_token = options.auto_send_token;
  record_trace_ = options.record_trace;
  ARVY_EXPECTS(init.node_count() == g.node_count());
  ARVY_EXPECTS_MSG(init.is_valid_tree(),
                   "initial parent pointers must form a rooted tree");
  ARVY_EXPECTS(g.is_connected());
  cores_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    cores_.emplace_back(v, policy_.get(), &oracle_, &policy_rng_);
    cores_.back().initialize(init.parent[v], v == init.root,
                             init.parent_edge_is_bridge[v]);
    cores_.back().set_auto_send_token(auto_send_token);
  }
  queued_.resize(g.node_count());
  bus_.set_handler([this](const sim::MessageBus<Message>::InFlight& entry) {
    on_delivery(entry);
  });
  if (!options.faults.empty()) {
    // The injector owns its own RNG stream, so fault draws never perturb
    // the bus's delivery-order draws; an empty plan installs nothing at all
    // (the strict-no-op contract guarded by test_golden_schedule).
    injector_ = std::make_unique<faults::FaultInjector>(options.faults,
                                                        options.retry);
    bus_.set_send_filter([this](NodeId from, NodeId to, const Message& payload,
                                sim::Time now, double distance) {
      faults::MessageKind kind = faults::MessageKind::kToken;
      RequestId request = 0;
      if (const auto* find = std::get_if<FindMessage>(&payload)) {
        kind = faults::MessageKind::kFind;
        request = find->request;
      }
      const faults::Verdict verdict =
          injector_->on_send(kind, from, to, now, distance, request);
      return sim::SendVerdict{verdict.lost, verdict.extra_delay,
                              verdict.duplicates};
    });
  }
}

RequestId SimEngine::submit(NodeId v) {
  ARVY_EXPECTS(v < cores_.size());
  const RequestId id = static_cast<RequestId>(requests_.size()) + 1;
  requests_.push_back({id, v, bus_.now(), std::nullopt, 0});
  if (record_trace_) {
    TraceEvent event;
    event.kind = TraceEventKind::kRequest;
    event.at = bus_.now();
    event.node = v;
    event.producer = v;
    event.request = id;
    trace_.record(event);
  }
  ArvyCore& core = cores_[v];
  if (core.holds_token()) {
    // The holder's request is satisfied on the spot at zero cost; the model
    // only forbids *duplicate outstanding* requests.
    mark_satisfied(requests_.back());
  } else {
    dispatch(v, core.request_token(id));
  }
  if (post_event_hook_) post_event_hook_(*this);
  return id;
}

RequestId SimEngine::submit_queued(NodeId v) {
  ARVY_EXPECTS(v < cores_.size());
  if (!cores_[v].outstanding().has_value()) {
    return submit(v);
  }
  // The node already has a find chasing the token; park this request
  // locally. It costs nothing extra: when the token arrives it satisfies
  // the whole queue "in one fell swoop" (§3).
  const RequestId id = static_cast<RequestId>(requests_.size()) + 1;
  requests_.push_back({id, v, bus_.now(), std::nullopt, 0});
  if (record_trace_) {
    TraceEvent event;
    event.kind = TraceEventKind::kRequest;
    event.at = bus_.now();
    event.node = v;
    event.producer = v;
    event.request = id;
    trace_.record(event);
  }
  queued_[v].push_back(id);
  if (post_event_hook_) post_event_hook_(*this);
  return id;
}

// Hot-path discipline (lint `hotpath`): the per-event engine paths below
// are ARVY_HOT - no allocation, locking, throwing, or logging. dispatch()
// and on_delivery() stay un-annotated on purpose: they send (arena push)
// and record traces; item 2's flat encoding is what shrinks them.
ARVY_HOT bool SimEngine::step() { return bus_.step(); }

void SimEngine::flush_token(NodeId v) {
  ARVY_EXPECTS(v < cores_.size());
  dispatch(v, cores_[v].flush_token());
  if (post_event_hook_) post_event_hook_(*this);
}

void SimEngine::run_until_idle() { bus_.run_until_idle(); }

void SimEngine::run_sequential(std::span<const NodeId> sequence) {
  for (NodeId v : sequence) {
    // Under fault injection a permanently lost find can leave a node's
    // request outstanding forever; queueing behind it (§3's remark) keeps
    // the one-outstanding-per-node rule intact, and the quiescence assert
    // only excuses requests a recorded permanent loss can explain.
    const RequestId id = injector_ ? submit_queued(v) : submit(v);
    run_until_idle();
    ARVY_ASSERT_MSG(requests_[id - 1].satisfied_at.has_value() ||
                        (injector_ && injector_->stats().permanent_losses > 0),
                    "sequential request left unsatisfied at quiescence");
  }
}

void SimEngine::run_concurrent(std::span<const TimedRequest> requests) {
  ARVY_EXPECTS(std::is_sorted(
      requests.begin(), requests.end(),
      [](const TimedRequest& a, const TimedRequest& b) { return a.at < b.at; }));
  ARVY_EXPECTS_MSG(bus_.now() == 0.0 || requests.empty() ||
                       requests.front().at >= bus_.now(),
                   "request times must not precede the current clock");
  for (const TimedRequest& request : requests) {
    // Deliver everything due before this arrival: under kTimed the bus pops
    // in deliver_at order, so stepping while the earliest pending delivery
    // is at or before the arrival is time-faithful. next_deliver_at() is
    // +infinity when idle, which also terminates the loop.
    while (bus_.next_deliver_at() <= request.at) bus_.step();
    if (bus_.now() < request.at) bus_.advance_time(request.at);
    // Fault delays stretch satisfaction times, so a timed workload can
    // re-request at a node whose previous request is still in flight;
    // queueing preserves the model's rule instead of violating it.
    if (injector_) {
      submit_queued(request.node);
    } else {
      submit(request.node);
    }
  }
  run_until_idle();
}

bool SimEngine::park_state(InitialConfig& out) const {
  ARVY_EXPECTS_MSG(bus_.idle(), "park_state requires a quiescent bus");
  const std::size_t n = cores_.size();
  out.parent.resize(n);
  out.parent_edge_is_bridge.assign(n, false);
  out.root = graph::kInvalidNode;
  bool resumable = true;
  for (NodeId v = 0; v < n; ++v) {
    const ArvyCore& core = cores_[v];
    out.parent[v] = core.parent();
    out.parent_edge_is_bridge[v] = core.parent_edge_is_bridge();
    if (core.holds_token()) out.root = v;
    // A node still waiting on a permanently lost find has p(v) == v without
    // the token - not a tree; the object must be re-seeded.
    if (core.outstanding().has_value()) resumable = false;
  }
  return resumable && out.root != graph::kInvalidNode && out.is_valid_tree();
}

void SimEngine::adopt_state(const InitialConfig& next, std::uint64_t seed) {
  ARVY_EXPECTS_MSG(bus_.idle(), "adopt_state requires a quiescent bus");
  ARVY_EXPECTS(next.node_count() == cores_.size());
  ARVY_EXPECTS_MSG(next.is_valid_tree(),
                   "adopted parent pointers must form a rooted tree");
  for (NodeId v = 0; v < cores_.size(); ++v) {
    cores_[v].reinitialize(next.parent[v], v == next.root,
                           next.parent_edge_is_bridge[v]);
  }
  for (auto& queue : queued_) queue.clear();
  requests_.clear();
  costs_ = {};
  satisfied_count_ = 0;
  // Same mixing as the constructor: adopting with the seed a standalone
  // engine was constructed with replays its policy draws exactly.
  policy_rng_ = support::Rng(seed ^ 0x9e3779b97f4a7c15ULL);
}

std::size_t SimEngine::unsatisfied_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(requests_.begin(), requests_.end(), [](const auto& r) {
        return !r.satisfied_at.has_value();
      }));
}

ARVY_HOT const ArvyCore& SimEngine::node(NodeId v) const {
  ARVY_EXPECTS(v < cores_.size());
  return cores_[v];
}

ARVY_HOT std::optional<NodeId> SimEngine::token_holder() const {
  for (const ArvyCore& core : cores_) {
    if (core.holds_token()) return core.id();
  }
  return std::nullopt;
}

ARVY_HOT void SimEngine::mark_satisfied(RequestRecord& record) {
  record.satisfied_at = bus_.now();
  record.satisfaction_index = ++satisfied_count_;
  if (satisfied_hook_) satisfied_hook_(record);
}

void SimEngine::dispatch(NodeId from, Effects&& effects) {
  if (effects.satisfied.has_value()) {
    auto& record = requests_.at(*effects.satisfied - 1);
    ARVY_ASSERT_MSG(!record.satisfied_at.has_value(),
                    "request satisfied twice");
    ARVY_ASSERT(record.node == from);
    mark_satisfied(record);
    // One fell swoop (§3): every request queued at this node is satisfied
    // by the same token visit.
    for (RequestId queued : queued_[from]) {
      auto& waiting = requests_.at(queued - 1);
      ARVY_ASSERT(!waiting.satisfied_at.has_value());
      mark_satisfied(waiting);
    }
    queued_[from].clear();
  }
  for (Outgoing& out : effects.sends) {
    const double distance = oracle_.distance(from, out.to);
    if (const auto* find = std::get_if<FindMessage>(&out.payload)) {
      costs_.find_distance += distance;
      ++costs_.find_messages;
      costs_.max_visited_length =
          std::max(costs_.max_visited_length, find->visited.size());
      if (record_trace_) {
        TraceEvent event;
        event.kind = TraceEventKind::kFindSent;
        event.at = bus_.now();
        event.node = from;
        event.from = from;
        event.to = out.to;
        event.producer = find->producer;
        event.request = find->request;
        event.distance = distance;
        trace_.record(event);
      }
    } else {
      costs_.token_distance += distance;
      ++costs_.token_messages;
      if (record_trace_) {
        TraceEvent event;
        event.kind = TraceEventKind::kTokenSent;
        event.at = bus_.now();
        event.node = from;
        event.from = from;
        event.to = out.to;
        event.distance = distance;
        trace_.record(event);
      }
    }
    bus_.send(from, out.to, std::move(out.payload), distance);
  }
}

void SimEngine::on_delivery(const sim::MessageBus<Message>::InFlight& entry) {
  if (message_hook_) message_hook_(entry);
  ArvyCore& core = cores_.at(entry.to);
  Effects effects;
  if (delivery_mutator_) {
    // Bug-seeding seam: the mutated copy is what the core processes (and
    // what its forwarded sends inherit); the wire entry stays untouched.
    Message mutated = entry.payload;
    delivery_mutator_(mutated);
    effects = core.on_message(mutated);
  } else {
    effects = core.on_message(entry.payload);
  }
  if (record_trace_) {
    TraceEvent event;
    event.at = bus_.now();
    event.node = entry.to;
    event.from = entry.from;
    event.to = entry.to;
    if (const auto* find = std::get_if<FindMessage>(&entry.payload)) {
      event.kind = TraceEventKind::kFindReceived;
      event.producer = find->producer;
      event.request = find->request;
      event.new_parent = core.parent();
    } else {
      event.kind = TraceEventKind::kTokenReceived;
      if (effects.satisfied.has_value()) event.request = *effects.satisfied;
    }
    trace_.record(event);
  }
  dispatch(entry.to, std::move(effects));
  if (post_event_hook_) post_event_hook_(*this);
}

}  // namespace arvy::proto
