// Discrete-event execution engine for the Arvy protocol family.
//
// Owns one ArvyCore per node, a MessageBus carrying proto::Message, and the
// cost accountant. Charges every message with its shortest-path distance
// (the paper's cost measure: "total distance traversed by the messages").
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "proto/core.hpp"
#include "proto/init.hpp"
#include "proto/messages.hpp"
#include "proto/policy.hpp"
#include "proto/trace.hpp"
#include "sim/bus.hpp"

namespace arvy::proto {

// Distance-weighted message cost, split by message kind. The paper's
// Theorem 6 accounting covers the find traffic; E14 also reports totals
// including token movement.
struct CostAccount {
  double find_distance = 0.0;
  double token_distance = 0.0;
  std::uint64_t find_messages = 0;
  std::uint64_t token_messages = 0;
  std::size_t max_visited_length = 0;  // longest find path seen (space audit)

  [[nodiscard]] double total_distance() const noexcept {
    return find_distance + token_distance;
  }
};

struct RequestRecord {
  RequestId id = 0;
  NodeId node = graph::kInvalidNode;
  sim::Time submitted = 0.0;
  std::optional<sim::Time> satisfied_at;
  // Position in the global satisfaction order (1-based; 0 = unsatisfied).
  std::uint64_t satisfaction_index = 0;
};

// A timed request arrival for run_concurrent (§3's concurrent semantics).
struct TimedRequest {
  NodeId node = graph::kInvalidNode;
  sim::Time at = 0.0;
};

struct EngineOptions {
  sim::Discipline discipline = sim::Discipline::kTimed;
  std::unique_ptr<sim::DelayModel> delay;  // default: distance-proportional
  std::uint64_t seed = 1;
  // Declarative fault schedule; the default (empty) plan is a strict no-op:
  // no injector is constructed and the bus send path is untouched.
  faults::FaultPlan faults;
  // How dropped transmissions are re-driven; only consulted when `faults`
  // declares drops.
  faults::RetryPolicy retry;
  // When false, a find terminating at the token holder parks in n(w) and the
  // token leaves only on an explicit flush_token(w) - the paper's separate
  // "send token" event, used by scripted replays.
  bool auto_send_token = true;
  // Record a structured TraceEvent per protocol event (costs a little memory
  // on long runs; off by default).
  bool record_trace = false;
  // Deterministic replay: record the delivery schedule, or replay one under
  // sim::Discipline::kScripted (see sim/bus.hpp).
  bool record_schedule = false;
  sim::Schedule script;
};

class SimEngine {
 public:
  using Options = EngineOptions;

  // The policy is cloned; the graph must outlive the engine.
  SimEngine(const graph::Graph& g, const InitialConfig& init,
            const NewParentPolicy& policy, Options options = {});

  // Injects a request at node v and processes the RequestToken event
  // immediately (it is a local event). If v already holds the token the
  // request is trivially satisfied at zero cost. Returns the request id.
  // Precondition: v has no outstanding request (the model's rule, §3).
  RequestId submit(NodeId v);

  // Like submit, but implements §3's remark for nodes with an outstanding
  // request: "letting the further requests wait until the token arrives, at
  // which point all outstanding requests can be satisfied in one fell
  // swoop". Queued requests are satisfied together with the in-flight one.
  RequestId submit_queued(NodeId v);

  // Delivers one pending message; false when the network is quiet.
  bool step();
  void run_until_idle();

  // Fires the standalone SendToken event at v (deferred-token mode).
  void flush_token(NodeId v);

  // Sequential semantics (§6): each request is issued only after the
  // previous one is satisfied.
  void run_sequential(std::span<const NodeId> sequence);

  // Concurrent semantics under the timed discipline: requests fire at their
  // given times while earlier messages are still in flight.
  using TimedRequest = proto::TimedRequest;
  void run_concurrent(std::span<const TimedRequest> requests);

  // --- Object state swap (the DirectoryService shard seam) -----------------
  // A shard engine is REUSED across the many objects it owns: the expensive
  // per-engine state (distance oracle, bus, policy clone) is shard
  // infrastructure, while the per-object protocol state (parent pointers,
  // bridge flags, token position) is parked into a compact InitialConfig
  // between bursts and adopted back before the next one.
  //
  // park_state snapshots the current tree into `out` (vectors reused, no
  // shrink). Precondition: the bus is idle. Returns false when the parked
  // state is NOT resumable - the token was permanently lost to fault
  // injection or a request is still outstanding at some node - in which case
  // the caller re-seats the object from its canonical initial tree (the
  // documented crash-recovery semantics).
  [[nodiscard]] bool park_state(InitialConfig& out) const;

  // Re-seats every core on `next`, clears the request ledger and cost
  // account, and reseeds the policy RNG stream with `seed` (same mixing as
  // construction, so object 0 of a service run replays a standalone engine
  // bit-for-bit). Bus time deliberately carries over: the clock is shard
  // infrastructure. Precondition: the bus is idle.
  void adopt_state(const InitialConfig& next, std::uint64_t seed);

  // --- Observers -----------------------------------------------------------
  [[nodiscard]] const CostAccount& costs() const noexcept { return costs_; }
  [[nodiscard]] const std::vector<RequestRecord>& requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] std::size_t unsatisfied_count() const noexcept;
  [[nodiscard]] const ArvyCore& node(NodeId v) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return cores_.size(); }
  // Node currently holding the token, or nullopt while it is in flight.
  [[nodiscard]] std::optional<NodeId> token_holder() const;
  [[nodiscard]] const sim::MessageBus<Message>& bus() const noexcept {
    return bus_;
  }
  [[nodiscard]] sim::MessageBus<Message>& bus() noexcept { return bus_; }
  [[nodiscard]] const graph::DistanceOracle& oracle() const noexcept {
    return oracle_;
  }
  [[nodiscard]] const NewParentPolicy& policy() const noexcept {
    return *policy_;
  }

  // Structured event trace (empty unless Options::record_trace).
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }

  // The fault injector, or nullptr when Options::faults was empty. Its
  // stats are the input to verify's relaxed (fault-modulo) audits.
  [[nodiscard]] const faults::FaultInjector* injector() const noexcept {
    return injector_.get();
  }

  // Called after every protocol event (request submission or message
  // delivery); the invariant checker hooks in here.
  void set_post_event_hook(std::function<void(const SimEngine&)> hook) {
    post_event_hook_ = std::move(hook);
  }

  // Called once per handled message delivery, before the protocol core
  // processes it (suppressed duplicate copies do not fire).
  void set_message_hook(
      std::function<void(const sim::MessageBus<Message>::InFlight&)> hook) {
    message_hook_ = std::move(hook);
  }

  // Called once per satisfied request (including queued ones released by
  // the same token visit), right after the record is stamped.
  void set_satisfied_hook(std::function<void(const RequestRecord&)> hook) {
    satisfied_hook_ = std::move(hook);
  }

  // Bug-seeding seam for the model checker (tools/arvy_explore --seed-bug):
  // when installed, every handled delivery's payload is passed through the
  // mutator before the core processes it, so the explorer can inject a
  // protocol-level corruption (e.g. a fabricated visited entry) and prove
  // the invariant checker catches it. Never installed by production
  // drivers; with no mutator the delivery path is untouched.
  void set_delivery_mutator(std::function<void(Message&)> mutator) {
    delivery_mutator_ = std::move(mutator);
  }

 private:
  void dispatch(NodeId from, Effects&& effects);
  void on_delivery(const sim::MessageBus<Message>::InFlight& entry);
  void mark_satisfied(RequestRecord& record);

  const graph::Graph* graph_;
  graph::DistanceOracle oracle_;
  std::unique_ptr<NewParentPolicy> policy_;
  support::Rng policy_rng_;
  sim::MessageBus<Message> bus_;
  std::vector<ArvyCore> cores_;
  CostAccount costs_;
  std::vector<RequestRecord> requests_;
  std::vector<std::vector<RequestId>> queued_;  // per-node waiting requests
  std::uint64_t satisfied_count_ = 0;
  bool record_trace_ = false;
  TraceRecorder trace_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::function<void(const SimEngine&)> post_event_hook_;
  std::function<void(const sim::MessageBus<Message>::InFlight&)> message_hook_;
  std::function<void(const RequestRecord&)> satisfied_hook_;
  std::function<void(Message&)> delivery_mutator_;
};

}  // namespace arvy::proto
