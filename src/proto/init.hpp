// Initial configurations for Algorithm 1.
//
// The protocol starts from parent pointers that form a rooted tree directed
// towards a root holding the token (§4). This module builds the initial
// trees the experiments need, including Algorithm 2's ring split with its
// designated bridge edge.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"

namespace arvy::proto {

using graph::NodeId;

struct InitialConfig {
  NodeId root = graph::kInvalidNode;     // token's initial location
  std::vector<NodeId> parent;            // parent[root] == root
  std::vector<bool> parent_edge_is_bridge;  // Algorithm 2 flag, default false

  [[nodiscard]] std::size_t node_count() const noexcept { return parent.size(); }
  // Exactly one self-loop (the root) and every node reaches it.
  [[nodiscard]] bool is_valid_tree() const;
};

// Any rooted spanning tree, no bridge.
[[nodiscard]] InitialConfig from_tree(const graph::RootedTree& tree);

// Algorithm 2's initialization for a ring of even size n: two semicircles of
// parent pointers meeting at root v_{n/2}, bridge on edge
// (v_{n/2+1}, v_{n/2}). With this module's 0-based ids the root is n/2 - 1
// and the bridge child is n/2.
[[nodiscard]] InitialConfig ring_bridge_config(std::size_t n);

// Theorem 7's initialization for a weighted ring: drop edge {n-1, 0}, choose
// the bridge so the tree weight strictly on each side is below W/2 (always
// possible; see the proof sketch after Theorem 6), root at the bridge's
// parent-side endpoint.
[[nodiscard]] InitialConfig weighted_ring_bridge_config(const graph::Graph& ring);

// Chain p(v_i) = v_{i+1} rooted at the last node - the Ivy lower-bound
// instance of Lemma 8.
[[nodiscard]] InitialConfig chain_config(std::size_t n);

// Path tree oriented towards position `root`, no bridge (Arrow on a ring's
// spanning path, Lemma 8).
[[nodiscard]] InitialConfig path_config(std::size_t n, NodeId root);

}  // namespace arvy::proto
