#include "proto/directory.hpp"

#include <variant>

#include "graph/spanning_tree.hpp"
#include "graph/tree_metrics.hpp"
#include "proto/messages.hpp"
#include "support/assert.hpp"

namespace arvy {

namespace {

bool is_canonical_ring(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  if (n < 4 || g.edge_count() != n) return false;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!g.has_edge(v, static_cast<graph::NodeId>((v + 1) % n))) return false;
  }
  return true;
}

}  // namespace

proto::InitialConfig default_initial_config(const graph::Graph& g,
                                            proto::PolicyKind policy) {
  if (policy == proto::PolicyKind::kBridge && is_canonical_ring(g)) {
    if (g.node_count() % 2 == 0) {
      bool unit = true;
      for (const auto& e : g.edges()) {
        if (e.weight != 1.0) {
          unit = false;
          break;
        }
      }
      if (unit) return proto::ring_bridge_config(g.node_count());
    }
    return proto::weighted_ring_bridge_config(g);
  }
  const graph::MetricSummary metric = metric_summary(g);
  return proto::from_tree(shortest_path_tree(g, metric.center));
}

std::unique_ptr<proto::NewParentPolicy> resolve_policy(const Options& options) {
  return proto::make_policy(options.policy, options.kback_k);
}

proto::InitialConfig resolve_initial_config(const graph::Graph& g,
                                            const Options& options) {
  return options.initial.has_value()
             ? *options.initial
             : default_initial_config(g, options.policy);
}

Directory::Directory(const graph::Graph& g, DirectoryOptions options) {
  const auto policy = resolve_policy(options);
  const proto::InitialConfig init = resolve_initial_config(g, options);
  proto::SimEngine::Options engine_options;
  engine_options.discipline = options.discipline;
  engine_options.seed = options.seed;
  if (options.delay) engine_options.delay = options.delay->clone();
  engine_options.faults = options.faults;
  engine_options.retry = options.retry;
  engine_options.record_schedule = options.record_schedule;
  engine_ = std::make_unique<proto::SimEngine>(g, init, *policy,
                                               std::move(engine_options));
}

std::size_t Directory::node_count() const { return engine_->node_count(); }

proto::RequestId Directory::acquire(graph::NodeId v) {
  return engine_->submit(v);
}

void Directory::acquire_and_wait(graph::NodeId v) {
  const proto::RequestId id = acquire(v);
  run();
  ARVY_ASSERT_MSG(engine_->requests()[id - 1].satisfied_at.has_value(),
                  "acquire_and_wait left the request unsatisfied");
}

bool Directory::drain(std::chrono::milliseconds /*budget*/) {
  // The simulator's drain is logical: run_until_idle terminates once the
  // network is quiet, so the wall-clock budget never binds.
  run();
  return unsatisfied_count() == 0;
}

std::uint64_t Directory::submitted_count() const {
  return static_cast<std::uint64_t>(engine_->requests().size());
}

std::uint64_t Directory::satisfied_count() const {
  return submitted_count() - unsatisfied_count();
}

proto::CostAccount Directory::cost_snapshot() const { return engine_->costs(); }

faults::FaultStats Directory::fault_stats() const {
  if (const faults::FaultInjector* injector = engine_->injector()) {
    return injector->stats();
  }
  return {};
}

void Directory::run() { engine_->run_until_idle(); }

bool Directory::step() { return engine_->step(); }

void Directory::run_sequential(std::span<const graph::NodeId> sequence) {
  engine_->run_sequential(sequence);
}

void Directory::run_concurrent(std::span<const proto::TimedRequest> requests) {
  engine_->run_concurrent(requests);
}

std::optional<graph::NodeId> Directory::holder() const {
  return engine_->token_holder();
}

const proto::CostAccount& Directory::costs() const noexcept {
  return engine_->costs();
}

const std::vector<proto::RequestRecord>& Directory::requests() const noexcept {
  return engine_->requests();
}

std::size_t Directory::unsatisfied_count() const {
  return engine_->unsatisfied_count();
}

const graph::DistanceOracle& Directory::oracle() const noexcept {
  return engine_->oracle();
}

bool Directory::idle() const noexcept { return engine_->bus().idle(); }

void Directory::on_message(MessageObserver observer) {
  if (!observer) {
    engine_->set_message_hook(nullptr);
    return;
  }
  engine_->set_message_hook(
      [observer = std::move(observer)](
          const sim::MessageBus<proto::Message>::InFlight& entry) {
        MessageEvent event;
        event.from = entry.from;
        event.to = entry.to;
        event.at = entry.deliver_at;
        event.distance = entry.distance;
        if (const auto* find =
                std::get_if<proto::FindMessage>(&entry.payload)) {
          event.is_find = true;
          event.request = find->request;
        }
        observer(event);
      });
}

void Directory::on_satisfied(SatisfiedObserver observer) {
  engine_->set_satisfied_hook(std::move(observer));
}

void Directory::on_event(EventObserver observer) {
  event_observer_ = std::move(observer);
  if (!event_observer_) {
    engine_->set_post_event_hook(nullptr);
    return;
  }
  engine_->set_post_event_hook(
      [this](const proto::SimEngine&) { event_observer_(*this); });
}

}  // namespace arvy
