#include "proto/directory.hpp"

#include <algorithm>

#include "graph/spanning_tree.hpp"
#include "graph/tree_metrics.hpp"
#include "support/assert.hpp"

namespace arvy {

namespace {

bool is_canonical_ring(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  if (n < 4 || g.edge_count() != n) return false;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!g.has_edge(v, static_cast<graph::NodeId>((v + 1) % n))) return false;
  }
  return true;
}

}  // namespace

proto::InitialConfig default_initial_config(const graph::Graph& g,
                                            proto::PolicyKind policy) {
  if (policy == proto::PolicyKind::kBridge && is_canonical_ring(g)) {
    if (g.node_count() % 2 == 0) {
      bool unit = true;
      for (const auto& e : g.edges()) {
        if (e.weight != 1.0) {
          unit = false;
          break;
        }
      }
      if (unit) return proto::ring_bridge_config(g.node_count());
    }
    return proto::weighted_ring_bridge_config(g);
  }
  const graph::MetricSummary metric = metric_summary(g);
  return proto::from_tree(shortest_path_tree(g, metric.center));
}

Directory::Directory(const graph::Graph& g, DirectoryOptions options) {
  const auto policy = proto::make_policy(options.policy, options.kback_k);
  const proto::InitialConfig init =
      options.initial.has_value() ? *options.initial
                                  : default_initial_config(g, options.policy);
  proto::SimEngine::Options engine_options;
  engine_options.discipline = options.discipline;
  engine_options.seed = options.seed;
  engine_ = std::make_unique<proto::SimEngine>(g, init, *policy,
                                               std::move(engine_options));
}

void Directory::acquire_and_wait(graph::NodeId v) {
  const proto::RequestId id = acquire(v);
  run();
  ARVY_ASSERT_MSG(engine_->requests()[id - 1].satisfied_at.has_value(),
                  "acquire_and_wait left the request unsatisfied");
}

MultiDirectory::MultiDirectory(const graph::Graph& g, std::size_t object_count,
                               DirectoryOptions options) {
  ARVY_EXPECTS(object_count >= 1);
  instances_.reserve(object_count);
  for (std::size_t i = 0; i < object_count; ++i) {
    DirectoryOptions per_object = options;
    // Decorrelate the per-object RNG streams; spread initial roots so the
    // objects do not all start at the same node.
    per_object.seed = options.seed + i * 0x9e3779b97f4a7c15ULL;
    if (!per_object.initial.has_value()) {
      proto::InitialConfig init = default_initial_config(g, options.policy);
      if (options.policy != proto::PolicyKind::kBridge) {
        const auto root =
            static_cast<graph::NodeId>(i % g.node_count());
        init = proto::from_tree(shortest_path_tree(g, root));
      }
      per_object.initial = std::move(init);
    }
    instances_.push_back(std::make_unique<Directory>(g, per_object));
  }
}

proto::RequestId MultiDirectory::acquire(ObjectId object, graph::NodeId v) {
  return instances_.at(object)->acquire(v);
}

void MultiDirectory::acquire_and_wait(ObjectId object, graph::NodeId v) {
  instances_.at(object)->acquire_and_wait(v);
}

void MultiDirectory::run_all() {
  for (auto& instance : instances_) instance->run();
}

Directory& MultiDirectory::object(ObjectId id) { return *instances_.at(id); }

proto::CostAccount MultiDirectory::total_costs() const {
  proto::CostAccount total;
  for (const auto& instance : instances_) {
    const proto::CostAccount& c = instance->costs();
    total.find_distance += c.find_distance;
    total.token_distance += c.token_distance;
    total.find_messages += c.find_messages;
    total.token_messages += c.token_messages;
    total.max_visited_length =
        std::max(total.max_visited_length, c.max_visited_length);
  }
  return total;
}

}  // namespace arvy
