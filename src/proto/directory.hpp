// The public facade: a distributed directory over a network graph.
//
// This is the API a downstream user programs against. A Directory tracks one
// shared object (token); the sharded multi-object facade is
// arvy::DirectoryService (service/directory_service.hpp) - the paper's
// "multiple independent instances of the distributed directory protocol in
// parallel can be used to coordinate access to multiple data items" (§1) at
// production object counts.
//
// Transports. The same facade contract (AnyDirectory) is served by two
// engines: `Directory` runs the discrete-event simulator (deterministic,
// seedable, verifiable after every event) and `LiveDirectory`
// (runtime/live_directory.hpp) runs the threaded actor runtime (real OS
// asynchrony). Code written against AnyDirectory - submit requests, drain,
// snapshot costs - runs unchanged on both; the fault-matrix suite does
// exactly that.
//
// Quickstart:
//   auto g = arvy::graph::make_ring(8);
//   arvy::Directory dir(g, {.policy = arvy::proto::PolicyKind::kBridge});
//   dir.acquire_and_wait(3);   // node 3 obtains the object
//   dir.acquire_and_wait(6);   // then node 6
//   double paid = dir.costs().total_distance();
//
// With faults and retries (see docs/FAULTS.md):
//   arvy::Directory dir(g, {
//       .policy = arvy::proto::PolicyKind::kIvy,
//       .seed = 7,
//       .faults = {.drop_find = 0.1, .drop_token = 0.1},
//       .retry = {.rto = 4.0, .backoff = 2.0},
//   });
//
// Every facade takes the same unified arvy::Options aggregate; the field
// guide lives in proto/options.hpp.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "proto/engine.hpp"
#include "proto/options.hpp"
#include "proto/policies.hpp"

namespace arvy {

// One observed message delivery, transport-agnostic.
struct MessageEvent {
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  bool is_find = false;          // find vs token
  proto::RequestId request = 0;  // the find's request; 0 for token
  sim::Time at = 0.0;            // transport time of delivery
  double distance = 0.0;         // shortest-path distance charged
};

// The transport-agnostic directory contract: everything here is meaningful
// for both the discrete-event simulator and the threaded runtime. Code that
// only needs this interface (benchmarks, fault matrices, examples) runs on
// either engine.
class AnyDirectory {
 public:
  virtual ~AnyDirectory() = default;

  [[nodiscard]] virtual std::size_t node_count() const = 0;

  // Asynchronous acquire: the request enters the network. Precondition (§3):
  // no outstanding request at v.
  virtual proto::RequestId acquire(graph::NodeId v) = 0;

  // Synchronous acquire: returns once v holds the object (simulated time for
  // Directory, wall time for LiveDirectory).
  virtual void acquire_and_wait(graph::NodeId v) = 0;

  // Drives the directory until every submitted request is satisfied or the
  // budget elapses (the budget is wall time for LiveDirectory and a safety
  // bound for Directory, whose drain is logical). Returns whether all
  // submitted requests are satisfied.
  [[nodiscard]] virtual bool drain(
      std::chrono::milliseconds budget = std::chrono::milliseconds(10'000)) = 0;

  [[nodiscard]] virtual std::uint64_t submitted_count() const = 0;
  [[nodiscard]] virtual std::uint64_t satisfied_count() const = 0;

  // Value snapshot of the distance-weighted cost account (find + token).
  [[nodiscard]] virtual proto::CostAccount cost_snapshot() const = 0;

  // Aggregated fault-injection statistics; all-zero when no faults were
  // declared or the transport records none.
  [[nodiscard]] virtual faults::FaultStats fault_stats() const = 0;
};

// The simulator-backed directory: deterministic, seedable, and inspectable
// after every event.
class Directory final : public AnyDirectory {
 public:
  using MessageObserver = std::function<void(const MessageEvent&)>;
  using SatisfiedObserver = std::function<void(const proto::RequestRecord&)>;
  using EventObserver = std::function<void(const Directory&)>;

  explicit Directory(const graph::Graph& g, DirectoryOptions options = {});

  // --- AnyDirectory ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const override;
  proto::RequestId acquire(graph::NodeId v) override;
  void acquire_and_wait(graph::NodeId v) override;
  [[nodiscard]] bool drain(std::chrono::milliseconds budget =
                               std::chrono::milliseconds(10'000)) override;
  [[nodiscard]] std::uint64_t submitted_count() const override;
  [[nodiscard]] std::uint64_t satisfied_count() const override;
  [[nodiscard]] proto::CostAccount cost_snapshot() const override;
  [[nodiscard]] faults::FaultStats fault_stats() const override;

  // --- Simulation drivers ---------------------------------------------------
  // Drains the network.
  void run();
  // Delivers one pending message; false when the network is quiet.
  bool step();
  // Sequential semantics (§6): each request issued after the previous one is
  // satisfied. Concurrent semantics: timed arrivals with messages in flight.
  void run_sequential(std::span<const graph::NodeId> sequence);
  void run_concurrent(std::span<const proto::TimedRequest> requests);

  // --- Observers ------------------------------------------------------------
  [[nodiscard]] std::optional<graph::NodeId> holder() const;
  [[nodiscard]] const proto::CostAccount& costs() const noexcept;
  [[nodiscard]] const std::vector<proto::RequestRecord>& requests()
      const noexcept;
  [[nodiscard]] std::size_t unsatisfied_count() const;
  [[nodiscard]] const graph::DistanceOracle& oracle() const noexcept;
  [[nodiscard]] bool idle() const noexcept;

  // Narrow observer hooks (one slot each; setting replaces the previous).
  // on_message fires per handled delivery, on_satisfied per satisfied
  // request, on_event after every protocol event (the invariant checker's
  // seam - see verify::capture(const Directory&)).
  void on_message(MessageObserver observer);
  void on_satisfied(SatisfiedObserver observer);
  void on_event(EventObserver observer);

  // Read-only inspection seam for the verifier and analysis layers
  // (verify::capture, analysis::measure_latency). Deliberately const: all
  // mutation goes through the facade. The raw mutable engine() escape hatch
  // that predated it is gone (PR 10) - its deprecation window closed; all
  // mutation goes through the typed drivers and observer hooks above.
  [[nodiscard]] const proto::SimEngine& inspect() const noexcept {
    return *engine_;
  }

 private:
  std::unique_ptr<proto::SimEngine> engine_;
  EventObserver event_observer_;
};

// Builds the default initial configuration described in proto/options.hpp.
[[nodiscard]] proto::InitialConfig default_initial_config(
    const graph::Graph& g, proto::PolicyKind policy);

// Shared by every facade: policy + initial config resolution.
[[nodiscard]] std::unique_ptr<proto::NewParentPolicy> resolve_policy(
    const Options& options);
[[nodiscard]] proto::InitialConfig resolve_initial_config(
    const graph::Graph& g, const Options& options);

}  // namespace arvy
