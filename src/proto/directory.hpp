// The public facade: a distributed directory over a network graph.
//
// This is the API a downstream user programs against. A Directory tracks one
// shared object (token); a MultiDirectory runs several independent protocol
// instances over the same network, one per object - exactly the paper's
// "multiple independent instances of the distributed directory protocol in
// parallel can be used to coordinate access to multiple data items" (§1).
//
// Quickstart:
//   auto g = arvy::graph::make_ring(8);
//   arvy::Directory dir(g, {.policy = arvy::proto::PolicyKind::kBridge});
//   dir.acquire_and_wait(3);   // node 3 obtains the object
//   dir.acquire_and_wait(6);   // then node 6
//   double paid = dir.costs().total_distance();
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "proto/engine.hpp"
#include "proto/policies.hpp"

namespace arvy {

struct DirectoryOptions {
  proto::PolicyKind policy = proto::PolicyKind::kIvy;
  std::size_t kback_k = 2;  // only for PolicyKind::kKBack
  sim::Discipline discipline = sim::Discipline::kTimed;
  std::uint64_t seed = 1;
  // Initial tree; when unset the directory builds a shortest-path tree from
  // the metrically central node, a sensible topology-agnostic default. For
  // PolicyKind::kBridge on canonical rings the Algorithm 2 split is used.
  std::optional<proto::InitialConfig> initial;
};

class Directory {
 public:
  explicit Directory(const graph::Graph& g, DirectoryOptions options = {});

  // Asynchronous acquire: the request enters the network; call run() (or
  // keep step()-ing) to let it complete.
  proto::RequestId acquire(graph::NodeId v) { return engine_->submit(v); }

  // Synchronous acquire: blocks (simulated time) until v holds the object.
  void acquire_and_wait(graph::NodeId v);

  // Drains the network.
  void run() { engine_->run_until_idle(); }
  bool step() { return engine_->step(); }

  [[nodiscard]] std::optional<graph::NodeId> holder() const {
    return engine_->token_holder();
  }
  [[nodiscard]] const proto::CostAccount& costs() const noexcept {
    return engine_->costs();
  }
  [[nodiscard]] const std::vector<proto::RequestRecord>& requests()
      const noexcept {
    return engine_->requests();
  }
  [[nodiscard]] proto::SimEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const proto::SimEngine& engine() const noexcept {
    return *engine_;
  }

 private:
  std::unique_ptr<proto::SimEngine> engine_;
};

// Several objects, each tracked by an independent Arvy instance over the
// same network. Object ids are dense indices.
class MultiDirectory {
 public:
  using ObjectId = std::size_t;

  MultiDirectory(const graph::Graph& g, std::size_t object_count,
                 DirectoryOptions options = {});

  proto::RequestId acquire(ObjectId object, graph::NodeId v);
  void acquire_and_wait(ObjectId object, graph::NodeId v);
  void run_all();

  [[nodiscard]] std::size_t object_count() const noexcept {
    return instances_.size();
  }
  [[nodiscard]] Directory& object(ObjectId id);
  // Aggregate cost across all objects.
  [[nodiscard]] proto::CostAccount total_costs() const;

 private:
  std::vector<std::unique_ptr<Directory>> instances_;
};

// Builds the default initial configuration described in DirectoryOptions.
[[nodiscard]] proto::InitialConfig default_initial_config(
    const graph::Graph& g, proto::PolicyKind policy);

}  // namespace arvy
