// Protocol messages of Algorithm 1.
//
// Arvy uses exactly two message types: "find by v" and "token". The find
// message carries its visited history so that arbitrary NewParent policies
// can be expressed ("return v OR any node that had received and forwarded
// v's current find message", Algorithm 1 line 18). Concrete policies declare
// how much of that history a real deployment would need (see
// NewParentPolicy::message_words) - Arrow, Ivy and the ring bridge all need
// O(1) fields; only exotic policies need the full path.
#pragma once

#include <cstdint>
#include <type_traits>
#include <variant>
#include <vector>

#include "graph/graph.hpp"

namespace arvy::proto {

using graph::NodeId;
using RequestId = std::uint64_t;

// The documented exception to the message-POD discipline (lint `msgpod`):
// the visited history is unbounded (one entry per hop, worst case the whole
// graph), so the in-simulator type carries a vector. The flat wire encoding
// (proto/wire.hpp) is the POD face of this message - a WireHeader plus a
// trailing NodeId array - and is what roadmap item 2's transports move.
// ARVY-LINT-ALLOW(msgpod): visited is unbounded; wire.hpp carries it flat
struct FindMessage {
  // The node whose request this is ("find by v").
  NodeId producer = graph::kInvalidNode;
  // The node that sent this hop (the producer for the first hop).
  NodeId sender = graph::kInvalidNode;
  // Nodes that have received and forwarded this find, in order, starting
  // with the producer. Invariant: visited.back() == sender.
  std::vector<NodeId> visited;
  // Whether the parent edge this hop traversed was the ring bridge
  // (Algorithm 2 plumbing; meaningless under other policies).
  bool sender_edge_was_bridge = false;
  // Engine-assigned id of the request, for satisfaction accounting.
  RequestId request = 0;
};

struct TokenMessage {
  // Monotone counter of token transfers, for tracing and sanity checks.
  std::uint64_t serial = 0;
};

// Message-POD discipline (lint `msgpod`): bus/transport message types stay
// trivially copyable so the flat wire encoding can memcpy them. FindMessage
// is the single annotated exception above; its POD face is wire::WireHeader.
static_assert(std::is_trivially_copyable_v<TokenMessage>);
static_assert(std::is_nothrow_move_constructible_v<FindMessage> &&
                  std::is_nothrow_move_assignable_v<FindMessage>,
              "FindMessage moves must stay cheap: the bus arena moves "
              "payloads, never copies them");

using Message = std::variant<FindMessage, TokenMessage>;

[[nodiscard]] inline bool is_find(const Message& m) noexcept {
  return std::holds_alternative<FindMessage>(m);
}
[[nodiscard]] inline bool is_token(const Message& m) noexcept {
  return std::holds_alternative<TokenMessage>(m);
}

}  // namespace arvy::proto
