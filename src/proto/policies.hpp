// The bundled NewParent policies.
#pragma once

#include <memory>
#include <string_view>

#include "proto/policy.hpp"

namespace arvy::proto {

enum class PolicyKind {
  kArrow,     // new parent = sender u: Arvy degenerates to Arrow [5]
  kIvy,       // new parent = producer v: Arvy degenerates to Ivy [11]
  kBridge,    // Algorithm 2: Arrow off the bridge, Ivy across it
  kRandom,    // uniform over the visited set (randomized middle ground)
  kMidpoint,  // middle of the visited path (halves chain length per pass)
  kClosest,   // metric-aware: visited node nearest to the receiver
  kKBack,     // k hops back along the visited path (k = 1 is Arrow)
  kSpectrum,  // fractional position on the visited path: the Arrow<->Ivy dial
};

[[nodiscard]] std::string_view policy_kind_name(PolicyKind kind) noexcept;

// Factory. `k` is only used by kKBack; randomized policies draw from the
// engine-supplied rng in the PolicyContext. kSpectrum defaults to the
// midpoint dial (lambda = 0.5); use make_spectrum_policy for other dials.
[[nodiscard]] std::unique_ptr<NewParentPolicy> make_policy(PolicyKind kind,
                                                           std::size_t k = 1);

// The Arvy family as a one-parameter spectrum: the new parent is the visited
// node at fractional position `lambda` along the path, so lambda = 0 is Ivy
// (the producer), lambda = 1 is Arrow (the sender), and values in between
// interpolate how aggressively the tree short-cuts. This makes the paper's
// "family of protocols" observation (§1) directly sweepable (experiment
// E15).
[[nodiscard]] std::unique_ptr<NewParentPolicy> make_spectrum_policy(
    double lambda);

// All kinds, for parameterized tests and ablation benches.
[[nodiscard]] std::span<const PolicyKind> all_policy_kinds() noexcept;

}  // namespace arvy::proto
