// The NewParent policy interface - the degree of freedom that makes Arvy a
// family of protocols (Algorithm 1, lines 17-19).
//
// When node w receives "find by v" from u, the policy must return v or any
// node that already received and forwarded this find message; that is, any
// element of the message's `visited` set. Arrow is "return u" (the sender,
// always visited.back()), Ivy is "return v" (the producer, always
// visited.front()), and Algorithm 2's ring bridge switches between the two
// based on whether the traversed edge was the bridge.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace arvy::proto {

using graph::NodeId;

struct PolicyContext {
  NodeId receiver = graph::kInvalidNode;  // w
  NodeId sender = graph::kInvalidNode;    // u (== visited.back())
  NodeId producer = graph::kInvalidNode;  // v (== visited.front())
  // Every node that received and forwarded this find, starting with the
  // producer; the legal NewParent results are exactly these nodes.
  std::span<const NodeId> visited;
  // Whether the traversed parent edge (u, w) was the ring bridge.
  bool sender_edge_was_bridge = false;
  // Whether the receiver has a self-loop (i.e. the find stops here).
  bool receiver_has_self_loop = false;
  // Distance oracle for metric-aware policies; may be null when the engine
  // runs without one (the bundled policies other than kClosest tolerate it).
  const graph::DistanceOracle* distances = nullptr;
  // Per-message randomness for randomized policies.
  support::Rng* rng = nullptr;
};

struct PolicyDecision {
  NodeId new_parent = graph::kInvalidNode;
  // Whether the receiver's new parent edge becomes the ring bridge.
  bool new_edge_is_bridge = false;
};

class NewParentPolicy {
 public:
  virtual ~NewParentPolicy() = default;

  // Must return a member of ctx.visited (the engine enforces this with an
  // assertion - it is the protocol's correctness precondition).
  [[nodiscard]] virtual PolicyDecision choose(const PolicyContext& ctx) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  // Space accounting for experiment E12, in machine words.
  // Per-node protocol state beyond Algorithm 1's p(v) and n(v).
  [[nodiscard]] virtual std::size_t node_state_words() const noexcept {
    return 0;
  }
  // Fields of the find message this policy actually needs. kFullPath means
  // the whole visited history (O(path length) words).
  enum class MessageNeeds { kConstant, kFullPath };
  [[nodiscard]] virtual MessageNeeds message_needs() const noexcept {
    return MessageNeeds::kConstant;
  }

  [[nodiscard]] virtual std::unique_ptr<NewParentPolicy> clone() const = 0;
};

}  // namespace arvy::proto
