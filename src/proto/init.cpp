#include "proto/init.hpp"

#include "support/assert.hpp"

namespace arvy::proto {

namespace {

// Path tree on 0..n-1 with pointers towards `root`; `bridge_child`, when
// valid, marks (bridge_child, parent(bridge_child)) as the bridge.
InitialConfig oriented_path(std::size_t n, NodeId root, NodeId bridge_child) {
  ARVY_EXPECTS(n >= 2 && root < n);
  InitialConfig cfg;
  cfg.root = root;
  cfg.parent.resize(n);
  cfg.parent_edge_is_bridge.assign(n, false);
  cfg.parent[root] = root;
  for (NodeId v = root; v > 0; --v) cfg.parent[v - 1] = v;
  for (NodeId v = root; v + 1 < n; ++v) cfg.parent[v + 1] = v;
  if (bridge_child != graph::kInvalidNode) {
    ARVY_EXPECTS(bridge_child < n && bridge_child != root);
    cfg.parent_edge_is_bridge[bridge_child] = true;
  }
  ARVY_ENSURES(cfg.is_valid_tree());
  return cfg;
}

}  // namespace

bool InitialConfig::is_valid_tree() const {
  if (root >= parent.size() || parent[root] != root) return false;
  if (parent_edge_is_bridge.size() != parent.size()) return false;
  for (NodeId v = 0; v < parent.size(); ++v) {
    if (parent[v] >= parent.size()) return false;
    if (v != root && parent[v] == v) return false;  // only one self-loop
    NodeId u = v;
    std::size_t steps = 0;
    while (parent[u] != u) {
      u = parent[u];
      if (++steps > parent.size()) return false;  // cycle
    }
    if (u != root) return false;
  }
  return true;
}

InitialConfig from_tree(const graph::RootedTree& tree) {
  ARVY_EXPECTS(tree.is_valid());
  InitialConfig cfg;
  cfg.root = tree.root;
  cfg.parent = tree.parent;
  cfg.parent_edge_is_bridge.assign(tree.parent.size(), false);
  ARVY_ENSURES(cfg.is_valid_tree());
  return cfg;
}

InitialConfig ring_bridge_config(std::size_t n) {
  ARVY_EXPECTS_MSG(n >= 4 && n % 2 == 0,
                   "Algorithm 2's initialization assumes even n >= 4");
  // Root v_{n/2} (0-based: n/2 - 1); bridge child v_{n/2+1} (0-based: n/2).
  return oriented_path(n, static_cast<NodeId>(n / 2 - 1),
                       static_cast<NodeId>(n / 2));
}

InitialConfig weighted_ring_bridge_config(const graph::Graph& ring) {
  const std::size_t n = ring.node_count();
  ARVY_EXPECTS(n >= 3);
  ARVY_EXPECTS_MSG(ring.has_edge(static_cast<NodeId>(n - 1), 0),
                   "expected a canonical ring (edges {i, i+1 mod n})");
  // Drop edge {n-1, 0}; the tree is the path 0..n-1. Put the bridge on the
  // edge {k, k+1} containing the weight midpoint of the path: then each side
  // weighs at most P/2 < W/2, as the Theorem 7 construction requires.
  double path_weight = 0.0;
  for (NodeId v = 0; v + 1 < n; ++v) {
    path_weight += ring.edge_weight(v, static_cast<NodeId>(v + 1));
  }
  double prefix = 0.0;
  NodeId k = 0;
  for (NodeId v = 0; v + 1 < n; ++v) {
    const double w = ring.edge_weight(v, static_cast<NodeId>(v + 1));
    if (prefix + w >= path_weight / 2.0) {
      k = v;
      break;
    }
    prefix += w;
  }
  const double left = prefix;
  const double right =
      path_weight - prefix - ring.edge_weight(k, static_cast<NodeId>(k + 1));
  ARVY_ASSERT(left < ring.total_weight() / 2.0);
  ARVY_ASSERT(right < ring.total_weight() / 2.0);
  // Root at k; bridge child k+1 (its parent pointer crosses to the root).
  return oriented_path(n, k, static_cast<NodeId>(k + 1));
}

InitialConfig chain_config(std::size_t n) {
  ARVY_EXPECTS(n >= 2);
  return oriented_path(n, static_cast<NodeId>(n - 1), graph::kInvalidNode);
}

InitialConfig path_config(std::size_t n, NodeId root) {
  return oriented_path(n, root, graph::kInvalidNode);
}

}  // namespace arvy::proto
