#include "proto/trace.hpp"

#include <ostream>

namespace arvy::proto {

const char* trace_event_kind_name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kRequest:
      return "request";
    case TraceEventKind::kFindSent:
      return "find-sent";
    case TraceEventKind::kFindReceived:
      return "find-recv";
    case TraceEventKind::kTokenSent:
      return "token-sent";
    case TraceEventKind::kTokenReceived:
      return "token-recv";
  }
  return "?";
}

std::vector<TraceEvent> TraceRecorder::for_request(RequestId request) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.request == request) out.push_back(e);
  }
  return out;
}

void TraceRecorder::print(std::ostream& os) const {
  for (const TraceEvent& e : events_) {
    os << '[' << e.at << "] " << trace_event_kind_name(e.kind) << " node="
       << e.node;
    if (e.from != graph::kInvalidNode) {
      os << ' ' << e.from << "->" << e.to;
    }
    if (e.producer != graph::kInvalidNode) {
      os << " find-by=" << e.producer;
    }
    if (e.request != 0) {
      os << " req=" << e.request;
    }
    if (e.distance > 0.0) {
      os << " dist=" << e.distance;
    }
    if (e.new_parent != graph::kInvalidNode) {
      os << " new-parent=" << e.new_parent;
    }
    os << '\n';
  }
}

double TraceRecorder::total_distance(TraceEventKind kind) const noexcept {
  double total = 0.0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) total += e.distance;
  }
  return total;
}

}  // namespace arvy::proto
