#include "analysis/space.hpp"

namespace arvy::analysis {

SpaceReport measure_space(const proto::SimEngine& engine) {
  SpaceReport report;
  const proto::NewParentPolicy& policy = engine.policy();
  report.policy = std::string(policy.name());
  report.policy_node_words = policy.node_state_words();
  report.needs_full_path =
      policy.message_needs() == proto::NewParentPolicy::MessageNeeds::kFullPath;
  if (report.needs_full_path) {
    report.message_words_peak =
        report.message_words_constant + engine.costs().max_visited_length;
  }
  return report;
}

}  // namespace arvy::analysis
