// Request latency analysis for concurrent executions.
//
// Under concurrency the interesting quantity besides traffic is how long a
// request waits for the token (Kuhn-Wattenhofer's dynamic analysis uses a
// time-aware cost for exactly this reason, §2). This module summarizes
// submit -> satisfied latencies from an engine's request log.
#pragma once

#include "proto/engine.hpp"
#include "support/stats.hpp"

namespace arvy::analysis {

struct LatencyReport {
  support::Summary latency;       // satisfied_at - submitted, per request
  support::Summary queue_depth;   // satisfaction_index gap vs submission order
  std::size_t unsatisfied = 0;
};

// Requires a quiescent engine (every request satisfied) for a complete
// picture; unsatisfied requests are counted but excluded from the summary.
[[nodiscard]] LatencyReport measure_latency(const proto::SimEngine& engine);

}  // namespace arvy::analysis
