// Space accounting (experiment E12).
//
// The paper's headline on rings is "constant competitive ratio using
// constant space per node". This module makes the claim measurable: it
// reports the per-node protocol state in machine words and the peak find
// message size a policy actually requires.
#pragma once

#include <string>

#include "proto/engine.hpp"

namespace arvy::analysis {

struct SpaceReport {
  std::string policy;
  // Algorithm 1 state: p(v) + n(v) + token bit + outstanding bit.
  std::size_t base_node_words = 4;
  // Extra per-node words the policy keeps (e.g. the bridge flag).
  std::size_t policy_node_words = 0;
  // Words per find message the policy needs: constant-field policies carry
  // (producer, sender, request, flag); full-path policies additionally
  // carry up to `max_visited` node ids.
  std::size_t message_words_constant = 4;
  std::size_t message_words_peak = 4;
  bool needs_full_path = false;

  [[nodiscard]] std::size_t total_node_words() const noexcept {
    return base_node_words + policy_node_words;
  }
};

// Derives the report from a finished engine run (uses the policy's declared
// needs plus the measured peak visited length).
[[nodiscard]] SpaceReport measure_space(const proto::SimEngine& engine);

}  // namespace arvy::analysis
