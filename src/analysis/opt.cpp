#include "analysis/opt.hpp"

#include <algorithm>
#include <vector>

#include "graph/spanning_tree.hpp"
#include "support/assert.hpp"

namespace arvy::analysis {

double opt_sequential(const graph::DistanceOracle& oracle, NodeId token_start,
                      std::span<const NodeId> sequence) {
  double total = 0.0;
  NodeId holder = token_start;
  for (NodeId v : sequence) {
    total += oracle.distance(holder, v);
    holder = v;
  }
  return total;
}

double opt_burst_lower_bound(const graph::DistanceOracle& oracle,
                             NodeId token_start,
                             std::span<const NodeId> requesters) {
  std::vector<NodeId> terminals;
  terminals.reserve(requesters.size() + 1);
  terminals.push_back(token_start);
  for (NodeId v : requesters) {
    if (std::find(terminals.begin(), terminals.end(), v) == terminals.end()) {
      terminals.push_back(v);
    }
  }
  return metric_mst_weight(terminals, oracle);
}

}  // namespace arvy::analysis
