// Offline optimum baselines.
//
// For a sequential request sequence the optimal cost is the sum of shortest
// path distances between consecutive token locations - the bound the paper
// compares against in §6 ("the cost of the optimal algorithm is at least the
// sum of the shortest paths between the consecutive requests"). For
// concurrent bursts no closed form exists; we report the metric-MST lower
// bound over {token} ∪ requesters and label it as a lower bound.
#pragma once

#include <span>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace arvy::analysis {

using graph::NodeId;

// Sum of dist(prev, next) over the sequence, starting from token_start.
// Consecutive duplicates contribute zero, matching the engine's free
// satisfaction of requests at the holder.
[[nodiscard]] double opt_sequential(const graph::DistanceOracle& oracle,
                                    NodeId token_start,
                                    std::span<const NodeId> sequence);

// Lower bound on any protocol's cost to serve a one-shot burst: the token
// must visit every requester, and the edges of any such walk (in the metric
// closure over {token} ∪ requesters) form a connected spanning subgraph, so
// the walk's length is at least the weight of a minimum spanning tree of
// that closure.
[[nodiscard]] double opt_burst_lower_bound(const graph::DistanceOracle& oracle,
                                           NodeId token_start,
                                           std::span<const NodeId> requesters);

}  // namespace arvy::analysis
