#include "analysis/competitive.hpp"

#include "analysis/opt.hpp"
#include "support/assert.hpp"

namespace arvy::analysis {

RatioReport measure_sequential(const graph::Graph& g,
                               const proto::InitialConfig& init,
                               const proto::NewParentPolicy& policy,
                               std::span<const graph::NodeId> sequence,
                               std::uint64_t seed) {
  proto::SimEngine::Options options;
  options.seed = seed;
  proto::SimEngine engine(g, init, policy, std::move(options));
  engine.run_sequential(sequence);
  ARVY_ASSERT(engine.unsatisfied_count() == 0);

  RatioReport report;
  report.policy = std::string(policy.name());
  report.node_count = g.node_count();
  report.request_count = sequence.size();
  report.find_cost = engine.costs().find_distance;
  report.token_cost = engine.costs().token_distance;
  report.opt = opt_sequential(engine.oracle(), init.root, sequence);
  if (report.opt > 0.0) {
    report.ratio_find_only = report.find_cost / report.opt;
    report.ratio_total = (report.find_cost + report.token_cost) / report.opt;
  }
  return report;
}

}  // namespace arvy::analysis
