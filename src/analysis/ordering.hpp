// Offline optima for *batch* (concurrent) request sets.
//
// For a one-shot burst the offline adversary chooses the service order: its
// cost is the shortest open walk from the token through all requesters -
// a path-TSP. This module provides:
//   * exact_batch_opt: Held-Karp dynamic program, exact for <= ~16 terminals
//     (O(2^k * k^2) time, O(2^k * k) space);
//   * greedy_batch_cost: nearest-neighbour heuristic, any size;
// plus the MST lower bound from analysis/opt.hpp. Together these bracket a
// concurrent execution's true competitive ratio, which the E13 bench
// reports instead of a bare lower bound when the burst is small enough.
#pragma once

#include <span>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace arvy::analysis {

using graph::NodeId;

struct BatchOptResult {
  double cost = 0.0;
  // Service order attaining the cost (excludes the start).
  std::vector<NodeId> order;
};

// Exact minimum-cost open walk start -> all terminals (Held-Karp).
// Duplicates in `terminals` are served by one visit. Precondition:
// <= 20 distinct terminals (2^20 states ~ 20 MB; callers should stay
// well below).
[[nodiscard]] BatchOptResult exact_batch_opt(
    const graph::DistanceOracle& oracle, NodeId start,
    std::span<const NodeId> terminals);

// Nearest-neighbour heuristic for larger bursts (classic log-factor
// approximation of path TSP; cheap and good enough as an upper-bound
// reference).
[[nodiscard]] BatchOptResult greedy_batch_cost(
    const graph::DistanceOracle& oracle, NodeId start,
    std::span<const NodeId> terminals);

}  // namespace arvy::analysis
