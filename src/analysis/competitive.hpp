// The competitive-ratio harness: run a protocol on a sequential workload and
// compare against the offline optimum (§6's performance measure).
#pragma once

#include <span>
#include <string>

#include "proto/directory.hpp"
#include "proto/engine.hpp"

namespace arvy::analysis {

struct RatioReport {
  std::string policy;
  std::size_t node_count = 0;
  std::size_t request_count = 0;
  double find_cost = 0.0;   // total find-message distance (paper accounting)
  double token_cost = 0.0;  // total token-message distance
  double opt = 0.0;         // offline optimum for the same sequence
  // ARVY(sigma) / OPT(sigma) under both accountings. Zero OPT (all requests
  // at the initial holder) reports ratio 1.
  double ratio_find_only = 1.0;
  double ratio_total = 1.0;
};

// Runs the policy sequentially over `sequence` starting from `init` and
// measures both cost accountings against opt_sequential.
[[nodiscard]] RatioReport measure_sequential(
    const graph::Graph& g, const proto::InitialConfig& init,
    const proto::NewParentPolicy& policy, std::span<const graph::NodeId> sequence,
    std::uint64_t seed = 1);

}  // namespace arvy::analysis
