#include "analysis/latency.hpp"

#include <cmath>
#include <vector>

namespace arvy::analysis {

LatencyReport measure_latency(const proto::SimEngine& engine) {
  LatencyReport report;
  std::vector<double> latencies;
  std::vector<double> depth;
  const auto& requests = engine.requests();
  latencies.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const proto::RequestRecord& r = requests[i];
    if (!r.satisfied_at.has_value()) {
      ++report.unsatisfied;
      continue;
    }
    latencies.push_back(*r.satisfied_at - r.submitted);
    // How far the satisfaction order diverged from submission order: 0 for
    // perfectly FIFO service.
    depth.push_back(std::abs(static_cast<double>(r.satisfaction_index) -
                             static_cast<double>(i + 1)));
  }
  report.latency = support::summarize(latencies);
  report.queue_depth = support::summarize(depth);
  return report;
}

}  // namespace arvy::analysis
