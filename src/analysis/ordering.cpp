#include "analysis/ordering.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace arvy::analysis {

namespace {

std::vector<NodeId> distinct_terminals(NodeId start,
                                       std::span<const NodeId> terminals) {
  std::vector<NodeId> out;
  for (NodeId v : terminals) {
    if (v != start &&
        std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

BatchOptResult exact_batch_opt(const graph::DistanceOracle& oracle,
                               NodeId start,
                               std::span<const NodeId> terminals) {
  const std::vector<NodeId> nodes = distinct_terminals(start, terminals);
  const std::size_t k = nodes.size();
  BatchOptResult result;
  if (k == 0) return result;
  ARVY_EXPECTS_MSG(k <= 20, "Held-Karp is exponential; too many terminals");

  const std::size_t full = std::size_t{1} << k;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // best[mask][j]: cheapest walk from start visiting exactly `mask`, ending
  // at nodes[j] (j must be in mask).
  std::vector<std::vector<double>> best(full, std::vector<double>(k, kInf));
  std::vector<std::vector<std::uint8_t>> parent(
      full, std::vector<std::uint8_t>(k, 0xff));
  for (std::size_t j = 0; j < k; ++j) {
    best[std::size_t{1} << j][j] = oracle.distance(start, nodes[j]);
  }
  for (std::size_t mask = 1; mask < full; ++mask) {
    for (std::size_t j = 0; j < k; ++j) {
      if (!(mask & (std::size_t{1} << j))) continue;
      const double base = best[mask][j];
      if (base == kInf) continue;
      for (std::size_t next = 0; next < k; ++next) {
        if (mask & (std::size_t{1} << next)) continue;
        const std::size_t extended = mask | (std::size_t{1} << next);
        const double candidate =
            base + oracle.distance(nodes[j], nodes[next]);
        if (candidate < best[extended][next]) {
          best[extended][next] = candidate;
          parent[extended][next] = static_cast<std::uint8_t>(j);
        }
      }
    }
  }
  std::size_t end = 0;
  for (std::size_t j = 1; j < k; ++j) {
    if (best[full - 1][j] < best[full - 1][end]) end = j;
  }
  result.cost = best[full - 1][end];
  // Reconstruct the service order.
  std::vector<NodeId> reversed;
  std::size_t mask = full - 1;
  std::size_t j = end;
  while (true) {
    reversed.push_back(nodes[j]);
    const std::uint8_t p = parent[mask][j];
    mask &= ~(std::size_t{1} << j);
    if (p == 0xff) break;
    j = p;
  }
  ARVY_ASSERT(mask == 0);
  result.order.assign(reversed.rbegin(), reversed.rend());
  return result;
}

BatchOptResult greedy_batch_cost(const graph::DistanceOracle& oracle,
                                 NodeId start,
                                 std::span<const NodeId> terminals) {
  std::vector<NodeId> remaining = distinct_terminals(start, terminals);
  BatchOptResult result;
  NodeId current = start;
  while (!remaining.empty()) {
    std::size_t pick = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const double d = oracle.distance(current, remaining[i]);
      if (d < best) {
        best = d;
        pick = i;
      }
    }
    result.cost += best;
    current = remaining[pick];
    result.order.push_back(current);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return result;
}

}  // namespace arvy::analysis
