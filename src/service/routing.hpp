// The object -> shard routing table: the service's lock-free data plane.
//
// Concury-style control-plane / data-plane split (ROADMAP item 1): a SINGLE
// control-plane writer grows the table (add_objects, add_shards) by building
// an immutable Snapshot and publishing it with one store-release of the
// snapshot pointer; MANY data-plane readers (request admission on any thread,
// shard workers re-resolving frames) do one load-acquire and index a plain
// vector. No locks, no CAS loops, no per-lookup allocation - the read path
// is two dependent loads.
//
// Reclamation: superseded snapshots are retired to a control-plane list and
// freed only at destruction. A reader can therefore never observe a dangling
// snapshot without hazard-pointer machinery; the cost is bounded by the
// number of control-plane growth operations (not by traffic), which is the
// right trade for a table that grows rarely and is read millions of times.
//
// Stability contract: an object's shard assignment NEVER changes once
// published. add_shards only widens the hash range for objects registered
// afterwards, so parked per-object protocol state never has to migrate
// between shard engines (tested by test_routing_table.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "service/request.hpp"
#include "support/assert.hpp"
#include "support/hot.hpp"

namespace arvy::service {

class RoutingTable {
 public:
  // `shard_count` >= 1; `seed` perturbs the placement hash so two services
  // over the same object ids need not co-locate hot objects.
  explicit RoutingTable(std::uint32_t shard_count, std::uint64_t seed = 1);
  ~RoutingTable();

  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  // --- data plane (any thread, lock-free) -----------------------------------

  // The shard owning `object`. Precondition: the object is registered.
  [[nodiscard]] ARVY_HOT std::uint32_t lookup(ObjectId object) const {
    const Snapshot* snap = current_.load(std::memory_order_acquire);
    ARVY_ASSERT_MSG(object < snap->shard_of.size(),
                    "lookup of an unregistered object");
    return snap->shard_of[object];
  }

  [[nodiscard]] ARVY_HOT bool contains(ObjectId object) const {
    return object < current_.load(std::memory_order_acquire)->shard_of.size();
  }

  // Registered objects / shard width of the current snapshot. Like every
  // read, exact-at-some-moment under concurrent control-plane growth.
  [[nodiscard]] std::size_t object_count() const {
    return current_.load(std::memory_order_acquire)->shard_of.size();
  }
  [[nodiscard]] std::uint32_t shard_count() const {
    return current_.load(std::memory_order_acquire)->shard_count;
  }
  // Monotone publication counter; bumps once per control-plane operation.
  [[nodiscard]] std::uint64_t epoch() const {
    return current_.load(std::memory_order_acquire)->epoch;
  }

  // --- control plane (single writer) ----------------------------------------

  // Registers `count` new objects with dense ids starting at object_count(),
  // hashed over the CURRENT shard width. Publishes one new snapshot.
  void add_objects(std::size_t count);

  // Widens the table by `count` shards. Existing assignments are untouched
  // (see the stability contract above). Publishes one new snapshot.
  void add_shards(std::uint32_t count);

 private:
  struct Snapshot {
    std::uint64_t epoch = 0;
    std::uint32_t shard_count = 0;
    std::vector<std::uint32_t> shard_of;  // dense object id -> shard
  };

  void publish(std::unique_ptr<Snapshot> next);

  // The one mutable word of the data plane. Single control-plane writer
  // (store-release publishes the fully built snapshot); readers load-acquire
  // and only ever dereference immutable memory.
  std::atomic<const Snapshot*> current_;  // ARVY-ATOMIC(single-writer)
  // Every snapshot ever published, in epoch order; freed at destruction.
  std::vector<std::unique_ptr<Snapshot>> snapshots_;
  std::uint64_t seed_;
};

}  // namespace arvy::service
