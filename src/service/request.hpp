// The admission frame of the sharded DirectoryService.
//
// One (object, node) acquire crosses the control-plane -> shard boundary as
// exactly this struct, memcpy'd into a claimed RingMailbox slot and read in
// place by the owning shard worker. Listed in docs/layers.toml [msgpod]: the
// flat POD shape is what makes batched admission allocation-free.
#pragma once

#include <cstdint>
#include <type_traits>

#include "graph/graph.hpp"

namespace arvy::service {

// Dense object index into the service's routing table.
using ObjectId = std::uint64_t;

struct ObjectRequest {
  ObjectId object = 0;
  graph::NodeId node = graph::kInvalidNode;
  std::uint32_t reserved = 0;  // pad to 16 bytes; keeps the slot stride fixed
};

static_assert(std::is_trivially_copyable_v<ObjectRequest>,
              "ObjectRequest crosses shard rings as raw bytes");
static_assert(sizeof(ObjectRequest) == 16,
              "ring slot stride is sized to this frame");

}  // namespace arvy::service
