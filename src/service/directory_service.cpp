#include "service/directory_service.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <variant>

#include "graph/spanning_tree.hpp"
#include "proto/messages.hpp"
#include "runtime/ring_mailbox.hpp"
#include "support/assert.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

// Same note as runtime/actor_system.cpp: TSan cannot model standalone fences
// (GCC diagnoses them under -fsanitize=thread). The two seq_cst fences here
// only order the eventcount's flag checks against each other; every
// cross-thread data transfer synchronizes through the ring slot sequence
// words, and a missed wakeup is bounded by the 2 ms timed backstop.
#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
#pragma GCC diagnostic ignored "-Wtsan"
#endif

namespace arvy {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

void accumulate(faults::FaultStats& into, const faults::FaultStats& from) {
  into.drops += from.drops;
  into.retries += from.retries;
  into.duplicates += from.duplicates;
  into.permanent_losses += from.permanent_losses;
  into.lost_finds += from.lost_finds;
  into.lost_tokens += from.lost_tokens;
  into.delays += from.delays;
  into.overhead_distance += from.overhead_distance;
}

}  // namespace

// One shard: a reusable engine plus the parked rows of every object it owns.
//
// Parked state is stored in chunked slabs (kChunk objects per chunk) rather
// than one vector per object: at 1M objects a per-object std::vector would
// pay 1M allocations and 24 bytes of header each; the slab pays one
// allocation per 256 objects and stores exactly n parent words (plus a
// bridge bitmask when the policy needs it) per object. Chunks materialize
// lazily on first park, so a service with 1M registered but 10k touched
// objects holds ~10k rows.
struct DirectoryService::Shard {
  static constexpr std::size_t kChunk = 256;  // objects per row chunk

  std::uint32_t index = 0;
  std::size_t nodes = 0;
  bool bridges_tracked = false;

  std::unique_ptr<proto::SimEngine> engine;

  // Residency: dense local ids assigned at first touch (cold path).
  std::unordered_map<ObjectId, std::uint32_t> local_of;
  std::vector<ObjectId> owners;  // local id -> object id (check_sampled's pool)

  struct Chunk {
    std::unique_ptr<graph::NodeId[]> parents;   // kChunk rows of `nodes` each
    std::unique_ptr<std::uint64_t[]> bridges;   // null unless bridges_tracked
  };
  std::vector<Chunk> rows;

  // The object currently seated in the engine (nullopt right after start).
  std::optional<ObjectId> current;
  std::uint32_t current_local = 0;
  proto::InitialConfig scratch;  // park/adopt shuttle, vectors reused

  // Costs of every PARKED burst; engine->costs() holds the loaded object's.
  proto::CostAccount committed;

  // Cross-thread telemetry. The cost atomics are single-writer (the shard
  // worker flushes after each request); the counters are monotone peeks.
  std::atomic<double> find_cost{0.0};             // ARVY-ATOMIC(single-writer)
  std::atomic<double> token_cost{0.0};            // ARVY-ATOMIC(single-writer)
  std::atomic<std::uint64_t> find_messages{0};    // ARVY-ATOMIC(single-writer)
  std::atomic<std::uint64_t> token_messages{0};   // ARVY-ATOMIC(single-writer)
  std::atomic<std::uint64_t> max_visited{0};      // ARVY-ATOMIC(single-writer)
  std::atomic<std::uint64_t> admitted{0};         // ARVY-ATOMIC(counter)
  std::atomic<std::uint64_t> processed{0};        // ARVY-ATOMIC(counter)
  std::atomic<std::uint64_t> satisfied{0};        // ARVY-ATOMIC(counter)
  std::atomic<std::uint64_t> recoveries{0};       // ARVY-ATOMIC(counter)
  std::atomic<std::uint64_t> resident{0};         // ARVY-ATOMIC(counter)

  // Copied from the injector under the service stats mutex on each processed
  // request, so fault_stats() never races the worker (see note_progress).
  faults::FaultStats fault_snapshot;

  // kLive: admission ring + pinned worker with an eventcount park (the same
  // protocol as ActorSystem::Worker; see run_shard / maybe_wake).
  std::optional<runtime::RingMailbox> ring;
  std::thread thread;
  enum Phase : std::uint32_t { kRunning = 0, kPreparing = 1, kNotified = 2 };
  std::atomic<std::uint32_t> phase{kRunning};  // ARVY-ATOMIC(eventcount)
  support::RankedMutex mutex{support::lock_rank::kWorker, "shard-worker"};
  std::condition_variable_any cv;

  [[nodiscard]] std::size_t bridge_words() const noexcept {
    return (nodes + 63) / 64;
  }
  [[nodiscard]] std::size_t row_bytes() const noexcept {
    return nodes * sizeof(graph::NodeId) +
           (bridges_tracked ? bridge_words() * sizeof(std::uint64_t) : 0);
  }

  [[nodiscard]] const graph::NodeId* row_parents(std::uint32_t local) const {
    const std::size_t chunk = local / kChunk;
    ARVY_ASSERT(chunk < rows.size() && rows[chunk].parents);
    return rows[chunk].parents.get() + (local % kChunk) * nodes;
  }

  void store_row(std::uint32_t local, const proto::InitialConfig& in) {
    const std::size_t chunk = local / kChunk;
    if (chunk >= rows.size()) rows.resize(chunk + 1);
    Chunk& c = rows[chunk];
    if (!c.parents) {
      c.parents = std::make_unique<graph::NodeId[]>(kChunk * nodes);
      if (bridges_tracked) {
        c.bridges = std::make_unique<std::uint64_t[]>(kChunk * bridge_words());
        std::memset(c.bridges.get(), 0,
                    kChunk * bridge_words() * sizeof(std::uint64_t));
      }
    }
    graph::NodeId* row = c.parents.get() + (local % kChunk) * nodes;
    std::memcpy(row, in.parent.data(), nodes * sizeof(graph::NodeId));
    if (bridges_tracked) {
      std::uint64_t* bits = c.bridges.get() + (local % kChunk) * bridge_words();
      std::memset(bits, 0, bridge_words() * sizeof(std::uint64_t));
      for (std::size_t v = 0; v < nodes; ++v) {
        if (in.parent_edge_is_bridge[v]) bits[v / 64] |= 1ULL << (v % 64);
      }
    }
  }

  void load_row(std::uint32_t local, proto::InitialConfig& out) const {
    const graph::NodeId* row = row_parents(local);
    out.parent.assign(row, row + nodes);
    out.parent_edge_is_bridge.assign(nodes, false);
    out.root = graph::kInvalidNode;
    for (std::size_t v = 0; v < nodes; ++v) {
      if (row[v] == static_cast<graph::NodeId>(v)) {
        out.root = static_cast<graph::NodeId>(v);
      }
    }
    if (bridges_tracked) {
      const std::uint64_t* bits =
          rows[local / kChunk].bridges.get() + (local % kChunk) * bridge_words();
      for (std::size_t v = 0; v < nodes; ++v) {
        if ((bits[v / 64] >> (v % 64)) & 1ULL) out.parent_edge_is_bridge[v] = true;
      }
    }
    ARVY_ASSERT_MSG(out.root != graph::kInvalidNode,
                    "parked row lost its root self-loop");
  }
};

// --- construction ------------------------------------------------------------

DirectoryService::DirectoryService(const graph::Graph& g,
                                   std::size_t object_count,
                                   std::size_t shard_count, Options options,
                                   ServiceMode mode)
    : graph_(&g),
      options_(std::move(options)),
      mode_(mode),
      routing_(static_cast<std::uint32_t>(shard_count), options_.seed) {
  ARVY_EXPECTS(shard_count >= 1);
  ARVY_EXPECTS(g.node_count() >= 2);
  policy_ = resolve_policy(options_);
  track_bridges_ = options_.policy == proto::PolicyKind::kBridge;
  build_canonical();
  routing_.add_objects(object_count);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(make_shard(static_cast<std::uint32_t>(s)));
  }
}

DirectoryService::~DirectoryService() {
  if (!is_shut_down()) shutdown();
}

void DirectoryService::build_canonical() {
  // Slot 0 is exactly what a standalone Directory would resolve (respecting
  // Options::initial), so object 0 of a service run replays a Directory run
  // bit-for-bit. Further slots spread roots across the graph the way
  // MultiDirectory spread its per-object trees, capped so canonical memory
  // stays at roots x nodes, independent of the object count.
  canonical_.push_back(resolve_initial_config(*graph_, options_));
  if (options_.initial.has_value() ||
      options_.policy == proto::PolicyKind::kBridge) {
    return;  // one authoritative tree (Algorithm 2's split fixes the root)
  }
  const std::size_t n = graph_->node_count();
  const std::size_t roots = std::min(n, kMaxCanonicalRoots);
  for (std::size_t j = 1; j < roots; ++j) {
    const auto root = static_cast<graph::NodeId>((j * n) / roots);
    canonical_.push_back(proto::from_tree(shortest_path_tree(*graph_, root)));
  }
}

std::unique_ptr<DirectoryService::Shard> DirectoryService::make_shard(
    std::uint32_t index) {
  auto shard = std::make_unique<Shard>();
  shard->index = index;
  shard->nodes = graph_->node_count();
  shard->bridges_tracked = track_bridges_;

  proto::SimEngine::Options engine_options;
  engine_options.discipline = options_.discipline;
  if (options_.delay) engine_options.delay = options_.delay->clone();
  engine_options.seed = options_.seed;
  engine_options.faults = options_.faults.for_shard(index);
  engine_options.retry = options_.retry;
  engine_options.record_schedule = options_.record_schedule;
  shard->engine = std::make_unique<proto::SimEngine>(
      *graph_, canonical_[0], *policy_, std::move(engine_options));

  Shard* raw = shard.get();
  // Always installed: the hook is also the satisfied counter. The observer
  // branch is dead until on_satisfied is called (pre-acquire, see header).
  shard->engine->set_satisfied_hook(
      [this, raw](const proto::RequestRecord& record) {
        raw->satisfied.fetch_add(1, std::memory_order_relaxed);
        if (satisfied_observer_) {
          satisfied_observer_(raw->current.value_or(0), record);
        }
      });
  if (message_observer_) install_message_hook(*raw);  // add_shards after hookup

  if (mode_ == ServiceMode::kLive) {
    shard->ring.emplace(options_.ring_capacity, sizeof(service::ObjectRequest));
    shard->thread = std::thread([this, raw] { run_shard(*raw); });
  }
  return shard;
}

// --- facade ------------------------------------------------------------------

std::size_t DirectoryService::node_count() const noexcept {
  return graph_->node_count();
}

std::size_t DirectoryService::object_count() const {
  return routing_.object_count();
}

std::size_t DirectoryService::shard_count() const noexcept {
  return shards_.size();
}

std::uint64_t DirectoryService::acquire(ObjectId object, graph::NodeId node) {
  ARVY_EXPECTS_MSG(!is_shut_down(), "acquire after shutdown");
  ARVY_EXPECTS(node < graph_->node_count());
  Shard& shard = *shards_[routing_.lookup(object)];
  const std::uint64_t ticket =
      submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  shard.admitted.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == ServiceMode::kSim) {
    process_request(shard, object, node);
  } else {
    enqueue(shard, service::ObjectRequest{object, node, 0});
  }
  return ticket;
}

std::uint64_t DirectoryService::submit_batch(
    std::span<const service::ObjectRequest> batch) {
  ARVY_EXPECTS_MSG(!is_shut_down(), "submit_batch after shutdown");
  const std::uint64_t base =
      submitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  for (const service::ObjectRequest& request : batch) {
    Shard& shard = *shards_[routing_.lookup(request.object)];
    shard.admitted.fetch_add(1, std::memory_order_relaxed);
    if (mode_ == ServiceMode::kSim) {
      process_request(shard, request.object, request.node);
    } else {
      enqueue(shard, request);
    }
  }
  return base + batch.size();
}

void DirectoryService::acquire_and_wait(ObjectId object, graph::NodeId node) {
  Shard& shard = *shards_[routing_.lookup(object)];
  acquire(object, node);
  if (mode_ == ServiceMode::kSim) return;  // processed inline
  // The ring is FIFO and our frame is fully pushed, so its ring position is
  // at most the admission count read AFTER the push completes; once the
  // shard has processed that many frames, ours is among them.
  const std::uint64_t target = shard.admitted.load(std::memory_order_relaxed);
  std::unique_lock<support::RankedMutex> lock(stats_mutex_);
  progress_cv_.wait(lock, [&shard, target] {
    return shard.processed.load(std::memory_order_relaxed) >= target;
  });
}

bool DirectoryService::drain(std::chrono::milliseconds budget) {
  // Relaxed: the counter only names a target; every ordering the waiter
  // needs comes from the stats mutex the predicate runs under.
  const std::uint64_t target = submitted_.load(std::memory_order_relaxed);
  if (mode_ == ServiceMode::kSim) return satisfied_count() >= target;
  bool processed_all = false;
  {
    std::unique_lock<support::RankedMutex> lock(stats_mutex_);
    processed_all = progress_cv_.wait_for(lock, budget, [this, target] {
      std::uint64_t processed = 0;
      for (const auto& shard : shards_) {
        processed += shard->processed.load(std::memory_order_relaxed);
      }
      return processed >= target;
    });
  }
  return processed_all && satisfied_count() >= target;
}

std::uint64_t DirectoryService::submitted_count() const noexcept {
  return submitted_.load(std::memory_order_relaxed);
}

std::uint64_t DirectoryService::satisfied_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->satisfied.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t DirectoryService::processed_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->processed.load(std::memory_order_relaxed);
  }
  return total;
}

proto::CostAccount DirectoryService::cost_snapshot() const {
  proto::CostAccount account;
  for (const auto& shard : shards_) {
    account.find_distance += shard->find_cost.load(std::memory_order_relaxed);
    account.token_distance += shard->token_cost.load(std::memory_order_relaxed);
    account.find_messages +=
        shard->find_messages.load(std::memory_order_relaxed);
    account.token_messages +=
        shard->token_messages.load(std::memory_order_relaxed);
    account.max_visited_length = std::max(
        account.max_visited_length,
        static_cast<std::size_t>(
            shard->max_visited.load(std::memory_order_relaxed)));
  }
  return account;
}

faults::FaultStats DirectoryService::shard_fault_stats(
    std::size_t shard_index) const {
  ARVY_EXPECTS(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  if (mode_ == ServiceMode::kSim || is_shut_down()) {
    if (const faults::FaultInjector* injector = shard.engine->injector()) {
      return injector->stats();
    }
    return {};
  }
  std::lock_guard<support::RankedMutex> lock(stats_mutex_);
  return shard.fault_snapshot;
}

faults::FaultStats DirectoryService::fault_stats() const {
  faults::FaultStats total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    accumulate(total, shard_fault_stats(s));
  }
  return total;
}

std::uint64_t DirectoryService::recovery_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->recoveries.load(std::memory_order_relaxed);
  }
  return total;
}

// --- observers ---------------------------------------------------------------

void DirectoryService::on_message(MessageObserver observer) {
  message_observer_ = std::move(observer);
  for (auto& shard : shards_) install_message_hook(*shard);
}

void DirectoryService::on_satisfied(SatisfiedObserver observer) {
  // The per-shard satisfied hook (installed at construction) consults this
  // slot on every satisfaction; nothing to re-install.
  satisfied_observer_ = std::move(observer);
}

void DirectoryService::install_message_hook(Shard& shard) {
  if (!message_observer_) {
    shard.engine->set_message_hook(nullptr);
    return;
  }
  Shard* raw = &shard;
  shard.engine->set_message_hook(
      [this, raw](const sim::MessageBus<proto::Message>::InFlight& entry) {
        MessageEvent event;
        event.from = entry.from;
        event.to = entry.to;
        event.at = entry.deliver_at;
        event.distance = entry.distance;
        if (const auto* find =
                std::get_if<proto::FindMessage>(&entry.payload)) {
          event.is_find = true;
          event.request = find->request;
        }
        message_observer_(raw->current.value_or(0), event);
      });
}

// --- control plane -----------------------------------------------------------

void DirectoryService::add_objects(std::size_t count) {
  ARVY_EXPECTS_MSG(!is_shut_down(), "add_objects after shutdown");
  routing_.add_objects(count);
}

void DirectoryService::add_shards(std::size_t count) {
  ARVY_EXPECTS_MSG(mode_ == ServiceMode::kSim,
                   "add_shards is kSim-only; size the live pool up front");
  ARVY_EXPECTS(count >= 1);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(make_shard(static_cast<std::uint32_t>(shards_.size())));
  }
  // Publish only after the shards exist: a concurrent lookup of a new
  // object must never route to an unconstructed shard.
  routing_.add_shards(static_cast<std::uint32_t>(count));
}

std::uint64_t DirectoryService::routing_epoch() const {
  return routing_.epoch();
}

// --- inspection --------------------------------------------------------------

const proto::InitialConfig& DirectoryService::canonical_config(
    ObjectId object) const {
  return canonical_[object % canonical_.size()];
}

std::uint64_t DirectoryService::object_seed(ObjectId object) const noexcept {
  // MultiDirectory's per-object stream: object 0 replays a standalone
  // Directory with the same seed.
  return options_.seed + object * kGolden;
}

std::optional<graph::NodeId> DirectoryService::holder(ObjectId object) const {
  ARVY_EXPECTS_MSG(mode_ == ServiceMode::kSim || is_shut_down(),
                   "holders may only be inspected when quiescent (kSim) or "
                   "after shutdown (kLive)");
  const Shard& shard = *shards_[routing_.lookup(object)];
  if (shard.current == object) return shard.engine->token_holder();
  const auto it = shard.local_of.find(object);
  if (it == shard.local_of.end()) return canonical_config(object).root;
  const graph::NodeId* row = shard.row_parents(it->second);
  for (std::size_t v = 0; v < shard.nodes; ++v) {
    if (row[v] == static_cast<graph::NodeId>(v)) {
      return static_cast<graph::NodeId>(v);
    }
  }
  return std::nullopt;  // unreachable: parked rows always keep a root
}

ServiceCheckReport DirectoryService::check_sampled(std::size_t per_shard,
                                                   std::uint64_t seed) {
  ARVY_EXPECTS_MSG(mode_ == ServiceMode::kSim || is_shut_down(),
                   "check_sampled needs a quiescent service");
  ServiceCheckReport report;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.owners.empty() && !shard.current.has_value()) continue;
    support::Rng rng(seed ^ ((shard.index + 1ULL) * kGolden));
    const std::size_t count = std::min(per_shard, shard.owners.size());
    for (std::size_t k = 0; k < count; ++k) {
      const ObjectId object = shard.owners[rng.next_below(shard.owners.size())];
      switch_object(shard, object);
      const verify::Configuration cfg = verify::capture(*shard.engine);
      const verify::CheckResult result = verify::check_all(cfg);
      ++report.objects_checked;
      if (!result.ok) {
        ++report.failures;
        if (report.first_failure.empty()) {
          report.first_failure =
              "object " + std::to_string(object) + ": " + result.detail;
        }
      }
    }
  }
  return report;
}

std::size_t DirectoryService::resident_objects() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += static_cast<std::size_t>(
        shard->resident.load(std::memory_order_relaxed));
  }
  return total;
}

std::size_t DirectoryService::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += static_cast<std::size_t>(
                 shard->resident.load(std::memory_order_relaxed)) *
             shard->row_bytes();
  }
  return total;
}

// --- shutdown ----------------------------------------------------------------

void DirectoryService::shutdown() {
  if (is_shut_down()) return;
  if (mode_ == ServiceMode::kLive) {
    // Same order as ActorSystem::shutdown: raise the flag, close admission,
    // wake everyone (a parked worker observes stopping_ through wake_slow's
    // mutex handoff), then join. Workers drain every published frame before
    // leaving, so a quiescent shutdown loses nothing.
    stopping_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      if (shard->ring) shard->ring->close();
    }
    for (auto& shard : shards_) wake_slow(*shard);
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }
  // Publish only after every join: holder()/check_sampled rely on the joins'
  // happens-before edges the moment this flag reads true.
  shut_down_.store(true, std::memory_order_release);
}

// --- admission hot path ------------------------------------------------------

ARVY_HOT void DirectoryService::enqueue(Shard& shard,
                                        const service::ObjectRequest& request) {
  // Blocking push: a full ring is bounded-buffer backpressure on the
  // submitter. False only when the ring is closed, i.e. acquire raced
  // shutdown - a caller contract violation.
  const bool pushed = shard.ring->push([&request](std::byte* slot) {
    std::memcpy(slot, &request, sizeof(request));
  });
  ARVY_ASSERT_MSG(pushed, "acquire raced shutdown");
  maybe_wake(shard);
}

ARVY_HOT void DirectoryService::maybe_wake(Shard& shard) {
  // Publish-then-check side of the eventcount: the fence orders this
  // thread's frame publish before the phase read, pairing with the worker's
  // seq_cst kPreparing store before its re-scan (Dekker).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.phase.load(std::memory_order_relaxed) != Shard::kRunning) {
    wake_slow(shard);
  }
}

ARVY_COLD void DirectoryService::wake_slow(Shard& shard) {
  {
    std::lock_guard<support::RankedMutex> lock(shard.mutex);
    shard.phase.store(Shard::kNotified, std::memory_order_relaxed);
  }
  shard.cv.notify_one();
}

// --- shard worker ------------------------------------------------------------

void DirectoryService::run_shard(Shard& shard) {
  for (;;) {
    if (drain_ring(shard)) continue;

    // Eventcount park (the ActorSystem::run_worker protocol): announce
    // intent with a seq_cst store, re-scan, and only then wait. A producer
    // that published after the re-scan began observes kPreparing past its
    // own fence and takes wake_slow; one that published before is caught by
    // the re-scan. The timed wait is a backstop, not a correctness need.
    shard.phase.store(Shard::kPreparing, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (shard.ring->has_ready()) {
      shard.phase.store(Shard::kRunning, std::memory_order_relaxed);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      shard.phase.store(Shard::kRunning, std::memory_order_relaxed);
      return;  // ring drained and the service is stopping
    }
    {
      std::unique_lock<support::RankedMutex> lock(shard.mutex);
      if (shard.phase.load(std::memory_order_relaxed) == Shard::kPreparing &&
          !stopping_.load(std::memory_order_acquire)) {
        shard.cv.wait_for(lock, std::chrono::milliseconds(2));
      }
    }
    shard.phase.store(Shard::kRunning, std::memory_order_relaxed);
  }
}

bool DirectoryService::drain_ring(Shard& shard) {
  const std::size_t batch = shard.ring->acquire_batch(options_.batch_size);
  if (batch == 0) return false;
  for (std::size_t k = 0; k < batch; ++k) {
    service::ObjectRequest request;
    std::memcpy(&request, shard.ring->batch_slot(k), sizeof(request));
    process_request(shard, request.object, request.node);
  }
  shard.ring->release_batch(batch);
  return true;
}

void DirectoryService::process_request(Shard& shard, ObjectId object,
                                       graph::NodeId node) {
  switch_object(shard, object);
  // submit_queued, not submit: a second request at a node whose first is
  // still outstanding (possible under faults, or bursty per-object traffic)
  // parks behind it and is satisfied by the same token visit (§3's remark).
  shard.engine->submit_queued(node);
  shard.engine->run_until_idle();
  flush_costs(shard);
  note_progress(shard);
}

void DirectoryService::switch_object(Shard& shard, ObjectId object) {
  if (shard.current == object) return;
  park_loaded(shard);
  const auto [it, inserted] = shard.local_of.try_emplace(
      object, static_cast<std::uint32_t>(shard.owners.size()));
  if (inserted) {
    shard.owners.push_back(object);
    shard.resident.fetch_add(1, std::memory_order_relaxed);
    shard.engine->adopt_state(canonical_config(object), object_seed(object));
  } else {
    shard.load_row(it->second, shard.scratch);
    shard.engine->adopt_state(shard.scratch, object_seed(object));
  }
  shard.current = object;
  shard.current_local = it->second;
}

ARVY_COLD void DirectoryService::park_loaded(Shard& shard) {
  if (!shard.current.has_value()) return;
  const proto::CostAccount& costs = shard.engine->costs();
  shard.committed.find_distance += costs.find_distance;
  shard.committed.token_distance += costs.token_distance;
  shard.committed.find_messages += costs.find_messages;
  shard.committed.token_messages += costs.token_messages;
  shard.committed.max_visited_length =
      std::max(shard.committed.max_visited_length, costs.max_visited_length);
  if (shard.engine->park_state(shard.scratch)) {
    shard.store_row(shard.current_local, shard.scratch);
  } else {
    // The token was permanently lost to fault injection (or a find is in
    // limbo): the documented crash-recovery semantics re-seat the object on
    // its canonical initial tree.
    shard.store_row(shard.current_local, canonical_config(*shard.current));
    shard.recoveries.fetch_add(1, std::memory_order_relaxed);
  }
  shard.current.reset();
}

void DirectoryService::flush_costs(Shard& shard) {
  // Single-writer commit (this shard's worker): committed covers parked
  // bursts, the engine account covers the loaded object since adoption.
  const proto::CostAccount& costs = shard.engine->costs();
  shard.find_cost.store(shard.committed.find_distance + costs.find_distance,
                        std::memory_order_relaxed);
  shard.token_cost.store(shard.committed.token_distance + costs.token_distance,
                         std::memory_order_relaxed);
  shard.find_messages.store(
      shard.committed.find_messages + costs.find_messages,
      std::memory_order_relaxed);
  shard.token_messages.store(
      shard.committed.token_messages + costs.token_messages,
      std::memory_order_relaxed);
  const auto visited = static_cast<std::uint64_t>(std::max(
      shard.committed.max_visited_length, costs.max_visited_length));
  if (visited > shard.max_visited.load(std::memory_order_relaxed)) {
    shard.max_visited.store(visited, std::memory_order_relaxed);
  }
}

ARVY_COLD void DirectoryService::note_progress(Shard& shard) {
  {
    // The mutex, not the atomicity, makes the CV protocol sound: a waiter
    // evaluates its predicate under stats_mutex_, so this increment either
    // happens-before the check or lands after the waiter parked, in which
    // case notify_all wakes it (same argument as ActorSystem's
    // note_satisfied).
    std::lock_guard<support::RankedMutex> lock(stats_mutex_);
    shard.processed.fetch_add(1, std::memory_order_relaxed);
    if (const faults::FaultInjector* injector = shard.engine->injector()) {
      shard.fault_snapshot = injector->stats();
    }
  }
  progress_cv_.notify_all();
}

}  // namespace arvy
