#include "service/routing.hpp"

namespace arvy::service {

namespace {

// splitmix64 finalizer: object ids are dense, so the placement hash must
// decorrelate neighbouring ids or consecutive objects would stripe shards
// in lockstep with every workload's iteration order.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RoutingTable::RoutingTable(std::uint32_t shard_count, std::uint64_t seed)
    : seed_(seed) {
  ARVY_EXPECTS(shard_count >= 1);
  auto initial = std::make_unique<Snapshot>();
  initial->epoch = 1;
  initial->shard_count = shard_count;
  current_.store(initial.get(), std::memory_order_release);
  snapshots_.push_back(std::move(initial));
}

RoutingTable::~RoutingTable() = default;

void RoutingTable::add_objects(std::size_t count) {
  const Snapshot& old = *snapshots_.back();
  auto next = std::make_unique<Snapshot>();
  next->epoch = old.epoch + 1;
  next->shard_count = old.shard_count;
  next->shard_of.reserve(old.shard_of.size() + count);
  next->shard_of = old.shard_of;
  for (std::size_t i = 0; i < count; ++i) {
    const auto object = static_cast<ObjectId>(old.shard_of.size() + i);
    next->shard_of.push_back(
        static_cast<std::uint32_t>(mix(object ^ seed_) % next->shard_count));
  }
  publish(std::move(next));
}

void RoutingTable::add_shards(std::uint32_t count) {
  ARVY_EXPECTS(count >= 1);
  const Snapshot& old = *snapshots_.back();
  auto next = std::make_unique<Snapshot>();
  next->epoch = old.epoch + 1;
  next->shard_count = old.shard_count + count;
  next->shard_of = old.shard_of;  // existing placements are immutable
  publish(std::move(next));
}

void RoutingTable::publish(std::unique_ptr<Snapshot> next) {
  // Store-release pairs with the data plane's load-acquire: a reader that
  // sees the new pointer sees every element written above. The superseded
  // snapshot stays alive in snapshots_, so in-flight readers of the OLD
  // pointer are safe too.
  current_.store(next.get(), std::memory_order_release);
  snapshots_.push_back(std::move(next));
}

}  // namespace arvy::service
