// DirectoryService: the sharded multi-object directory facade.
//
// The paper's §1 observes that "multiple independent instances of the
// distributed directory protocol in parallel can be used to coordinate
// access to multiple data items". The old MultiDirectory realized that as a
// flat vector of full Directory instances - one engine (and one distance
// oracle) per object, which tops out at thousands of objects. This service
// realizes it at ROADMAP item 1 scale (1M+ objects) with a control-plane /
// data-plane split:
//
//   caller ──acquire(object, node)──▶ RoutingTable (lock-free lookup)
//                                        │ shard id
//                                        ▼
//                              per-shard RingMailbox of POD ObjectRequest
//                                        │ batched drain
//                                        ▼
//                    shard worker: ONE reusable SimEngine + parked per-object
//                    trees (parent pointers + bridge bits, ~4·n bytes/object)
//
//  - Objects are hashed to shards at registration (RoutingTable: versioned
//    epoch-published snapshots, single control-plane writer, lock-free
//    readers). An object's shard never changes, so parked state never
//    migrates.
//  - Each shard owns ONE discrete-event engine; the expensive per-engine
//    state (distance oracle, bus, policy clone) is shard infrastructure.
//    Per-object protocol state parks into a compact row (SimEngine::
//    park_state/adopt_state) and is materialized lazily on first touch, so
//    resident memory scales with objects actually used, not registered.
//  - ServiceMode::kSim processes requests inline on the caller's thread:
//    deterministic, seedable, inspectable any time the service is quiescent.
//    ServiceMode::kLive pins one worker thread per shard, reusing the PR 8
//    runtime machinery (Vyukov MPSC ring admission, eventcount parking), so
//    independent shards satisfy requests in parallel.
//  - Faults: Options::faults is scoped per shard (FaultPlan::for_shard - the
//    `shards` selector plus per-shard seed decorrelation); each shard engine
//    owns an independent injector. A token permanently lost to injection
//    re-seeds that object from its canonical initial tree at the next park
//    (crash-recovery semantics; counted in recovery_count()).
//  - Verification: check_sampled() replays verify::check_all (Lemma 2) over
//    a sample of touched objects on every shard.
//
// Threading contract (kLive; kSim is single-threaded by construction):
//  - acquire/submit_batch/drain/counters are callable from any thread;
//    add_objects is the single control-plane writer (one thread at a time);
//  - observers must be installed before the first acquire;
//  - holder/check_sampled/shard inspection are legal in kSim whenever the
//    service is quiescent, and in kLive only after shutdown() (the joins
//    provide the happens-before edge, exactly like ActorSystem::node);
//  - fault_stats in kLive is exact after a successful drain() or after
//    shutdown(); add_shards is kSim-only (grow before construction in kLive);
//  - mutexes are rank-checked: stats < worker is the only nesting used here.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/directory.hpp"
#include "proto/engine.hpp"
#include "proto/options.hpp"
#include "service/request.hpp"
#include "service/routing.hpp"
#include "support/hot.hpp"
#include "support/lock_rank.hpp"

namespace arvy {

enum class ServiceMode { kSim, kLive };

// Result of a sampled Lemma-2 sweep across shards.
struct ServiceCheckReport {
  std::size_t objects_checked = 0;
  std::size_t failures = 0;
  std::string first_failure;  // empty when failures == 0

  explicit operator bool() const noexcept { return failures == 0; }
};

class DirectoryService {
 public:
  using ObjectId = service::ObjectId;
  using MessageObserver =
      std::function<void(ObjectId, const MessageEvent&)>;
  using SatisfiedObserver =
      std::function<void(ObjectId, const proto::RequestRecord&)>;

  // `g` must outlive the service. Objects get dense ids [0, object_count);
  // grow later with add_objects. In kLive mode one worker thread is pinned
  // per shard (Options::workers is ignored: the shard count IS the worker
  // count).
  DirectoryService(const graph::Graph& g, std::size_t object_count,
                   std::size_t shard_count, Options options = {},
                   ServiceMode mode = ServiceMode::kSim);
  ~DirectoryService();

  DirectoryService(const DirectoryService&) = delete;
  DirectoryService& operator=(const DirectoryService&) = delete;

  // --- facade (AnyDirectory's contract, with an object axis) ----------------
  [[nodiscard]] std::size_t node_count() const noexcept;
  [[nodiscard]] std::size_t object_count() const;
  [[nodiscard]] std::size_t shard_count() const noexcept;
  [[nodiscard]] ServiceMode mode() const noexcept { return mode_; }

  // Asynchronous acquire: routed, ring-enqueued (kLive) or processed inline
  // (kSim). Returns the admission ticket (1-based, monotone). Requests for
  // one object are satisfied in admission order.
  std::uint64_t acquire(ObjectId object, graph::NodeId node);
  // Batched admission: every pair is routed and enqueued without per-request
  // allocation; returns the last ticket.
  std::uint64_t submit_batch(std::span<const service::ObjectRequest> batch);
  // Synchronous acquire: returns once the request's shard has processed it.
  void acquire_and_wait(ObjectId object, graph::NodeId node);

  // Waits until every admitted request has been PROCESSED (satisfied, or
  // excused by a recorded permanent fault loss), or the wall budget elapses
  // (kSim quiesces inline, so the budget never binds there). Returns whether
  // every admitted request is satisfied.
  [[nodiscard]] bool drain(
      std::chrono::milliseconds budget = std::chrono::milliseconds(10'000));

  [[nodiscard]] std::uint64_t submitted_count() const noexcept;
  [[nodiscard]] std::uint64_t satisfied_count() const;
  [[nodiscard]] std::uint64_t processed_count() const;

  // Aggregate cost account across all shards (wait-free sum of per-shard
  // single-writer atomics, exact when quiescent).
  [[nodiscard]] proto::CostAccount cost_snapshot() const;
  [[nodiscard]] faults::FaultStats fault_stats() const;
  [[nodiscard]] faults::FaultStats shard_fault_stats(std::size_t shard) const;
  // Objects re-seeded from their canonical tree after a catastrophic loss.
  [[nodiscard]] std::uint64_t recovery_count() const;

  // --- observers (install before the first acquire) -------------------------
  void on_message(MessageObserver observer);
  void on_satisfied(SatisfiedObserver observer);

  // --- control plane (single writer) ----------------------------------------
  // Registers `count` more objects (ids continue densely). Callable while
  // kLive workers run: the routing table is grown by snapshot publication.
  void add_objects(std::size_t count);
  // Adds shards; existing object placements are untouched. kSim only.
  void add_shards(std::size_t count);
  [[nodiscard]] std::uint64_t routing_epoch() const;
  [[nodiscard]] ARVY_HOT std::uint32_t route(ObjectId object) const {
    return routing_.lookup(object);
  }

  // --- inspection (kSim: quiescent any time; kLive: after shutdown()) -------
  [[nodiscard]] std::optional<graph::NodeId> holder(ObjectId object) const;
  // Lemma-2 sweep over up to `per_shard` touched objects of every shard.
  [[nodiscard]] ServiceCheckReport check_sampled(std::size_t per_shard = 4,
                                                 std::uint64_t seed = 1);

  // Materialized (touched) objects / approximate bytes of parked state.
  [[nodiscard]] std::size_t resident_objects() const;
  [[nodiscard]] std::size_t resident_bytes() const;

  // Stops and joins the shard workers (kLive; a kSim no-op besides the
  // flag). Idempotent. No acquire may race or follow it.
  void shutdown();
  [[nodiscard]] bool is_shut_down() const noexcept {
    return shut_down_.load(std::memory_order_acquire);
  }

 private:
  struct Shard;

  // Spread cap for the canonical initial trees (memory is roots x nodes).
  static constexpr std::size_t kMaxCanonicalRoots = 32;

  void build_canonical();
  void install_message_hook(Shard& shard);
  [[nodiscard]] const proto::InitialConfig& canonical_config(
      ObjectId object) const;
  [[nodiscard]] std::uint64_t object_seed(ObjectId object) const noexcept;
  std::unique_ptr<Shard> make_shard(std::uint32_t index);

  // Hot admission path: POD copy into the shard's ring + eventcount wake.
  ARVY_HOT void enqueue(Shard& shard, const service::ObjectRequest& request);
  ARVY_HOT void maybe_wake(Shard& shard);
  ARVY_COLD void wake_slow(Shard& shard);

  // Shard-worker side (the control thread plays worker in kSim).
  void run_shard(Shard& shard);
  bool drain_ring(Shard& shard);
  void process_request(Shard& shard, ObjectId object, graph::NodeId node);
  void switch_object(Shard& shard, ObjectId object);
  ARVY_COLD void park_loaded(Shard& shard);
  void flush_costs(Shard& shard);
  ARVY_COLD void note_progress(Shard& shard);

  const graph::Graph* graph_;
  Options options_;
  ServiceMode mode_;
  std::unique_ptr<proto::NewParentPolicy> policy_;
  // Canonical initial trees, one per spread root (a single entry for
  // PolicyKind::kBridge, whose Algorithm 2 split fixes the root). Built once
  // in the constructor, immutable afterwards (workers read concurrently).
  std::vector<proto::InitialConfig> canonical_;
  bool track_bridges_ = false;

  service::RoutingTable routing_;
  std::vector<std::unique_ptr<Shard>> shards_;

  MessageObserver message_observer_;
  SatisfiedObserver satisfied_observer_;

  std::atomic<std::uint64_t> submitted_{0};  // ARVY-ATOMIC(counter)
  // The CV protocol mirrors ActorSystem::note_satisfied: per-shard processed
  // counters increment under stats_mutex_, waiters evaluate their predicate
  // under it, so no wakeup is ever lost.
  mutable support::RankedMutex stats_mutex_{support::lock_rank::kStats,
                                            "service-stats"};
  std::condition_variable_any progress_cv_;

  std::atomic<bool> stopping_{false};   // ARVY-ATOMIC(flag)
  std::atomic<bool> shut_down_{false};  // ARVY-ATOMIC(flag)
};

}  // namespace arvy
