#include "raymond/raymond.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arvy::raymond {

RaymondEngine::RaymondEngine(const graph::Graph& g,
                             const graph::RootedTree& tree, Options options)
    : graph_(&g), oracle_(g), bus_([&options] {
        sim::MessageBus<Message>::Options bus_options;
        bus_options.discipline = options.discipline;
        bus_options.seed = options.seed;
        bus_options.delay = std::move(options.delay);
        return bus_options;
      }()) {
  ARVY_EXPECTS(tree.node_count() == g.node_count());
  ARVY_EXPECTS(tree.is_valid());
  nodes_.resize(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    nodes_[v].id = v;
    // Raymond's holder pointers: towards the token, i.e. the tree parent;
    // the root holds the token and points at itself.
    nodes_[v].holder = tree.parent[v] == v ? v : tree.parent[v];
  }
  bus_.set_handler([this](const sim::MessageBus<Message>::InFlight& entry) {
    on_delivery(entry);
  });
}

RequestId RaymondEngine::submit(NodeId v) {
  ARVY_EXPECTS(v < nodes_.size());
  RaymondNode& node = nodes_[v];
  ARVY_EXPECTS_MSG(!node.outstanding.has_value(),
                   "duplicate outstanding request (model rule)");
  const RequestId id = static_cast<RequestId>(requests_.size()) + 1;
  requests_.push_back({id, v, bus_.now(), std::nullopt, 0});
  node.outstanding = id;
  node.request_queue.push_back(v);  // SELF
  note_queue(v);
  assign_privilege(v);
  make_request(v);
  return id;
}

void RaymondEngine::run_sequential(std::span<const NodeId> sequence) {
  for (NodeId v : sequence) {
    const RequestId id = submit(v);
    run_until_idle();
    ARVY_ASSERT_MSG(requests_[id - 1].satisfied_at.has_value(),
                    "sequential Raymond request left unsatisfied");
  }
}

std::size_t RaymondEngine::unsatisfied_count() const {
  return static_cast<std::size_t>(
      std::count_if(requests_.begin(), requests_.end(), [](const auto& r) {
        return !r.satisfied_at.has_value();
      }));
}

std::optional<NodeId> RaymondEngine::token_holder() const {
  if (token_in_flight_) return std::nullopt;
  for (const RaymondNode& node : nodes_) {
    if (node.holder == node.id) return node.id;
  }
  return std::nullopt;
}

const RaymondNode& RaymondEngine::node(NodeId v) const {
  ARVY_EXPECTS(v < nodes_.size());
  return nodes_[v];
}

void RaymondEngine::on_delivery(
    const sim::MessageBus<Message>::InFlight& entry) {
  const NodeId v = entry.to;
  RaymondNode& node = nodes_[v];
  if (std::holds_alternative<RequestMessage>(entry.payload)) {
    // A neighbour's subtree wants the token.
    node.request_queue.push_back(entry.from);
    note_queue(v);
  } else {
    // PRIVILEGE arrives: this node becomes the tree's root.
    ARVY_ASSERT(token_in_flight_);
    token_in_flight_ = false;
    node.holder = v;
    node.asked = false;  // the ask (if any) has been answered
  }
  assign_privilege(v);
  make_request(v);
}

void RaymondEngine::assign_privilege(NodeId v) {
  RaymondNode& node = nodes_[v];
  while (node.holder == v && !node.using_token &&
         !node.request_queue.empty()) {
    const NodeId head = node.request_queue.front();
    node.request_queue.pop_front();
    if (head == v) {
      // Enter and immediately leave the critical section (token use is
      // instantaneous in the directory abstraction).
      ARVY_ASSERT_MSG(node.outstanding.has_value(),
                      "SELF queued without an outstanding request");
      auto& record = requests_.at(*node.outstanding - 1);
      ARVY_ASSERT(!record.satisfied_at.has_value());
      record.satisfied_at = bus_.now();
      record.satisfaction_index = ++satisfied_count_;
      node.outstanding.reset();
      continue;  // exit CS; try to pass the token on
    }
    // Hand the token one tree hop towards the requesting subtree.
    node.holder = head;
    node.asked = false;
    token_in_flight_ = true;
    send(v, head, Message{TokenMessage{}});
    break;
  }
}

void RaymondEngine::make_request(NodeId v) {
  RaymondNode& node = nodes_[v];
  if (node.holder != v && !node.request_queue.empty() && !node.asked) {
    node.asked = true;
    send(v, node.holder, Message{RequestMessage{}});
  }
}

void RaymondEngine::send(NodeId from, NodeId to, Message message) {
  const double distance = oracle_.distance(from, to);
  if (std::holds_alternative<RequestMessage>(message)) {
    costs_.request_distance += distance;
    ++costs_.request_messages;
  } else {
    costs_.token_distance += distance;
    ++costs_.token_messages;
  }
  bus_.send(from, to, std::move(message), distance);
}

void RaymondEngine::note_queue(NodeId v) {
  max_queue_depth_ = std::max(max_queue_depth_, nodes_[v].request_queue.size());
}

}  // namespace arvy::raymond
