// Raymond's tree-based mutual exclusion algorithm (TOCS 1989).
//
// The Arvy paper's related work opens with it: "Raymond's tree based mutual
// exclusion algorithm predates the similar Arrow protocol" (§2). Like
// Arrow, Raymond maintains a fixed tree whose directed "holder" pointers
// lead to the token; unlike Arrow, each node keeps a FIFO queue of
// neighbours (possibly including itself) that want the token, sends at most
// one outstanding REQUEST along its holder pointer, and the token travels
// back hop-by-hop re-rooting as it goes - requests from a whole subtree are
// batched behind a single upstream REQUEST.
//
// This implementation follows Raymond's original rules (assign-privilege /
// make-request after every event) on top of the same message bus and cost
// accounting as the Arvy engine, so the two families are directly
// comparable (bench: raymond_vs_arvy).
#pragma once

#include <deque>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/bus.hpp"

namespace arvy::raymond {

using graph::NodeId;
using RequestId = std::uint64_t;

struct RequestMessage {};  // REQUEST: "my subtree wants the token"
struct TokenMessage {};    // PRIVILEGE: the token moves one tree hop
using Message = std::variant<RequestMessage, TokenMessage>;

// Per-node Raymond state (all constant-size except the queue, which holds
// at most degree+1 entries - one per neighbour plus SELF).
class RaymondNode {
 public:
  // `self_marker` in the queue is represented by the node's own id.
  RaymondNode() = default;

  NodeId id = graph::kInvalidNode;
  // Tree neighbour towards the token; self when holding it.
  NodeId holder = graph::kInvalidNode;
  bool asked = false;        // one outstanding REQUEST along `holder`
  bool using_token = false;  // "in critical section" (instantaneous here)
  std::deque<NodeId> request_queue;
  std::optional<RequestId> outstanding;  // this node's own pending request
};

struct RaymondCosts {
  double request_distance = 0.0;
  double token_distance = 0.0;
  std::uint64_t request_messages = 0;
  std::uint64_t token_messages = 0;

  [[nodiscard]] double total_distance() const noexcept {
    return request_distance + token_distance;
  }
};

struct RaymondRequestRecord {
  RequestId id = 0;
  NodeId node = graph::kInvalidNode;
  sim::Time submitted = 0.0;
  std::optional<sim::Time> satisfied_at;
  std::uint64_t satisfaction_index = 0;
};

struct RaymondOptions {
  sim::Discipline discipline = sim::Discipline::kTimed;
  std::unique_ptr<sim::DelayModel> delay;
  std::uint64_t seed = 1;
};

class RaymondEngine {
 public:
  using Options = RaymondOptions;

  // The tree must span the graph; messages travel only along tree edges
  // (Raymond's model) and are charged with the shortest-path distance of
  // that edge's endpoints, as in the Arvy engine.
  RaymondEngine(const graph::Graph& g, const graph::RootedTree& tree,
                Options options = {});

  // Requests the token at v. Precondition: no outstanding request at v.
  RequestId submit(NodeId v);
  bool step() { return bus_.step(); }
  void run_until_idle() { bus_.run_until_idle(); }
  void run_sequential(std::span<const NodeId> sequence);

  [[nodiscard]] const RaymondCosts& costs() const noexcept { return costs_; }
  [[nodiscard]] const std::vector<RaymondRequestRecord>& requests()
      const noexcept {
    return requests_;
  }
  [[nodiscard]] std::size_t unsatisfied_count() const;
  [[nodiscard]] std::optional<NodeId> token_holder() const;
  [[nodiscard]] const RaymondNode& node(NodeId v) const;
  [[nodiscard]] const sim::MessageBus<Message>& bus() const noexcept {
    return bus_;
  }
  [[nodiscard]] const graph::DistanceOracle& oracle() const noexcept {
    return oracle_;
  }

  // Space audit: queue capacity is bounded by degree+1; returns the maximum
  // queue length actually observed (words per node beyond holder/asked).
  [[nodiscard]] std::size_t max_queue_depth() const noexcept {
    return max_queue_depth_;
  }

 private:
  void on_delivery(const sim::MessageBus<Message>::InFlight& entry);
  // Raymond's two rules, applied after every event at node v.
  void assign_privilege(NodeId v);
  void make_request(NodeId v);
  void send(NodeId from, NodeId to, Message message);
  void note_queue(NodeId v);

  const graph::Graph* graph_;
  graph::DistanceOracle oracle_;
  sim::MessageBus<Message> bus_;
  std::vector<RaymondNode> nodes_;
  // Token possession: the node whose holder == itself AND token_present_
  // (the token spends time in flight between hops).
  bool token_in_flight_ = false;
  RaymondCosts costs_;
  std::vector<RaymondRequestRecord> requests_;
  std::uint64_t satisfied_count_ = 0;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace arvy::raymond
