// Verification modulo a declared fault set.
//
// With retries enabled the injector turns every drop into a delayed
// delivery, so Lemma 2 and Theorem 5 hold *unchanged* - the relaxed checks
// below collapse to the strict ones whenever stats.permanent_losses == 0.
// Only a permanent loss (retries disabled or exhausted) removes a message
// from the network for good, and that is precisely where the paper's
// guarantees are forfeit:
//
//   - a lost find erases a red edge, so the BR/BG tree invariants
//     (Lemma 2) no longer mention it and its producer's request - plus any
//     waiting chain later routed behind it - may starve;
//   - a lost token is catastrophic: no configuration with a token exists
//     any more, and every unsatisfied request is excused.
//
// The relaxed checks therefore run the strongest subset of the strict
// checks that the declared losses cannot invalidate, and audit the
// injector's own accounting (drops == retries + permanent losses) so a
// transport cannot silently under-report.
#pragma once

#include "faults/injector.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"
#include "verify/liveness.hpp"

namespace arvy {
class Directory;
}

namespace arvy::verify {

// Lemma 2 + bookkeeping invariants modulo the recorded losses:
//   no losses            -> check_all (strict)
//   lost finds only      -> unique token + acyclic next chains (tree checks
//                           would indict the erased red edges)
//   lost tokens          -> acyclic next chains only
[[nodiscard]] CheckResult check_all_relaxed(
    const Configuration& cfg, const faults::FaultStats& stats,
    const InvariantOptions& options = {});

// Theorem 5 modulo the recorded losses. With no permanent losses this is
// the strict audit. Otherwise: satisfied requests must still be sane
// (satisfaction order a permutation of 1..m, no time travel), the injector's
// drop accounting must balance, and an unsatisfied request is excused only
// if the stats record a loss able to orphan it.
[[nodiscard]] CheckResult audit_liveness_relaxed(
    const proto::SimEngine& engine, const faults::FaultStats& stats);

// Facade conveniences reading through Directory::inspect() / fault_stats().
[[nodiscard]] CheckResult check_all_relaxed(
    const arvy::Directory& directory, const InvariantOptions& options = {});
[[nodiscard]] CheckResult audit_liveness_relaxed(
    const arvy::Directory& directory);

}  // namespace arvy::verify
