// Machine-checkable forms of the paper's Lemma 2 invariants.
//
// These checks are the heart of the reproduction of the correctness result
// (§5): the property tests run them after *every* event of randomized
// concurrent executions. A configuration that passed check_all satisfies
// exactly the three parts of Lemma 2 plus the bookkeeping facts the proofs
// of Lemma 3 / Theorems 4-5 rely on (unique token, acyclic next chains).
#pragma once

#include <string>

#include "verify/configuration.hpp"

namespace arvy::verify {

struct CheckResult {
  bool ok = true;
  std::string detail;  // human-readable failure description

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const noexcept { return ok; }
};

struct InvariantOptions {
  // Exhaustively enumerate BG graphs when the combination count is at most
  // this; otherwise check a random sample of combinations.
  std::size_t max_bg_combinations = 4096;
  std::size_t samples_when_large = 256;
  std::uint64_t sample_seed = 1;
};

// Lemma 2.1: black edges (minus self-loops) plus red edges form a
// directionless tree.
[[nodiscard]] CheckResult check_br_tree(const Configuration& cfg);

// Lemma 2.2: replacing every red edge r by any green edge (head(r), x) with
// x in visited(r) or waiting(prod(r)) yields a directionless tree, for every
// combination of choices.
[[nodiscard]] CheckResult check_bg_trees(const Configuration& cfg,
                                         const InvariantOptions& options = {});

// Lemma 2.3: visited(r) and waiting(prod(r)) lie in the source component of
// r within the BR tree.
[[nodiscard]] CheckResult check_source_components(const Configuration& cfg);

// Exactly one token (held or in flight); a held token implies no token
// message on the wire.
[[nodiscard]] CheckResult check_token(const Configuration& cfg);

// next pointers form vertex-disjoint simple chains (previous is unique and
// the chains are acyclic) - the structure behind top()/Lemma 3.
[[nodiscard]] CheckResult check_next_chains(const Configuration& cfg);

// Lemma 3's reachable node states: S(v) as a subset of {L, T, N} must be one
// of {L,T}, {}, {T,N}, {L}, {N}.
[[nodiscard]] CheckResult check_node_states(const Configuration& cfg);

// Lemma 3's conclusion, the progress fact behind Theorem 5: for every node
// w with a self-loop, w' = top(w) (the head of w's previous-chain) either
// holds the token, or the token is in flight to w', or a "find by w'" is
// still in the network. Without this, a waiting chain could be orphaned.
[[nodiscard]] CheckResult check_top_progress(const Configuration& cfg);

// All of the above; stops at the first failure.
[[nodiscard]] CheckResult check_all(const Configuration& cfg,
                                    const InvariantOptions& options = {});

}  // namespace arvy::verify
