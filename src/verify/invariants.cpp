#include "verify/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace arvy::verify {

namespace {

using graph::DisjointSets;

struct UndirectedEdge {
  NodeId a;
  NodeId b;
};

// Black edges without self-loops.
std::vector<UndirectedEdge> black_edges(const Configuration& cfg) {
  std::vector<UndirectedEdge> out;
  for (NodeId v = 0; v < cfg.node_count(); ++v) {
    if (cfg.parent[v] != v) out.push_back({v, cfg.parent[v]});
  }
  return out;
}

// Tree test over n nodes: exactly n-1 edges and no cycle (which then implies
// connectivity).
CheckResult directionless_tree(std::size_t n,
                               const std::vector<UndirectedEdge>& edges,
                               const char* label) {
  if (edges.size() != n - 1) {
    std::ostringstream os;
    os << label << ": " << edges.size() << " edges for " << n
       << " nodes (want n-1)";
    return CheckResult::fail(os.str());
  }
  DisjointSets dsu(n);
  for (const UndirectedEdge& e : edges) {
    if (!dsu.unite(e.a, e.b)) {
      std::ostringstream os;
      os << label << ": cycle through edge {" << e.a << ", " << e.b << "}";
      return CheckResult::fail(os.str());
    }
  }
  ARVY_ASSERT(dsu.set_count() == 1);  // n-1 acyclic edges connect everything
  return CheckResult::pass();
}

// Green-edge candidate endpoints for a red edge: visited(r) ∪ waiting(prod).
std::vector<NodeId> green_candidates(const Configuration& cfg,
                                     const RedEdge& red) {
  std::vector<NodeId> candidates = red.visited;
  for (NodeId w : cfg.waiting_set(red.producer)) {
    if (std::find(candidates.begin(), candidates.end(), w) ==
        candidates.end()) {
      candidates.push_back(w);
    }
  }
  return candidates;
}

}  // namespace

CheckResult check_br_tree(const Configuration& cfg) {
  std::vector<UndirectedEdge> edges = black_edges(cfg);
  for (const RedEdge& r : cfg.red_edges) edges.push_back({r.tail, r.head});
  return directionless_tree(cfg.node_count(), edges, "BR");
}

CheckResult check_bg_trees(const Configuration& cfg,
                           const InvariantOptions& options) {
  const std::vector<UndirectedEdge> blacks = black_edges(cfg);
  const std::size_t reds = cfg.red_edges.size();
  if (reds == 0) {
    return directionless_tree(cfg.node_count(), blacks, "BG");
  }

  // Incremental enumeration: every BG graph shares the same black edges, so
  // the edge-count test and the black unions run once; each green-choice
  // combination then pushes only the `reds` green edges onto a rollback
  // DisjointSets and pops them - O(reds * alpha) per combination instead of
  // rebuilding the full edge vector and re-uniting n-1 black edges.
  const std::size_t n = cfg.node_count();
  if (blacks.size() + reds != n - 1) {
    std::ostringstream os;
    os << "BG: " << blacks.size() + reds << " edges for " << n
       << " nodes (want n-1)";
    return CheckResult::fail(os.str());
  }
  DisjointSets dsu(n);
  for (const UndirectedEdge& e : blacks) {
    if (!dsu.unite(e.a, e.b)) {
      std::ostringstream os;
      os << "BG: cycle through edge {" << e.a << ", " << e.b << "}";
      return CheckResult::fail(os.str());
    }
  }
  dsu.enable_rollback();
  const std::size_t base = dsu.snapshot();

  std::vector<std::vector<NodeId>> candidates(reds);
  std::size_t combinations = 1;
  bool overflow = false;
  for (std::size_t i = 0; i < reds; ++i) {
    candidates[i] = green_candidates(cfg, cfg.red_edges[i]);
    ARVY_ASSERT(!candidates[i].empty());
    if (combinations > options.max_bg_combinations / candidates[i].size()) {
      overflow = true;
    }
    combinations *= candidates[i].size();
    if (overflow) break;
  }

  auto check_choice = [&](const std::vector<std::size_t>& choice) {
    CheckResult result = CheckResult::pass();
    for (std::size_t i = 0; i < reds; ++i) {
      const NodeId head = cfg.red_edges[i].head;
      const NodeId green = candidates[i][choice[i]];
      if (!dsu.unite(head, green)) {
        std::ostringstream os;
        os << "BG: cycle through edge {" << head << ", " << green
           << "} [green choice:";
        for (std::size_t j = 0; j < reds; ++j) {
          os << " r" << j << "->" << candidates[j][choice[j]];
        }
        os << "]";
        result = CheckResult::fail(os.str());
        break;
      }
    }
    // n-1 acyclic edges connect everything.
    if (result.ok) ARVY_ASSERT(dsu.set_count() == 1);
    dsu.rollback(base);
    return result;
  };

  std::vector<std::size_t> choice(reds, 0);
  if (!overflow && combinations <= options.max_bg_combinations) {
    // Odometer enumeration of the full product space.
    while (true) {
      if (CheckResult r = check_choice(choice); !r.ok) return r;
      std::size_t i = 0;
      for (; i < reds; ++i) {
        if (++choice[i] < candidates[i].size()) break;
        choice[i] = 0;
      }
      if (i == reds) break;
    }
    return CheckResult::pass();
  }

  // Sampled mode for configurations with too many combinations. Always
  // include the two structured corners (all-Arrow-like tails, all
  // producers) plus uniform samples.
  support::Rng rng(options.sample_seed);
  for (std::size_t s = 0; s < options.samples_when_large; ++s) {
    for (std::size_t i = 0; i < reds; ++i) {
      if (s == 0) {
        choice[i] = candidates[i].size() - 1;  // latest visited
      } else if (s == 1) {
        choice[i] = 0;  // the producer
      } else {
        choice[i] = rng.next_below(candidates[i].size());
      }
    }
    if (CheckResult r = check_choice(choice); !r.ok) return r;
  }
  return CheckResult::pass();
}

CheckResult check_source_components(const Configuration& cfg) {
  if (CheckResult r = check_br_tree(cfg); !r.ok) return r;
  const std::vector<UndirectedEdge> blacks = black_edges(cfg);
  // The black edges are common to every skip: unite them once and roll the
  // per-skip red unions back instead of rebuilding the forest each round.
  DisjointSets dsu(cfg.node_count());
  for (const UndirectedEdge& e : blacks) dsu.unite(e.a, e.b);
  dsu.enable_rollback();
  const std::size_t base = dsu.snapshot();
  for (std::size_t skip = 0; skip < cfg.red_edges.size(); ++skip) {
    // Components of the BR tree with red edge `skip` removed.
    dsu.rollback(base);
    for (std::size_t i = 0; i < cfg.red_edges.size(); ++i) {
      if (i != skip) dsu.unite(cfg.red_edges[i].tail, cfg.red_edges[i].head);
    }
    const RedEdge& red = cfg.red_edges[skip];
    const std::size_t source = dsu.find(red.tail);
    ARVY_ASSERT_MSG(dsu.find(red.head) != source,
                    "red edge endpoints merged without the edge");
    auto expect_in_source = [&](NodeId q, const char* role) -> CheckResult {
      if (dsu.find(q) != source) {
        std::ostringstream os;
        os << "L2.3: " << role << " node " << q << " of find by "
           << red.producer << " lies in dst(" << red.tail << "->" << red.head
           << ")";
        return CheckResult::fail(os.str());
      }
      return CheckResult::pass();
    };
    for (NodeId q : red.visited) {
      if (CheckResult r = expect_in_source(q, "visited"); !r.ok) return r;
    }
    for (NodeId q : cfg.waiting_set(red.producer)) {
      if (CheckResult r = expect_in_source(q, "waiting"); !r.ok) return r;
    }
  }
  return CheckResult::pass();
}

CheckResult check_token(const Configuration& cfg) {
  if (cfg.token_at.has_value() == cfg.token_in_flight.has_value()) {
    return CheckResult::fail(
        "token must be exactly one of: held by a node, in flight");
  }
  return CheckResult::pass();
}

CheckResult check_next_chains(const Configuration& cfg) {
  // previous(w) unique: no two nodes point their next at the same target.
  std::vector<int> indegree(cfg.node_count(), 0);
  for (NodeId u = 0; u < cfg.node_count(); ++u) {
    if (cfg.next[u].has_value()) {
      if (*cfg.next[u] == u) {
        return CheckResult::fail("next self-reference at node " +
                                 std::to_string(u));
      }
      if (++indegree[*cfg.next[u]] > 1) {
        return CheckResult::fail("two nodes waiting-chain into node " +
                                 std::to_string(*cfg.next[u]));
      }
    }
  }
  // Acyclicity in O(n) total: stamp every node with the pass that first
  // visits it. A walk stops early on any node stamped by an earlier pass
  // (that pass already proved the suffix terminates); revisiting the
  // current pass's own stamp is a cycle. Each node is walked through at
  // most once across all passes.
  constexpr NodeId kUnstamped = graph::kInvalidNode;
  std::vector<NodeId> stamp(cfg.node_count(), kUnstamped);
  for (NodeId u = 0; u < cfg.node_count(); ++u) {
    if (stamp[u] != kUnstamped) continue;
    NodeId v = u;
    while (stamp[v] == kUnstamped) {
      stamp[v] = u;
      if (!cfg.next[v].has_value()) break;
      v = *cfg.next[v];
    }
    if (stamp[v] == u && cfg.next[v].has_value()) {
      return CheckResult::fail("cycle in next chain starting at node " +
                               std::to_string(u));
    }
  }
  return CheckResult::pass();
}

CheckResult check_node_states(const Configuration& cfg) {
  for (NodeId v = 0; v < cfg.node_count(); ++v) {
    const bool l = cfg.parent[v] == v;
    const bool t = cfg.token_at == v;
    const bool n = cfg.next[v].has_value();
    // Reachable states (Lemma 3): {L,T}, {}, {T,N}, {L}, {N}.
    const bool reachable = (l && t && !n) || (!l && !t && !n) ||
                           (!l && t && n) || (l && !t && !n) ||
                           (!l && !t && n);
    if (!reachable) {
      std::ostringstream os;
      os << "node " << v << " in unreachable state {" << (l ? "L" : "")
         << (t ? "T" : "") << (n ? "N" : "") << "}";
      return CheckResult::fail(os.str());
    }
  }
  return CheckResult::pass();
}

CheckResult check_top_progress(const Configuration& cfg) {
  for (NodeId w = 0; w < cfg.node_count(); ++w) {
    if (cfg.parent[w] != w) continue;           // no self-loop
    const NodeId top = cfg.top(w);
    if (cfg.token_at == top) continue;          // top holds the token
    if (cfg.token_in_flight.has_value() &&
        cfg.token_in_flight->second == top) {
      continue;  // the token was already sent to top
    }
    const bool find_in_network = std::any_of(
        cfg.red_edges.begin(), cfg.red_edges.end(),
        [top](const RedEdge& r) { return r.producer == top; });
    if (find_in_network) continue;
    std::ostringstream os;
    os << "Lemma 3: top(" << w << ") = " << top
       << " has neither the token, nor a token in flight, nor a find in "
          "the network (orphaned waiting chain)";
    return CheckResult::fail(os.str());
  }
  return CheckResult::pass();
}

CheckResult check_all(const Configuration& cfg,
                      const InvariantOptions& options) {
  if (CheckResult r = check_token(cfg); !r.ok) return r;
  if (CheckResult r = check_next_chains(cfg); !r.ok) return r;
  if (CheckResult r = check_node_states(cfg); !r.ok) return r;
  if (CheckResult r = check_top_progress(cfg); !r.ok) return r;
  if (CheckResult r = check_br_tree(cfg); !r.ok) return r;
  if (CheckResult r = check_source_components(cfg); !r.ok) return r;
  if (CheckResult r = check_bg_trees(cfg, options); !r.ok) return r;
  return CheckResult::pass();
}

}  // namespace arvy::verify
