#include "verify/state_machine.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace arvy::verify {

NodeState classify(const Configuration& cfg, NodeId v) {
  const bool l = cfg.parent[v] == v;
  const bool t = cfg.token_at == v;
  const bool n = cfg.next[v].has_value();
  if (l && t && !n) return NodeState::kLT;
  if (!l && !t && !n) return NodeState::kIdle;
  if (l && !t && !n) return NodeState::kL;
  if (!l && !t && n) return NodeState::kN;
  if (!l && t && n) return NodeState::kTN;
  return NodeState::kUnreachable;
}

const char* node_state_name(NodeState s) noexcept {
  switch (s) {
    case NodeState::kIdle:
      return "{}";
    case NodeState::kL:
      return "{L}";
    case NodeState::kN:
      return "{N}";
    case NodeState::kLT:
      return "{L,T}";
    case NodeState::kTN:
      return "{T,N}";
    case NodeState::kUnreachable:
      return "unreachable";
  }
  return "?";
}

StateMachineAudit::StateMachineAudit(const Configuration& initial) {
  states_.reserve(initial.node_count());
  for (NodeId v = 0; v < initial.node_count(); ++v) {
    const NodeState s = classify(initial, v);
    ARVY_EXPECTS_MSG(s == NodeState::kLT || s == NodeState::kIdle,
                     "initial states must be {L,T} or {} (paper §5)");
    states_.push_back(s);
  }
}

CheckResult StateMachineAudit::observe(const Configuration& next) {
  ARVY_EXPECTS(next.node_count() == states_.size());
  std::size_t changed = 0;
  for (NodeId v = 0; v < next.node_count(); ++v) {
    const NodeState before = states_[v];
    const NodeState after = classify(next, v);
    if (before == after) continue;
    ++changed;
    ++transitions_;
    const bool legal =
        (before == NodeState::kIdle && after == NodeState::kL) ||
        (before == NodeState::kL && after == NodeState::kN) ||
        (before == NodeState::kL && after == NodeState::kLT) ||
        (before == NodeState::kN && after == NodeState::kIdle) ||
        (before == NodeState::kLT && after == NodeState::kIdle);
    if (!legal) {
      std::ostringstream os;
      os << "illegal node-state transition at node " << v << ": "
         << node_state_name(before) << " -> " << node_state_name(after);
      return CheckResult::fail(os.str());
    }
    states_[v] = after;
  }
  if (changed > 1) {
    return CheckResult::fail(
        "more than one node changed letter-state in a single event");
  }
  return CheckResult::pass();
}

}  // namespace arvy::verify
