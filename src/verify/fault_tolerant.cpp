#include "verify/fault_tolerant.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "proto/directory.hpp"

namespace arvy::verify {

CheckResult check_all_relaxed(const Configuration& cfg,
                              const faults::FaultStats& stats,
                              const InvariantOptions& options) {
  if (stats.permanent_losses == 0) return check_all(cfg, options);
  if (stats.lost_tokens == 0) {
    // Finds were lost but the token survives: its uniqueness and the
    // next-chain structure must still hold. The BR/BG tree checks would
    // fail only because the erased red edges disconnect them, so they are
    // excused.
    if (auto r = check_token(cfg); !r) return r;
  }
  return check_next_chains(cfg);
}

CheckResult audit_liveness_relaxed(const proto::SimEngine& engine,
                                   const faults::FaultStats& stats) {
  // The injector's accounting must balance regardless of outcome: every
  // dropped transmission was either re-driven or declared permanently lost.
  if (stats.drops != stats.retries + stats.permanent_losses) {
    std::ostringstream os;
    os << "fault accounting imbalance: " << stats.drops << " drops != "
       << stats.retries << " retries + " << stats.permanent_losses
       << " permanent losses";
    return CheckResult::fail(os.str());
  }
  if (stats.permanent_losses !=
      stats.lost_finds + stats.lost_tokens) {
    return CheckResult::fail("permanent losses not classified by kind");
  }
  if (stats.permanent_losses == 0) return audit_liveness(engine);

  if (!engine.bus().idle()) {
    return CheckResult::fail("audit requires a quiescent network");
  }
  const auto& requests = engine.requests();
  std::vector<std::uint64_t> order;
  std::uint64_t unsatisfied = 0;
  for (const proto::RequestRecord& r : requests) {
    if (!r.satisfied_at.has_value()) {
      ++unsatisfied;
      continue;
    }
    if (*r.satisfied_at < r.submitted) {
      std::ostringstream os;
      os << "request " << r.id << " satisfied before submission";
      return CheckResult::fail(os.str());
    }
    order.push_back(r.satisfaction_index);
  }
  // The satisfied prefix must still be a permutation of 1..m: losses starve
  // requests, they never corrupt the order of the ones that did complete.
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i + 1) {
      return CheckResult::fail(
          "satisfaction order of completed requests is not 1..m");
    }
  }
  // Excuse check: a lost token excuses anything; otherwise starvation needs
  // at least one lost find to blame (a single lost find can orphan a whole
  // waiting chain, so no per-request matching is attempted).
  if (unsatisfied > 0 && stats.lost_tokens == 0 && stats.lost_finds == 0) {
    std::ostringstream os;
    os << unsatisfied << " requests unsatisfied but no permanent loss "
       << "recorded that could orphan them";
    return CheckResult::fail(os.str());
  }
  return CheckResult::pass();
}

CheckResult check_all_relaxed(const arvy::Directory& directory,
                              const InvariantOptions& options) {
  return check_all_relaxed(capture(directory.inspect()),
                           directory.fault_stats(), options);
}

CheckResult audit_liveness_relaxed(const arvy::Directory& directory) {
  return audit_liveness_relaxed(directory.inspect(), directory.fault_stats());
}

}  // namespace arvy::verify
