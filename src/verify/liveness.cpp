#include "verify/liveness.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "proto/directory.hpp"

namespace arvy::verify {

CheckResult audit_liveness(const proto::SimEngine& engine) {
  if (!engine.bus().idle()) {
    return CheckResult::fail("audit requires a quiescent network");
  }
  const auto& requests = engine.requests();
  std::vector<std::uint64_t> order;
  order.reserve(requests.size());
  std::map<graph::NodeId, std::vector<const proto::RequestRecord*>> per_node;
  for (const proto::RequestRecord& r : requests) {
    if (!r.satisfied_at.has_value()) {
      std::ostringstream os;
      os << "request " << r.id << " by node " << r.node
         << " never satisfied (Theorem 5 violation)";
      return CheckResult::fail(os.str());
    }
    if (*r.satisfied_at < r.submitted) {
      std::ostringstream os;
      os << "request " << r.id << " satisfied before submission";
      return CheckResult::fail(os.str());
    }
    order.push_back(r.satisfaction_index);
    per_node[r.node].push_back(&r);
  }
  // Satisfaction indices must form a permutation of 1..k: each request
  // satisfied exactly once, none skipped.
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i + 1) {
      return CheckResult::fail(
          "satisfaction order is not a permutation of 1..k");
    }
  }
  // The one-outstanding-per-node model: a node's requests must not overlap
  // in time. The single exception is §3's queueing remark: requests parked
  // behind an outstanding one are satisfied by the same token visit, which
  // shows up as identical satisfaction times. Requests are recorded in
  // submission order.
  for (const auto& [node, list] : per_node) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      const bool overlapping = list[i]->submitted < *list[i - 1]->satisfied_at;
      const bool one_fell_swoop =
          *list[i]->satisfied_at == *list[i - 1]->satisfied_at;
      if (overlapping && !one_fell_swoop) {
        std::ostringstream os;
        os << "node " << node << " had two overlapping outstanding requests";
        return CheckResult::fail(os.str());
      }
    }
  }
  return CheckResult::pass();
}

CheckResult audit_liveness(const arvy::Directory& directory) {
  return audit_liveness(directory.inspect());
}

}  // namespace arvy::verify
