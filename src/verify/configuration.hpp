// Configuration snapshots (§5 of the paper).
//
// "The configuration of the system is the state of each node, the find
// messages in transit and the location of the token." A Configuration is a
// value type so tests can snapshot, compare (Lemma 1's commutativity), and
// feed the invariant checker after every event.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "proto/engine.hpp"

namespace arvy {
class Directory;
}

namespace arvy::verify {

using graph::NodeId;

// A red edge: a "find by prod" message in transit from tail to head, plus
// the visited set the checker needs for Lemma 2's green-edge candidates.
struct RedEdge {
  NodeId tail = graph::kInvalidNode;
  NodeId head = graph::kInvalidNode;
  NodeId producer = graph::kInvalidNode;
  std::vector<NodeId> visited;  // includes producer; order preserved

  friend bool operator==(const RedEdge&, const RedEdge&) = default;
};

struct Configuration {
  std::vector<NodeId> parent;               // p(v)
  std::vector<std::optional<NodeId>> next;  // n(v)
  std::vector<RedEdge> red_edges;
  std::optional<NodeId> token_at;  // holder, or nullopt while in flight
  std::optional<std::pair<NodeId, NodeId>> token_in_flight;

  [[nodiscard]] std::size_t node_count() const noexcept { return parent.size(); }

  // waiting(u): nodes reachable from u via next pointers (§5). The walk is
  // bounded by node_count, which Lemma 2 guarantees suffices (no cycles);
  // the checker verifies that separately.
  [[nodiscard]] std::vector<NodeId> waiting_set(NodeId u) const;

  // previous(w): the unique u with n(u) == w, if any.
  [[nodiscard]] std::optional<NodeId> previous(NodeId w) const;

  // top(v): follow previous pointers from v to the chain's head (§5).
  [[nodiscard]] NodeId top(NodeId v) const;

  // Graphviz rendering: black parent edges, red in-transit finds, green
  // next-pointer annotations, token marked - the visual language of Fig. 1.
  [[nodiscard]] std::string to_dot() const;

  // --- Identity ------------------------------------------------------------
  // Equality is field-wise, so two captures of the same engine state compare
  // equal, but red_edges keep bus send order: two runs that reach the same
  // logical state via different interleavings may list them differently.
  // canonicalize() sorts red_edges into a total order (tail, head, producer,
  // visited) so that canonicalized configurations are equal exactly when
  // they are the same §5 configuration - the identity the model checker's
  // state cache deduplicates on.
  void canonicalize();

  // Hash consistent with operator== (equal configurations hash equal);
  // canonicalize() both sides first for order-insensitive identity. This is
  // a first-class API, not an explorer-internal detail - pinned by
  // test_state_machine.
  [[nodiscard]] std::size_t hash() const noexcept;

  friend bool operator==(const Configuration&, const Configuration&) = default;
};

// Transparent hasher for unordered containers keyed by Configuration.
struct ConfigurationHash {
  [[nodiscard]] std::size_t operator()(const Configuration& cfg) const noexcept {
    return cfg.hash();
  }
};

// Captures the configuration of a running engine: node states plus the
// in-flight find/token messages on the bus. Duplicate in-flight copies
// injected by the fault layer collapse to their logical message; copies of
// an already-handled group are invisible.
[[nodiscard]] Configuration capture(const proto::SimEngine& engine);

// Facade convenience: capture through Directory's read-only inspection seam.
[[nodiscard]] Configuration capture(const arvy::Directory& directory);

}  // namespace arvy::verify
