// Lemma 3's node-state machine, checked over observed executions.
//
// The paper describes each node's state as a subset of {L, T, N} (self-loop,
// token, next-pointer set) and argues only five states are reachable. Our
// engine additionally fuses SendToken into the event that triggers it (as
// Algorithm 1's pseudocode does), so the observable post-event transitions
// per node are exactly:
//
//   {}    -> {L}     request token
//   {L}   -> {N}     a find terminates at a waiting requester
//   {L}   -> {L,T}   the token arrives and is kept
//   {N}   -> {}      the token arrives and is forwarded on
//   {L,T} -> {}      a find terminates at the idle holder, token leaves
//   s     -> s       find forwarding (only p(v)'s target changes)
//
// One event changes at most one node's letter-state. The audit consumes a
// stream of configurations and validates every step against this diagram.
#pragma once

#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace arvy::verify {

enum class NodeState : unsigned char {
  kIdle,       // {}
  kL,          // {L}   outstanding request, find not yet terminated
  kN,          // {N}   outstanding request, queued behind another node
  kLT,         // {L,T} holds the token
  kTN,         // {T,N} transient in the paper's event model; never observed
  kUnreachable
};

[[nodiscard]] NodeState classify(const Configuration& cfg, NodeId v);
[[nodiscard]] const char* node_state_name(NodeState s) noexcept;

class StateMachineAudit {
 public:
  explicit StateMachineAudit(const Configuration& initial);

  // Validates the transition from the previously observed configuration.
  [[nodiscard]] CheckResult observe(const Configuration& next);

  [[nodiscard]] std::uint64_t transitions_seen() const noexcept {
    return transitions_;
  }

 private:
  std::vector<NodeState> states_;
  std::uint64_t transitions_ = 0;
};

}  // namespace arvy::verify
