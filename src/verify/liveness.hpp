// Liveness auditing: Theorem 5 ("every token request is satisfied").
//
// After an execution quiesces, the audit verifies that every submitted
// request was satisfied exactly once, that satisfaction order is a
// permutation, and that no node ever overlapped two outstanding requests.
#pragma once

#include "proto/engine.hpp"
#include "verify/invariants.hpp"

namespace arvy {
class Directory;
}

namespace arvy::verify {

// Requires: the engine's bus is idle. Checks Theorem 5's conclusion for the
// recorded request log.
[[nodiscard]] CheckResult audit_liveness(const proto::SimEngine& engine);

// Facade convenience: audit through Directory's read-only inspection seam.
[[nodiscard]] CheckResult audit_liveness(const arvy::Directory& directory);

}  // namespace arvy::verify
