#include "verify/configuration.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <unordered_set>

#include "proto/directory.hpp"
#include "support/assert.hpp"

namespace arvy::verify {

namespace {

// splitmix64-style mix, the same construction support::Rng seeds with;
// good avalanche for sequential combining.
constexpr std::size_t mix(std::size_t h, std::uint64_t v) noexcept {
  std::uint64_t z = (static_cast<std::uint64_t>(h) ^ v) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(z ^ (z >> 31));
}

// Optionals hash their presence distinctly from any payload value.
constexpr std::uint64_t kAbsent = 0xa5a5a5a5a5a5a5a5ULL;

}  // namespace

void Configuration::canonicalize() {
  std::sort(red_edges.begin(), red_edges.end(),
            [](const RedEdge& a, const RedEdge& b) {
              return std::tie(a.tail, a.head, a.producer, a.visited) <
                     std::tie(b.tail, b.head, b.producer, b.visited);
            });
}

std::size_t Configuration::hash() const noexcept {
  std::size_t h = mix(0, parent.size());
  for (const NodeId p : parent) h = mix(h, p);
  for (const auto& n : next) h = mix(h, n.has_value() ? *n : kAbsent);
  h = mix(h, red_edges.size());
  for (const RedEdge& r : red_edges) {
    h = mix(h, r.tail);
    h = mix(h, r.head);
    h = mix(h, r.producer);
    h = mix(h, r.visited.size());
    for (const NodeId v : r.visited) h = mix(h, v);
  }
  h = mix(h, token_at.has_value() ? *token_at : kAbsent);
  if (token_in_flight.has_value()) {
    h = mix(h, token_in_flight->first);
    h = mix(h, token_in_flight->second);
  } else {
    h = mix(h, kAbsent);
  }
  return h;
}

std::vector<NodeId> Configuration::waiting_set(NodeId u) const {
  ARVY_EXPECTS(u < node_count());
  std::vector<NodeId> out;
  NodeId v = u;
  while (next[v].has_value()) {
    v = *next[v];
    out.push_back(v);
    ARVY_ASSERT_MSG(out.size() <= node_count(), "cycle in next pointers");
  }
  return out;
}

std::optional<NodeId> Configuration::previous(NodeId w) const {
  ARVY_EXPECTS(w < node_count());
  std::optional<NodeId> found;
  for (NodeId u = 0; u < node_count(); ++u) {
    if (next[u] == w) {
      ARVY_ASSERT_MSG(!found.has_value(), "previous(w) is not unique");
      found = u;
    }
  }
  return found;
}

NodeId Configuration::top(NodeId v) const {
  std::size_t guard = 0;
  while (true) {
    const std::optional<NodeId> prev = previous(v);
    if (!prev.has_value()) return v;
    v = *prev;
    ARVY_ASSERT_MSG(++guard <= node_count(), "cycle in previous chain");
  }
}

std::string Configuration::to_dot() const {
  std::ostringstream os;
  os << "digraph arvy {\n  rankdir=LR;\n";
  for (NodeId v = 0; v < node_count(); ++v) {
    os << "  n" << v << " [label=\"" << v;
    if (next[v].has_value()) os << "\\nn=" << *next[v];
    os << "\"";
    if (token_at == v) os << ", shape=box, style=filled, fillcolor=gray";
    os << "];\n";
  }
  for (NodeId v = 0; v < node_count(); ++v) {
    if (parent[v] != v) {
      os << "  n" << v << " -> n" << parent[v] << " [color=black];\n";
    }
  }
  for (const RedEdge& r : red_edges) {
    os << "  n" << r.tail << " -> n" << r.head
       << " [color=red, label=\"find by " << r.producer << "\"];\n";
  }
  if (token_in_flight.has_value()) {
    os << "  n" << token_in_flight->first << " -> n" << token_in_flight->second
       << " [color=blue, style=dashed, label=\"token\"];\n";
  }
  os << "}\n";
  return os.str();
}

Configuration capture(const proto::SimEngine& engine) {
  Configuration cfg;
  const std::size_t n = engine.node_count();
  cfg.parent.resize(n);
  cfg.next.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const proto::ArvyCore& core = engine.node(v);
    cfg.parent[v] = core.parent();
    cfg.next[v] = core.next();
    if (core.holds_token()) {
      ARVY_ASSERT_MSG(!cfg.token_at.has_value(), "two token holders");
      cfg.token_at = v;
    }
  }
  // Duplicate copies injected by the fault layer share a dedup group: the
  // logical message is one red edge (or one token in flight), whatever the
  // copy count. Copies whose group was already handled are ghosts - the
  // configuration must not see them at all.
  std::unordered_set<sim::MessageId> seen_groups;
  for (const auto* entry : engine.bus().pending()) {
    if (entry->dup_group != 0) {
      if (engine.bus().logically_delivered(*entry)) continue;
      if (!seen_groups.insert(entry->dup_group).second) continue;
    }
    if (const auto* find = std::get_if<proto::FindMessage>(&entry->payload)) {
      RedEdge red;
      red.tail = entry->from;
      red.head = entry->to;
      red.producer = find->producer;
      red.visited = find->visited;
      cfg.red_edges.push_back(std::move(red));
    } else {
      ARVY_ASSERT_MSG(!cfg.token_in_flight.has_value(),
                      "two tokens in flight");
      cfg.token_in_flight = {entry->from, entry->to};
    }
  }
  // A SendFilter loss (lost()) or an explicit drop(id) - the explorer's
  // fault choice points go through the latter - can legitimately erase the
  // token; only a faultless capture may insist on exactly-one.
  ARVY_ASSERT_MSG(cfg.token_at.has_value() != cfg.token_in_flight.has_value() ||
                      engine.bus().lost() > 0 || engine.bus().dropped() > 0,
                  "token must be exactly one of held or in flight");
  return cfg;
}

Configuration capture(const arvy::Directory& directory) {
  return capture(directory.inspect());
}

}  // namespace arvy::verify
