#!/usr/bin/env bash
# Static analysis entry point: clang-tidy (curated .clang-tidy check set)
# over every translation unit in src/, using a CMake compile database.
#
# Usage:
#   scripts/run_analysis.sh              # analyze src/ (skips if no clang-tidy)
#   ARVY_ANALYSIS_STRICT=1 scripts/run_analysis.sh   # missing tool = failure (CI)
#   CLANG_TIDY=clang-tidy-18 scripts/run_analysis.sh # pick a specific binary
#   BUILD_DIR=build scripts/run_analysis.sh          # reuse a configured tree
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
STRICT=${ARVY_ANALYSIS_STRICT:-0}
BUILD_DIR=${BUILD_DIR:-build-tidy}

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_analysis: '$CLANG_TIDY' not found."
  if [ "$STRICT" = "1" ]; then
    echo "run_analysis: ARVY_ANALYSIS_STRICT=1 -> failing." >&2
    exit 1
  fi
  echo "run_analysis: skipping (set ARVY_ANALYSIS_STRICT=1 to make this fatal)."
  exit 0
fi

# A compile database is all clang-tidy needs; skip tests/bench/examples so a
# bare container without GTest/benchmark can still run the analysis.
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DARVY_BUILD_TESTS=OFF -DARVY_BUILD_BENCH=OFF -DARVY_BUILD_EXAMPLES=OFF \
    >/dev/null
fi

mapfile -t sources < <(git ls-files 'src/*/*.cpp')
echo "run_analysis: $CLANG_TIDY over ${#sources[@]} files in src/ ..."
status=0
for src in "${sources[@]}"; do
  "$CLANG_TIDY" --quiet -p "$BUILD_DIR" "$src" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "run_analysis: clang-tidy reported findings (see above)." >&2
  exit 1
fi
echo "run_analysis: clean."
