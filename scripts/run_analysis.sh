#!/usr/bin/env bash
# Static analysis entry point:
#   1. tools/arvy_lint (project-specific rules: layering, lock, hotpath,
#      msgpod, deprecation, atomic) over the whole tree - always runs; it
#      only needs the C++ toolchain the repo already requires.
#   2. The object-level hot-path audit (arvy_lint --audit-objects): builds
#      the src/ libraries in the same tree (RelWithDebInfo default, so
#      ARVY_HOT produces .text.hot.* sections) and walks the relocation
#      call graph - skipped gracefully when objdump is absent.
#   3. clang-tidy (curated .clang-tidy check set) over every translation
#      unit in src/ - skipped gracefully when the tool is absent.
#
# Usage:
#   scripts/run_analysis.sh              # all three (tools permitting)
#   ARVY_ANALYSIS_STRICT=1 scripts/run_analysis.sh   # missing tool = failure (CI)
#   CLANG_TIDY=clang-tidy-18 scripts/run_analysis.sh # pick a specific binary
#   BUILD_DIR=build scripts/run_analysis.sh          # reuse a configured tree
#   ARVY_LINT_STATS=lint.json scripts/run_analysis.sh  # emit the JSON report
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
STRICT=${ARVY_ANALYSIS_STRICT:-0}
BUILD_DIR=${BUILD_DIR:-build-tidy}

# One configure serves both passes: the compile database for clang-tidy and
# for arvy_lint's TU/layer cross-check, EXAMPLES=ON so the tools/ directory
# (which owns the arvy_lint target) is part of the build.
if [ ! -f "$BUILD_DIR/compile_commands.json" ] \
   || ! grep -q 'arvy_lint' "$BUILD_DIR/compile_commands.json"; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DARVY_BUILD_TESTS=OFF -DARVY_BUILD_BENCH=OFF -DARVY_BUILD_EXAMPLES=ON \
    >/dev/null
fi

echo "run_analysis: building arvy_lint ..."
cmake --build "$BUILD_DIR" --target arvy_lint >/dev/null
lint_args=(--root . --compile-commands "$BUILD_DIR/compile_commands.json")
if [ -n "${ARVY_LINT_STATS:-}" ]; then
  lint_args+=(--stats-json "$ARVY_LINT_STATS")
fi
"$BUILD_DIR/tools/arvy_lint" "${lint_args[@]}"

# Object audit: needs binutils objdump and compiled src/ objects. The
# build-tidy tree defaults to RelWithDebInfo, which satisfies the audit's
# optimization contract (hot sections only exist in optimized objects).
if command -v objdump >/dev/null 2>&1; then
  echo "run_analysis: building src/ libraries for the object audit ..."
  cmake --build "$BUILD_DIR" --target \
    arvy_support arvy_graph arvy_sim arvy_faults arvy_proto arvy_runtime \
    arvy_verify arvy_explore_lib arvy_analysis arvy_workload \
    arvy_hier arvy_raymond >/dev/null
  echo "run_analysis: auditing hot objects ..."
  "$BUILD_DIR/tools/arvy_lint" --root . --rule audit \
    --audit-objects "$BUILD_DIR"
else
  echo "run_analysis: objdump not found."
  if [ "$STRICT" = "1" ]; then
    echo "run_analysis: ARVY_ANALYSIS_STRICT=1 -> failing." >&2
    exit 1
  fi
  echo "run_analysis: skipping the object audit (set ARVY_ANALYSIS_STRICT=1 to make this fatal)."
fi

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_analysis: '$CLANG_TIDY' not found."
  if [ "$STRICT" = "1" ]; then
    echo "run_analysis: ARVY_ANALYSIS_STRICT=1 -> failing." >&2
    exit 1
  fi
  echo "run_analysis: skipping clang-tidy (set ARVY_ANALYSIS_STRICT=1 to make this fatal)."
  exit 0
fi

mapfile -t sources < <(git ls-files 'src/*/*.cpp')
echo "run_analysis: $CLANG_TIDY over ${#sources[@]} files in src/ ..."
status=0
for src in "${sources[@]}"; do
  "$CLANG_TIDY" --quiet -p "$BUILD_DIR" "$src" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "run_analysis: clang-tidy reported findings (see above)." >&2
  exit 1
fi
echo "run_analysis: clean."
