#!/usr/bin/env sh
# Reproduces every experiment table in EXPERIMENTS.md from a clean tree.
#   scripts/reproduce.sh          # CI-speed sweeps (~2 min)
#   scripts/reproduce.sh --large  # paper-scale sweeps
set -eu
SWEEP="${1:-}"
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee test_output.txt
for b in build/bench/*; do "$b" ${SWEEP:+"$SWEEP"}; done | tee bench_output.txt
