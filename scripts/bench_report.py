#!/usr/bin/env python3
"""Merge before/after google-benchmark JSON dumps into a machine-readable
benchmark report (BENCH_<n>.json).

Workflow (see EXPERIMENTS.md, "Benchmark regression workflow"):

    # 1. capture the baseline on the pre-change tree
    ./build/bench/runtime_throughput --benchmark_format=json > before_runtime.json
    ./build/bench/checker_micro      --benchmark_format=json > before_checker.json
    # 2. rebuild with the change, capture again
    ./build/bench/runtime_throughput --benchmark_format=json > after_runtime.json
    ./build/bench/checker_micro      --benchmark_format=json > after_checker.json
    # 3. merge
    scripts/bench_report.py --before before_runtime.json before_checker.json \
        --after after_runtime.json after_checker.json --out BENCH_3.json

Both captures must come from the same machine; the report embeds the
benchmark context (host, CPU, build type) of each side so a cross-machine
comparison is visible in review. Benchmarks present on only one side are
reported with a null counterpart instead of being dropped.
"""

import argparse
import json
import sys


def load_side(paths):
    """Returns (context, {name: benchmark-entry}) merged across files."""
    context = None
    entries = {}
    for path in paths:
        with open(path) as fh:
            doc = json.load(fh)
        if context is None:
            context = doc.get("context", {})
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            if name in entries:
                print(f"warning: duplicate benchmark {name!r} in {path}; "
                      "keeping the first occurrence", file=sys.stderr)
                continue
            entries[name] = bench
    return context or {}, entries


def context_summary(context):
    return {
        "host_name": context.get("host_name"),
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
        "cpu_scaling_enabled": context.get("cpu_scaling_enabled"),
        "library_build_type": context.get("library_build_type"),
        "date": context.get("date"),
    }


def fault_sweep_report(paths, out):
    """Single-capture mode for the fault-injection goodput sweep.

    Reads google-benchmark JSON from bench/fault_throughput (benchmarks
    named BM_<something>/<drop-percent>) and writes a report keyed by drop
    rate: satisfied-request throughput plus the retry overhead counters.

        ./build/bench/fault_throughput --benchmark_format=json > faults.json
        scripts/bench_report.py --fault-sweep faults.json --out BENCH_5.json
    """
    context, entries = load_side(paths)
    sweeps = []
    for name, bench in entries.items():
        base, sep, arg = name.rpartition("/")
        if not sep or not arg.isdigit():
            print(f"warning: skipping {name!r} (no /<drop-percent> suffix)",
                  file=sys.stderr)
            continue
        sweeps.append({
            "benchmark": base,
            "drop_percent": int(arg),
            "time_unit": bench.get("time_unit", "ns"),
            "real_time": bench.get("real_time"),
            "satisfied_per_second": bench.get("items_per_second"),
            "drops_per_run": bench.get("drops_per_run"),
            "retries_per_run": bench.get("retries_per_run"),
            "permanent_losses": bench.get("permanent_losses"),
        })
    sweeps.sort(key=lambda r: (r["benchmark"], r["drop_percent"]))

    # Goodput retained relative to each benchmark's own 0%-drop leg: the
    # headline number ("10% drop costs X% throughput, zero losses").
    baseline = {r["benchmark"]: r["satisfied_per_second"]
                for r in sweeps if r["drop_percent"] == 0}
    for r in sweeps:
        base_rate = baseline.get(r["benchmark"])
        r["goodput_vs_no_faults"] = (
            round(r["satisfied_per_second"] / base_rate, 3)
            if base_rate and r["satisfied_per_second"] else None)

    report = {
        "schema": "arvy-fault-sweep/1",
        "context": context_summary(context),
        "sweeps": sweeps,
    }
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    width = max((len(r["benchmark"]) for r in sweeps), default=0)
    for r in sweeps:
        kept = (f"{100 * r['goodput_vs_no_faults']:.1f}%"
                if r["goodput_vs_no_faults"] is not None else "n/a")
        print(f"{r['benchmark']:<{width}}  drop={r['drop_percent']:>2}%  "
              f"goodput={kept:>7}")


def parse_live_args(name):
    """Extracts (workers, batch) from BM_LiveSatisfiedThroughput/workers:X/
    batch:Y[/real_time]; returns None if the name has no such arguments."""
    workers = batch = None
    for part in name.split("/")[1:]:
        key, sep, value = part.partition(":")
        if sep and value.isdigit():
            if key == "workers":
                workers = int(value)
            elif key == "batch":
                batch = int(value)
    if workers is None or batch is None:
        return None
    return workers, batch


def runtime_sweep_report(paths, out, baseline, max_regress):
    """Single-capture mode for the threaded-runtime throughput sweep.

    Reads google-benchmark JSON from bench/runtime_throughput and writes the
    workers x batch-size grid of live satisfied/s next to the sim baseline
    (BM_SimSatisfiedThroughput): the headline is the best live/sim ratio.

        ./build/bench/runtime_throughput \\
            --benchmark_filter=SatisfiedThroughput \\
            --benchmark_format=json > runtime.json
        scripts/bench_report.py --runtime-sweep runtime.json --out BENCH_8.json

    With --baseline <previous BENCH_8.json>, fails (exit 1) if the headline
    live/sim ratio dropped by more than --max-regress. The ratio - not the
    absolute satisfied/s - is compared because both sides of it come from the
    same capture on the same machine, so CI hardware churn cancels out.
    """
    context, entries = load_side(paths)
    sim_rate = None
    grid = []
    for name, bench in entries.items():
        if name.startswith("BM_SimSatisfiedThroughput"):
            sim_rate = bench.get("items_per_second")
            continue
        if not name.startswith("BM_LiveSatisfiedThroughput"):
            continue
        live_args = parse_live_args(name)
        if live_args is None:
            print(f"warning: skipping {name!r} (no workers:/batch: args)",
                  file=sys.stderr)
            continue
        workers, batch = live_args
        grid.append({
            "workers": workers,
            "batch": batch,
            # Counter recorded by the bench itself; 0 means "one worker per
            # node" was requested, so keep the resolved arg value instead.
            "worker_threads": bench.get("worker_threads", workers),
            "hw_threads": bench.get("hw_threads"),
            "time_unit": bench.get("time_unit", "ns"),
            "real_time": bench.get("real_time"),
            "satisfied_per_second": bench.get("items_per_second"),
        })
    if sim_rate is None or not grid:
        sys.exit("error: capture must contain BM_SimSatisfiedThroughput and "
                 "at least one BM_LiveSatisfiedThroughput/workers:*/batch:* "
                 "run (use --benchmark_filter=SatisfiedThroughput)")
    grid.sort(key=lambda r: (r["workers"], r["batch"]))
    for r in grid:
        r["live_vs_sim"] = (round(r["satisfied_per_second"] / sim_rate, 3)
                            if r["satisfied_per_second"] else None)

    best = max(grid, key=lambda r: r["satisfied_per_second"] or 0.0)
    report = {
        "schema": "arvy-runtime-sweep/1",
        "context": context_summary(context),
        "sim": {
            "benchmark": "BM_SimSatisfiedThroughput",
            "satisfied_per_second": sim_rate,
        },
        "grid": grid,
        "headline": {
            "best_live_per_second": best["satisfied_per_second"],
            "sim_per_second": sim_rate,
            "live_vs_sim": best["live_vs_sim"],
            "workers": best["workers"],
            "batch": best["batch"],
        },
    }
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for r in grid:
        print(f"workers={r['workers']}  batch={r['batch']:>2}  "
              f"satisfied/s={r['satisfied_per_second']:>12.0f}  "
              f"live/sim={r['live_vs_sim']:.3f}")
    print(f"headline: live/sim = {best['live_vs_sim']:.3f} "
          f"(workers={best['workers']}, batch={best['batch']})")

    if baseline:
        with open(baseline) as fh:
            old = json.load(fh)
        old_ratio = old.get("headline", {}).get("live_vs_sim")
        new_ratio = best["live_vs_sim"]
        if old_ratio is None or new_ratio is None:
            sys.exit("error: baseline or capture lacks a live_vs_sim headline")
        floor = old_ratio * (1.0 - max_regress)
        verdict = "OK" if new_ratio >= floor else "REGRESSION"
        print(f"baseline live/sim = {old_ratio:.3f}, floor = {floor:.3f} "
              f"(max regress {max_regress:.0%}): {verdict}")
        if new_ratio < floor:
            sys.exit(1)


def parse_grid_args(name):
    """Extracts (objects, shards) from BM_MultiObjectService/objects:X/
    shards:Y[/real_time]; returns None if the name has no such arguments."""
    objects = shards = None
    for part in name.split("/")[1:]:
        key, sep, value = part.partition(":")
        if sep and value.isdigit():
            if key == "objects":
                objects = int(value)
            elif key == "shards":
                shards = int(value)
    if objects is None or shards is None:
        return None
    return objects, shards


def multi_object_sweep_report(paths, out, baseline, max_regress):
    """Single-capture mode for the sharded DirectoryService sweep.

    Reads google-benchmark JSON from bench/multi_object (the objects x shards
    grid) and writes the two shapes the service design must show:

      - per-object traffic flat in the object count (find_per_satisfied at
        the largest object count vs the smallest, per shard leg);
      - satisfied/s scaling with shards, normalized by min(shards,
        hw_threads) so a 1-core runner gates the same contract as a 16-core
        one.

        ./build-bench/bench/multi_object --benchmark_format=json > multi.json
        scripts/bench_report.py --multi-object-sweep multi.json \\
            --out BENCH_10.json

    With --baseline <previous BENCH_10.json>, fails (exit 1) when, on any
    grid point present in both captures, find_per_satisfied grew by more
    than --max-regress or normalized shard scaling dropped by more than
    --max-regress. Both are ratios of same-capture quantities (protocol
    message counts; rate(S)/rate(1)), so CI hardware churn cancels out.
    """
    context, entries = load_side(paths)
    grid = []
    for name, bench in entries.items():
        if not name.startswith("BM_MultiObjectService"):
            continue
        grid_args = parse_grid_args(name)
        if grid_args is None:
            print(f"warning: skipping {name!r} (no objects:/shards: args)",
                  file=sys.stderr)
            continue
        objects, shards = grid_args
        grid.append({
            "objects": objects,
            "shards": shards,
            "time_unit": bench.get("time_unit", "ns"),
            "real_time": bench.get("real_time"),
            "satisfied_per_second": bench.get("items_per_second"),
            "find_per_satisfied": bench.get("find_per_satisfied"),
            "distance_per_satisfied": bench.get("distance_per_satisfied"),
            "resident_objects": bench.get("resident_objects"),
            "resident_bytes": bench.get("resident_bytes"),
            "hw_threads": bench.get("hw_threads"),
        })
    if not grid:
        sys.exit("error: capture contains no BM_MultiObjectService/objects:*/"
                 "shards:* runs (run bench/multi_object)")
    grid.sort(key=lambda r: (r["objects"], r["shards"]))

    # Normalized shard scaling: rate(S) / (rate(1) * min(S, hw_threads)) at
    # the same object count. min(S, hw) is the honest linear-speedup
    # denominator - extra shards beyond the core count pipeline, they do not
    # parallelize.
    one_shard = {r["objects"]: r["satisfied_per_second"]
                 for r in grid if r["shards"] == 1}
    for r in grid:
        base_rate = one_shard.get(r["objects"])
        hw = int(r["hw_threads"] or 1)
        denom = min(r["shards"], max(hw, 1))
        r["normalized_scaling"] = (
            round(r["satisfied_per_second"] / (base_rate * denom), 3)
            if base_rate and r["satisfied_per_second"] else None)

    # Traffic flatness per shard leg: find_per_satisfied at the largest
    # object count over the smallest (1.0 = perfectly independent objects).
    shard_legs = sorted({r["shards"] for r in grid})
    flatness = {}
    for shards in shard_legs:
        leg = [r for r in grid if r["shards"] == shards
               and r["find_per_satisfied"]]
        if len(leg) >= 2:
            lo, hi = min(leg, key=lambda r: r["objects"]), \
                max(leg, key=lambda r: r["objects"])
            flatness[shards] = round(
                hi["find_per_satisfied"] / lo["find_per_satisfied"], 3)

    max_shards = max(shard_legs)
    top = [r for r in grid if r["shards"] == max_shards
           and r["normalized_scaling"] is not None]
    headline_scaling = (max(top, key=lambda r: r["objects"])
                        if top else None)
    report = {
        "schema": "arvy-multi-object-sweep/1",
        "context": context_summary(context),
        "grid": grid,
        "headline": {
            "max_objects": max(r["objects"] for r in grid),
            "max_shards": max_shards,
            "traffic_flatness_by_shards": flatness,
            "normalized_scaling": (headline_scaling["normalized_scaling"]
                                   if headline_scaling else None),
        },
    }
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for r in grid:
        scaling = (f"{r['normalized_scaling']:.3f}"
                   if r["normalized_scaling"] is not None else "  n/a")
        print(f"objects={r['objects']:>8}  shards={r['shards']}  "
              f"satisfied/s={r['satisfied_per_second']:>12.0f}  "
              f"find/satisfied={r['find_per_satisfied']:>6.2f}  "
              f"scaling={scaling}")
    for shards, ratio in sorted(flatness.items()):
        print(f"traffic flatness @ shards={shards}: {ratio:.3f} "
              "(1.0 = flat in object count)")

    if baseline:
        with open(baseline) as fh:
            old = json.load(fh)
        old_grid = {(r["objects"], r["shards"]): r
                    for r in old.get("grid", [])}
        failures = []
        compared = 0
        for r in grid:
            o = old_grid.get((r["objects"], r["shards"]))
            if o is None:
                continue
            point = f"objects={r['objects']}/shards={r['shards']}"
            if o.get("find_per_satisfied") and r["find_per_satisfied"]:
                compared += 1
                ceiling = o["find_per_satisfied"] * (1.0 + max_regress)
                if r["find_per_satisfied"] > ceiling:
                    failures.append(
                        f"{point}: find/satisfied "
                        f"{r['find_per_satisfied']:.2f} > ceiling "
                        f"{ceiling:.2f} (baseline "
                        f"{o['find_per_satisfied']:.2f})")
            if (o.get("normalized_scaling") and r["normalized_scaling"]
                    and r["shards"] > 1):
                compared += 1
                floor = o["normalized_scaling"] * (1.0 - max_regress)
                if r["normalized_scaling"] < floor:
                    failures.append(
                        f"{point}: normalized scaling "
                        f"{r['normalized_scaling']:.3f} < floor {floor:.3f} "
                        f"(baseline {o['normalized_scaling']:.3f})")
        if compared == 0:
            sys.exit("error: baseline shares no grid points with the capture")
        verdict = "REGRESSION" if failures else "OK"
        print(f"baseline gate ({compared} comparisons, max regress "
              f"{max_regress:.0%}): {verdict}")
        for failure in failures:
            print(f"  {failure}")
        if failures:
            sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--before", nargs="+",
                        help="google-benchmark JSON files for the baseline")
    parser.add_argument("--after", nargs="+",
                        help="google-benchmark JSON files for the change")
    parser.add_argument("--fault-sweep", nargs="+", metavar="JSON",
                        help="google-benchmark JSON from bench/fault_throughput;"
                             " writes a drop-rate sweep report instead of a"
                             " before/after comparison")
    parser.add_argument("--runtime-sweep", nargs="+", metavar="JSON",
                        help="google-benchmark JSON from bench/runtime_throughput"
                             " (filter SatisfiedThroughput); writes the workers x"
                             " batch grid with the sim-vs-live ratio headline")
    parser.add_argument("--multi-object-sweep", nargs="+", metavar="JSON",
                        help="google-benchmark JSON from bench/multi_object;"
                             " writes the objects x shards grid with traffic"
                             " flatness and normalized shard scaling")
    parser.add_argument("--baseline", metavar="BENCH_JSON",
                        help="previous sweep report of the same mode; fail if"
                             " its gated ratios regressed past --max-regress")
    parser.add_argument("--max-regress", type=float, default=0.2,
                        help="allowed fractional regression of the gated"
                             " ratios vs --baseline (default 0.2)")
    parser.add_argument("--out", required=True, help="report path to write")
    args = parser.parse_args()

    exclusive = [bool(args.fault_sweep), bool(args.runtime_sweep),
                 bool(args.multi_object_sweep), bool(args.before or args.after)]
    if sum(exclusive) > 1:
        parser.error("--fault-sweep, --runtime-sweep, --multi-object-sweep"
                     " and --before/--after are mutually exclusive")
    if args.baseline and not (args.runtime_sweep or args.multi_object_sweep):
        parser.error("--baseline requires --runtime-sweep or"
                     " --multi-object-sweep")

    if args.fault_sweep:
        fault_sweep_report(args.fault_sweep, args.out)
        return
    if args.runtime_sweep:
        runtime_sweep_report(args.runtime_sweep, args.out,
                             args.baseline, args.max_regress)
        return
    if args.multi_object_sweep:
        multi_object_sweep_report(args.multi_object_sweep, args.out,
                                  args.baseline, args.max_regress)
        return
    if not args.before or not args.after:
        parser.error("--before and --after are required without --fault-sweep")

    before_ctx, before = load_side(args.before)
    after_ctx, after = load_side(args.after)

    names = list(before)
    names.extend(n for n in after if n not in before)

    benchmarks = []
    for name in names:
        b = before.get(name)
        a = after.get(name)
        row = {
            "name": name,
            "time_unit": (a or b).get("time_unit", "ns"),
            "before_real_time": b["real_time"] if b else None,
            "after_real_time": a["real_time"] if a else None,
            "before_cpu_time": b["cpu_time"] if b else None,
            "after_cpu_time": a["cpu_time"] if a else None,
            "speedup": None,
        }
        if b and a and a["real_time"] > 0:
            row["speedup"] = round(b["real_time"] / a["real_time"], 3)
        benchmarks.append(row)

    comparable = [r for r in benchmarks if r["speedup"] is not None]
    report = {
        "schema": "arvy-bench-report/1",
        "before_context": context_summary(before_ctx),
        "after_context": context_summary(after_ctx),
        "summary": {
            "benchmark_count": len(benchmarks),
            "compared": len(comparable),
            "improved": sum(1 for r in comparable if r["speedup"] > 1.0),
            "regressed": sum(1 for r in comparable if r["speedup"] < 0.95),
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    width = max(len(r["name"]) for r in benchmarks)
    for r in benchmarks:
        speed = f"{r['speedup']:.2f}x" if r["speedup"] is not None else "n/a"
        print(f"{r['name']:<{width}}  {speed:>9}")


if __name__ == "__main__":
    main()
