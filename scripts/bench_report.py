#!/usr/bin/env python3
"""Merge before/after google-benchmark JSON dumps into a machine-readable
benchmark report (BENCH_<n>.json).

Workflow (see EXPERIMENTS.md, "Benchmark regression workflow"):

    # 1. capture the baseline on the pre-change tree
    ./build/bench/runtime_throughput --benchmark_format=json > before_runtime.json
    ./build/bench/checker_micro      --benchmark_format=json > before_checker.json
    # 2. rebuild with the change, capture again
    ./build/bench/runtime_throughput --benchmark_format=json > after_runtime.json
    ./build/bench/checker_micro      --benchmark_format=json > after_checker.json
    # 3. merge
    scripts/bench_report.py --before before_runtime.json before_checker.json \
        --after after_runtime.json after_checker.json --out BENCH_3.json

Both captures must come from the same machine; the report embeds the
benchmark context (host, CPU, build type) of each side so a cross-machine
comparison is visible in review. Benchmarks present on only one side are
reported with a null counterpart instead of being dropped.
"""

import argparse
import json
import sys


def load_side(paths):
    """Returns (context, {name: benchmark-entry}) merged across files."""
    context = None
    entries = {}
    for path in paths:
        with open(path) as fh:
            doc = json.load(fh)
        if context is None:
            context = doc.get("context", {})
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            if name in entries:
                print(f"warning: duplicate benchmark {name!r} in {path}; "
                      "keeping the first occurrence", file=sys.stderr)
                continue
            entries[name] = bench
    return context or {}, entries


def context_summary(context):
    return {
        "host_name": context.get("host_name"),
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
        "cpu_scaling_enabled": context.get("cpu_scaling_enabled"),
        "library_build_type": context.get("library_build_type"),
        "date": context.get("date"),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--before", nargs="+", required=True,
                        help="google-benchmark JSON files for the baseline")
    parser.add_argument("--after", nargs="+", required=True,
                        help="google-benchmark JSON files for the change")
    parser.add_argument("--out", required=True, help="report path to write")
    args = parser.parse_args()

    before_ctx, before = load_side(args.before)
    after_ctx, after = load_side(args.after)

    names = list(before)
    names.extend(n for n in after if n not in before)

    benchmarks = []
    for name in names:
        b = before.get(name)
        a = after.get(name)
        row = {
            "name": name,
            "time_unit": (a or b).get("time_unit", "ns"),
            "before_real_time": b["real_time"] if b else None,
            "after_real_time": a["real_time"] if a else None,
            "before_cpu_time": b["cpu_time"] if b else None,
            "after_cpu_time": a["cpu_time"] if a else None,
            "speedup": None,
        }
        if b and a and a["real_time"] > 0:
            row["speedup"] = round(b["real_time"] / a["real_time"], 3)
        benchmarks.append(row)

    comparable = [r for r in benchmarks if r["speedup"] is not None]
    report = {
        "schema": "arvy-bench-report/1",
        "before_context": context_summary(before_ctx),
        "after_context": context_summary(after_ctx),
        "summary": {
            "benchmark_count": len(benchmarks),
            "compared": len(comparable),
            "improved": sum(1 for r in comparable if r["speedup"] > 1.0),
            "regressed": sum(1 for r in comparable if r["speedup"] < 0.95),
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    width = max(len(r["name"]) for r in benchmarks)
    for r in benchmarks:
        speed = f"{r['speedup']:.2f}x" if r["speedup"] is not None else "n/a"
        print(f"{r['name']:<{width}}  {speed:>9}")


if __name__ == "__main__":
    main()
