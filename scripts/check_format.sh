#!/usr/bin/env bash
# Format gate: clang-format --dry-run over every tracked C++ file. Fails on
# any diff from .clang-format. Pass --fix to rewrite files in place instead
# (append such commits to .git-blame-ignore-revs).
#
#   scripts/check_format.sh              # check (skips if no clang-format)
#   scripts/check_format.sh --fix        # reformat in place
#   ARVY_ANALYSIS_STRICT=1 scripts/check_format.sh  # missing tool = failure (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT=${CLANG_FORMAT:-clang-format}
STRICT=${ARVY_ANALYSIS_STRICT:-0}
MODE=check
[ "${1:-}" = "--fix" ] && MODE=fix

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: '$CLANG_FORMAT' not found."
  if [ "$STRICT" = "1" ]; then
    echo "check_format: ARVY_ANALYSIS_STRICT=1 -> failing." >&2
    exit 1
  fi
  echo "check_format: skipping (set ARVY_ANALYSIS_STRICT=1 to make this fatal)."
  exit 0
fi

# lint_fixtures are arvy_lint *input* (deliberately wrong code), not part of
# the formatted tree.
mapfile -t files < <(git ls-files '*.cpp' '*.hpp' ':!tests/lint_fixtures/**')
echo "check_format: $CLANG_FORMAT ($MODE) over ${#files[@]} files ..."
if [ "$MODE" = "fix" ]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "check_format: reformatted in place."
else
  "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
  echo "check_format: clean."
fi
