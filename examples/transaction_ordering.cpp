// Transaction ordering service: the paper's "blockchain" application (§1) -
// "a service that globally orders transactions that are concurrently issued
// by arbitrary nodes".
//
//   $ ./transaction_ordering
//
// Nodes on a random overlay issue transactions concurrently; holding the
// Arvy token is the right to append to the ledger. The global order is the
// token's satisfaction order; the example prints the resulting ledger and
// verifies it is a legal total order (every transaction appended exactly
// once).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "support/rng.hpp"
#include "verify/liveness.hpp"
#include "workload/workload.hpp"

int main() {
  using arvy::graph::NodeId;
  arvy::support::Rng rng(42);

  // A 24-validator overlay: random connected graph with some redundancy.
  const auto overlay = arvy::graph::make_connected_gnp(24, 0.15, rng);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kIvy);
  arvy::proto::SimEngine::Options options;
  options.seed = 42;
  options.delay = arvy::sim::make_uniform_delay(0.5, 3.0);  // WAN jitter
  arvy::proto::SimEngine engine(
      overlay,
      arvy::proto::from_tree(arvy::graph::bfs_tree(overlay, 0)), *policy,
      std::move(options));

  // Three waves of concurrent transactions from distinct validators.
  std::vector<arvy::proto::SimEngine::TimedRequest> arrivals;
  double t = 0.0;
  for (int wave = 0; wave < 3; ++wave) {
    auto batch = arvy::workload::poisson_arrivals(24, 8, 1.5, rng);
    for (auto& request : batch) {
      arrivals.push_back({request.node, request.at + t});
    }
    t = arrivals.back().at + 10.0;
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const auto& a, const auto& b) { return a.at < b.at; });
  engine.run_concurrent(arrivals);

  const auto audit = arvy::verify::audit_liveness(engine);
  std::printf("transaction ordering over a 24-validator overlay\n");
  std::printf("liveness audit: %s\n\n",
              audit.ok ? "every transaction ordered exactly once"
                       : audit.detail.c_str());

  // The ledger: transactions in token (satisfaction) order.
  std::vector<const arvy::proto::RequestRecord*> ledger;
  for (const auto& record : engine.requests()) ledger.push_back(&record);
  std::sort(ledger.begin(), ledger.end(), [](const auto* a, const auto* b) {
    return a->satisfaction_index < b->satisfaction_index;
  });
  std::printf("seq  validator  submitted  committed\n");
  std::printf("-------------------------------------\n");
  for (const auto* record : ledger) {
    std::printf("%3llu  v%-8u  %9.2f  %9.2f\n",
                static_cast<unsigned long long>(record->satisfaction_index),
                record->node, record->submitted, *record->satisfied_at);
  }
  std::printf(
      "\ntoken traffic: %.0f distance over %llu transfers; find traffic "
      "%.0f\n"
      "The token's travel order IS the ledger: no fork is possible because\n"
      "Lemma 2 keeps the directory a single directionless tree at all "
      "times.\n",
      engine.costs().token_distance,
      static_cast<unsigned long long>(engine.costs().token_messages),
      engine.costs().find_distance);
  return 0;
}
