// Quickstart: coordinate access to one shared object over a small network.
//
//   $ ./quickstart
//
// Builds an 8-node ring, runs Arvy with the Algorithm 2 bridge policy, and
// walks the token through a handful of requests, printing what the
// directory does at each step.
#include <cstdio>

#include "graph/generators.hpp"
#include "proto/directory.hpp"

int main() {
  using arvy::graph::NodeId;

  // 1. The network: any connected weighted graph works. Routing is the
  //    library's concern; you only pick the topology.
  const auto network = arvy::graph::make_ring(8);

  // 2. The directory: one shared object, tracked by the Arvy protocol.
  //    PolicyKind selects the NewParent rule - kArrow, kIvy, kBridge, ...
  arvy::Directory directory(network,
                            {.policy = arvy::proto::PolicyKind::kBridge});
  std::printf("object initially at node %u\n", *directory.holder());

  // 3. Nodes acquire the object. acquire_and_wait drives the simulated
  //    network until the object arrives.
  for (NodeId requester : {6u, 1u, 5u, 2u}) {
    const double before = directory.costs().total_distance();
    directory.acquire_and_wait(requester);
    std::printf("node %u acquired the object   (message distance: %.0f)\n",
                *directory.holder(),
                directory.costs().total_distance() - before);
  }

  // 4. Costs are accounted per message kind, distance-weighted - the
  //    paper's cost model.
  const auto& costs = directory.costs();
  std::printf(
      "\ntotals: find traffic %.0f over %llu messages, token traffic %.0f "
      "over %llu transfers\n",
      costs.find_distance,
      static_cast<unsigned long long>(costs.find_messages),
      costs.token_distance,
      static_cast<unsigned long long>(costs.token_messages));
  return 0;
}
