// Mobile server on a metro ring: the paper's "coordinate access to a mobile
// server" application (§1) on the topology where Arvy shines (§6).
//
//   $ ./mobile_server_ring
//
// Sixteen edge sites on a metro fiber ring share one migratable service
// instance. Demand moves around the ring through the day; the directory
// both locates the server and migrates it to each demanding site. Compares
// the Algorithm 2 bridge policy with Arrow and Ivy on identical demand, and
// against the offline optimum.
#include <cstdio>

#include "analysis/competitive.hpp"
#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "support/rng.hpp"
#include "workload/workload.hpp"

int main() {
  constexpr std::size_t kSites = 16;
  const auto ring = arvy::graph::make_ring(kSites);
  arvy::support::Rng rng(7);

  // Demand pattern: commuter traffic bouncing between two neighbourhoods
  // that are ADJACENT on the fiber ring (sites 15,14,13 vs 0,1,2) - one ring
  // hop apart, but on opposite sides of any fixed spanning path's cut. This
  // is exactly the pattern §6 proves no static tree can serve well: the
  // requests have tiny optimal cost yet cross the tree's worst-stretch pair.
  std::vector<arvy::graph::NodeId> demand;
  for (std::size_t i = 0; i < 160; ++i) {
    const bool west = (i / 3) % 2 == 0;
    const auto offset = static_cast<arvy::graph::NodeId>(rng.next_below(3));
    demand.push_back(west ? static_cast<arvy::graph::NodeId>(kSites - 1 -
                                                             offset)
                          : offset);
  }

  std::printf("mobile server on a %zu-site ring, %zu relocation requests\n\n",
              kSites, demand.size());
  std::printf("%-8s  %12s  %12s  %8s\n", "policy", "find traffic",
              "total traffic", "vs OPT");
  for (auto kind : {arvy::proto::PolicyKind::kBridge,
                    arvy::proto::PolicyKind::kArrow,
                    arvy::proto::PolicyKind::kIvy}) {
    const auto init =
        kind == arvy::proto::PolicyKind::kBridge
            ? arvy::proto::ring_bridge_config(kSites)
            : arvy::proto::from_tree(arvy::graph::ring_path_tree(
                  ring, static_cast<arvy::graph::NodeId>(kSites / 2 - 1)));
    auto policy = arvy::proto::make_policy(kind);
    const auto report =
        arvy::analysis::measure_sequential(ring, init, *policy, demand);
    std::printf("%-8s  %12.0f  %12.0f  %7.2fx\n", report.policy.c_str(),
                report.find_cost, report.find_cost + report.token_cost,
                report.ratio_find_only);
  }
  std::printf(
      "\nThe bridge policy keeps two semicircular pointer arcs joined by one\n"
      "long-range bridge pointer, so cross-ring jumps cost O(distance)\n"
      "instead of O(n) - Theorem 6's constant competitive ratio in action.\n");
  return 0;
}
