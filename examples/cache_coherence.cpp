// Cache coherence: the paper's original motivation (§1). A multiprocessor
// where cores on a 2D mesh contend for write ownership of shared cache
// lines; one independent Arvy instance per line, served by the sharded
// arvy::DirectoryService.
//
//   $ ./cache_coherence
//
// Simulates a 4x4 mesh of cores, 8 cache lines, and a workload where each
// line has a community of frequent writers (Zipf-selected). Compares the
// interconnect traffic of Arrow, Ivy, and the midpoint policy.
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "service/directory_service.hpp"
#include "support/rng.hpp"
#include "workload/workload.hpp"

namespace {

struct Write {
  std::size_t line;
  arvy::graph::NodeId core;
};

double run(const arvy::graph::Graph& mesh, const std::vector<Write>& writes,
           arvy::proto::PolicyKind policy, std::size_t lines) {
  // Two shards: cache lines hash across them, each owning one reusable
  // engine - the same facade scales to millions of lines unchanged.
  arvy::DirectoryService directory(mesh, lines, /*shard_count=*/2,
                                   {.policy = policy});
  for (const Write& w : writes) {
    directory.acquire_and_wait(w.line, w.core);
  }
  return directory.cost_snapshot().total_distance();
}

}  // namespace

int main() {
  constexpr std::size_t kLines = 8;
  constexpr std::size_t kWritesPerLine = 60;
  const auto mesh = arvy::graph::make_grid(4, 4);
  arvy::support::Rng rng(2024);

  // Workload: each cache line is mostly written by a hot community of
  // cores (Zipf over a per-line shuffled core order) - false sharing and
  // migratory patterns both appear.
  std::vector<Write> writes;
  for (std::size_t line = 0; line < kLines; ++line) {
    auto sequence =
        arvy::workload::zipf_sequence(mesh.node_count(), kWritesPerLine,
                                      /*alpha=*/1.3, rng);
    for (arvy::graph::NodeId core : sequence) {
      writes.push_back({line, core});
    }
  }
  // Interleave lines round-robin so ownership of different lines migrates
  // concurrently, as in a real write stream.
  std::vector<Write> interleaved;
  for (std::size_t i = 0; i < kWritesPerLine; ++i) {
    for (std::size_t line = 0; line < kLines; ++line) {
      interleaved.push_back(writes[line * kWritesPerLine + i]);
    }
  }

  std::printf("cache-coherence simulation: 4x4 mesh, %zu lines, %zu writes\n\n",
              kLines, interleaved.size());
  std::printf("%-10s  %s\n", "policy", "interconnect distance (lower is better)");
  for (auto policy : {arvy::proto::PolicyKind::kArrow,
                      arvy::proto::PolicyKind::kIvy,
                      arvy::proto::PolicyKind::kMidpoint,
                      arvy::proto::PolicyKind::kClosest}) {
    const double cost = run(mesh, interleaved, policy, kLines);
    std::printf("%-10s  %8.0f\n",
                std::string(arvy::proto::policy_kind_name(policy)).c_str(),
                cost);
  }
  std::printf(
      "\nEach cache line is an independent Arvy instance; the directory\n"
      "serializes writers per line exactly like an MSI owner-tracking\n"
      "protocol, and the NewParent policy controls how aggressively the\n"
      "owner-lookup tree adapts to the write pattern.\n");
  return 0;
}
