// Trace visualizer: emits a Graphviz DOT frame of the directory
// configuration after every protocol event, in the visual language of the
// paper's Figure 1 (black parent edges, red in-flight finds, token box).
//
//   $ ./visualize_trace > frames.dot
//   $ csplit -z frames.dot '/^digraph/' '{*}' && for f in xx*; do
//       dot -Tpng $f -o $f.png; done
#include <cstdio>
#include <iostream>

#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "support/rng.hpp"
#include "verify/configuration.hpp"

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::stoul(argv[1]) : 6;
  if (n < 4) n = 4;
  if (n % 2 == 1) ++n;  // Algorithm 2's initialization wants an even ring
  const auto ring = arvy::graph::make_ring(n);
  auto policy = arvy::proto::make_policy(arvy::proto::PolicyKind::kBridge);
  arvy::proto::SimEngine::Options options;
  options.discipline = arvy::sim::Discipline::kRandom;
  options.seed = 11;
  arvy::proto::SimEngine engine(ring, arvy::proto::ring_bridge_config(n),
                                *policy, std::move(options));

  std::size_t frame = 0;
  engine.set_post_event_hook([&](const arvy::proto::SimEngine& eng) {
    std::printf("// frame %zu\n", frame++);
    std::cout << arvy::verify::capture(eng).to_dot();
  });

  std::printf("// frame %zu (initial)\n", frame++);
  std::cout << arvy::verify::capture(engine).to_dot();

  // Three concurrent requests racing around the ring.
  arvy::support::Rng rng(5);
  engine.submit(0);
  engine.submit(static_cast<arvy::graph::NodeId>(n - 1));
  engine.step();
  engine.submit(static_cast<arvy::graph::NodeId>(n / 2 + 1));
  engine.run_until_idle();

  std::fprintf(stderr, "emitted %zu DOT frames to stdout\n", frame);
  return 0;
}
