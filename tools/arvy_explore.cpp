// arvy_explore: bounded systematic exploration of Arvy interleavings.
//
// Enumerates every message-delivery interleaving (optionally with bounded
// message-drop choice points) of a small closed scenario, checking the
// Lemma 2 invariants on every reachable configuration and the Theorem 5
// liveness audit at every quiescent one. Exits 0 on a clean (possibly
// bounded) search, 1 with a minimized replayable counterexample on a
// violation, 2 on usage errors. See docs/TESTING.md.
//
// Examples:
//   arvy_explore --topology ring6 --policy bridge --require-complete
//   arvy_explore --topology path4 --policy arrow --fault-budget 1
//   arvy_explore --topology path4 --policy ivy --seed-bug 2:3
//       --emit-trace /tmp/bug.trace  (one line)
//   arvy_explore --replay /tmp/bug.trace
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "explore/explorer.hpp"
#include "proto/policies.hpp"

namespace {

constexpr std::string_view kUsage = R"(usage: arvy_explore [options]

Scenario (ignored with --replay):
  --topology NAME       triangle | path4 | star5 | ring4 | ring6  [path4]
  --policy NAME         arrow | ivy | bridge | midpoint | closest | kback |
                        spectrum (random is rejected: exploration needs
                        deterministic policies)                   [arrow]
  --requests A,B,...    request nodes, submitted up-front  [3 spread nodes]

Search:
  --fault-budget N      allow up to N message drops per execution     [0]
  --max-depth N         action-prefix depth bound                   [512]
  --max-states N        distinct-state bound                    [2000000]
  --time-budget SECS    wall-clock bound                      [unbounded]
  --no-dpor             disable the sleep-set reduction (naive DFS)
  --require-complete    exit 1 unless the search was exhaustive

Bug seeding (checker sensitivity):
  --seed-bug K:NODE     on the K-th find delivery of every execution,
                        fabricate NODE into the find's visited list

Output:
  --stats-json FILE     write machine-readable stats (CI artifact)
  --emit-trace FILE     write the minimized counterexample trace
  --replay FILE         replay a trace file instead of exploring
  --quiet               suppress the human-readable report
)";

struct CliOptions {
  std::string topology = "path4";
  std::string policy = "arrow";
  std::vector<arvy::graph::NodeId> requests;
  arvy::explore::ExploreOptions explore;
  bool require_complete = false;
  bool quiet = false;
  std::string stats_json_path;
  std::string emit_trace_path;
  std::string replay_path;
};

std::vector<arvy::graph::NodeId> parse_node_list(const std::string& text) {
  std::vector<arvy::graph::NodeId> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) throw std::invalid_argument("empty request entry");
    out.push_back(static_cast<arvy::graph::NodeId>(std::stoul(item)));
  }
  return out;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--topology") {
      cli.topology = need_value(i);
    } else if (arg == "--policy") {
      cli.policy = need_value(i);
    } else if (arg == "--requests") {
      cli.requests = parse_node_list(need_value(i));
    } else if (arg == "--fault-budget") {
      cli.explore.fault_budget =
          static_cast<std::uint32_t>(std::stoul(need_value(i)));
    } else if (arg == "--max-depth") {
      cli.explore.max_depth = std::stoul(need_value(i));
    } else if (arg == "--max-states") {
      cli.explore.max_states = std::stoull(need_value(i));
    } else if (arg == "--time-budget") {
      cli.explore.time_budget_seconds = std::stod(need_value(i));
    } else if (arg == "--no-dpor") {
      cli.explore.sleep_sets = false;
    } else if (arg == "--require-complete") {
      cli.require_complete = true;
    } else if (arg == "--seed-bug") {
      const std::string value = need_value(i);
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--seed-bug expects K:NODE");
      }
      cli.explore.corrupt_at_find_delivery =
          std::stoull(value.substr(0, colon));
      cli.explore.corrupt_with = static_cast<arvy::graph::NodeId>(
          std::stoul(value.substr(colon + 1)));
    } else if (arg == "--stats-json") {
      cli.stats_json_path = need_value(i);
    } else if (arg == "--emit-trace") {
      cli.emit_trace_path = need_value(i);
    } else if (arg == "--replay") {
      cli.replay_path = need_value(i);
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown option '" + std::string(arg) + "'");
    }
  }
  return cli;
}

void print_stats(const arvy::explore::Scenario& scenario,
                 const arvy::explore::ExploreResult& result) {
  const arvy::explore::ExploreStats& st = result.stats;
  std::cout << scenario.name() << ": "
            << (st.complete ? "exhaustive" : "bounded") << " search, "
            << st.states << " states, " << st.transitions << " transitions, "
            << st.quiescent << " quiescent\n"
            << "  dpor: " << st.sleep_prunes << " sleep prunes, "
            << st.cache_hits << " cache hits, " << st.re_expansions
            << " re-expansions\n"
            << "  work: " << st.executions << " executions, "
            << st.replay_steps << " replay steps, max frontier "
            << st.max_frontier << ", max depth " << st.max_depth_seen << ", "
            << st.seconds << " s\n";
}

int run_replay(const CliOptions& cli) {
  std::ifstream in(cli.replay_path);
  if (!in) {
    std::cerr << "arvy_explore: cannot open '" << cli.replay_path << "'\n";
    return 2;
  }
  const arvy::explore::TraceFile file = arvy::explore::read_trace(in);
  const arvy::explore::ReplayOutcome outcome =
      arvy::explore::replay(file.scenario, file.trace, file.options);
  if (outcome.check.ok) {
    if (!cli.quiet) {
      std::cout << file.scenario.name() << ": trace of " << file.trace.size()
                << " actions replays clean\n";
    }
    return 0;
  }
  if (!cli.quiet) {
    std::cout << file.scenario.name() << ": "
              << (outcome.liveness ? "liveness" : "invariant")
              << " violation at step " << outcome.failing_step << "/"
              << file.trace.size() << ": " << outcome.check.detail << '\n';
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  try {
    cli = parse_cli(argc, argv);
    if (!cli.replay_path.empty()) return run_replay(cli);

    const arvy::explore::Scenario scenario = arvy::explore::make_scenario(
        cli.topology, arvy::explore::parse_policy_kind(cli.policy),
        cli.requests);
    const arvy::explore::ExploreResult result =
        arvy::explore::explore(scenario, cli.explore);

    if (!cli.quiet) print_stats(scenario, result);
    if (!cli.stats_json_path.empty()) {
      std::ofstream out(cli.stats_json_path);
      out << arvy::explore::stats_json(scenario, cli.explore, result) << '\n';
    }

    if (result.violation.has_value()) {
      const arvy::explore::Violation& v = *result.violation;
      std::cout << scenario.name() << ": "
                << (v.liveness ? "LIVENESS" : "INVARIANT")
                << " VIOLATION after " << v.trace.size()
                << " actions: " << v.detail << '\n';
      std::cout << "  minimized trace:";
      for (const arvy::explore::Action& a : v.trace) {
        std::cout << ' ' << arvy::explore::format_action(a);
      }
      std::cout << '\n';
      if (!cli.emit_trace_path.empty()) {
        std::ofstream out(cli.emit_trace_path);
        arvy::explore::write_trace(out, scenario, cli.explore, v.trace,
                                   v.detail);
        std::cout << "  trace written to " << cli.emit_trace_path
                  << " (replay: arvy_explore --replay "
                  << cli.emit_trace_path << ")\n";
      }
      return 1;
    }
    if (cli.require_complete && !result.stats.complete) {
      std::cerr << "arvy_explore: search hit a budget before completing "
                << "(--require-complete)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "arvy_explore: " << e.what() << '\n' << kUsage;
    return 2;
  }
}
