// arvy_lint: project-specific static analysis for the Arvy tree.
//
// Generic tooling (clang-tidy, TSan) catches bugs after they exist; this
// tool rejects the *disciplines* the roadmap's scaling work relies on being
// broken in the first place. Seven rules, each with a stable id:
//
//   layering     src/ includes must follow the layer DAG committed in
//                docs/layers.toml (single source of truth; rendered in
//                docs/ARCHITECTURE.md). A file in src/<layer>/ may include
//                its own layer and any layer in the transitive closure of
//                its declared dependencies - nothing else.
//   lock         raw std::mutex / std::recursive_mutex / std::timed_mutex /
//                std::shared_mutex / std::condition_variable are banned
//                outside src/support/lock_rank.* and the [lock] allowlist:
//                everything else locks through support::RankedMutex (with
//                std::condition_variable_any for waiting), so the lock-rank
//                deadlock check covers every acquisition in the tree.
//   hotpath      a function annotated ARVY_HOT (support/hot.hpp) must not
//                allocate, lock, throw, or log: the constructs are matched
//                lexically over the annotated definition (parameters, init
//                list, body, nested lambdas included).
//   msgpod       every struct defined in a [msgpod] header must carry a
//                static_assert(std::is_trivially_copyable_v<...>) in the
//                same header - the machine-checked prerequisite for the
//                flat POD wire encoding (proto/wire.hpp, roadmap item 2).
//   deprecation  the Directory::engine() escape hatch was removed by the
//                DirectoryService refactor; lexically, any `engine()` call
//                or declaration is an error. The rule is unsuppressable:
//                it ignores ARVY-LINT-ALLOW, and any surviving
//                ALLOW(deprecation) grant is itself flagged as stale.
//   atomic       every std::atomic declared under src/ must carry a
//                `// ARVY-ATOMIC(role)` annotation; the [atomic] config
//                section fixes, per role, the legal memory_order set for
//                each operation kind (load/store/RMW, plus the standalone
//                fence orders). Every use site is checked; a call with no
//                explicit order is checked as the implicit seq_cst.
//   audit        (object mode, --audit-objects DIR) the binary-level
//                ARVY_HOT contract: walks the relocation call graph of the
//                optimized objects under DIR/src from every function the
//                compiler placed in a .text.hot.* section (support/hot.hpp
//                + -ffunction-sections) and rejects any path to an [audit]
//                banned symbol (allocators, pthread mutex/cond, throw
//                helpers, logging). .text.unlikely.* sections (ARVY_COLD
//                escape hatches and compiler-split cold halves) are the
//                declared cold side and are not descended into; [audit]
//                assume_clean stops traversal at documented boundaries and
//                [audit] allow declares tolerated caller->callee edges.
//                This closes the hotpath rule's lexical blind spots
//                (typedef laundering, allocation inlined through std::
//                internals) at the instruction level. Known limits: calls
//                through function pointers stored elsewhere are invisible
//                to relocations, and undefined symbols that are not banned
//                are trusted leaves (memcpy and friends).
//
// Suppression: `// ARVY-LINT-ALLOW(rule)` (optionally `(rule1,rule2)`, with
// a trailing `: justification`) is the single suppression mechanism. It
// silences the named rule(s) on its own line and the next line, so it works
// both trailing and as a lead-in comment. The deprecation rule is the one
// exception: its migration window is closed, so it accepts no grants. Whole-file grants exist only where
// the config declares them ([lock] allow_files; [msgpod] headers scope;
// [audit] assume_clean/allow for the object mode, where there are no
// source lines to annotate).
//
// The tool is deliberately lexical: a comment/string-aware tokenizer over
// the tree plus the CMake-exported compile_commands.json for coverage
// cross-checking (every src/ TU in the database must live in a declared
// layer). No libclang, so it runs on the bare toolchain in seconds and its
// verdicts are byte-stable for fixtures. The cost is the usual lexical
// blind spots (typedef laundering, macro indirection); the fixture corpus
// under tests/lint_fixtures/ pins exactly what is and is not caught, and
// the object audit re-checks the hot-path half with the compiler's own
// output as ground truth.
//
// Exit codes: 0 clean, 1 violations, 2 usage/config error. --stats-json
// emits a machine-readable report (CI artifact, like arvy_explore).
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(__GNUG__) && __has_include(<cxxabi.h>)
#include <cxxabi.h>
#define ARVY_LINT_HAVE_DEMANGLE 1
#endif

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Diagnostics

struct Violation {
  std::string file;  // root-relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string hint;
};

struct Options {
  std::string root = ".";
  std::string layers_path;            // default: <root>/docs/layers.toml
  std::string compile_commands_path;  // optional cross-check
  std::string stats_json_path;
  std::string audit_objects_dir;  // non-empty enables the object audit
  std::set<std::string> only_rules;  // empty = all
  bool quiet = false;
};

const std::vector<std::string> kAllRules = {
    "layering", "lock", "hotpath", "msgpod", "deprecation", "atomic", "audit"};

// ---------------------------------------------------------------------------
// Config: docs/layers.toml (tiny TOML subset: [section], key = [ "a", "b" ])

struct Config {
  // Declared direct dependencies per layer, and the computed closure.
  std::map<std::string, std::vector<std::string>> layer_deps;
  std::map<std::string, std::set<std::string>> layer_closure;
  std::set<std::string> lock_allow_files;
  std::vector<std::string> msgpod_headers;
  // [atomic]: role -> operation kind ("load"/"store"/"rmw") -> legal orders.
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      atomic_roles;
  std::set<std::string> atomic_fence_orders;
  // [audit]: substring patterns over mangled AND demangled symbol names.
  std::vector<std::string> audit_banned;
  std::vector<std::string> audit_assume_clean;
  std::vector<std::pair<std::string, std::string>> audit_allow;  // caller->callee
  bool audit_declared = false;
};

void fail_config(const std::string& what) {
  std::cerr << "arvy_lint: config error: " << what << '\n';
  std::exit(2);
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

// Parses `[ "a", "b" ]` (or `[]`) into its string elements.
std::vector<std::string> parse_string_list(const std::string& value,
                                           const std::string& context) {
  const std::string v = trim(value);
  if (v.size() < 2 || v.front() != '[' || v.back() != ']') {
    fail_config(context + ": expected a [\"...\"] list, got '" + value + "'");
  }
  std::vector<std::string> out;
  std::size_t i = 1;
  const std::size_t end = v.size() - 1;
  while (i < end) {
    while (i < end && (std::isspace(static_cast<unsigned char>(v[i])) != 0 ||
                       v[i] == ',')) {
      ++i;
    }
    if (i >= end) break;
    if (v[i] != '"') fail_config(context + ": list elements must be quoted");
    const std::size_t close = v.find('"', i + 1);
    if (close == std::string::npos || close > end) {
      fail_config(context + ": unterminated string");
    }
    out.push_back(v.substr(i + 1, close - i - 1));
    i = close + 1;
  }
  return out;
}

Config load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail_config("cannot open layer config '" + path + "'");
  Config cfg;
  std::string section;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '[' && t.back() == ']') {
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      fail_config(path + ":" + std::to_string(lineno) +
                  ": expected key = [..]");
    }
    const std::string key = trim(t.substr(0, eq));
    std::string value = trim(t.substr(eq + 1));
    const std::string context = path + ":" + std::to_string(lineno);
    // Multi-line lists: a value opening '[' without its ']' continues on the
    // following lines (comments stripped) until the bracket closes.
    while (!value.empty() && value.front() == '[' && value.back() != ']') {
      std::string cont;
      if (!std::getline(in, cont)) {
        fail_config(context + ": unterminated [...] list");
      }
      ++lineno;
      const std::size_t chash = cont.find('#');
      if (chash != std::string::npos) cont.erase(chash);
      value += ' ' + trim(cont);
    }
    if (section == "layers") {
      cfg.layer_deps[key] = parse_string_list(value, context);
    } else if (section == "lock" && key == "allow_files") {
      for (auto& f : parse_string_list(value, context)) {
        cfg.lock_allow_files.insert(f);
      }
    } else if (section == "msgpod" && key == "headers") {
      cfg.msgpod_headers = parse_string_list(value, context);
    } else if (section == "atomic" && key == "fence") {
      for (auto& o : parse_string_list(value, context)) {
        cfg.atomic_fence_orders.insert(o);
      }
    } else if (section == "atomic") {
      // Contract entries are `<role>.<op> = [orders]`.
      const std::size_t dot = key.rfind('.');
      if (dot == std::string::npos || dot == 0 || dot + 1 >= key.size()) {
        fail_config(context + ": [atomic] keys are '<role>.<op>' or 'fence'");
      }
      const std::string role = key.substr(0, dot);
      const std::string op = key.substr(dot + 1);
      if (op != "load" && op != "store" && op != "rmw") {
        fail_config(context + ": unknown atomic operation kind '" + op +
                    "' (expected load/store/rmw)");
      }
      for (auto& o : parse_string_list(value, context)) {
        cfg.atomic_roles[role][op].insert(o);
      }
    } else if (section == "audit" && key == "banned") {
      cfg.audit_banned = parse_string_list(value, context);
      cfg.audit_declared = true;
    } else if (section == "audit" && key == "assume_clean") {
      cfg.audit_assume_clean = parse_string_list(value, context);
      cfg.audit_declared = true;
    } else if (section == "audit" && key == "allow") {
      for (auto& edge : parse_string_list(value, context)) {
        const std::size_t arrow = edge.find("->");
        if (arrow == std::string::npos) {
          fail_config(context + ": [audit] allow entries are 'caller -> callee'");
        }
        cfg.audit_allow.emplace_back(trim(edge.substr(0, arrow)),
                                     trim(edge.substr(arrow + 2)));
      }
      cfg.audit_declared = true;
    } else {
      fail_config(context + ": unknown entry [" + section + "] " + key);
    }
  }
  if (cfg.layer_deps.empty()) fail_config(path + ": no [layers] declared");
  // Closure + acyclicity by DFS; a cycle is a config error (the whole point
  // of the DAG is that dependencies are strictly downward).
  for (const auto& [layer, deps] : cfg.layer_deps) {
    for (const auto& d : deps) {
      if (cfg.layer_deps.find(d) == cfg.layer_deps.end()) {
        fail_config("layer '" + layer + "' depends on undeclared '" + d + "'");
      }
    }
  }
  for (const auto& [layer, deps] : cfg.layer_deps) {
    std::set<std::string> seen;
    std::vector<std::string> stack(deps.begin(), deps.end());
    while (!stack.empty()) {
      const std::string d = stack.back();
      stack.pop_back();
      if (d == layer) fail_config("layer cycle through '" + layer + "'");
      if (!seen.insert(d).second) continue;
      const auto& next = cfg.layer_deps.at(d);
      stack.insert(stack.end(), next.begin(), next.end());
    }
    cfg.layer_closure[layer] = std::move(seen);
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// Source model: comment/string stripping, ALLOW annotations, tokens

struct Token {
  std::string_view text;
  std::size_t line = 0;
  bool ident = false;  // identifier vs punctuation ("::" is one token)
};

struct SourceFile {
  std::string rel;   // root-relative path, forward slashes
  std::string raw;   // original bytes
  std::string code;  // comments and literals blanked, same length/lines
  std::vector<Token> tokens;
  // line -> rules allowed on that line (ALLOW covers its line and the next).
  std::map<std::size_t, std::set<std::string>> allows;
  // Each grant's declaration site, (line, rule), for rules that audit the
  // grants themselves rather than honor them.
  std::vector<std::pair<std::size_t, std::string>> allow_sites;
  std::size_t allows_declared = 0;
  // line -> role from an ARVY-ATOMIC(role) comment (same coverage: the
  // annotation's own line and the next, so it works trailing and lead-in).
  std::map<std::size_t, std::string> atomic_tags;
};

// Records ARVY-LINT-ALLOW(rule[,rule]) found in a comment that ends on
// `line`: the grant covers the comment's own line and the following line.
void record_allows(SourceFile& f, std::string_view comment, std::size_t line) {
  static constexpr std::string_view kTag = "ARVY-LINT-ALLOW(";
  std::size_t at = 0;
  while ((at = comment.find(kTag, at)) != std::string_view::npos) {
    const std::size_t open = at + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    std::stringstream rules(std::string(comment.substr(open, close - open)));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      const std::string r = trim(rule);
      if (r.empty()) continue;
      f.allows[line].insert(r);
      f.allows[line + 1].insert(r);
      f.allow_sites.emplace_back(line, r);
      ++f.allows_declared;
    }
    at = close + 1;
  }
}

// Records `ARVY-ATOMIC(role)` found in a comment ending on `line`; like
// ALLOW, the binding covers the comment's own line and the following line.
// An annotation directly on a line wins over one inherited from the line
// above (comments are harvested top-down, so the exact-line write lands
// after the lead-in's spill-over emplace).
void record_atomic_tags(SourceFile& f, std::string_view comment,
                        std::size_t line) {
  static constexpr std::string_view kTag = "ARVY-ATOMIC(";
  std::size_t at = 0;
  while ((at = comment.find(kTag, at)) != std::string_view::npos) {
    const std::size_t open = at + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    const std::string role = trim(comment.substr(open, close - open));
    if (!role.empty()) {
      f.atomic_tags[line] = role;
      f.atomic_tags.emplace(line + 1, role);
    }
    at = close + 1;
  }
}

// Blanks comments, string literals, and char literals (newlines preserved so
// line numbers survive), harvesting ALLOW annotations from comment text.
void strip_and_annotate(SourceFile& f) {
  const std::string& s = f.raw;
  std::string out(s.size(), ' ');
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  auto copy_newline = [&](std::size_t at) {
    out[at] = '\n';
    ++line;
  };
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      copy_newline(i);
      ++i;
    } else if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const std::size_t eol = s.find('\n', i);
      const std::size_t end = eol == std::string::npos ? n : eol;
      record_allows(f, std::string_view(s).substr(i, end - i), line);
      record_atomic_tags(f, std::string_view(s).substr(i, end - i), line);
      i = end;
    } else if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const std::size_t close = s.find("*/", i + 2);
      const std::size_t end = close == std::string::npos ? n : close + 2;
      std::size_t last_line = line;
      for (std::size_t j = i; j < end; ++j) {
        if (s[j] == '\n') {
          copy_newline(j);
          last_line = line;
        }
      }
      record_allows(f, std::string_view(s).substr(i, end - i), last_line);
      record_atomic_tags(f, std::string_view(s).substr(i, end - i), last_line);
      i = end;
    } else if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim"
      const std::size_t open_paren = s.find('(', i + 2);
      if (open_paren == std::string::npos) {
        out[i] = c;
        ++i;
        continue;
      }
      const std::string delim = s.substr(i + 2, open_paren - i - 2);
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = s.find(closer, open_paren + 1);
      const std::size_t end =
          close == std::string::npos ? n : close + closer.size();
      for (std::size_t j = i; j < end; ++j) {
        if (s[j] == '\n') copy_newline(j);
      }
      i = end;
    } else if (c == '"' || c == '\'') {
      // Skip the literal, honoring backslash escapes.
      std::size_t j = i + 1;
      while (j < n && s[j] != c) {
        if (s[j] == '\\' && j + 1 < n) ++j;
        if (s[j] == '\n') copy_newline(j);
        ++j;
      }
      i = j < n ? j + 1 : n;
    } else {
      out[i] = c;
      ++i;
    }
  }
  f.code = std::move(out);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

void tokenize(SourceFile& f) {
  const std::string& s = f.code;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (ident_char(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(s[i])) ++i;
      f.tokens.push_back(
          {std::string_view(s).substr(start, i - start), line, true});
    } else if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      f.tokens.push_back({std::string_view(s).substr(i, 2), line, false});
      i += 2;
    } else {
      f.tokens.push_back({std::string_view(s).substr(i, 1), line, false});
      ++i;
    }
  }
}

bool allowed(const SourceFile& f, std::size_t line, const std::string& rule) {
  const auto it = f.allows.find(line);
  return it != f.allows.end() && it->second.count(rule) > 0;
}

// ---------------------------------------------------------------------------
// The linter

class Linter {
 public:
  Linter(Options options, Config config)
      : options_(std::move(options)), config_(std::move(config)) {}

  int run() {
    collect_files();
    for (auto& f : files_) {
      strip_and_annotate(f);
      tokenize(f);
    }
    if (enabled("layering")) check_layering();
    if (enabled("lock")) check_lock();
    if (enabled("hotpath")) check_hotpath();
    if (enabled("msgpod")) check_msgpod();
    if (enabled("deprecation")) check_deprecation();
    if (enabled("atomic")) check_atomic();
    if (enabled("layering")) check_compile_commands();
    if (enabled("audit") && !options_.audit_objects_dir.empty()) {
      check_audit();
    }
    return report();
  }

 private:
  [[nodiscard]] bool enabled(const std::string& rule) const {
    return options_.only_rules.empty() || options_.only_rules.count(rule) > 0;
  }

  void add(const SourceFile& f, std::size_t line, const std::string& rule,
           std::string message, std::string hint) {
    if (allowed(f, line, rule)) {
      ++allows_used_;
      return;
    }
    violations_.push_back(
        {f.rel, line, rule, std::move(message), std::move(hint)});
  }

  // --- file discovery ------------------------------------------------------

  void collect_files() {
    // The fixture corpus contains deliberate violations of every rule; it is
    // linted only via explicit --root invocations (tests/lint_fixtures/...).
    static constexpr std::string_view kSkipDir = "lint_fixtures";
    const fs::path root(options_.root);
    for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path dir = root / top;
      if (!fs::is_directory(dir)) continue;
      for (auto it = fs::recursive_directory_iterator(dir);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && it->path().filename() == kSkipDir) {
          it.disable_recursion_pending();
          continue;
        }
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".hpp" && ext != ".cpp") continue;
        SourceFile f;
        f.rel = fs::path(fs::relative(it->path(), root)).generic_string();
        std::ifstream in(it->path(), std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        f.raw = buf.str();
        files_.push_back(std::move(f));
      }
    }
    std::sort(files_.begin(), files_.end(),
              [](const SourceFile& a, const SourceFile& b) {
                return a.rel < b.rel;
              });
  }

  // --- rule: layering ------------------------------------------------------

  // Layer of a root-relative path, empty when not under src/<layer>/.
  static std::string layer_of(const std::string& rel) {
    if (rel.rfind("src/", 0) != 0) return {};
    const std::size_t slash = rel.find('/', 4);
    if (slash == std::string::npos) return {};
    return rel.substr(4, slash - 4);
  }

  void check_layering() {
    for (const SourceFile& f : files_) {
      const std::string layer = layer_of(f.rel);
      if (layer.empty()) continue;
      if (config_.layer_deps.find(layer) == config_.layer_deps.end()) {
        add(f, 1, "layering",
            "directory src/" + layer + " is not declared in the layer DAG",
            "add '" + layer + " = [...]' to docs/layers.toml");
        continue;
      }
      // #include scanning happens on the *raw* text: the include path is a
      // string-literal-like token the stripper blanks out.
      std::istringstream lines(f.raw);
      std::string line;
      std::size_t lineno = 0;
      while (std::getline(lines, line)) {
        ++lineno;
        const std::string t = trim(line);
        if (t.rfind("#include", 0) != 0) continue;
        const std::size_t open = t.find('"');
        if (open == std::string::npos) continue;  // <system> include
        const std::size_t close = t.find('"', open + 1);
        if (close == std::string::npos) continue;
        const std::string inc = t.substr(open + 1, close - open - 1);
        const std::size_t slash = inc.find('/');
        if (slash == std::string::npos) {
          add(f, lineno, "layering",
              "non-canonical include \"" + inc + "\"",
              "include project headers as \"<layer>/<file>.hpp\"");
          continue;
        }
        const std::string target = inc.substr(0, slash);
        if (target == layer) continue;
        if (config_.layer_deps.find(target) == config_.layer_deps.end()) {
          add(f, lineno, "layering",
              "include of undeclared layer \"" + target + "\"",
              "declare the layer in docs/layers.toml or fix the path");
          continue;
        }
        const auto& closure = config_.layer_closure.at(layer);
        if (closure.count(target) == 0) {
          add(f, lineno, "layering",
              "layer '" + layer + "' must not include '" + target +
                  "' (not in its dependency closure)",
              "invert the dependency, or extend docs/layers.toml if the "
              "architecture really changed");
        }
      }
    }
  }

  // --- rule: lock ----------------------------------------------------------

  void check_lock() {
    static const std::set<std::string_view> kBanned = {
        "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
        "shared_mutex", "shared_timed_mutex", "condition_variable"};
    for (const SourceFile& f : files_) {
      if (config_.lock_allow_files.count(f.rel) > 0) continue;
      const auto& toks = f.tokens;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (!toks[i].ident || toks[i - 1].text != "::" ||
            toks[i - 2].text != "std") {
          continue;
        }
        if (kBanned.count(toks[i].text) == 0) continue;
        add(f, toks[i].line, "lock",
            "raw std::" + std::string(toks[i].text) +
                " outside support/lock_rank",
            "use support::RankedMutex (std::condition_variable_any for "
            "waiting) so the lock-rank deadlock check covers this lock");
      }
    }
  }

  // --- rule: hotpath -------------------------------------------------------

  void check_hotpath() {
    for (const SourceFile& f : files_) {
      const auto& toks = f.tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident || toks[i].text != "ARVY_HOT") continue;
        // Skip the macro's own definition (#define ARVY_HOT ...).
        if (i >= 2 && toks[i - 1].text == "define" &&
            toks[i - 2].text == "#") {
          continue;
        }
        i = scan_hot_function(f, i);
      }
    }
  }

  // Scans one ARVY_HOT-annotated declaration starting at token `at`;
  // returns the index of the last consumed token.
  std::size_t scan_hot_function(const SourceFile& f, std::size_t at) {
    const auto& toks = f.tokens;
    // Function name: the last identifier before the parameter list's '('.
    std::string name = "?";
    long paren = 0;
    long brace = 0;
    bool in_body = false;
    std::size_t i = at + 1;
    for (; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (!in_body && t.text == ";" && paren == 0 && brace == 0) {
        return i;  // declaration only: nothing to scan
      }
      if (t.ident && !in_body && paren == 0 && i + 1 < toks.size() &&
          toks[i + 1].text == "(" && name == "?") {
        name = std::string(t.text);
      }
      if (t.text == "(") ++paren;
      if (t.text == ")") --paren;
      if (t.text == "{" && paren == 0) {
        in_body = true;
        ++brace;
        continue;
      }
      if (t.text == "}" && paren == 0) {
        --brace;
        if (in_body && brace == 0) {
          // An init-list braced member closes back to zero; the real body
          // is the last braced group (next token continues the init list).
          if (i + 1 < toks.size() &&
              (toks[i + 1].text == "," || toks[i + 1].text == "{")) {
            continue;
          }
          return i;
        }
        continue;
      }
      if (t.ident) {
        const std::string_view category = banned_category(t.text);
        if (!category.empty()) {
          add(f, t.line, "hotpath",
              "ARVY_HOT function '" + name + "' contains " +
                  std::string(category) + " construct '" +
                  std::string(t.text) + "'",
              "hot paths must be allocation-, lock-, throw- and log-free; "
              "move the construct out of the hot function or drop ARVY_HOT");
        }
      }
    }
    return toks.size() - 1;
  }

  static std::string_view banned_category(std::string_view token) {
    static const std::map<std::string_view, std::string_view> kMap = {
        {"new", "allocation"},         {"delete", "allocation"},
        {"malloc", "allocation"},      {"calloc", "allocation"},
        {"realloc", "allocation"},     {"aligned_alloc", "allocation"},
        {"make_unique", "allocation"}, {"make_shared", "allocation"},
        {"push_back", "allocation"},   {"emplace_back", "allocation"},
        {"push_front", "allocation"},  {"emplace_front", "allocation"},
        {"emplace", "allocation"},     {"insert", "allocation"},
        {"resize", "allocation"},      {"reserve", "allocation"},
        {"append", "allocation"},      {"mutex", "locking"},
        {"RankedMutex", "locking"},    {"lock_guard", "locking"},
        {"unique_lock", "locking"},    {"scoped_lock", "locking"},
        {"shared_lock", "locking"},    {"condition_variable", "locking"},
        {"condition_variable_any", "locking"},
        {"throw", "throwing"},         {"printf", "logging"},
        {"fprintf", "logging"},        {"vfprintf", "logging"},
        {"puts", "logging"},           {"cout", "logging"},
        {"cerr", "logging"},           {"clog", "logging"},
        {"log_line", "logging"},       {"ARVY_LOG_INFO", "logging"},
        {"ARVY_LOG_DEBUG", "logging"}, {"ARVY_LOG_TRACE", "logging"}};
    const auto it = kMap.find(token);
    return it == kMap.end() ? std::string_view{} : it->second;
  }

  // --- rule: msgpod --------------------------------------------------------

  void check_msgpod() {
    for (const std::string& header : config_.msgpod_headers) {
      const SourceFile* f = find_file(header);
      if (f == nullptr) {
        Violation v;
        v.file = header;
        v.line = 1;
        v.rule = "msgpod";
        v.message = "[msgpod] header declared in layers.toml not found";
        v.hint = "fix the path in docs/layers.toml";
        violations_.push_back(std::move(v));
        continue;
      }
      const auto& toks = f->tokens;
      // Collect the argument text of every static_assert in the header.
      std::vector<std::string> asserts;
      for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].ident || toks[i].text != "static_assert") continue;
        std::string arg = " ";  // leading space so every token is delimited
        long depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")" && --depth == 0) break;
          arg.append(toks[j].text);
          arg.push_back(' ');
        }
        asserts.push_back(std::move(arg));
      }
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].ident ||
            (toks[i].text != "struct" && toks[i].text != "class")) {
          continue;
        }
        // `enum class Kind : base` is an enum, not a message struct (scoped
        // enums are trivially copyable by construction anyway).
        if (i > 0 && toks[i - 1].text == "enum") continue;
        if (!toks[i + 1].ident) continue;
        const std::string name(toks[i + 1].text);
        // Definitions only: the name is followed by '{', 'final', or bases.
        const std::string_view after = toks[i + 2].text;
        if (after != "{" && after != ":" && after != "final") continue;
        // Whole-token match: the assert text is " tok tok ... " delimited.
        const bool covered = std::any_of(
            asserts.begin(), asserts.end(), [&](const std::string& a) {
              return a.find(" is_trivially_copyable") != std::string::npos &&
                     a.find(" " + name + " ") != std::string::npos;
            });
        if (!covered) {
          add(*f, toks[i].line, "msgpod",
              "message struct '" + name +
                  "' has no is_trivially_copyable static_assert",
              "add static_assert(std::is_trivially_copyable_v<" + name +
                  ">); messages must stay POD for the flat wire encoding");
        }
      }
    }
  }

  // --- rule: deprecation ---------------------------------------------------

  // Deliberately not routed through add(): the escape hatch is gone, the
  // migration window is closed, and the rule no longer honors
  // ARVY-LINT-ALLOW. Any grant still naming the rule is dead weight that
  // would mask a regression, so it is flagged as its own finding.
  void check_deprecation() {
    for (const SourceFile& f : files_) {
      const auto& toks = f.tokens;
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].ident || toks[i].text != "engine") continue;
        if (toks[i + 1].text != "(" || toks[i + 2].text != ")") continue;
        violations_.push_back(
            {f.rel, toks[i].line, "deprecation",
             "use of the removed engine() escape hatch",
             "use inspect() for read-only access, or the typed "
             "drivers/observers for mutation (see proto/directory.hpp)"});
      }
      for (const auto& [line, rule] : f.allow_sites) {
        if (rule != "deprecation") continue;
        violations_.push_back(
            {f.rel, line, "deprecation",
             "stale ARVY-LINT-ALLOW(deprecation) grant",
             "the engine() escape hatch no longer exists and the rule "
             "accepts no suppressions; delete the ALLOW comment"});
      }
    }
  }

  // --- rule: atomic --------------------------------------------------------

  // Operation kind of an atomic member call, empty when not order-relevant.
  static std::string_view atomic_op_kind(std::string_view member) {
    static const std::map<std::string_view, std::string_view> kMap = {
        {"load", "load"},
        {"store", "store"},
        {"exchange", "rmw"},
        {"fetch_add", "rmw"},
        {"fetch_sub", "rmw"},
        {"fetch_and", "rmw"},
        {"fetch_or", "rmw"},
        {"fetch_xor", "rmw"},
        {"compare_exchange_weak", "rmw"},
        {"compare_exchange_strong", "rmw"}};
    const auto it = kMap.find(member);
    return it == kMap.end() ? std::string_view{} : it->second;
  }

  // Collects the memory_order_* arguments of the balanced parens starting
  // at token `open` ('('); returns the stripped order names ("relaxed",
  // "seq_cst", ...) and sets `end` past the closing ')'.
  static std::vector<std::string> collect_orders(const SourceFile& f,
                                                 std::size_t open,
                                                 std::size_t& end) {
    static constexpr std::string_view kPrefix = "memory_order_";
    std::vector<std::string> orders;
    long depth = 0;
    std::size_t i = open;
    for (; i < f.tokens.size(); ++i) {
      if (f.tokens[i].text == "(") ++depth;
      if (f.tokens[i].text == ")" && --depth == 0) break;
      if (f.tokens[i].ident && f.tokens[i].text.rfind(kPrefix, 0) == 0) {
        orders.emplace_back(f.tokens[i].text.substr(kPrefix.size()));
      }
    }
    end = i;
    return orders;
  }

  void check_atomic() {
    // Pass 1: every `std::atomic<...>` declaration under src/ needs an
    // ARVY-ATOMIC(role) with a role the [atomic] config defines. Bindings
    // are global across the tree (a member declared in a header is used in
    // its .cpp), keyed by the declared name - lexical, like everything
    // else here, so distinct atomics sharing a name must share a role.
    std::map<std::string, std::string> roles;      // name -> role
    std::map<std::string, std::string> role_site;  // name -> "file:line"
    for (const SourceFile& f : files_) {
      if (f.rel.rfind("src/", 0) != 0) continue;
      const auto& toks = f.tokens;
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].ident || toks[i].text != "std" ||
            toks[i + 1].text != "::" || toks[i + 2].text != "atomic") {
          continue;
        }
        std::size_t j = i + 3;
        if (j < toks.size() && toks[j].text == "<") {
          long depth = 0;
          for (; j < toks.size(); ++j) {
            if (toks[j].text == "<") ++depth;
            if (toks[j].text == ">" && --depth == 0) break;
          }
          ++j;  // past the closing '>'
        }
        // Declarator adornments between the type and the name; stopping at
        // anything else (e.g. '(') rejects non-declaration mentions like
        // make_unique<std::atomic<T>[]>(n).
        while (j < toks.size() &&
               (toks[j].text == "[" || toks[j].text == "]" ||
                toks[j].text == ">" || toks[j].text == "*" ||
                toks[j].text == "&")) {
          ++j;
        }
        if (j >= toks.size() || !toks[j].ident) continue;
        const std::string name(toks[j].text);
        const std::size_t line = toks[j].line;
        const auto tag = f.atomic_tags.find(line);
        if (tag == f.atomic_tags.end()) {
          add(f, line, "atomic",
              "std::atomic '" + name + "' has no ARVY-ATOMIC(role) annotation",
              "declare the word's protocol role (see [atomic] in the lint "
              "config); the role fixes which memory orders its operations "
              "may use");
          continue;
        }
        const std::string& role = tag->second;
        if (config_.atomic_roles.find(role) == config_.atomic_roles.end()) {
          add(f, line, "atomic",
              "ARVY-ATOMIC role '" + role + "' on '" + name +
                  "' is not declared in the [atomic] config section",
              "add '" + role + ".<op> = [...]' entries or use a declared role");
          continue;
        }
        const auto prev = roles.find(name);
        if (prev != roles.end() && prev->second != role) {
          add(f, line, "atomic",
              "atomic '" + name + "' re-annotated as '" + role +
                  "' but already bound to '" + prev->second + "' at " +
                  role_site[name],
              "bindings are lexical by name: rename one of the atomics or "
              "align the roles");
          continue;
        }
        roles[name] = role;
        role_site[name] = f.rel + ":" + std::to_string(line);
      }
    }

    // Pass 2: use sites. `name[...].op(...)` and `name.op(...)` check the
    // call's memory_order arguments (implicit = seq_cst) against the role
    // contract; standalone atomic_thread_fence checks the fence list.
    for (const SourceFile& f : files_) {
      if (f.rel.rfind("src/", 0) != 0) continue;
      const auto& toks = f.tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident) continue;
        if (toks[i].text == "atomic_thread_fence" ||
            toks[i].text == "atomic_signal_fence") {
          if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
          std::size_t end = i + 1;
          for (const std::string& o : collect_orders(f, i + 1, end)) {
            if (config_.atomic_fence_orders.count(o) == 0) {
              add(f, toks[i].line, "atomic",
                  "fence order '" + o + "' is outside the [atomic] fence "
                  "contract",
                  "the declared fences are the eventcount's Dekker pair; a "
                  "new fence protocol needs a config entry and a written "
                  "pairing argument");
            }
          }
          i = end;
          continue;
        }
        const auto bound = roles.find(std::string(toks[i].text));
        if (bound == roles.end()) continue;
        const std::string& name = bound->first;
        const std::string& role = bound->second;
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].text == "[") {
          long depth = 0;
          for (; j < toks.size(); ++j) {
            if (toks[j].text == "[") ++depth;
            if (toks[j].text == "]" && --depth == 0) break;
          }
          ++j;
        }
        if (j + 1 >= toks.size() || toks[j].text != ".") continue;
        const std::string_view kind = atomic_op_kind(toks[j + 1].text);
        if (kind.empty()) continue;
        if (j + 2 >= toks.size() || toks[j + 2].text != "(") continue;
        std::size_t end = j + 2;
        std::vector<std::string> orders = collect_orders(f, j + 2, end);
        const bool implicit = orders.empty();
        if (implicit) orders.emplace_back("seq_cst");
        const auto& contract = config_.atomic_roles.at(role);
        const auto ops = contract.find(std::string(kind));
        const std::size_t line = toks[j + 1].line;
        if (ops == contract.end()) {
          add(f, line, "atomic",
              "role '" + role + "' ('" + name + "') has no " +
                  std::string(kind) + " contract, but '" +
                  std::string(toks[j + 1].text) + "' is one",
              "either the operation is wrong for this word's protocol or "
              "the [atomic] contract is missing an entry");
          i = end;
          continue;
        }
        for (const std::string& o : orders) {
          if (ops->second.count(o) == 0) {
            add(f, line, "atomic",
                std::string(implicit ? "implicit " : "") + "memory order '" +
                    o + "' on '" + name + "." +
                    std::string(toks[j + 1].text) + "' is outside role '" +
                    role + "' (" + std::string(kind) + ")",
                implicit
                    ? "spell the order out: the role contract rejects "
                      "defaulted seq_cst so strength is always a decision"
                    : "use an order the role declares, or re-justify the "
                      "role's contract in the config");
          }
        }
        i = end;
      }
    }
  }

  // --- compile_commands coverage cross-check -------------------------------

  void check_compile_commands() {
    if (options_.compile_commands_path.empty()) return;
    std::ifstream in(options_.compile_commands_path);
    if (!in) {
      fail_config("cannot open compile database '" +
                  options_.compile_commands_path + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string db = buf.str();
    const fs::path root = fs::absolute(options_.root).lexically_normal();
    static constexpr std::string_view kKey = "\"file\"";
    std::size_t at = 0;
    while ((at = db.find(kKey, at)) != std::string::npos) {
      at += kKey.size();
      const std::size_t open = db.find('"', at);
      if (open == std::string::npos) break;
      const std::size_t close = db.find('"', open + 1);
      if (close == std::string::npos) break;
      const std::string file = db.substr(open + 1, close - open - 1);
      at = close + 1;
      const fs::path p = fs::path(file).lexically_normal();
      const std::string rel =
          fs::path(p.lexically_relative(root)).generic_string();
      if (rel.rfind("src/", 0) != 0) continue;
      const std::string layer = layer_of(rel);
      if (layer.empty()) continue;
      if (config_.layer_deps.find(layer) == config_.layer_deps.end()) {
        Violation v;
        v.file = rel;
        v.line = 1;
        v.rule = "layering";
        v.message = "TU in compile_commands.json is outside the layer DAG";
        v.hint = "declare src/" + layer + " in docs/layers.toml";
        violations_.push_back(std::move(v));
      }
    }
  }

  // --- rule: audit (binary-level ARVY_HOT allocation/lock/throw audit) -----

  static std::string demangle(const std::string& mangled) {
#if ARVY_LINT_HAVE_DEMANGLE
    int status = 0;
    char* out = abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
    if (status == 0 && out != nullptr) {
      std::string result(out);
      std::free(out);
      return result;
    }
#endif
    return mangled;
  }

  // Single-quote shell quoting; safe for arbitrary paths.
  static std::string shell_quote(const std::string& s) {
    std::string out = "'";
    for (const char c : s) {
      if (c == '\'') {
        out += "'\\''";
      } else {
        out.push_back(c);
      }
    }
    out += "'";
    return out;
  }

  // Runs a command, captures stdout. Returns false on popen/exit failure.
  static bool run_capture(const std::string& cmd, std::string& out) {
    out.clear();
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) return false;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
      out.append(buf, n);
    }
    return ::pclose(pipe) == 0;
  }

  static std::vector<std::string> split_ws(const std::string& line) {
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok) out.push_back(std::move(tok));
    return out;
  }

  static bool is_hex(const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return false;
    }
    return true;
  }

  // True when `pattern` occurs in the mangled or demangled symbol name.
  static bool name_matches(const std::string& mangled,
                           const std::string& demangled,
                           const std::string& pattern) {
    return mangled.find(pattern) != std::string::npos ||
           demangled.find(pattern) != std::string::npos;
  }

  bool matches_any(const std::string& mangled, const std::string& demangled,
                   const std::vector<std::string>& patterns) const {
    for (const auto& p : patterns) {
      if (name_matches(mangled, demangled, p)) return true;
    }
    return false;
  }

  void check_audit() {
    if (!config_.audit_declared) {
      fail_config("--audit-objects needs an [audit] section in the config "
                  "(banned symbol patterns) - refusing to audit nothing");
    }
    std::string probe;
    if (!run_capture("objdump --version >/dev/null 2>&1 && echo ok", probe) ||
        probe.find("ok") == std::string::npos) {
      std::cerr << "arvy_lint: objdump not found; --audit-objects needs "
                   "binutils\n";
      std::exit(2);
    }

    // Audit only the library objects under <dir>/src: test and tool TUs
    // instantiate hot templates with their own user code (lambdas passed to
    // try_push etc.) that is not shipped on the runtime hot path.
    const fs::path src_dir = fs::path(options_.audit_objects_dir) / "src";
    if (!fs::is_directory(src_dir)) {
      std::cerr << "arvy_lint: '" << src_dir.string()
                << "' is not a directory; point --audit-objects at a CMake "
                   "build tree that has compiled src/\n";
      std::exit(2);
    }
    std::vector<fs::path> objects;
    for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".o") {
        objects.push_back(entry.path());
      }
    }
    std::sort(objects.begin(), objects.end());
    if (objects.empty()) {
      std::cerr << "arvy_lint: no .o files under '" << src_dir.string()
                << "'; build the tree before auditing\n";
      std::exit(2);
    }

    std::size_t hot_total = 0;
    for (const fs::path& obj : objects) {
      ++audit_objects_scanned_;
      hot_total += audit_object(obj);
    }
    audit_hot_functions_ = hot_total;
    if (hot_total == 0) {
      std::cerr << "arvy_lint: no .text.hot.* sections in any object under '"
                << src_dir.string()
                << "'. ARVY_HOT only lands functions in hot sections in an "
                   "optimized build (-O2, -ffunction-sections); audit a "
                   "Release/RelWithDebInfo tree\n";
      std::exit(2);
    }
  }

  // Audits one object file; returns the number of hot root sections found.
  std::size_t audit_object(const fs::path& obj) {
    const std::string quoted = shell_quote(obj.string());
    std::string symtab;
    std::string relocs;
    if (!run_capture("objdump -t " + quoted + " 2>/dev/null", symtab) ||
        !run_capture("objdump -r " + quoted + " 2>/dev/null", relocs)) {
      std::cerr << "arvy_lint: objdump failed on '" << obj.string() << "'\n";
      std::exit(2);
    }

    // Symbol table: which section is each defined symbol in, and what is the
    // (function) symbol that names each section.
    std::map<std::string, std::string> symbol_section;  // sym -> section
    std::map<std::string, std::string> section_func;    // section -> function
    std::vector<std::string> hot_sections;
    {
      std::istringstream in(symtab);
      std::string line;
      while (std::getline(in, line)) {
        const std::vector<std::string> toks = split_ws(line);
        // "0000... <flags> <section> <size/align> <name>"; flag columns vary,
        // so the section is the first token after the value that starts with
        // '.' or '*'.
        if (toks.size() < 4 || !is_hex(toks[0])) continue;
        std::size_t sec = 0;
        for (std::size_t k = 1; k + 1 < toks.size(); ++k) {
          if (toks[k][0] == '.' || toks[k][0] == '*') {
            sec = k;
            break;
          }
        }
        if (sec == 0 || sec + 2 >= toks.size()) continue;
        const std::string& section = toks[sec];
        const std::string& name = toks[sec + 2];
        if (section == "*ABS*" || section == "*UND*") continue;
        if (name == section) {
          // Section symbol row: this is where .text.hot.* roots surface even
          // when the function symbol itself is local.
          if (section.rfind(".text.hot.", 0) == 0) {
            hot_sections.push_back(section);
          }
          continue;
        }
        symbol_section[name] = section;
        // Function symbols carry an 'F' flag column before the section.
        bool is_func = false;
        for (std::size_t k = 1; k < sec; ++k) {
          if (toks[k] == "F") is_func = true;
        }
        if (is_func && section_func.find(section) == section_func.end()) {
          section_func[section] = name;
        }
      }
    }
    std::sort(hot_sections.begin(), hot_sections.end());
    hot_sections.erase(std::unique(hot_sections.begin(), hot_sections.end()),
                       hot_sections.end());
    if (hot_sections.empty()) return 0;

    // Relocations: the outgoing call/reference edges of every section.
    std::map<std::string, std::vector<std::string>> section_targets;
    {
      std::istringstream in(relocs);
      std::string line;
      std::string current;
      static constexpr std::string_view kHeader = "RELOCATION RECORDS FOR [";
      while (std::getline(in, line)) {
        const std::size_t at = line.find(kHeader);
        if (at != std::string::npos) {
          const std::size_t open = at + kHeader.size();
          const std::size_t close = line.find(']', open);
          current = close == std::string::npos
                        ? std::string{}
                        : line.substr(open, close - open);
          continue;
        }
        if (current.empty()) continue;
        const std::vector<std::string> toks = split_ws(line);
        if (toks.size() < 3 || !is_hex(toks[0])) continue;
        std::string target = toks[2];
        // Strip the "+0x..."/"-0x..." addend objdump appends.
        const std::size_t plus = target.rfind("+0x");
        const std::size_t minus = target.rfind("-0x");
        const std::size_t cut = std::min(plus, minus);
        if (cut != std::string::npos) target = target.substr(0, cut);
        if (target.empty()) continue;
        section_targets[current].push_back(std::move(target));
      }
    }

    // BFS over sections from the hot roots. parent[] remembers the edge that
    // first reached each section so a violation can print the call chain.
    const std::string obj_rel =
        fs::path(obj.lexically_relative(fs::path(options_.audit_objects_dir)))
            .generic_string();
    std::map<std::string, std::string> parent;  // section -> caller section
    std::set<std::string> visited;
    std::set<std::pair<std::string, std::string>> reported;
    std::vector<std::string> queue = hot_sections;
    for (const auto& h : hot_sections) visited.insert(h);

    auto section_name_of = [&](const std::string& section) {
      const auto it = section_func.find(section);
      if (it != section_func.end()) return demangle(it->second);
      // .text.hot.<mangled> / .text.<mangled>: recover the function name
      // from the section name itself.
      for (const std::string_view prefix :
           {std::string_view{".text.hot."}, std::string_view{".text.unlikely."},
            std::string_view{".text."}}) {
        if (section.rfind(prefix, 0) == 0) {
          return demangle(section.substr(prefix.size()));
        }
      }
      return section;
    };
    auto chain_of = [&](const std::string& section) {
      std::vector<std::string> hops{section_name_of(section)};
      std::string cur = section;
      while (true) {
        const auto it = parent.find(cur);
        if (it == parent.end()) break;
        cur = it->second;
        hops.push_back(section_name_of(cur));
      }
      std::string out;
      for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
        if (!out.empty()) out += " -> ";
        out += *it;
      }
      return out;
    };

    while (!queue.empty()) {
      const std::string section = queue.back();
      queue.pop_back();
      const auto edges = section_targets.find(section);
      if (edges == section_targets.end()) continue;
      for (const std::string& target : edges->second) {
        // A target that IS a section name (e.g. ".text.foo" from a PC32
        // reloc against a local symbol) is followed directly.
        if (target[0] == '.') {
          if (target.rfind(".text", 0) != 0) continue;  // data/rodata/jump tbl
          if (target.rfind(".text.unlikely.", 0) == 0) continue;  // cold half
          if (visited.insert(target).second) {
            parent[target] = section;
            queue.push_back(target);
          }
          continue;
        }
        const std::string pretty = demangle(target);
        if (matches_any(target, pretty, config_.audit_banned)) {
          const std::string caller = section_name_of(section);
          bool allowed_edge = false;
          for (const auto& [from, to] : config_.audit_allow) {
            if (name_matches(section, caller, from) &&
                name_matches(target, pretty, to)) {
              allowed_edge = true;
              break;
            }
          }
          if (allowed_edge) {
            ++allows_used_;
            continue;
          }
          if (!reported.insert({section, target}).second) continue;
          Violation v;
          v.file = obj_rel;
          v.line = 1;
          v.rule = "audit";
          v.message = "hot path reaches banned symbol '" + pretty +
                      "': " + chain_of(section) + " -> " + pretty;
          v.hint = "hot code must not allocate/lock/throw/log: move the "
                   "branch behind ARVY_COLD, or declare the edge in "
                   "[audit] allow with a written justification";
          violations_.push_back(std::move(v));
          continue;
        }
        if (matches_any(target, pretty, config_.audit_assume_clean)) continue;
        const auto def = symbol_section.find(target);
        if (def == symbol_section.end()) continue;  // undefined: trusted leaf
        const std::string& tsec = def->second;
        if (tsec.rfind(".text", 0) != 0) continue;
        if (tsec.rfind(".text.unlikely.", 0) == 0) continue;
        if (visited.insert(tsec).second) {
          parent[tsec] = section;
          queue.push_back(tsec);
        }
      }
    }
    return hot_sections.size();
  }

  // --- output --------------------------------------------------------------

  [[nodiscard]] const SourceFile* find_file(const std::string& rel) const {
    for (const auto& f : files_) {
      if (f.rel == rel) return &f;
    }
    return nullptr;
  }

  static std::string json_escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  void write_stats_json() const {
    std::ofstream out(options_.stats_json_path);
    std::map<std::string, std::size_t> counts;
    for (const auto& r : kAllRules) counts[r] = 0;
    for (const auto& v : violations_) ++counts[v.rule];
    out << "{\n  \"files_scanned\": " << files_.size() << ",\n";
    out << "  \"allows_used\": " << allows_used_ << ",\n";
    out << "  \"audit_objects_scanned\": " << audit_objects_scanned_ << ",\n";
    out << "  \"audit_hot_functions\": " << audit_hot_functions_ << ",\n";
    out << "  \"rule_counts\": {";
    bool first = true;
    for (const auto& [rule, count] : counts) {
      out << (first ? "" : ", ") << '"' << rule << "\": " << count;
      first = false;
    }
    out << "},\n  \"violations\": [";
    first = true;
    for (const auto& v : violations_) {
      out << (first ? "\n" : ",\n");
      out << "    {\"file\": \"" << json_escape(v.file)
          << "\", \"line\": " << v.line << ", \"rule\": \"" << v.rule
          << "\", \"message\": \"" << json_escape(v.message) << "\"}";
      first = false;
    }
    out << (violations_.empty() ? "]" : "\n  ]");
    out << ",\n  \"clean\": " << (violations_.empty() ? "true" : "false")
        << "\n}\n";
  }

  int report() {
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    for (const auto& v : violations_) {
      std::cout << v.file << ':' << v.line << ": [" << v.rule << "] "
                << v.message << '\n';
      if (!v.hint.empty() && !options_.quiet) {
        std::cout << "  hint: " << v.hint << '\n';
      }
    }
    if (!options_.stats_json_path.empty()) write_stats_json();
    if (violations_.empty()) {
      if (!options_.quiet) {
        std::cout << "arvy_lint: OK (" << files_.size() << " files, 0 "
                  << "violations, " << allows_used_ << " allows used)\n";
      }
      return 0;
    }
    std::map<std::string, std::size_t> counts;
    for (const auto& v : violations_) ++counts[v.rule];
    std::cout << "arvy_lint: FAILED (" << violations_.size() << " violation"
              << (violations_.size() == 1 ? "" : "s") << ":";
    for (const auto& [rule, count] : counts) {
      std::cout << ' ' << rule << '=' << count;
    }
    std::cout << ")\n";
    return 1;
  }

  Options options_;
  Config config_;
  std::vector<SourceFile> files_;
  std::vector<Violation> violations_;
  std::size_t allows_used_ = 0;
  std::size_t audit_objects_scanned_ = 0;
  std::size_t audit_hot_functions_ = 0;
};

// ---------------------------------------------------------------------------

void usage() {
  std::cout <<
      R"(arvy_lint: project-specific static analysis for the Arvy tree

usage: arvy_lint [options]
  --root DIR              tree to lint (default: .)
  --layers FILE           layer DAG + rule config
                          (default: ROOT/docs/layers.toml, else
                          ROOT/layers.toml)
  --compile-commands FILE CMake compile database for TU coverage cross-check
  --rule NAME             run only this rule (repeatable; default: all)
  --audit-objects DIR     CMake build tree whose src/ objects the `audit`
                          rule walks (hot-section call-graph audit; needs an
                          optimized build and binutils objdump)
  --stats-json FILE       write a machine-readable report (CI artifact)
  --quiet                 suppress hints and the OK summary
  --list-rules            print the rule ids and exit

rules: layering lock hotpath msgpod deprecation atomic audit
  (`audit` only runs when --audit-objects is given)
suppression: // ARVY-LINT-ALLOW(rule): justification  (covers its line + next)
exit codes: 0 clean, 1 violations, 2 usage/config error
)";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "arvy_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root = need_value("--root");
    } else if (arg == "--layers") {
      options.layers_path = need_value("--layers");
    } else if (arg == "--compile-commands") {
      options.compile_commands_path = need_value("--compile-commands");
    } else if (arg == "--rule") {
      const std::string rule = need_value("--rule");
      if (std::find(kAllRules.begin(), kAllRules.end(), rule) ==
          kAllRules.end()) {
        std::cerr << "arvy_lint: unknown rule '" << rule << "'\n";
        return 2;
      }
      options.only_rules.insert(rule);
    } else if (arg == "--audit-objects") {
      options.audit_objects_dir = need_value("--audit-objects");
    } else if (arg == "--stats-json") {
      options.stats_json_path = need_value("--stats-json");
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : kAllRules) std::cout << r << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "arvy_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  if (!fs::is_directory(options.root)) {
    std::cerr << "arvy_lint: --root '" << options.root
              << "' is not a directory\n";
    return 2;
  }
  if (options.only_rules.count("audit") > 0 &&
      options.audit_objects_dir.empty()) {
    std::cerr << "arvy_lint: --rule audit needs --audit-objects DIR\n";
    return 2;
  }
  if (options.layers_path.empty()) {
    const fs::path root(options.root);
    if (fs::exists(root / "docs" / "layers.toml")) {
      options.layers_path = (root / "docs" / "layers.toml").string();
    } else {
      options.layers_path = (root / "layers.toml").string();
    }
  }
  Config config = load_config(options.layers_path);
  Linter linter(std::move(options), std::move(config));
  return linter.run();
}
