// arvy_cli - run directory protocols from the command line.
//
// Subcommands:
//   gen  --graph <spec> [--out <file>]        emit an edge-list file
//   info --graph <spec|file>                  topology metrics
//   run  --graph <spec|file> --policy <name> --requests <N>
//        [--workload uniform|zipf|local|roundrobin] [--seed <S>]
//        [--concurrent <rate>] [--verify] [--trace] [--csv]
//        [--faults <spec>] [--retry <spec>|off] [--transport sim|live]
//   serve --graph <spec|file> --objects <N> --requests <N>
//        [--shards <N>] [--policy <name>] [--mode sim|live] [--seed <S>]
//        [--alpha <zipf-skew>] [--faults <spec>] [--retry <spec>|off]
//        [--verify-sample <per-shard>] [--csv]
//        the sharded multi-object DirectoryService: N objects hashed over
//        the shard workers, driven by a Zipf object/node workload
//
// Graph specs: ring:N, wring:N (weighted), path:N, star:N, complete:N,
// grid:RxC, torus:RxC, hypercube:D, tree:N, gnp:N:P, geo:N:R - or a path to
// an edge-list file written by `gen`.
//
// Fault specs (see docs/FAULTS.md): comma-separated key=value pairs -
// drop=P dropfind=P droptoken=P dup=P reorder=P[:SPIKE] storm=AT:DUR[:FACTOR]
// pause=NODE:AT:DUR stall=AT:DUR seed=S. Retry specs: backoff=Mx rto=T cap=T
// attempts=N, or `off` to let drops become permanent losses. With --faults,
// --verify switches to the relaxed (fault-modulo) checks automatically.
//
// Examples:
//   arvy_cli run --graph ring:64 --policy bridge --requests 200
//   arvy_cli run --graph gnp:40:0.15 --policy ivy --concurrent 2.0 --verify
//   arvy_cli run --graph ring:64 --policy ivy --requests 100
//       --faults drop=0.1,dup=0.05 --retry backoff=2x --verify
//   arvy_cli run --graph ring:16 --policy ivy --requests 50 --transport live
//       --faults drop=0.05
//   arvy_cli gen --graph grid:6x6 --out mesh.graph && arvy_cli info --graph mesh.graph
//   arvy_cli serve --graph grid:4x4 --objects 100000 --shards 4 --requests 20000
//       --mode live --faults drop=0.1,shards=0 --verify-sample 4
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/competitive.hpp"
#include "analysis/latency.hpp"
#include "analysis/opt.hpp"
#include "faults/fault_plan.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/tree_metrics.hpp"
#include "proto/directory.hpp"
#include "runtime/live_directory.hpp"
#include "service/directory_service.hpp"
#include "service/request.hpp"
#include "support/table.hpp"
#include "verify/configuration.hpp"
#include "verify/fault_tolerant.hpp"
#include "verify/invariants.hpp"
#include "verify/liveness.hpp"
#include "workload/workload.hpp"

namespace {

using namespace arvy;
using graph::NodeId;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "arvy_cli: %s\nsee the header of tools/arvy_cli.cpp for usage\n",
               message.c_str());
  std::exit(2);
}

struct Flags {
  std::map<std::string, std::string> values;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    auto it = values.find(key);
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    auto value = get(key);
    if (!value.has_value()) usage_error("missing --" + key);
    return *value;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values.count(key) > 0;
  }
};

Flags parse_flags(int argc, char** argv, int start) {
  Flags flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage_error("unexpected argument " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags.values[arg] = argv[++i];
    } else {
      flags.values[arg] = "1";  // boolean flag
    }
  }
  return flags;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, sep)) out.push_back(part);
  return out;
}

graph::Graph build_graph(const std::string& spec, std::uint64_t seed) {
  // A file path (anything containing '/' or '.') loads an edge list.
  if (spec.find('/') != std::string::npos ||
      spec.find(".graph") != std::string::npos) {
    std::ifstream in(spec);
    if (!in) usage_error("cannot open graph file " + spec);
    return graph::read_edge_list(in);
  }
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  support::Rng rng(seed);
  auto num = [&](std::size_t index) -> std::size_t {
    if (index >= parts.size()) usage_error("graph spec " + spec + " needs more parameters");
    return std::stoul(parts[index]);
  };
  if (kind == "ring") return graph::make_ring(num(1));
  if (kind == "wring") return graph::make_weighted_ring(num(1), rng, 0.5, 3.0);
  if (kind == "path") return graph::make_path(num(1));
  if (kind == "star") return graph::make_star(num(1));
  if (kind == "complete") return graph::make_complete(num(1));
  if (kind == "hypercube") return graph::make_hypercube(num(1));
  if (kind == "tree") return graph::make_random_tree(num(1), rng);
  if (kind == "grid" || kind == "torus") {
    const auto dims = split(parts.size() > 1 ? parts[1] : "", 'x');
    if (dims.size() != 2) usage_error("grid/torus spec needs RxC");
    const std::size_t rows = std::stoul(dims[0]);
    const std::size_t cols = std::stoul(dims[1]);
    return kind == "grid" ? graph::make_grid(rows, cols)
                          : graph::make_torus(rows, cols);
  }
  if (kind == "gnp") {
    return graph::make_connected_gnp(num(1), std::stod(parts.at(2)), rng);
  }
  if (kind == "geo") {
    return graph::make_random_geometric(num(1), std::stod(parts.at(2)), rng);
  }
  usage_error("unknown graph spec " + spec);
}

proto::PolicyKind parse_policy(const std::string& name) {
  for (proto::PolicyKind kind : proto::all_policy_kinds()) {
    if (name == proto::policy_kind_name(kind)) return kind;
  }
  usage_error("unknown policy " + name +
              " (try: arrow ivy bridge random midpoint closest kback spectrum)");
}

std::vector<NodeId> build_workload(const std::string& kind,
                                   const graph::Graph& g, std::size_t count,
                                   support::Rng& rng) {
  if (kind == "uniform") {
    return workload::uniform_sequence(g.node_count(), count, rng);
  }
  if (kind == "zipf") {
    return workload::zipf_sequence(g.node_count(), count, 1.2, rng);
  }
  if (kind == "local") {
    return workload::local_walk_sequence(g, count, 2, rng);
  }
  if (kind == "roundrobin") {
    return workload::round_robin_sequence(g.node_count(), count);
  }
  usage_error("unknown workload " + kind +
              " (try: uniform zipf local roundrobin)");
}

int cmd_gen(const Flags& flags) {
  const std::uint64_t seed =
      flags.has("seed") ? std::stoull(flags.require("seed")) : 1;
  const graph::Graph g = build_graph(flags.require("graph"), seed);
  if (auto out = flags.get("out"); out.has_value()) {
    std::ofstream file(*out);
    if (!file) usage_error("cannot write " + *out);
    graph::write_edge_list(g, file);
    std::printf("wrote %zu nodes, %zu edges to %s\n", g.node_count(),
                g.edge_count(), out->c_str());
  } else {
    graph::write_edge_list(g, std::cout);
  }
  return 0;
}

int cmd_info(const Flags& flags) {
  const std::uint64_t seed =
      flags.has("seed") ? std::stoull(flags.require("seed")) : 1;
  const graph::Graph g = build_graph(flags.require("graph"), seed);
  const auto metric = metric_summary(g);
  std::printf("nodes:        %zu\n", g.node_count());
  std::printf("edges:        %zu\n", g.edge_count());
  std::printf("total weight: %.3f\n", g.total_weight());
  std::printf("diameter:     %.3f\n", metric.diameter);
  std::printf("radius:       %.3f (center: node %u)\n", metric.radius,
              metric.center);
  return 0;
}

void add_fault_rows(support::Table& table, const faults::FaultStats& stats) {
  table.add_row({"fault_drops", support::Table::cell(stats.drops)});
  table.add_row({"fault_retries", support::Table::cell(stats.retries)});
  table.add_row({"fault_duplicates", support::Table::cell(stats.duplicates)});
  table.add_row({"fault_delays", support::Table::cell(stats.delays)});
  table.add_row(
      {"fault_permanent_losses", support::Table::cell(stats.permanent_losses)});
  table.add_row({"fault_overhead_distance",
                 support::Table::cell(stats.overhead_distance, 1)});
}

// The threaded transport: requests submitted in sequence, drained by wall
// clock. The simulator path stays the place for invariant checking and OPT
// comparisons; this one demonstrates the same plan surviving real threads.
int cmd_run_live(const Flags& flags, const graph::Graph& g,
                 const DirectoryOptions& options,
                 const std::vector<NodeId>& sequence) {
  LiveDirectory directory(g, options);
  for (NodeId v : sequence) directory.acquire_and_wait(v);
  const bool drained = directory.drain(std::chrono::milliseconds(10'000));
  const proto::CostAccount costs = directory.cost_snapshot();
  const faults::FaultStats stats = directory.fault_stats();
  directory.shutdown();

  support::Table table({"metric", "value"});
  table.add_row({"transport", "live"});
  table.add_row(
      {"policy", std::string(proto::policy_kind_name(options.policy))});
  table.add_row({"nodes", support::Table::cell(g.node_count())});
  table.add_row({"requests", support::Table::cell(directory.submitted_count())});
  table.add_row({"satisfied", support::Table::cell(directory.satisfied_count())});
  table.add_row({"find_distance", support::Table::cell(costs.find_distance, 1)});
  table.add_row({"token_distance",
                 support::Table::cell(costs.token_distance, 1)});
  table.add_row({"find_messages", support::Table::cell(costs.find_messages)});
  table.add_row({"token_messages", support::Table::cell(costs.token_messages)});
  table.add_row({"all_satisfied", drained ? "yes" : "NO"});
  if (!options.faults.empty()) add_fault_rows(table, stats);
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return drained ? 0 : 1;
}

int cmd_run(const Flags& flags) {
  const std::uint64_t seed =
      flags.has("seed") ? std::stoull(flags.require("seed")) : 1;
  const graph::Graph g = build_graph(flags.require("graph"), seed);
  const proto::PolicyKind policy_kind = parse_policy(flags.require("policy"));
  const std::size_t count = std::stoul(flags.require("requests"));
  support::Rng rng(seed + 100);

  DirectoryOptions options;
  options.policy = policy_kind;
  options.seed = seed;
  if (auto spec = flags.get("faults"); spec.has_value()) {
    options.faults = faults::parse_fault_plan(*spec);
  }
  if (auto spec = flags.get("retry"); spec.has_value()) {
    options.retry = faults::parse_retry_policy(*spec);
  }
  const bool faulty = !options.faults.empty();
  const proto::InitialConfig init = default_initial_config(g, policy_kind);
  options.initial = init;

  if (flags.get("transport").value_or("sim") == "live") {
    if (flags.has("concurrent")) {
      usage_error("--transport live drives a sequential workload only");
    }
    const std::string workload_kind = flags.get("workload").value_or("uniform");
    const auto sequence = build_workload(workload_kind, g, count, rng);
    return cmd_run_live(flags, g, options, sequence);
  }

  Directory directory(g, options);

  // Optional invariant checking after every event: strict Lemma 2 on clean
  // runs, relaxed (fault-modulo, see verify/fault_tolerant.hpp) when the
  // plan may legitimately erase messages.
  std::size_t events = 0;
  std::size_t violations = 0;
  std::string first_violation;
  if (flags.has("verify")) {
    directory.on_event([&](const Directory& dir) {
      ++events;
      const auto check =
          faulty ? verify::check_all_relaxed(dir)
                 : verify::check_all(verify::capture(dir));
      if (!check.ok) {
        ++violations;
        if (first_violation.empty()) first_violation = check.detail;
      }
    });
  }

  double opt = 0.0;
  if (flags.has("concurrent")) {
    const double rate = std::stod(flags.require("concurrent"));
    const std::size_t arrivals = std::min(count, g.node_count());
    const auto requests =
        workload::poisson_arrivals(g.node_count(), arrivals, rate, rng);
    directory.run_concurrent(requests);
    std::vector<NodeId> requesters;
    for (const auto& r : requests) requesters.push_back(r.node);
    opt = analysis::opt_burst_lower_bound(directory.oracle(), init.root,
                                          requesters);
  } else {
    const std::string workload_kind =
        flags.get("workload").value_or("uniform");
    const auto sequence = build_workload(workload_kind, g, count, rng);
    directory.run_sequential(sequence);
    opt = analysis::opt_sequential(directory.oracle(), init.root, sequence);
  }

  const auto& costs = directory.costs();
  const auto liveness = faulty ? verify::audit_liveness_relaxed(directory)
                               : verify::audit_liveness(directory);
  const auto latency = analysis::measure_latency(directory.inspect());

  support::Table table({"metric", "value"});
  table.add_row({"policy", std::string(proto::policy_kind_name(policy_kind))});
  table.add_row({"nodes", support::Table::cell(g.node_count())});
  table.add_row({"requests",
                 support::Table::cell(directory.requests().size())});
  table.add_row({"find_distance", support::Table::cell(costs.find_distance, 1)});
  table.add_row({"token_distance",
                 support::Table::cell(costs.token_distance, 1)});
  table.add_row({"find_messages", support::Table::cell(costs.find_messages)});
  table.add_row({"token_messages", support::Table::cell(costs.token_messages)});
  table.add_row({flags.has("concurrent") ? "opt_lower_bound" : "opt",
                 support::Table::cell(opt, 1)});
  if (opt > 0.0) {
    table.add_row({"ratio_find_only",
                   support::Table::cell(costs.find_distance / opt, 3)});
  }
  table.add_row({"latency_p50", support::Table::cell(latency.latency.p50, 2)});
  table.add_row({"latency_p99", support::Table::cell(latency.latency.p99, 2)});
  table.add_row({faulty ? "liveness_relaxed" : "liveness",
                 liveness.ok ? "ok" : liveness.detail});
  if (faulty) add_fault_rows(table, directory.fault_stats());
  if (flags.has("verify")) {
    table.add_row({"events_checked", support::Table::cell(events)});
    table.add_row({"invariant_violations", support::Table::cell(violations)});
  }
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!first_violation.empty()) {
    std::printf("first violation: %s\n", first_violation.c_str());
    return 1;
  }
  return liveness.ok ? 0 : 1;
}

// The sharded multi-object service: N objects hashed over shard workers,
// driven by a Zipf object/node workload, with a sampled Lemma-2 sweep at
// the end. The CLI face of ROADMAP item 1.
int cmd_serve(const Flags& flags) {
  const std::uint64_t seed =
      flags.has("seed") ? std::stoull(flags.require("seed")) : 1;
  const graph::Graph g = build_graph(flags.require("graph"), seed);
  const std::size_t objects = std::stoul(flags.require("objects"));
  const std::size_t requests = std::stoul(flags.require("requests"));
  const std::size_t shards =
      flags.has("shards") ? std::stoul(flags.require("shards")) : 2;
  const double alpha =
      flags.has("alpha") ? std::stod(flags.require("alpha")) : 0.9;
  const std::string mode_name = flags.get("mode").value_or("sim");
  if (mode_name != "sim" && mode_name != "live") {
    usage_error("--mode must be sim or live");
  }
  const ServiceMode mode =
      mode_name == "live" ? ServiceMode::kLive : ServiceMode::kSim;
  if (objects == 0 || shards == 0) {
    usage_error("--objects and --shards must be positive");
  }

  Options options;
  options.policy = flags.has("policy")
                       ? parse_policy(flags.require("policy"))
                       : proto::PolicyKind::kIvy;
  options.seed = seed;
  if (auto spec = flags.get("faults"); spec.has_value()) {
    options.faults = faults::parse_fault_plan(*spec);
  }
  if (auto spec = flags.get("retry"); spec.has_value()) {
    options.retry = faults::parse_retry_policy(*spec);
  }

  DirectoryService service(g, objects, shards, options, mode);

  // Zipf-popular objects, Zipf-popular requester nodes - the bench/
  // multi_object workload shape, sized by --requests.
  support::Rng rng(seed + 100);
  support::ZipfSampler object_sampler(objects, alpha);
  workload::ZipfNodeSampler node_sampler(g.node_count(), 1.1, rng);
  std::vector<service::ObjectRequest> volley;
  volley.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    volley.push_back(service::ObjectRequest{
        static_cast<service::ObjectId>(object_sampler.sample(rng)),
        node_sampler.sample(rng), 0});
  }
  service.submit_batch(volley);
  const bool drained = service.drain(std::chrono::milliseconds(120'000));
  if (mode == ServiceMode::kLive) service.shutdown();

  const std::size_t per_shard =
      flags.has("verify-sample") ? std::stoul(flags.require("verify-sample"))
                                 : 4;
  const auto report = service.check_sampled(per_shard, seed);
  const auto costs = service.cost_snapshot();
  const double satisfied =
      static_cast<double>(service.satisfied_count());

  support::Table table({"metric", "value"});
  table.add_row({"mode", mode_name});
  table.add_row(
      {"policy", std::string(proto::policy_kind_name(options.policy))});
  table.add_row({"nodes", support::Table::cell(g.node_count())});
  table.add_row({"objects", support::Table::cell(service.object_count())});
  table.add_row({"shards", support::Table::cell(service.shard_count())});
  table.add_row({"requests", support::Table::cell(service.submitted_count())});
  table.add_row({"satisfied", support::Table::cell(service.satisfied_count())});
  table.add_row(
      {"resident_objects", support::Table::cell(service.resident_objects())});
  table.add_row(
      {"resident_bytes", support::Table::cell(service.resident_bytes())});
  table.add_row({"routing_epoch", support::Table::cell(service.routing_epoch())});
  table.add_row({"find_distance", support::Table::cell(costs.find_distance, 1)});
  table.add_row(
      {"token_distance", support::Table::cell(costs.token_distance, 1)});
  table.add_row({"find_messages", support::Table::cell(costs.find_messages)});
  table.add_row({"token_messages", support::Table::cell(costs.token_messages)});
  if (satisfied > 0.0) {
    table.add_row({"distance_per_satisfied",
                   support::Table::cell(costs.total_distance() / satisfied, 2)});
  }
  table.add_row({"recoveries", support::Table::cell(service.recovery_count())});
  if (!options.faults.empty()) add_fault_rows(table, service.fault_stats());
  table.add_row({"verify_sampled",
                 report ? "ok (" + std::to_string(report.objects_checked) +
                              " objects)"
                        : report.first_failure});
  table.add_row({"all_satisfied", drained ? "yes" : "NO"});
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return (drained && report) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_error("missing subcommand (gen | info | run | serve)");
  const std::string command = argv[1];
  const Flags flags = parse_flags(argc, argv, 2);
  if (command == "gen") return cmd_gen(flags);
  if (command == "info") return cmd_info(flags);
  if (command == "run") return cmd_run(flags);
  if (command == "serve") return cmd_serve(flags);
  usage_error("unknown subcommand " + command);
}
