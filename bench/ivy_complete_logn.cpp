// Experiment E8 (related-work context, Ginat-Sleator-Tarjan): Ivy's
// amortized cost per request on a complete graph with unit edges is
// O(log n). Random uniform workloads; reports amortized find cost per
// request against log2(n) and fits cost ~ a + b*log2(n).
#include <cmath>

#include "analysis/competitive.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "proto/policies.hpp"
#include "support/stats.hpp"
#include "workload/workload.hpp"

using namespace arvy;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::banner(
      "E8 (Ginat et al. context): Ivy amortized O(log n) on complete graphs",
      "Path reversal has Theta(log n) amortized cost: amortized find cost\n"
      "per request should track c * log2(n), not n.",
      args);

  support::Table table({"n", "requests", "amortized_find", "log2(n)",
                        "amortized/log2(n)", "arrow_amortized"});
  std::vector<std::size_t> sizes{8, 16, 32, 64, 128};
  if (args.large) sizes = {8, 16, 32, 64, 128, 256, 512};

  std::vector<double> xs, ys;
  support::Rng rng(args.seed);
  for (std::size_t n : sizes) {
    const auto g = graph::make_complete(n);
    const std::size_t len = args.large ? 40 * n : 10 * n;
    const auto seq = workload::uniform_sequence(n, len, rng);
    const auto init = proto::chain_config(n);  // worst-ish starting tree
    auto ivy = proto::make_policy(proto::PolicyKind::kIvy);
    const auto report =
        analysis::measure_sequential(g, init, *ivy, seq, args.seed);
    auto arrow = proto::make_policy(proto::PolicyKind::kArrow);
    const auto arrow_report =
        analysis::measure_sequential(g, init, *arrow, seq, args.seed);
    const double amortized =
        report.find_cost / static_cast<double>(seq.size());
    const double arrow_amortized =
        arrow_report.find_cost / static_cast<double>(seq.size());
    const double lg = std::log2(static_cast<double>(n));
    table.add_row({support::Table::cell(n), support::Table::cell(seq.size()),
                   support::Table::cell(amortized, 3),
                   support::Table::cell(lg, 3),
                   support::Table::cell(amortized / lg, 3),
                   support::Table::cell(arrow_amortized, 3)});
    xs.push_back(lg);
    ys.push_back(amortized);
  }
  bench::emit(table, args);
  const auto fit = support::fit_linear(xs, ys);
  std::printf(
      "\nlinear fit: amortized_find ~ %.3f + %.3f * log2(n) (R^2 = %.3f)\n"
      "Expected shape: amortized/log2(n) roughly constant (O(log n)\n"
      "amortized, Ginat et al.); Arrow on the same fixed chain tree pays\n"
      "far more per request since its tree never adapts.\n",
      fit.intercept, fit.slope, fit.r2);
  return 0;
}
