// Experiment E1/E2: regenerates Figure 1 (the 12-step example execution) and
// Figure 2 (the BG graphs of configuration 1g) as text. Run with --dot to
// emit Graphviz for each sub-figure instead.
#include <cstring>
#include <deque>
#include <iostream>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "proto/engine.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"

namespace {

using namespace arvy::proto;
using arvy::graph::NodeId;
using arvy::verify::capture;
using arvy::verify::Configuration;

constexpr NodeId A = 0, B = 1, C = 2, D = 3, E = 4;
constexpr const char* kNames = "abcde";

class ScriptedPolicy final : public NewParentPolicy {
 public:
  explicit ScriptedPolicy(std::deque<NodeId> choices)
      : choices_(std::move(choices)) {}
  PolicyDecision choose(const PolicyContext&) override {
    const NodeId next = choices_.front();
    choices_.pop_front();
    return {next, false};
  }
  std::string_view name() const noexcept override { return "scripted"; }
  std::unique_ptr<NewParentPolicy> clone() const override {
    return std::make_unique<ScriptedPolicy>(*this);
  }

 private:
  std::deque<NodeId> choices_;
};

void print_configuration(const char* stage, const char* caption,
                         const Configuration& cfg, bool dot) {
  std::printf("--- Figure 1%s: %s ---\n", stage, caption);
  if (dot) {
    std::cout << cfg.to_dot();
    return;
  }
  std::printf("  parents: ");
  for (NodeId v = 0; v < cfg.node_count(); ++v) {
    std::printf("%c->%c ", kNames[v], kNames[cfg.parent[v]]);
  }
  std::printf("\n  next:    ");
  bool any_next = false;
  for (NodeId v = 0; v < cfg.node_count(); ++v) {
    if (cfg.next[v].has_value()) {
      std::printf("n(%c)=%c ", kNames[v], kNames[*cfg.next[v]]);
      any_next = true;
    }
  }
  if (!any_next) std::printf("(all empty)");
  std::printf("\n  token:   ");
  if (cfg.token_at.has_value()) {
    std::printf("at %c", kNames[*cfg.token_at]);
  } else {
    std::printf("in flight %c -> %c", kNames[cfg.token_in_flight->first],
                kNames[cfg.token_in_flight->second]);
  }
  std::printf("\n  red:     ");
  if (cfg.red_edges.empty()) std::printf("(none)");
  for (const auto& r : cfg.red_edges) {
    std::printf("\"find by %c\" %c->%c (visited:", kNames[r.producer],
                kNames[r.tail], kNames[r.head]);
    for (NodeId v : r.visited) std::printf(" %c", kNames[v]);
    std::printf(") ");
  }
  const auto check = arvy::verify::check_all(cfg);
  std::printf("\n  Lemma 2: %s\n\n", check.ok ? "holds" : check.detail.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = arvy::bench::parse_args(argc, argv);
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) dot = true;
  }
  arvy::bench::banner(
      "E1/E2: Figure 1 execution trace + Figure 2 BG graphs",
      "Replays the paper's 5-node concurrent example with the figure's "
      "NewParent choices;\nLemma 2 is checked at every step.",
      args);

  ScriptedPolicy policy({D, E, E, B, D, D});
  const auto g = arvy::graph::make_complete(5);
  InitialConfig init;
  init.root = A;
  init.parent = {A, A, A, C, C};
  init.parent_edge_is_bridge.assign(5, false);
  SimEngine::Options options;
  options.discipline = arvy::sim::Discipline::kFifo;
  options.auto_send_token = false;
  SimEngine engine(g, init, policy, std::move(options));

  print_configuration("a", "initial configuration, token at a",
                      capture(engine), dot);
  engine.submit(D);
  print_configuration("b", "d requests the token", capture(engine), dot);
  engine.bus().deliver(engine.bus().pending()[0]->id);
  print_configuration("c", "c forwards \"find by d\" to a", capture(engine),
                      dot);
  engine.submit(E);
  print_configuration("d", "e requests before \"find by d\" arrives",
                      capture(engine), dot);
  engine.bus().deliver(engine.bus().pending()[1]->id);
  print_configuration("e", "c forwards \"find by e\" to d", capture(engine),
                      dot);
  engine.bus().deliver(engine.bus().pending()[1]->id);
  print_configuration("f", "\"find by e\" parks as n(d); p(d)=e",
                      capture(engine), dot);
  engine.submit(B);
  const Configuration fig1g = capture(engine);
  print_configuration("g", "b requests the token (the Figure 2 state)",
                      fig1g, dot);
  engine.bus().deliver(engine.bus().pending()[1]->id);
  print_configuration("h", "a parks b's request as n(a); token kept",
                      capture(engine), dot);
  engine.bus().deliver(engine.bus().pending()[0]->id);
  print_configuration("i", "\"find by d\" reaches a, forwarded to b; p(a)=d",
                      capture(engine), dot);
  engine.bus().deliver(engine.bus().pending()[0]->id);
  print_configuration("j", "\"find by d\" parks as n(b); p(b)=d",
                      capture(engine), dot);
  engine.flush_token(A);
  print_configuration("k", "token sent a->b", capture(engine), dot);
  engine.run_until_idle();
  print_configuration("l", "token forwarded b->d->e; all requests satisfied",
                      capture(engine), dot);

  // Figure 2: enumerate the BG graphs of configuration 1g.
  std::printf("--- Figure 2: BG graphs of configuration 1g ---\n");
  for (const auto& r : fig1g.red_edges) {
    std::printf("red edge %c->%c (find by %c): green candidates {",
                kNames[r.tail], kNames[r.head], kNames[r.producer]);
    auto candidates = r.visited;
    for (NodeId w : fig1g.waiting_set(r.producer)) candidates.push_back(w);
    for (NodeId v : candidates) std::printf(" %c", kNames[v]);
    std::printf(" }\n");
  }
  const auto bg = arvy::verify::check_bg_trees(fig1g);
  std::printf("all green-replacement combinations are directionless trees: "
              "%s\n",
              bg.ok ? "yes (Lemma 2.2 holds)" : bg.detail.c_str());
  std::printf("\ncosts: find=%.0f token=%.0f (messages: %llu find, %llu "
              "token)\n",
              engine.costs().find_distance, engine.costs().token_distance,
              static_cast<unsigned long long>(engine.costs().find_messages),
              static_cast<unsigned long long>(engine.costs().token_messages));
  return 0;
}
