// Experiment E13a: behaviour under concurrent load in the discrete-event
// simulator. Poisson bursts of varying intensity; reports total find cost,
// the batch MST lower bound, and completion (simulated) time per policy.
// Concurrency is where Arvy's correctness machinery earns its keep: all
// runs also pass the liveness audit.
#include "analysis/latency.hpp"
#include "analysis/opt.hpp"
#include "analysis/ordering.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/liveness.hpp"
#include "workload/workload.hpp"

using namespace arvy;
using graph::NodeId;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::banner(
      "E13a: concurrent request load (simulator)",
      "Poisson arrivals while earlier finds are still in flight; cost vs the\n"
      "exact batch optimum (Held-Karp; MST bound for large bursts); liveness\n"
      "audited on every run.",
      args);

  support::Table table({"topology", "policy", "arrivals", "rate",
                        "find_cost", "batch_opt", "cost/opt",
                        "lat_p50", "lat_p99", "liveness"});
  struct Topo {
    std::string name;
    graph::Graph g;
    bool ring;
  };
  std::vector<Topo> topologies;
  topologies.push_back({"ring16", graph::make_ring(16), true});
  topologies.push_back({"grid4x4", graph::make_grid(4, 4), false});
  if (args.large) {
    topologies.push_back({"ring64", graph::make_ring(64), true});
    topologies.push_back({"torus6x6", graph::make_torus(6, 6), false});
  }

  for (auto& topo : topologies) {
    const std::size_t n = topo.g.node_count();
    for (double rate : {0.2, 1.0, 5.0}) {
      for (proto::PolicyKind kind :
           {proto::PolicyKind::kArrow, proto::PolicyKind::kIvy,
            proto::PolicyKind::kBridge}) {
        if (kind == proto::PolicyKind::kBridge && !topo.ring) continue;
        const auto init = kind == proto::PolicyKind::kBridge
                              ? proto::ring_bridge_config(n)
                              : proto::from_tree(graph::bfs_tree(topo.g, 0));
        support::Rng rng(args.seed + static_cast<std::uint64_t>(rate * 10));
        const std::size_t count = n / 2;
        const auto arrivals = workload::poisson_arrivals(n, count, rate, rng);
        auto policy = proto::make_policy(kind);
        proto::SimEngine::Options options;
        options.seed = args.seed;
        options.delay = sim::make_uniform_delay(0.2, 2.0);
        proto::SimEngine engine(topo.g, init, *policy, std::move(options));
        engine.run_concurrent(arrivals);
        std::vector<NodeId> requesters;
        for (const auto& a : arrivals) requesters.push_back(a.node);
        // Exact path-TSP optimum when the burst is small enough for
        // Held-Karp; otherwise fall back to the MST lower bound.
        const double opt_value =
            requesters.size() <= 16
                ? analysis::exact_batch_opt(engine.oracle(), init.root,
                                            requesters)
                      .cost
                : analysis::opt_burst_lower_bound(engine.oracle(), init.root,
                                                  requesters);
        const auto liveness = verify::audit_liveness(engine);
        const auto latency = analysis::measure_latency(engine);
        table.add_row(
            {topo.name, std::string(proto::policy_kind_name(kind)),
             support::Table::cell(count), support::Table::cell(rate, 1),
             support::Table::cell(engine.costs().find_distance, 0),
             support::Table::cell(opt_value, 1),
             support::Table::cell(engine.costs().find_distance / opt_value, 2),
             support::Table::cell(latency.latency.p50, 1),
             support::Table::cell(latency.latency.p99, 1),
             liveness.ok ? "ok" : "FAIL"});
      }
    }
  }
  bench::emit(table, args);
  std::printf(
      "\nExpected shape: liveness ok on every row (Theorem 5 under real\n"
      "concurrency); cost/opt (exact Held-Karp batch optimum for bursts of\n"
      "<= 16, MST lower bound beyond) grows with the arrival rate - more\n"
      "interleaved finds chase a moving token - and is smallest for the\n"
      "topology-matched policy.\n");
  return 0;
}
