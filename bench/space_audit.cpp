// Experiment E12: per-node and per-message space audit across policies -
// quantifying "constant space per node" (paper abstract) and the message
// overhead each NewParent policy actually requires.
#include "analysis/space.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "proto/policies.hpp"
#include "workload/workload.hpp"

using namespace arvy;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::banner(
      "E12: space per node and per message",
      "Algorithm 1 state is p(v), n(v), token and outstanding bits (4 "
      "words).\nPolicies add: bridge +1 flag word; path-dependent policies "
      "need the\nvisited history in messages (peak grows with n).",
      args);

  support::Table table({"policy", "n", "node_words", "msg_words_const",
                        "msg_words_peak", "needs_full_path"});
  for (std::size_t n : {16u, 64u, args.large ? 512u : 128u}) {
    const auto g = graph::make_ring(n);
    support::Rng rng(args.seed);
    const auto seq = workload::uniform_sequence(n, 60, rng);
    for (proto::PolicyKind kind : proto::all_policy_kinds()) {
      const auto init = kind == proto::PolicyKind::kBridge
                            ? proto::ring_bridge_config(n)
                            : proto::from_tree(graph::bfs_tree(g, 0));
      auto policy = proto::make_policy(kind, 2);
      proto::SimEngine engine(g, init, *policy, {});
      engine.run_sequential(seq);
      const auto report = analysis::measure_space(engine);
      table.add_row({report.policy, support::Table::cell(n),
                     support::Table::cell(report.total_node_words()),
                     support::Table::cell(report.message_words_constant),
                     support::Table::cell(report.message_words_peak),
                     report.needs_full_path ? "yes" : "no"});
    }
  }
  bench::emit(table, args);
  std::printf(
      "\nExpected shape: node_words constant in n for every policy (5 for\n"
      "bridge, 4 otherwise); msg_words_peak constant for arrow/ivy/bridge\n"
      "and growing with the longest find path for the full-path policies.\n");
  return 0;
}
