// Experiment E7 (Theorems 4-5, Lemma 2): randomized concurrent executions
// with the full invariant bundle checked after every event. Prints a
// pass-count matrix over topologies x policies x delivery disciplines.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/tree_metrics.hpp"
#include "proto/engine.hpp"
#include "proto/policies.hpp"
#include "verify/configuration.hpp"
#include "verify/invariants.hpp"
#include "verify/liveness.hpp"

using namespace arvy;
using graph::NodeId;

namespace {

struct FuzzResult {
  std::size_t runs = 0;
  std::size_t events = 0;
  std::size_t failures = 0;
  std::string first_failure;
};

FuzzResult fuzz(const graph::Graph& g, const proto::InitialConfig& init,
                proto::PolicyKind kind, sim::Discipline discipline,
                std::size_t runs, std::size_t requests_per_run,
                std::uint64_t base_seed) {
  FuzzResult result;
  for (std::size_t run = 0; run < runs; ++run) {
    const std::uint64_t seed = base_seed + run * 101;
    auto policy = proto::make_policy(kind, 2);
    proto::SimEngine::Options options;
    options.discipline = discipline;
    options.seed = seed;
    if (discipline == sim::Discipline::kTimed) {
      options.delay = sim::make_uniform_delay(0.1, 4.0);
    }
    proto::SimEngine engine(g, init, *policy, std::move(options));
    bool failed = false;
    engine.set_post_event_hook([&](const proto::SimEngine& eng) {
      ++result.events;
      if (failed) return;
      const auto check = verify::check_all(verify::capture(eng));
      if (!check.ok) {
        failed = true;
        ++result.failures;
        if (result.first_failure.empty()) result.first_failure = check.detail;
      }
    });
    support::Rng driver(seed ^ 0xf00d);
    std::size_t submitted = 0;
    while (submitted < requests_per_run || !engine.bus().idle()) {
      if (submitted < requests_per_run &&
          (engine.bus().idle() || driver.next_bool(0.45))) {
        const auto v =
            static_cast<NodeId>(driver.next_below(g.node_count()));
        if (!engine.node(v).outstanding().has_value()) {
          engine.submit(v);
          ++submitted;
        }
      } else {
        engine.step();
      }
    }
    const auto liveness = verify::audit_liveness(engine);
    if (!liveness.ok) {
      ++result.failures;
      if (result.first_failure.empty()) result.first_failure = liveness.detail;
    }
    ++result.runs;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::banner(
      "E7 (Theorems 4-5, Lemma 2): concurrent correctness fuzz",
      "Random concurrent executions; L2.1-L2.3, token uniqueness, next-chain\n"
      "acyclicity and Lemma 3 states checked after EVERY event; liveness at "
      "quiescence.",
      args);

  const std::size_t runs = args.large ? 20 : 5;
  const std::size_t requests = args.large ? 60 : 25;

  support::Table table({"topology", "policy", "discipline", "runs",
                        "events_checked", "violations"});
  struct Topo {
    const char* name;
    graph::Graph g;
  };
  support::Rng topo_rng(args.seed);
  std::vector<Topo> topologies;
  topologies.push_back({"ring10", graph::make_ring(10)});
  topologies.push_back({"grid3x3", graph::make_grid(3, 3)});
  topologies.push_back({"complete7", graph::make_complete(7)});
  topologies.push_back({"rtree12", graph::make_random_tree(12, topo_rng)});
  topologies.push_back({"gnp12", graph::make_connected_gnp(12, 0.25, topo_rng)});

  std::size_t total_failures = 0;
  std::string first_failure;
  for (const auto& topo : topologies) {
    const auto init = proto::from_tree(shortest_path_tree(
        topo.g, graph::metric_summary(topo.g).center));
    for (proto::PolicyKind kind :
         {proto::PolicyKind::kArrow, proto::PolicyKind::kIvy,
          proto::PolicyKind::kRandom, proto::PolicyKind::kMidpoint,
          proto::PolicyKind::kKBack}) {
      for (sim::Discipline d : {sim::Discipline::kRandom,
                                sim::Discipline::kLifo,
                                sim::Discipline::kTimed}) {
        const auto result =
            fuzz(topo.g, init, kind, d, runs, requests, args.seed);
        total_failures += result.failures;
        if (first_failure.empty()) first_failure = result.first_failure;
        table.add_row({topo.name,
                       std::string(proto::policy_kind_name(kind)),
                       std::string(sim::discipline_name(d)),
                       support::Table::cell(result.runs),
                       support::Table::cell(result.events),
                       support::Table::cell(result.failures)});
      }
    }
  }
  // The bridge policy on its canonical ring.
  {
    const auto g = graph::make_ring(10);
    for (sim::Discipline d :
         {sim::Discipline::kRandom, sim::Discipline::kLifo}) {
      const auto result = fuzz(g, proto::ring_bridge_config(10),
                               proto::PolicyKind::kBridge, d, runs, requests,
                               args.seed);
      total_failures += result.failures;
      table.add_row({"ring10(alg2)", "bridge",
                     std::string(sim::discipline_name(d)),
                     support::Table::cell(result.runs),
                     support::Table::cell(result.events),
                     support::Table::cell(result.failures)});
    }
  }
  bench::emit(table, args);
  std::printf("\ntotal invariant violations: %zu (expected: 0)\n",
              total_failures);
  if (total_failures > 0) {
    std::printf("first failure: %s\n", first_failure.c_str());
    return 1;
  }
  return 0;
}
