// Experiment E11 (§2/§6 comparison vs sparse-cover hierarchies, [14]):
// on rings, hierarchical directories pay O(log n) space per node and a
// logarithmic cost overhead, while Arvy+bridge achieves a constant ratio
// with constant space - the paper's headline comparison.
#include "analysis/competitive.hpp"
#include "analysis/opt.hpp"
#include "analysis/space.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "hier/hier_directory.hpp"
#include "proto/policies.hpp"
#include "workload/workload.hpp"

using namespace arvy;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::banner(
      "E11: Arvy+bridge vs sparse-cover hierarchical directory on rings",
      "Hierarchical schemes: O(log n) ratio and O(log n) words/node.\n"
      "Arvy+bridge: constant ratio, constant words/node (Theorem 6 + §2).",
      args);

  support::Table table({"n", "opt", "bridge_ratio", "hier_ratio",
                        "bridge_words/node", "hier_words/node",
                        "hier_levels"});
  std::vector<std::size_t> sizes{16, 32, 64, 128};
  if (args.large) sizes = {16, 32, 64, 128, 256, 512};

  support::Rng rng(args.seed);
  for (std::size_t n : sizes) {
    const auto g = graph::make_ring(n);
    const auto seq = workload::uniform_sequence(n, args.large ? 200 : 80, rng);

    auto bridge = proto::make_policy(proto::PolicyKind::kBridge);
    proto::SimEngine engine(g, proto::ring_bridge_config(n), *bridge, {});
    engine.run_sequential(seq);
    const double opt = analysis::opt_sequential(
        engine.oracle(), proto::ring_bridge_config(n).root, seq);
    const double bridge_ratio = engine.costs().find_distance / opt;
    const auto space = analysis::measure_space(engine);

    const graph::DistanceOracle oracle(g);
    hier::HierarchicalDirectory hier_dir(
        oracle, proto::ring_bridge_config(n).root);
    const double hier_cost = hier_dir.run_sequence(seq);
    const double hier_ratio = hier_cost / opt;

    table.add_row({support::Table::cell(n), support::Table::cell(opt, 0),
                   support::Table::cell(bridge_ratio, 3),
                   support::Table::cell(hier_ratio, 3),
                   support::Table::cell(space.total_node_words()),
                   support::Table::cell(hier_dir.max_space_words_per_node()),
                   support::Table::cell(hier_dir.level_count())});
  }
  bench::emit(table, args);
  std::printf(
      "\nExpected shape: bridge_ratio and bridge_words/node flat in n;\n"
      "hier_words/node grows ~ log2(n) (one pointer slot + leader id per\n"
      "level); hier_ratio carries the hierarchy's climb/probe overhead.\n"
      "SUBSTITUTION NOTE: the hierarchical comparator is our sequential\n"
      "re-implementation of the [14]-style directory mechanics (see "
      "DESIGN.md).\n");
  return 0;
}
