// Experiment E14: cost-model sensitivity. The Theorem 6 proof accounts for
// find traffic; real deployments also pay for the token transfer. For
// sequential workloads the token's path is exactly OPT's path, so
// ratio_total = ratio_find + 1 - this bench demonstrates that identity and
// shows both accountings per policy.
#include <cmath>

#include "analysis/competitive.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "proto/policies.hpp"
#include "workload/workload.hpp"

using namespace arvy;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::banner(
      "E14: find-only vs find+token accounting",
      "Sequential semantics: the token always travels holder->requester on a\n"
      "shortest path, so token cost == OPT and ratio_total == ratio_find + "
      "1.",
      args);

  support::Table table({"topology", "policy", "find_cost", "token_cost",
                        "opt", "ratio_find", "ratio_total",
                        "token==opt"});
  struct Topo {
    std::string name;
    graph::Graph g;
    bool ring;
  };
  support::Rng build_rng(args.seed);
  std::vector<Topo> topologies;
  topologies.push_back({"ring32", graph::make_ring(32), true});
  topologies.push_back({"grid5x5", graph::make_grid(5, 5), false});
  if (args.large) {
    topologies.push_back({"ring256", graph::make_ring(256), true});
    topologies.push_back(
        {"gnp48", graph::make_connected_gnp(48, 0.15, build_rng), false});
  }
  for (auto& topo : topologies) {
    const std::size_t n = topo.g.node_count();
    support::Rng rng(args.seed + 3);
    const auto seq = workload::uniform_sequence(n, args.large ? 200 : 80, rng);
    for (proto::PolicyKind kind :
         {proto::PolicyKind::kArrow, proto::PolicyKind::kIvy,
          proto::PolicyKind::kBridge, proto::PolicyKind::kMidpoint}) {
      if (kind == proto::PolicyKind::kBridge && !topo.ring) continue;
      const auto init = kind == proto::PolicyKind::kBridge
                            ? proto::ring_bridge_config(n)
                            : proto::from_tree(graph::bfs_tree(topo.g, 0));
      auto policy = proto::make_policy(kind);
      const auto report =
          analysis::measure_sequential(topo.g, init, *policy, seq, args.seed);
      const bool token_is_opt =
          std::abs(report.token_cost - report.opt) < 1e-9;
      table.add_row({topo.name, report.policy,
                     support::Table::cell(report.find_cost, 0),
                     support::Table::cell(report.token_cost, 0),
                     support::Table::cell(report.opt, 0),
                     support::Table::cell(report.ratio_find_only, 3),
                     support::Table::cell(report.ratio_total, 3),
                     token_is_opt ? "yes" : "NO"});
    }
  }
  bench::emit(table, args);
  std::printf(
      "\nExpected shape: token==opt everywhere (sequential semantics), so\n"
      "the two accountings rank policies identically - the paper's\n"
      "find-only convention loses no generality for ratio comparisons.\n");
  return 0;
}
